#!/usr/bin/env python3
"""Running an untrusted downloaded program under a credentialed name (§9).

"Using an identity box, an ordinary user may run an untrusted program
using a credentialed name such as JoeHacker or BigSoftwareCorp.  In
addition to protecting the supervising user, the identity box could be
used for forensic purposes, recording the objects accessed and the
activities taken by the untrusted user."

The downloaded "screensaver" below tries to read the user's SSH key,
overwrite a shell profile, and kill another process — every attempt is
denied and recorded; its legitimate scratch files work normally.

Run:  python examples/untrusted_program.py
"""

from repro import AuditLog, IdentityBox, Machine, OpenFlags
from repro.kernel import Signal


def downloaded_screensaver(proc, args):
    """What the shiny free program actually does when run."""
    # legitimate-looking activity
    fd = yield proc.sys.open("render.cache", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
    addr = proc.alloc_bytes(b"\x00" * 4096)
    yield proc.sys.write(fd, addr, 4096)
    yield proc.sys.close(fd)
    yield proc.compute(ms=50)

    # ...and the payload
    stolen = yield proc.sys.open("/home/alice/.ssh/id_rsa", OpenFlags.O_RDONLY)
    profile = yield proc.sys.open(
        "/home/alice/.profile", OpenFlags.O_WRONLY | OpenFlags.O_TRUNC
    )
    killed = yield proc.sys.kill(1, Signal.SIGKILL)
    hidden = yield proc.sys.link("/home/alice/.ssh/id_rsa", "innocent.txt")
    return sum(1 for r in (stolen, profile, killed, hidden) if isinstance(r, int) and r < 0)


def main() -> None:
    machine = Machine()
    alice = machine.add_user("alice")
    task = machine.host_task(alice, cwd="/home/alice")
    machine.kcall_x(task, "mkdir", "/home/alice/.ssh", 0o700)
    machine.write_file(task, "/home/alice/.ssh/id_rsa", b"PRIVATE KEY", mode=0o600)
    machine.write_file(task, "/home/alice/.profile", b"export PATH=...", mode=0o644)

    print("alice runs: parrot_identity_box BigSoftwareCorp ./screensaver\n")
    audit = AuditLog()
    box = IdentityBox(machine, alice, "BigSoftwareCorp", audit=audit)
    from repro.interpose import SyscallTrace

    box.supervisor.strace = SyscallTrace()
    proc = box.run(downloaded_screensaver, [])
    print(f"screensaver exited with status {proc.exit_status} "
          f"({proc.exit_status} hostile actions denied)\n")

    print("== forensic audit for BigSoftwareCorp ==")
    print(audit.render())

    print("\n== denials only ==")
    for record in audit.denials():
        print(f"  {record.operation}({record.target})")

    print("\n== objects it successfully touched ==")
    for target in audit.objects_accessed("BigSoftwareCorp"):
        print(f"  {target}")

    # §8: "even authors of technical software are surprised to learn
    # exactly what system calls their programs attempt"
    print("\n== the full syscall stream (strace-style) ==")
    print(box.supervisor.strace.render())
    print("\n== syscall histogram ==")
    for name, count in box.supervisor.strace.histogram().items():
        print(f"  {name:<8} {count}")

    # alice's files are intact
    assert machine.read_file(task, "/home/alice/.ssh/id_rsa") == b"PRIVATE KEY"
    assert machine.read_file(task, "/home/alice/.profile") == b"export PATH=..."
    print("\nalice's key and profile are untouched.")


if __name__ == "__main__":
    main()
