#!/usr/bin/env python3
"""Figure 3: Fred runs a simulation on a machine where he has no account.

The full distributed workflow of §4:

1. a catalog server publishes available Chirp servers,
2. ``dthain`` (an ordinary user, not root) exports spare disk through a
   Chirp server whose root ACL grants ``v(rwlax)`` to UnivNowhere
   certificate holders and ``rlx`` to nowhere.edu hosts,
3. Fred authenticates with GSI, creates ``/work`` via the reserve right,
   stages ``sim.exe``, runs it remotely inside an identity box named by
   his principal, and retrieves ``out.dat``.

Run:  python examples/chirp_remote_exec.py
"""

from repro import Cluster, OpenFlags
from repro.chirp import (
    CatalogServer,
    ChirpClient,
    ChirpServer,
    GlobusAuthenticator,
    HostnameAuthenticator,
    ServerAuth,
    advertise,
    list_servers,
)
from repro.core import Acl, Rights
from repro.gsi import CertificateAuthority, CredentialStore, provision_user


def sim_program(proc, args):
    """The staged simulation: read input knobs, compute, write output."""
    yield proc.compute(ms=250)
    fd = yield proc.sys.open("out.dat", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
    payload = b"event 0042: flux=3.14 keV\n" * 200
    addr = proc.alloc_bytes(payload)
    n = yield proc.sys.write(fd, addr, len(payload))
    yield proc.sys.close(fd)
    identity = yield proc.sys.get_user_name()
    print(f"   [sim.exe running as {identity}; wrote {n} bytes]")
    return 0


def main() -> None:
    cluster = Cluster()
    server_machine = cluster.add_machine("server1.nowhere.edu")
    cluster.add_machine("laptop.cs.nowhere.edu")
    cluster.add_machine("catalog.nowhere.edu")

    # --- grid security infrastructure ---------------------------------- #
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    fred_wallet = provision_user(ca, trust, "/O=UnivNowhere/CN=Fred")

    # --- dthain deploys a server (no root anywhere) --------------------- #
    dthain = server_machine.add_user("dthain")
    server = ChirpServer(
        server_machine,
        dthain,
        network=cluster.network,
        auth=ServerAuth(credential_store=trust),
    )
    root_acl = Acl()
    root_acl.set_entry("hostname:*.nowhere.edu", Rights.parse("rlx"))
    root_acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("v(rwlax)"))
    server.set_root_acl(root_acl)
    server.serve()
    server_machine.register_program("sim", sim_program)

    catalog = CatalogServer(cluster.network, "catalog.nowhere.edu")
    catalog.serve()
    advertise(cluster.network, "server1.nowhere.edu", server, "catalog.nowhere.edu")

    # --- Fred, from his laptop ------------------------------------------ #
    print("1. discover storage via the catalog:")
    for record in list_servers(
        cluster.network, "laptop.cs.nowhere.edu", "catalog.nowhere.edu"
    ):
        print(f"   {record.name}  (operated by {record.owner})")

    client = ChirpClient.connect(
        cluster.network, "laptop.cs.nowhere.edu", "server1.nowhere.edu"
    )
    principal = client.authenticate(
        [GlobusAuthenticator(fred_wallet), HostnameAuthenticator()]
    )
    print(f"2. authenticated as {principal}")

    client.mkdir("/work")  # the reserve right mints a private namespace
    print(f"3. mkdir /work — fresh ACL: {client.getacl('/work').strip()}")

    client.put(b"#!repro:sim\n", "/work/sim.exe", mode=0o755)
    print("4. staged sim.exe")

    status = client.exec("/work/sim.exe", cwd="/work")
    print(f"5. remote exec finished with status {status}")

    output = client.get("/work/out.dat")
    print(f"6. retrieved out.dat ({len(output)} bytes): {output[:26]!r}")

    # clean up, as Figure 3's Fred does
    client.unlink("/work/out.dat")
    client.unlink("/work/sim.exe")
    client.rmdir("/work")
    print(f"7. cleaned up; server stats: {server.stats}")
    print(f"   total simulated time: {cluster.clock.now_ns / 1e6:.2f} ms")


if __name__ == "__main__":
    main()
