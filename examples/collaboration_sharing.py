#!/usr/bin/env python3
"""Controlled sharing between grid users who share no local accounts.

§4's motivating point: with identity boxing "users may discover storage,
stage data, run programs, and retrieve output without special privileges
or interaction with an administrator", and — because the visitor holds the
``A`` right in a reserve-created directory — "Fred can further adjust the
ACL to give access to other users."

Fred (UnivNowhere) builds a dataset directory and grants read access to
Heidi (NotreDame) *by her grid identity*; Mallory gets nothing.  The site
owner never shows up.

Run:  python examples/collaboration_sharing.py
"""

from repro import Cluster
from repro.chirp import ChirpClient, ChirpServer, GlobusAuthenticator, ServerAuth
from repro.core import Acl, Rights
from repro.gsi import CertificateAuthority, CredentialStore, provision_user

FRED = "/O=UnivNowhere/CN=Fred"
HEIDI = "/O=NotreDame/CN=Heidi"
MALLORY = "/O=EvilCorp/CN=Mallory"


def main() -> None:
    cluster = Cluster()
    server_machine = cluster.add_machine("storage.nowhere.edu")
    cluster.add_machine("fred.nowhere.edu")
    cluster.add_machine("heidi.nd.edu")
    cluster.add_machine("mallory.evil.example")

    # two independent certificate authorities; the server trusts both
    nowhere_ca = CertificateAuthority("UnivNowhere CA")
    nd_ca = CertificateAuthority("NotreDame CA")
    evil_ca = CertificateAuthority("EvilCorp CA")
    trust = CredentialStore()
    trust.trust(nowhere_ca)
    trust.trust(nd_ca)
    trust.trust(evil_ca)  # Mallory authenticates fine; ACLs stop her

    fred = provision_user(nowhere_ca, trust, FRED)
    heidi = provision_user(nd_ca, trust, HEIDI)
    mallory = provision_user(evil_ca, trust, MALLORY)

    owner = server_machine.add_user("storagekeeper")
    server = ChirpServer(
        server_machine,
        owner,
        network=cluster.network,
        auth=ServerAuth(credential_store=trust),
    )
    root_acl = Acl()
    root_acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rl v(rwlax)".replace(" ", "")))
    root_acl.set_entry("globus:/O=NotreDame/*", Rights.parse("rl"))
    server.set_root_acl(root_acl)
    server.serve()

    def connect(host: str, wallet):
        client = ChirpClient.connect(cluster.network, host, "storage.nowhere.edu")
        print(f"  {client.authenticate([GlobusAuthenticator(wallet)])} connected")
        return client

    print("1. everyone authenticates (no local accounts exist for any of them):")
    c_fred = connect("fred.nowhere.edu", fred)
    c_heidi = connect("heidi.nd.edu", heidi)
    c_mallory = connect("mallory.evil.example", mallory)

    print("2. Fred reserves a dataset directory and uploads results:")
    c_fred.mkdir("/dataset")
    c_fred.put(b"T=0: 1.0 2.0 3.0\nT=1: 1.1 2.1 3.1\n", "/dataset/run1.csv")
    print(f"   /dataset ACL: {c_fred.getacl('/dataset').strip()}")

    print("3. Heidi cannot read it yet:")
    print(f"   heidi access(/dataset, 'rl') -> {c_heidi.access('/dataset', 'rl')}")

    print("4. Fred grants Heidi read+list by her grid identity (the A right):")
    c_fred.setacl("/dataset", f"globus:{HEIDI}", "rl")
    data = c_heidi.get("/dataset/run1.csv")
    print(f"   heidi reads run1.csv: {data.splitlines()[0].decode()}")

    print("5. Mallory still gets nothing:")
    print(f"   mallory access(/dataset, 'l') -> {c_mallory.access('/dataset', 'l')}")
    try:
        c_mallory.get("/dataset/run1.csv")
        raise AssertionError("Mallory read the dataset!")
    except Exception as exc:  # noqa: BLE001 - demonstration
        print(f"   mallory get run1.csv -> {exc}")

    print("6. wildcard sharing: Fred opens the dataset to all of NotreDame:")
    c_fred.setacl("/dataset", "globus:/O=NotreDame/*", "rl")
    print(f"   final ACL:\n{c_fred.getacl('/dataset')}", end="")


if __name__ == "__main__":
    main()
