#!/usr/bin/env python3
"""Figure 6: the hierarchical identity namespace the paper proposes (§9).

"An ordinary user might be known as root:dthain, and a new protection
domain for a visitor might be root:dthain:visitor.  In such a system, a
web server could create identities for service processes, and a grid
server could create identities corresponding to grid identities."

This demo builds exactly the tree in Figure 6 and shows the management
rules: anyone may mint children beneath themselves (no superuser), an
ancestor manages (and may signal) its subtree, and siblings are isolated.

Run:  python examples/hierarchical_identity.py
"""

from repro import HierarchicalIdentity, IdentityTree
from repro.core.hierarchy import HierarchyError


def show(tree: IdentityTree, node: HierarchicalIdentity, depth: int = 0) -> None:
    print("  " * depth + str(node).rsplit(":", 1)[-1])
    for child in tree.children_of(node):
        show(tree, child, depth + 1)


def main() -> None:
    tree = IdentityTree()
    root = tree.root

    # the system's ordinary users, created by root
    dthain = tree.create(root, root, "dthain")
    httpd = tree.create(root, root, "httpd")
    grid = tree.create(root, root, "grid")

    # each of them mints protection domains *without* root (the point!)
    tree.create(dthain, dthain, "visitor")
    tree.create(httpd, httpd, "webapp")
    tree.create(grid, grid, "anon2")
    tree.create(grid, grid, "anon5")
    freddy = tree.create(grid, grid, "/O=UnivNowhere/CN=Freddy")
    tree.create(grid, grid, "/O=UnivNowhere/CN=George")

    print("The identity tree of Figure 6:\n")
    show(tree, root)

    print("\nManagement follows ancestry:")
    visitor = tree.get("root:dthain:visitor")
    print(f"  dthain may signal visitor?  {tree.may_signal(dthain, visitor)}")
    print(f"  visitor may signal dthain?  {tree.may_signal(visitor, dthain)}")
    print(f"  httpd may signal visitor?   {tree.may_signal(httpd, visitor)}")
    print(f"  root may signal anything?   {tree.may_signal(root, freddy)}")

    print("\nSiblings cannot create under each other:")
    try:
        tree.create(httpd, dthain, "trojan")
    except HierarchyError as exc:
        print(f"  httpd creating under dthain -> {exc}")

    print("\nAn ancestor tears down a whole subtree at once:")
    before = len(tree)
    tree.destroy(root, grid)
    print(f"  destroy(root, root:grid): {before} identities -> {len(tree)}")


if __name__ == "__main__":
    main()
