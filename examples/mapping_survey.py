#!/usr/bin/env python3
"""Regenerate Figure 1: the identity-mapping comparison, measured live.

Each of the seven admission methods is exercised on its own fresh
simulated site: a hostile visitor attacks the owner's private file, users
probe each other's data, Fred tries to share with Heidi by grid identity,
logs out and returns, and a cohort of new users is admitted while manual
root interventions are counted.  The matrix below is *behaviour*, not
assertion.

Run:  python examples/mapping_survey.py
"""

from repro.core.mapping import evaluate_all, render_table


def main() -> None:
    print("Evaluating all seven identity-mapping methods "
          "(each on a fresh simulated site)...\n")
    reports = evaluate_all()
    print(render_table(reports))
    print()
    for report in reports:
        print(
            f"  {report.name:<12} setup admin actions: {report.setup_admin_actions}, "
            f"admitting 4 new users across 2 VOs took "
            f"{report.admissions_admin_actions} manual root interventions"
        )
    box = next(r for r in reports if r.name == "IdentityBox")
    assert box.required_privilege == "-" and box.admin_burden == "-"
    print(
        "\nOnly the identity box provides owner protection, privacy, sharing "
        "and return, with no root requirement and no administrator involvement."
    )


if __name__ == "__main__":
    main()
