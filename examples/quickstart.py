#!/usr/bin/env python3
"""Quickstart: the Figure-2 interactive session, re-enacted.

The supervising user ``dthain`` has a private file ``secret``.  He creates
an identity box for the visiting user ``Freddy`` — a name that appears in
no account database anywhere — and runs Freddy's shell inside it:

* ``whoami`` answers ``Freddy`` (private /etc/passwd copy),
* reading ``secret`` is denied (no ACL; Unix fallback as ``nobody``),
* creating ``mydata`` in Freddy's fresh home succeeds (home ACL grants
  ``rwlax``).

Run:  python examples/quickstart.py
"""

from repro import AuditLog, IdentityBox, Machine, OpenFlags
from repro.core import lookup_name_by_uid


def freddy_shell(proc, args):
    """What Freddy's interactive session does, as a simulated program."""
    # % whoami
    uid = yield proc.sys.getuid()
    fd = yield proc.sys.open("/etc/passwd", OpenFlags.O_RDONLY)
    buf = proc.alloc(65536)
    n = yield proc.sys.read(fd, buf, 65536)
    yield proc.sys.close(fd)
    whoami = lookup_name_by_uid(proc.read_buffer(buf, n).decode(), uid)
    print(f"% whoami\n{whoami}")

    # the new get_user_name syscall reports the full identity directly
    identity = yield proc.sys.get_user_name()
    print(f"% parrot_whoami\n{identity}")

    # % cat /home/dthain/secret   -> Permission denied
    result = yield proc.sys.open("/home/dthain/secret", OpenFlags.O_RDONLY)
    assert isinstance(result, int) and result < 0
    print("% cat /home/dthain/secret\ncat: secret: Permission denied")

    # % vi mydata  (create a file in the fresh home directory)
    fd = yield proc.sys.open("mydata", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
    addr = proc.alloc_bytes(b"Freddy's notes\n")
    yield proc.sys.write(fd, addr, 15)
    yield proc.sys.close(fd)
    print("% vi mydata\n(saved 15 bytes)")

    # % ls
    names = yield proc.sys.readdir(".")
    print(f"% ls\n{'  '.join(names)}")
    return 0


def main() -> None:
    machine = Machine()
    dthain = machine.add_user("dthain")

    # dthain's private file, outside any ACL domain
    owner = machine.host_task(dthain, cwd="/home/dthain")
    machine.write_file(owner, "/home/dthain/secret", b"top secret", mode=0o600)

    print("== dthain runs: parrot_identity_box Freddy tcsh ==")
    audit = AuditLog()
    box = IdentityBox(machine, dthain, "Freddy", audit=audit)
    proc = box.run(freddy_shell, [])
    assert proc.exit_status == 0

    print("\n== the ACL protecting Freddy's home ==")
    acl = box.policy.acl_of(box.home)
    print(f"{box.home}/.__acl:\n{acl.render()}", end="")

    print("\n== what the supervisor audited ==")
    print(audit.render())


if __name__ == "__main__":
    main()
