#!/usr/bin/env python3
"""A shell-style pipeline inside an identity box.

§6 of the paper claims Parrot supports "inter-process communication ...
in the same way as in a real kernel", with blocking calls placing the
caller into a wait state.  This demo runs the classic ``generate | filter``
pipeline entirely inside one identity box: the parent creates a pipe,
spawns a boxed child that streams data into it (blocking whenever the pipe
fills), and consumes the stream on the other end — all through trapped
syscalls, all carrying the same visiting identity.

Run:  python examples/boxed_pipeline.py
"""

from repro import IdentityBox, Machine, OpenFlags
from repro.interpose import SyscallTrace


def generator_program(proc, args):
    """The upstream stage: writes 64 records into the inherited pipe fd."""
    wfd = int(args[0])
    record = b"event: neutrino shower detected at module %02d\n"
    addr = proc.alloc(64)
    for i in range(64):
        line = record % (i % 30)
        proc.memory.write(addr, line)
        yield proc.sys.write(wfd, addr, len(line))
        yield proc.compute(us=200)  # detector readout time
    yield proc.sys.close(wfd)
    return 0


def pipeline(proc, args):
    """The downstream stage: counts and archives the interesting records."""
    rfd, wfd = yield proc.sys.pipe()
    pid = yield proc.sys.spawn("generator.exe", (str(wfd),))
    print(f"   spawned boxed generator as pid {pid}")
    yield proc.sys.close(wfd)  # keep only the read end

    out = yield proc.sys.open("filtered.log", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
    buf = proc.alloc(8192)
    total = kept = 0
    carry = b""
    while True:
        n = yield proc.sys.read(rfd, buf, 8192)  # blocks until data or EOF
        if n == 0:
            break
        carry += proc.read_buffer(buf, n)
        *lines, carry = carry.split(b"\n")
        for line in lines:
            total += 1
            if b"module 0" in line:  # "interesting" detector modules
                kept += 1
                addr = proc.alloc_bytes(line + b"\n")
                yield proc.sys.write(out, addr, len(line) + 1)
    yield proc.sys.close(rfd)
    yield proc.sys.close(out)
    yield proc.sys.waitpid()
    print(f"   consumed {total} records, archived {kept}")
    return 0


def main() -> None:
    machine = Machine()
    alice = machine.add_user("alice")
    box = IdentityBox(machine, alice, "PipelineUser")
    box.supervisor.strace = SyscallTrace()
    machine.register_program("generator", generator_program)
    machine.install_program(box.owner_task, f"{box.home}/generator.exe", "generator")

    print("running: generate | filter   (inside one identity box)")
    proc = box.spawn(pipeline)
    machine.run_to_completion()
    assert proc.exit_status == 0

    log = machine.read_file(box.owner_task, f"{box.home}/filtered.log")
    print(f"\nfiltered.log holds {len(log.splitlines())} lines; first:")
    print("  " + log.splitlines()[0].decode())

    hist = box.supervisor.strace.histogram()
    print("\nsyscall histogram for the whole pipeline:")
    for name, count in hist.items():
        print(f"  {name:<8} {count}")
    print(f"\nsimulated time: {machine.clock.now_ns / 1e6:.2f} ms "
          f"(both stages carried identity 'PipelineUser')")


if __name__ == "__main__":
    main()
