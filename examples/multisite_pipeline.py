#!/usr/bin/env python3
"""Consistent global identity across sites — the paper's headline, live.

Fred holds one credential.  Two storage sites, run by different ordinary
users who have never heard of each other, both know him as
``globus:/O=UnivNowhere/CN=Fred`` — no gridmap, no account creation, no
administrator.  A boxed job on Fred's laptop then pipes a dataset from
site A to site B through the ``/chirp`` namespace, with every byte moving
through trapped syscalls and every access judged by the same identity
string at both ends.

Run:  python examples/multisite_pipeline.py
"""

from repro import Cluster, IdentityBox, OpenFlags
from repro.chirp import (
    ChirpClient,
    ChirpDriver,
    ChirpServer,
    FederatedClient,
    GlobusAuthenticator,
    ServerAuth,
    deploy_federation,
)
from repro.core import Acl, Rights
from repro.gsi import CertificateAuthority, CredentialStore, provision_user

SITE_A = "storage.nowhere.edu"
SITE_B = "archive.nd.edu"
LAPTOP = "laptop.nowhere.edu"
FRED_DN = "/O=UnivNowhere/CN=Fred"


def deploy_site(cluster, trust, host, operator_name):
    machine = cluster.machine(host)
    operator = machine.add_user(operator_name)
    server = ChirpServer(
        machine, operator, network=cluster.network,
        auth=ServerAuth(credential_store=trust),
    )
    acl = Acl()
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlv(rwlax)"))
    server.set_root_acl(acl)
    server.serve()
    print(f"  {host}: exported by '{operator_name}' (uid "
          f"{operator.uid}, not root), ACL grants UnivNowhere v(rwlax)")
    return server


def main() -> None:
    cluster = Cluster()
    for host in (SITE_A, SITE_B, LAPTOP):
        cluster.add_machine(host)

    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    fred = provision_user(ca, trust, FRED_DN)

    print("1. two independent sites come online:")
    server_a = deploy_site(cluster, trust, SITE_A, "keeper_a")
    server_b = deploy_site(cluster, trust, SITE_B, "keeper_b")

    print("2. Fred seeds a dataset at site A (same principal everywhere):")
    client_a = ChirpClient.connect(cluster.network, LAPTOP, SITE_A)
    print("  ", client_a.authenticate([GlobusAuthenticator(fred)]))
    client_a.mkdir("/dataset")
    payload = b"reading %04d\n" % 7 * 4000
    client_a.put(payload, "/dataset/run.dat")
    client_b = ChirpClient.connect(cluster.network, LAPTOP, SITE_B)
    print("  ", client_b.authenticate([GlobusAuthenticator(fred)]))
    client_b.mkdir("/archive")

    print("3. a boxed job on the laptop pipes site A -> site B:")
    laptop = cluster.machine(LAPTOP)
    fred_local = laptop.add_user("fred")
    box = IdentityBox(laptop, fred_local, f"globus:{FRED_DN}")
    box.supervisor.mount(
        "/chirp", ChirpDriver(cluster.network, LAPTOP, [GlobusAuthenticator(fred)])
    )

    def pipeline(proc, args):
        src = yield proc.sys.open(f"/chirp/{SITE_A}/dataset/run.dat", OpenFlags.O_RDONLY)
        dst = yield proc.sys.open(
            f"/chirp/{SITE_B}/archive/run.dat", OpenFlags.O_WRONLY | OpenFlags.O_CREAT
        )
        buf = proc.alloc(8192)
        total = 0
        while True:
            n = yield proc.sys.read(src, buf, 8192)
            if n <= 0:
                break
            yield proc.sys.write(dst, buf, n)
            total += n
        yield proc.sys.close(src)
        yield proc.sys.close(dst)
        who = yield proc.sys.get_user_name()
        print(f"   [pipeline ran as {who}; moved {total} bytes]")
        return 0

    proc = box.spawn(pipeline)
    laptop.run_to_completion()
    assert proc.exit_status == 0
    archived = client_b.get("/archive/run.dat")
    assert archived == payload
    print(f"4. site B holds the archived dataset ({len(archived)} bytes)")

    accounts_a = [a.name for a in server_a.machine.users.accounts()]
    accounts_b = [a.name for a in server_b.machine.users.accounts()]
    print(f"5. account databases never grew: site A {accounts_a}, site B {accounts_b}")
    print(f"   simulated time: {cluster.clock.now_ns / 1e6:.2f} ms; "
          f"traffic through the box: {box.supervisor.channel.bytes_staged} bytes staged")

    print("6. the archive outgrows one server: a 4-shard federation comes online:")
    fed_acl = Acl()
    fed_acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlav(rwlax)"))
    federation = deploy_federation(
        cluster, "grid", 4,
        make_auth=lambda: ServerAuth(credential_store=trust),
        root_acl=fed_acl,
    )
    fed = FederatedClient.connect(
        cluster.network, LAPTOP, "grid", federation.catalog_host,
        [GlobusAuthenticator(fred)],
    )
    for line in fed.shard_map.describe().splitlines():
        print(f"   {line}")
    print(f"   one credential, one principal on every shard: "
          f"{fed.assert_identity_consistent()}")

    print("7. Fred scatters the dataset across the sharded namespace:")
    chunk = len(archived) // 8
    for i in range(8):
        fed.mkdir(f"/part{i}")
        fed.put(archived[i * chunk:(i + 1) * chunk], f"/part{i}/run.dat")
    fed.rename("/part0/run.dat", "/part1/run.dat.merged")  # may cross shards
    print(f"   root listing (union of all shards): {fed.readdir('/')}")
    per_shard = federation.per_shard_op_counts()
    print("   per-shard ops served (from telemetry):")
    for shard_name, count in per_shard.items():
        print(f"     {shard_name}: {count}")
    assert sum(1 for c in per_shard.values() if c > 0) > 1, "sharding idle?"


if __name__ == "__main__":
    main()
