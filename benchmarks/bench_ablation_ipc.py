"""Ablation E: IPC cost inside an identity box (the §6 claim, priced).

§6 asserts inter-process communication works "in the same way as in a real
kernel" under interposition.  This ablation prices it: a producer streams
1 MB to a consumer through (a) a pipe and (b) a file handoff, unmodified
vs. boxed.

Expected shape: pipes pay the usual interposition multiple on their
syscalls — but *less* than file handoff does, because pipe data moves
natively (the supervisor only mediates the calls' control path) while file
data is double-copied through the I/O channel.

Run:  pytest benchmarks/bench_ablation_ipc.py --benchmark-only -s
"""

import pytest

from repro.bench import Table, banner, save_and_print
from repro.core.acl import Acl
from repro.core.box import IdentityBox
from repro.kernel import Machine, OpenFlags
from repro.kernel.timing import NS_PER_MS

TOTAL = 1 << 20  # 1 MiB
CHUNK = 8192
CHUNKS = TOTAL // CHUNK

WORKDIR = "/home/grid/xfer"


def _make_machine():
    machine = Machine()
    cred = machine.add_user("grid")
    task = machine.host_task(cred)
    machine.kcall_x(task, "mkdir", WORKDIR, 0o755)
    return machine, cred, task


def producer_pipe(proc, args):
    wfd = int(args[0])
    addr = proc.alloc(CHUNK)
    for _ in range(CHUNKS):
        yield proc.sys.write(wfd, addr, CHUNK)
    yield proc.sys.close(wfd)
    return 0


def consumer_pipe_factory(proc, args):
    rfd, wfd = yield proc.sys.pipe()
    pid = yield proc.sys.spawn("prod.exe", (str(wfd),))
    assert pid > 0
    yield proc.sys.close(wfd)
    buf = proc.alloc(CHUNK)
    total = 0
    while True:
        n = yield proc.sys.read(rfd, buf, CHUNK)
        if n == 0:
            break
        total += n
    yield proc.sys.close(rfd)
    yield proc.sys.waitpid()
    assert total == TOTAL
    return 0


def producer_file(proc, args):
    fd = yield proc.sys.open("handoff.dat", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
    addr = proc.alloc(CHUNK)
    for _ in range(CHUNKS):
        yield proc.sys.write(fd, addr, CHUNK)
    yield proc.sys.close(fd)
    return 0


def consumer_file_factory(proc, args):
    pid = yield proc.sys.spawn("prod.exe", ())
    assert pid > 0
    yield proc.sys.waitpid()
    fd = yield proc.sys.open("handoff.dat", OpenFlags.O_RDONLY)
    buf = proc.alloc(CHUNK)
    total = 0
    while True:
        n = yield proc.sys.read(fd, buf, CHUNK)
        if n == 0:
            break
        total += n
    yield proc.sys.close(fd)
    assert total == TOTAL
    return 0


MODES = {
    "pipe": (consumer_pipe_factory, producer_pipe),
    "file": (consumer_file_factory, producer_file),
}


def transfer_ms(mode: str, boxed: bool) -> float:
    consumer, producer = MODES[mode]
    machine, cred, task = _make_machine()
    machine.register_program("producer", producer)
    machine.install_program(task, f"{WORKDIR}/prod.exe", "producer")
    start = machine.clock.now_ns
    if boxed:
        box = IdentityBox(machine, cred, "Xfer", make_home=False)
        box.policy.write_acl(WORKDIR, Acl.for_owner("Xfer"))
        start = machine.clock.now_ns
        box.spawn(consumer, cwd=WORKDIR, comm=f"{mode}-consumer")
    else:
        machine.spawn(consumer, cred=cred, cwd=WORKDIR, comm=f"{mode}-consumer")
    machine.run_to_completion()
    return (machine.clock.now_ns - start) / NS_PER_MS


@pytest.fixture(scope="module")
def ipc_results():
    return {
        (mode, boxed): transfer_ms(mode, boxed)
        for mode in MODES
        for boxed in (False, True)
    }


@pytest.mark.parametrize("mode", list(MODES), ids=list(MODES))
def test_ablation_ipc_mode(benchmark, ipc_results, mode):
    benchmark.extra_info["unmodified_ms"] = round(ipc_results[(mode, False)], 2)
    benchmark.extra_info["boxed_ms"] = round(ipc_results[(mode, True)], 2)
    benchmark.pedantic(transfer_ms, args=(mode, True), rounds=2, iterations=1)


def test_ablation_ipc_report(benchmark, ipc_results):
    def build() -> str:
        table = Table(
            headers=("1 MiB handoff", "unmodified ms", "boxed ms", "overhead")
        )
        for mode in MODES:
            base = ipc_results[(mode, False)]
            boxed = ipc_results[(mode, True)]
            table.add(mode, base, boxed, f"{boxed / base:.2f}x")
        text = (
            banner("Ablation E: IPC inside the box (1 MiB producer->consumer)")
            + "\n"
            + table.render()
        )
        save_and_print("ablation_ipc", text)
        return text

    benchmark.pedantic(build, rounds=1, iterations=1)
    # shape: boxing costs something everywhere...
    for mode in MODES:
        assert ipc_results[(mode, True)] > ipc_results[(mode, False)]
    # ...but the pipe's native data path keeps its multiple below the
    # file handoff's double-copied one
    pipe_multiple = ipc_results[("pipe", True)] / ipc_results[("pipe", False)]
    file_multiple = ipc_results[("file", True)] / ipc_results[("file", False)]
    assert pipe_multiple < file_multiple
