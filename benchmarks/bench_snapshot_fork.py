"""World snapshots: O(size-of-diff) fork-from-checkpoint vs cold boot.

Two host-side (real wall-clock) measurements of the copy-on-write
snapshot layer:

* ``fork_vs_boot`` — cold-booting the standard workload world (machine,
  user, work directory, input/output/bench/meta files) versus
  ``Machine(snapshot=...)``-forking a warm template of the same world.
  The ROADMAP acceptance bar is a ≥20x fork speedup.
* ``suite_batch`` — a simulated test session: N cases, each needing a
  prepared world plus a short case body (stat + read + write), run with
  per-case cold preparation versus one warm template forked per case
  (the ``REPRO_SNAPSHOT_FIXTURES=1`` fixture path, template construction
  included).  This is the honest shape of the saving: world *preparation*
  is what forking removes, so the win scales with how much of a case is
  setup rather than workload — large for unit-test-sized cases, small
  for long application runs.

Both gate on the dimensionless ``speedup_x`` ratios, which are stable
across host machines where absolute milliseconds are not.

Run:  pytest benchmarks/bench_snapshot_fork.py --benchmark-only -s
Smoke (CI):  REPRO_BENCH_SMOKE=1 pytest benchmarks/bench_snapshot_fork.py -q
"""

import time

import pytest

from repro.bench import Table, banner, bench_scale, save_and_print, write_bench_json
from repro.kernel.machine import Machine
from repro.kernel.vfs import join
from repro.workloads import runner
from repro.workloads.base import BLOCK, INPUT_FILE, OUTPUT_FILE
from repro.workloads.runner import WORKDIR

BOOT_REPS = bench_scale(full=150, smoke=30)
#: Cases in the simulated test session.
CASES = bench_scale(full=300, smoke=60)

#: The acceptance bar for fork-from-checkpoint (see ROADMAP / ISSUE).
MIN_FORK_SPEEDUP = 20.0


def measure_fork_vs_boot() -> dict:
    """Per-boot latency: cold workload-world preparation vs snapshot fork."""
    machine = None
    t0 = time.perf_counter()
    for _ in range(BOOT_REPS):
        machine, _cred = runner._prepare_cold(None, None)
    cold_s = (time.perf_counter() - t0) / BOOT_REPS
    snap = machine.snapshot()
    t0 = time.perf_counter()
    for _ in range(BOOT_REPS):
        Machine(snapshot=snap)
    fork_s = (time.perf_counter() - t0) / BOOT_REPS
    return {
        "cold_boot_ms": cold_s * 1e3,
        "fork_ms": fork_s * 1e3,
        "speedup_x": cold_s / fork_s,
    }


def _case_body(machine: Machine, cred) -> None:
    """A representative unit-test-sized case against a prepared world."""
    task = machine.host_task(cred, cwd=WORKDIR)
    machine.kcall_x(task, "stat", INPUT_FILE)
    data = machine.read_file(task, join(WORKDIR, INPUT_FILE))
    machine.write_file(task, join(WORKDIR, OUTPUT_FILE), data[:BLOCK])


def measure_suite_batch() -> dict:
    """Wall-clock of an N-case session, per-case cold prep vs per-case fork."""
    t0 = time.perf_counter()
    for _ in range(CASES):
        machine, cred = runner._prepare(None, None, use_snapshots=False)
        _case_body(machine, cred)
    cold_s = time.perf_counter() - t0

    runner._TEMPLATES.clear()
    t0 = time.perf_counter()
    for _ in range(CASES):  # the first iteration pays template construction
        machine, cred = runner._prepare(None, None, use_snapshots=True)
        _case_body(machine, cred)
    forked_s = time.perf_counter() - t0
    runner._TEMPLATES.clear()
    return {
        "cold_s": cold_s,
        "forked_s": forked_s,
        "speedup_x": cold_s / forked_s,
        "cases": CASES,
    }


@pytest.fixture(scope="module")
def snapshot_results():
    return {
        "fork_vs_boot": measure_fork_vs_boot(),
        "suite_batch": measure_suite_batch(),
    }


def test_fork_speedup(benchmark, snapshot_results):
    row = snapshot_results["fork_vs_boot"]
    benchmark.extra_info["cold_boot_ms"] = round(row["cold_boot_ms"], 4)
    benchmark.extra_info["fork_ms"] = round(row["fork_ms"], 4)
    benchmark.extra_info["speedup_x"] = round(row["speedup_x"], 1)
    benchmark.pedantic(measure_fork_vs_boot, rounds=1, iterations=1)
    assert row["speedup_x"] >= MIN_FORK_SPEEDUP, (
        f"fork only {row['speedup_x']:.1f}x faster than cold boot "
        f"(bar: {MIN_FORK_SPEEDUP:.0f}x)"
    )


def test_suite_batch_faster(benchmark, snapshot_results):
    row = snapshot_results["suite_batch"]
    benchmark.extra_info["cold_s"] = round(row["cold_s"], 3)
    benchmark.extra_info["forked_s"] = round(row["forked_s"], 3)
    benchmark.extra_info["speedup_x"] = round(row["speedup_x"], 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # template forking must clearly win even paying for the template build
    assert row["speedup_x"] > 1.5, (
        f"snapshot session only {row['speedup_x']:.2f}x: "
        f"{row['forked_s']:.2f}s forked vs {row['cold_s']:.2f}s cold"
    )


def test_snapshot_report(benchmark, snapshot_results):
    """Print/persist the table and the gated JSON ``snapshot`` section."""

    def build() -> str:
        fork = snapshot_results["fork_vs_boot"]
        suite = snapshot_results["suite_batch"]
        table = Table(headers=("measurement", "cold", "forked", "speedup"))
        table.add(
            "world boot (ms)",
            f"{fork['cold_boot_ms']:.3f}",
            f"{fork['fork_ms']:.4f}",
            f"{fork['speedup_x']:.1f}x",
        )
        table.add(
            f"{suite['cases']}-case session (s)",
            f"{suite['cold_s']:.2f}",
            f"{suite['forked_s']:.2f}",
            f"{suite['speedup_x']:.2f}x",
        )
        write_bench_json(
            "fig5",
            "snapshot",
            {
                "fork_vs_boot": {
                    "cold_boot_ms": round(fork["cold_boot_ms"], 4),
                    "fork_ms": round(fork["fork_ms"], 4),
                    "speedup_x": round(fork["speedup_x"], 2),
                },
                "suite_batch": {
                    "cold_s": round(suite["cold_s"], 4),
                    "forked_s": round(suite["forked_s"], 4),
                    "speedup_x": round(suite["speedup_x"], 3),
                },
            },
        )
        text = (
            banner("World snapshots: fork-from-checkpoint vs cold boot")
            + "\n"
            + table.render()
        )
        save_and_print("snapshot_fork", text)
        return text

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "speedup" in text
