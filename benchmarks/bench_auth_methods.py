"""Ablation D: authentication-method cost at connection setup (§4).

Chirp negotiates among globus (GSI proxy verification), kerberos (ticket
exchange), hostname (reverse lookup), and unix (same-host names).  This
bench measures the simulated cost of connect + authenticate + one whoami
per method, plus the fallback path where a failing offer precedes the
accepted one.

Expected shape: all methods are dominated by network round trips (three
frames), so they land within a small factor of each other; each extra
failing offer adds roughly one round trip.

Run:  pytest benchmarks/bench_auth_methods.py --benchmark-only -s
"""

import pytest

from repro.bench import Table, banner, save_and_print
from repro.chirp import (
    ChirpClient,
    ChirpServer,
    GlobusAuthenticator,
    HostnameAuthenticator,
    KerberosAuthenticator,
    ServerAuth,
    UnixAuthenticator,
)
from repro.gsi import (
    CertificateAuthority,
    CredentialStore,
    KeyDistributionCenter,
    UserCredentials,
    provision_user,
)
from repro.net import Cluster

SERVER = "server1.nowhere.edu"
CLIENT = "laptop.cs.nowhere.edu"
SERVICE = "chirp/server1.nowhere.edu"


def build_world():
    cluster = Cluster()
    cluster.add_machine(SERVER)
    cluster.add_machine(CLIENT)
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    wallet = provision_user(ca, trust, "/O=UnivNowhere/CN=Fred")
    kdc = KeyDistributionCenter("NOWHERE.EDU")
    kdc.add_principal("fred@nowhere.edu")
    machine = cluster.machine(SERVER)
    owner = machine.add_user("dthain")
    server = ChirpServer(
        machine,
        owner,
        network=cluster.network,
        auth=ServerAuth(
            credential_store=trust,
            kdcs={"NOWHERE.EDU": kdc},
            service_principal=SERVICE,
        ),
    )
    server.serve()
    return cluster, wallet, kdc


def offers_for(name: str, wallet, kdc):
    bogus_ca = CertificateAuthority("Bogus CA")
    bogus = UserCredentials(certificate=bogus_ca.issue("/O=Bogus/CN=X"))
    table = {
        "globus": [GlobusAuthenticator(wallet)],
        "kerberos": [KerberosAuthenticator(kdc, "fred@nowhere.edu", SERVICE)],
        "hostname": [HostnameAuthenticator()],
        "fallback(globus->hostname)": [
            GlobusAuthenticator(bogus),
            HostnameAuthenticator(),
        ],
    }
    return table[name]


METHODS = ("globus", "kerberos", "hostname", "fallback(globus->hostname)")


def auth_cost_us(name: str) -> float:
    cluster, wallet, kdc = build_world()
    start = cluster.clock.now_ns
    client = ChirpClient.connect(cluster.network, CLIENT, SERVER)
    client.authenticate(offers_for(name, wallet, kdc))
    client.whoami()
    return (cluster.clock.now_ns - start) / 1_000


@pytest.fixture(scope="module")
def auth_results():
    return {name: auth_cost_us(name) for name in METHODS}


@pytest.mark.parametrize("name", METHODS, ids=METHODS)
def test_auth_method_cost(benchmark, auth_results, name):
    benchmark.extra_info["simulated_us"] = round(auth_results[name], 1)
    benchmark.pedantic(auth_cost_us, args=(name,), rounds=2, iterations=1)
    assert auth_results[name] > 0


def test_auth_methods_report(benchmark, auth_results):
    def build() -> str:
        table = Table(headers=("method", "connect+auth+whoami us"))
        for name in METHODS:
            table.add(name, auth_results[name])
        text = (
            banner("Ablation D: authentication method cost (simulated)")
            + "\n"
            + table.render()
        )
        save_and_print("ablation_auth_methods", text)
        return text

    benchmark.pedantic(build, rounds=1, iterations=1)
    # shape: round-trip bound — no method is wildly more expensive...
    costs = [auth_results[m] for m in METHODS[:3]]
    assert max(costs) < 2 * min(costs)
    # ...and a failed offer costs roughly one extra exchange
    assert auth_results["fallback(globus->hostname)"] > auth_results["hostname"]
