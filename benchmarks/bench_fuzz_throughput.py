"""Fuzzing throughput: warm-fork execs/sec vs cold-boot execs/sec.

The scenario fuzzer's economics rest on one fact: preparing the world a
scenario runs against costs O(size-of-world) cold but O(size-of-diff)
from a warm :meth:`~repro.kernel.machine.Machine.snapshot`.  This bench
measures that directly on the fuzzer's own syscall executor against a
populated multi-user host (96 accounts with home files plus the
pre-warmed visitor box homes — the kind of machine identity boxing is
*for*), running the same seed scenario both ways:

* ``warm`` — ``executor.execute(scenario)``: fork the template, run,
  audit containment over the CoW diff;
* ``cold`` — ``executor.execute(scenario, warm=False)``: build the whole
  template world from scratch for this one input, then run and audit.

The second measurement reports guided-campaign throughput end to end
(mutation, execution, coverage extraction, retention, survivor replay)
so the headline execs/sec number exists in one place.

Gates on the dimensionless ``speedup_x`` (the ROADMAP/ISSUE bar is
≥20x), which is stable across hosts where absolute numbers are not.

Run:  pytest benchmarks/bench_fuzz_throughput.py --benchmark-only -s
Smoke (CI):  REPRO_BENCH_SMOKE=1 pytest benchmarks/bench_fuzz_throughput.py -q
"""

import time

import pytest

from repro.bench import Table, banner, bench_scale, save_and_print, write_bench_json
from repro.fuzz import FuzzConfig, FuzzEngine, SyscallExecutor, seed_scenario

#: Accounts on the bench world: a populated departmental host.
BENCH_WORLD_USERS = 96

WARM_EXECS = bench_scale(full=300, smoke=50)
COLD_EXECS = bench_scale(full=12, smoke=4)
CAMPAIGN_BUDGET = bench_scale(full=200, smoke=40)

#: The acceptance bar: warm-fork execution must beat cold-boot by this.
MIN_FUZZ_SPEEDUP = 20.0


def measure_fork_vs_cold() -> dict:
    """Per-exec latency of one scenario, warm-forked vs cold-built."""
    executor = SyscallExecutor(world_users=BENCH_WORLD_USERS)
    executor.template_snapshot()  # template built outside the timed region
    scenario = seed_scenario("syscall")

    t0 = time.perf_counter()
    for _ in range(WARM_EXECS):
        executor.execute(scenario, warm=True)
    warm_s = (time.perf_counter() - t0) / WARM_EXECS

    t0 = time.perf_counter()
    for _ in range(COLD_EXECS):
        executor.execute(scenario, warm=False)
    cold_s = (time.perf_counter() - t0) / COLD_EXECS

    return {
        "warm_ms": warm_s * 1e3,
        "cold_ms": cold_s * 1e3,
        "warm_execs_per_s": 1.0 / warm_s,
        "cold_execs_per_s": 1.0 / cold_s,
        "speedup_x": cold_s / warm_s,
    }


def measure_campaign() -> dict:
    """End-to-end guided campaign throughput (everything included)."""
    t0 = time.perf_counter()
    report = FuzzEngine(
        FuzzConfig(seed=20260808, budget=CAMPAIGN_BUDGET)
    ).run()
    elapsed = time.perf_counter() - t0
    return {
        "budget": CAMPAIGN_BUDGET,
        "elapsed_s": elapsed,
        "execs_per_s": CAMPAIGN_BUDGET / elapsed,
        "edges": report["edge_count"],
        "violations": report["violations"],
    }


@pytest.fixture(scope="module")
def fuzz_results():
    return {
        "fork_vs_cold": measure_fork_vs_cold(),
        "campaign": measure_campaign(),
    }


def test_fuzz_fork_speedup(benchmark, fuzz_results):
    row = fuzz_results["fork_vs_cold"]
    benchmark.extra_info["warm_ms"] = round(row["warm_ms"], 4)
    benchmark.extra_info["cold_ms"] = round(row["cold_ms"], 4)
    benchmark.extra_info["speedup_x"] = round(row["speedup_x"], 1)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert row["speedup_x"] >= MIN_FUZZ_SPEEDUP, (
        f"warm-fork fuzzing only {row['speedup_x']:.1f}x cold-boot "
        f"(bar: {MIN_FUZZ_SPEEDUP:.0f}x)"
    )


def test_fuzz_campaign_clean(benchmark, fuzz_results):
    row = fuzz_results["campaign"]
    benchmark.extra_info["execs_per_s"] = round(row["execs_per_s"], 1)
    benchmark.extra_info["edges"] = row["edges"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # the boundary holds under fuzzing: a violation here is a real bug
    assert row["violations"] == 0, (
        f"fuzz campaign found {row['violations']} containment violations"
    )


def test_fuzz_report(benchmark, fuzz_results):
    """Print/persist the table and the gated JSON ``fuzz`` section."""

    def build() -> str:
        fork = fuzz_results["fork_vs_cold"]
        campaign = fuzz_results["campaign"]
        table = Table(headers=("measurement", "cold", "warm fork", "speedup"))
        table.add(
            "scenario exec (ms)",
            f"{fork['cold_ms']:.2f}",
            f"{fork['warm_ms']:.3f}",
            f"{fork['speedup_x']:.1f}x",
        )
        table.add(
            "throughput (execs/s)",
            f"{fork['cold_execs_per_s']:.0f}",
            f"{fork['warm_execs_per_s']:.0f}",
            "",
        )
        table.add(
            f"guided campaign ({campaign['budget']} execs)",
            "",
            f"{campaign['execs_per_s']:.0f}/s, {campaign['edges']} edges",
            "",
        )
        write_bench_json(
            "fig5",
            "fuzz",
            {
                "fork_vs_cold": {
                    "warm_ms": round(fork["warm_ms"], 4),
                    "cold_ms": round(fork["cold_ms"], 4),
                    "speedup_x": round(fork["speedup_x"], 2),
                },
                "campaign": {
                    "budget": campaign["budget"],
                    "execs_per_s": round(campaign["execs_per_s"], 2),
                    "edges": campaign["edges"],
                    "violations": campaign["violations"],
                },
            },
        )
        text = (
            banner("Scenario fuzzing: warm-fork vs cold-boot throughput")
            + "\n"
            + table.render()
        )
        save_and_print("fuzz_throughput", text)
        return text

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "speedup" in text
