"""Figure 5(a): system-call latency, unmodified vs. inside an identity box.

Regenerates the seven bars of the paper's microbenchmark: getpid, stat,
open-close, 1-byte and 8-kbyte reads and writes.  The expected *shape*:
every call slowed by roughly an order of magnitude, with bulk transfers
suffering the smallest multiple (the I/O channel amortizes the trap cost
over the payload).

Every figure is read off the telemetry layer's per-op latency histograms
(one instrumented run per row and mode), and the report test writes both
the human table (``results/fig5a_syscall_latency.txt``) and the machine
artifact CI gates on (``BENCH_fig5.json``, section ``fig5a``).

Run:  pytest benchmarks/bench_fig5a_syscall_latency.py --benchmark-only -s
Smoke (CI):  REPRO_BENCH_SMOKE=1 pytest benchmarks/bench_fig5a_syscall_latency.py -q
"""

import pytest

from repro.bench import Table, banner, bench_scale, save_and_print, write_bench_json
from repro.workloads import MICROBENCHES, measure_microbench, run_microbench

ITERATIONS = bench_scale(full=1500, smoke=300)


@pytest.fixture(scope="module")
def fig5a_results():
    """Measure all seven rows once (deterministic, so once is exact)."""
    return {
        spec.name: (spec, measure_microbench(spec, iterations=ITERATIONS))
        for spec in MICROBENCHES
    }


@pytest.mark.parametrize("spec", MICROBENCHES, ids=lambda s: s.name)
def test_fig5a_syscall(benchmark, fig5a_results, spec):
    """Benchmark the boxed run (wall time) and attach simulated latencies."""
    _spec, result = fig5a_results[spec.name]
    benchmark.extra_info["unmodified_us"] = round(result.unmodified_us, 3)
    benchmark.extra_info["boxed_us"] = round(result.boxed_us, 3)
    benchmark.extra_info["boxed_p50_us"] = round(result.boxed_stats.p50_us, 3)
    benchmark.extra_info["boxed_p99_us"] = round(result.boxed_stats.p99_us, 3)
    benchmark.extra_info["slowdown_x"] = round(result.slowdown, 1)
    benchmark.extra_info["paper_unmodified_us"] = spec.paper_unmodified_us
    benchmark.extra_info["paper_boxed_us"] = spec.paper_boxed_us
    benchmark.pedantic(
        run_microbench,
        kwargs={"spec": spec, "boxed": True, "iterations": 200},
        rounds=3,
        iterations=1,
    )
    # shape assertions: the paper's qualitative result must hold
    assert result.slowdown > 3.0, f"{spec.name}: interposition cost vanished"
    # histogram sanity: every loop iteration was observed, and the summary
    # percentiles bracket the mean
    assert result.boxed_stats.count >= ITERATIONS * len(spec.ops)
    assert result.boxed_stats.p50_us <= result.boxed_stats.p99_us


def test_fig5a_report(benchmark, fig5a_results):
    """Print/persist the Figure 5(a) table and the gated JSON section."""

    def build() -> str:
        table = Table(
            headers=(
                "syscall",
                "unmodified us",
                "boxed us",
                "boxed p50/p99 us",
                "slowdown",
                "paper unmod us",
                "paper boxed us",
            )
        )
        payload = {}
        for spec in MICROBENCHES:
            _s, r = fig5a_results[spec.name]
            table.add(
                spec.name,
                r.unmodified_us,
                r.boxed_us,
                f"{r.boxed_stats.p50_us:.2f}/{r.boxed_stats.p99_us:.2f}",
                f"{r.slowdown:.1f}x",
                spec.paper_unmodified_us,
                spec.paper_boxed_us,
            )
            payload[spec.name] = {
                "unmodified_us": round(r.unmodified_us, 4),
                "boxed_us": round(r.boxed_us, 4),
                "slowdown_x": round(r.slowdown, 2),
                "boxed_p50_us": round(r.boxed_stats.p50_us, 4),
                "boxed_p90_us": round(r.boxed_stats.p90_us, 4),
                "boxed_p99_us": round(r.boxed_stats.p99_us, 4),
                "count": r.boxed_stats.count,
            }
        write_bench_json("fig5", "fig5a", payload)
        text = banner("Figure 5(a): syscall latency (simulated)") + "\n" + table.render()
        save_and_print("fig5a_syscall_latency", text)
        return text

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "getpid" in text
    # order-of-magnitude claim, on the cheap-call rows
    for name in ("getpid", "read-1b", "write-1b"):
        _s, r = fig5a_results[name]
        assert r.slowdown >= 10.0
