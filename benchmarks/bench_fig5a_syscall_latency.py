"""Figure 5(a): system-call latency, unmodified vs. inside an identity box.

Regenerates the seven bars of the paper's microbenchmark: getpid, stat,
open-close, 1-byte and 8-kbyte reads and writes.  The expected *shape*:
every call slowed by roughly an order of magnitude, with bulk transfers
suffering the smallest multiple (the I/O channel amortizes the trap cost
over the payload).

Run:  pytest benchmarks/bench_fig5a_syscall_latency.py --benchmark-only -s
"""

import pytest

from repro.bench import Table, banner, save_and_print
from repro.workloads import MICROBENCHES, measure_microbench, run_microbench

ITERATIONS = 1500


@pytest.fixture(scope="module")
def fig5a_results():
    """Measure all seven rows once (deterministic, so once is exact)."""
    return {
        spec.name: (spec, measure_microbench(spec, iterations=ITERATIONS))
        for spec in MICROBENCHES
    }


@pytest.mark.parametrize("spec", MICROBENCHES, ids=lambda s: s.name)
def test_fig5a_syscall(benchmark, fig5a_results, spec):
    """Benchmark the boxed run (wall time) and attach simulated latencies."""
    _spec, result = fig5a_results[spec.name]
    benchmark.extra_info["unmodified_us"] = round(result.unmodified_us, 3)
    benchmark.extra_info["boxed_us"] = round(result.boxed_us, 3)
    benchmark.extra_info["slowdown_x"] = round(result.slowdown, 1)
    benchmark.extra_info["paper_unmodified_us"] = spec.paper_unmodified_us
    benchmark.extra_info["paper_boxed_us"] = spec.paper_boxed_us
    benchmark.pedantic(
        run_microbench,
        kwargs={"spec": spec, "boxed": True, "iterations": 200},
        rounds=3,
        iterations=1,
    )
    # shape assertions: the paper's qualitative result must hold
    assert result.slowdown > 3.0, f"{spec.name}: interposition cost vanished"


def test_fig5a_report(benchmark, fig5a_results):
    """Print and persist the full Figure 5(a) table."""

    def build() -> str:
        table = Table(
            headers=(
                "syscall",
                "unmodified us",
                "boxed us",
                "slowdown",
                "paper unmod us",
                "paper boxed us",
            )
        )
        for spec in MICROBENCHES:
            _s, r = fig5a_results[spec.name]
            table.add(
                spec.name,
                r.unmodified_us,
                r.boxed_us,
                f"{r.slowdown:.1f}x",
                spec.paper_unmodified_us,
                spec.paper_boxed_us,
            )
        text = banner("Figure 5(a): syscall latency (simulated)") + "\n" + table.render()
        save_and_print("fig5a_syscall_latency", text)
        return text

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "getpid" in text
    # order-of-magnitude claim, on the cheap-call rows
    for name in ("getpid", "read-1b", "write-1b"):
        _s, r = fig5a_results[name]
        assert r.slowdown >= 10.0
