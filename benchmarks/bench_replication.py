"""Replication: read availability under a shard blackout, quorum-write cost.

Two deterministic measurements on the replicated federation
(:mod:`repro.chirp.federation` with ``replicas=3``):

* **Blackout availability** — stage files across many prefixes, black out
  one replica entirely, then drive a read mix (get / stat / readdir) over
  every prefix.  With three replicas per prefix every read still has two
  live owners, so read availability is 100% while the same drill at one
  replica loses every prefix the dark shard owns.  The acceptance bar:
  ``read_availability_pct == 100.0`` at k=3, held exactly by the gate.
* **Quorum-write overhead** — the same write mix at k=1 and k=3, timed on
  the simulated clock.  A quorum write applies to every replica, so k=3
  costs roughly 3x the wire time of k=1; the gate holds the measured
  ``write_overhead_x`` so replication never silently gets costlier.

Both land in the gated ``replication`` section of ``BENCH_fig5.json``.

Run:  pytest benchmarks/bench_replication.py --benchmark-only -s
Smoke (CI):  REPRO_BENCH_SMOKE=1 pytest benchmarks/bench_replication.py -q
"""

import pytest

from repro.bench import Table, banner, bench_scale, save_and_print, write_bench_json
from repro.chirp import (
    ChirpError,
    FederatedClient,
    GlobusAuthenticator,
    ServerAuth,
    deploy_federation,
)
from repro.core import Acl, Rights
from repro.gsi import CertificateAuthority, CredentialStore, provision_user
from repro.kernel.errno import KernelError
from repro.kernel.timing import NS_PER_S
from repro.net import Cluster

SHARDS = 4
PREFIXES = bench_scale(full=32, smoke=16)
PAYLOAD = bench_scale(full=8 * 1024, smoke=2 * 1024)

LAPTOP = "bench.nowhere.edu"
FRED_DN = "/O=UnivNowhere/CN=Fred"


def make_world(replicas: int):
    cluster = Cluster()
    cluster.add_machine(LAPTOP)
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    wallet = provision_user(ca, trust, FRED_DN)
    acl = Acl()
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlav(rwlax)"))
    federation = deploy_federation(
        cluster,
        f"repl{replicas}",
        SHARDS,
        make_auth=lambda: ServerAuth(credential_store=trust),
        root_acl=acl,
        replicas=replicas,
    )
    client = FederatedClient.connect(
        cluster.network,
        LAPTOP,
        f"repl{replicas}",
        federation.catalog_host,
        [GlobusAuthenticator(wallet)],
        replicas=replicas,
    )
    return cluster, federation, client


def blackout_read_mix(replicas: int) -> dict:
    """Stage, darken one shard, then read everything: who still answers?"""
    cluster, federation, client = make_world(replicas)
    payload = bytes(i % 251 for i in range(PAYLOAD))
    for i in range(PREFIXES):
        client.mkdir(f"/job{i:03d}")
        client.put(payload, f"/job{i:03d}/input.dat")
    victim = sorted(federation.shards)[0]
    federation.blackout_shard(victim, 0, 10**9)
    attempted = ok = 0
    for i in range(PREFIXES):
        d = f"/job{i:03d}"
        for read in (
            lambda: client.get(f"{d}/input.dat") == payload,
            lambda: client.stat(f"{d}/input.dat").size == PAYLOAD,
            lambda: client.readdir(d) == ["input.dat"],
        ):
            attempted += 1
            try:
                assert read()
                ok += 1
            except (ChirpError, KernelError):
                pass
    stats = client.stats
    client.close()
    return {
        "replicas": replicas,
        "reads_attempted": attempted,
        "reads_ok": ok,
        "read_availability_pct": round(100.0 * ok / attempted, 2),
        "failover_reads": stats.failover_reads,
    }


def write_mix(replicas: int) -> dict:
    """The write mix, timed on the simulated clock."""
    cluster, federation, client = make_world(replicas)
    payload = bytes(i % 251 for i in range(PAYLOAD))
    start_ns = cluster.clock.now_ns
    for i in range(PREFIXES):
        d = f"/job{i:03d}"
        client.mkdir(d)
        client.put(payload, f"{d}/input.dat")
        client.rename(f"{d}/input.dat", f"{d}/staged.dat")
    elapsed_ns = cluster.clock.now_ns - start_ns
    stats = client.stats
    client.close()
    return {
        "replicas": replicas,
        "write_s": elapsed_ns / NS_PER_S,
        "quorum_writes": stats.quorum_writes,
    }


@pytest.fixture(scope="module")
def replication_results():
    """One measured run per drill (deterministic, so once is exact)."""
    return {
        "avail_k3": blackout_read_mix(3),
        "avail_k1": blackout_read_mix(1),
        "write_k1": write_mix(1),
        "write_k3": write_mix(3),
    }


def test_reads_stay_fully_available_through_a_blackout(
    benchmark, replication_results
):
    row = replication_results["avail_k3"]
    single = replication_results["avail_k1"]
    benchmark.extra_info.update(row)
    benchmark.pedantic(blackout_read_mix, args=(3,), rounds=1, iterations=1)
    # the acceptance bar: 100% of reads answered while a replica is dark
    assert row["read_availability_pct"] == 100.0
    assert row["failover_reads"] > 0  # the dark shard really was routed to
    # and the drill is real: without replication the same outage loses data
    assert single["read_availability_pct"] < 100.0


def test_quorum_write_overhead_is_bounded(benchmark, replication_results):
    k1, k3 = replication_results["write_k1"], replication_results["write_k3"]
    overhead = k3["write_s"] / k1["write_s"]
    benchmark.extra_info["write_overhead_x"] = round(overhead, 3)
    benchmark.pedantic(write_mix, args=(3,), rounds=1, iterations=1)
    assert k3["quorum_writes"] > 0 and k1["quorum_writes"] == 0
    # three sequential replica applies: ~3x wire time, never wildly more
    assert overhead < 4.0, f"quorum writes cost {overhead:.2f}x"


def test_replication_report(benchmark, replication_results):
    """Print/persist the replication table and the gated JSON section."""

    def build() -> str:
        avail = replication_results["avail_k3"]
        single = replication_results["avail_k1"]
        k1, k3 = replication_results["write_k1"], replication_results["write_k3"]
        overhead = k3["write_s"] / k1["write_s"]
        table = Table(headers=("drill", "replicas", "result"))
        table.add(
            "blackout reads", 3, f"{avail['read_availability_pct']:.1f}% available"
        )
        table.add(
            "blackout reads", 1, f"{single['read_availability_pct']:.1f}% available"
        )
        table.add("write mix", 1, f"{k1['write_s'] * 1e3:.2f} ms")
        table.add(
            "write mix", 3, f"{k3['write_s'] * 1e3:.2f} ms ({overhead:.2f}x)"
        )
        payload = {
            "blackout_availability": avail,
            "blackout_availability_k1": single,
            "quorum_overhead": {
                "write_overhead_x": round(overhead, 3),
                "k1_write_s": round(k1["write_s"], 6),
                "k3_write_s": round(k3["write_s"], 6),
                "quorum_writes": k3["quorum_writes"],
            },
        }
        write_bench_json("fig5", "replication", payload)
        text = (
            banner("Replication: blackout availability and quorum-write cost")
            + "\n"
            + table.render()
            + f"\n\nfailover reads during the k=3 blackout: "
            f"{avail['failover_reads']}"
        )
        save_and_print("replication", text)
        return text

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "available" in text
