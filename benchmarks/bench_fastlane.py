"""Fast lane: read-op memoization + frame coalescing on a read-heavy load.

The hot path this PR builds is measured here end to end: a client hammers
``stat``/``access``/``getacl`` over a small staged tree, once with the
fast lane off (one wire frame per op, full guard + monitor walk every
time) and once with it on (a ``ReadCache`` at the pipeline mouth and the
ops riding coalesced batch envelopes).  Simulated time captures both
savings: cache hits skip the handler's kernel calls, and coalescing
amortizes the per-frame round trip across up to ``BATCH_LIMIT`` ops.

The bench also *proves* the fast lane is a pure optimization: both runs
must produce identical per-op payloads, field for field, before any
throughput number is reported.

The gate (``repro.bench.gate``) checks the dimensionless ``speedup_x``
against ``benchmarks/baseline.json`` — the acceptance bar is ≥2x on this
read-heavy mix.

Run:  pytest benchmarks/bench_fastlane.py --benchmark-only -s
Smoke (CI):  REPRO_BENCH_SMOKE=1 pytest benchmarks/bench_fastlane.py -q
"""

import pytest

from repro.bench import Table, banner, bench_scale, save_and_print, write_bench_json
from repro.chirp import ChirpClient, ChirpServer, GlobusAuthenticator, ServerAuth
from repro.chirp.protocol import BATCH_LIMIT
from repro.core import Acl, ReadCache, Rights
from repro.gsi import CertificateAuthority, CredentialStore, provision_user
from repro.kernel.timing import NS_PER_S
from repro.net import Cluster

SERVER = "server1.nowhere.edu"
CLIENT = "laptop.cs.nowhere.edu"

#: Files staged under the hot directory.
FILES = 8
#: Passes over the tree; every pass repeats the same read mix, which is
#: exactly the workload shape memoization exists for.
ROUNDS = bench_scale(full=60, smoke=12)

#: The acceptance bar (see ISSUE / baseline.json's gated floor).
MIN_FASTLANE_SPEEDUP = 2.0


def build_world(read_cache=None):
    """One GSI-authenticated server with a staged read-only tree."""
    cluster = Cluster()
    cluster.add_machine(SERVER)
    cluster.add_machine(CLIENT)
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    wallet = provision_user(ca, trust, "/O=UnivNowhere/CN=Fred")
    machine = cluster.machine(SERVER)
    owner = machine.add_user("dthain")
    server = ChirpServer(
        machine,
        owner,
        network=cluster.network,
        auth=ServerAuth(credential_store=trust),
        read_cache=read_cache,
    )
    acl = Acl()
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlv(rwlax)"))
    server.set_root_acl(acl)
    server.serve()
    client = ChirpClient.connect(cluster.network, CLIENT, SERVER)
    client.authenticate([GlobusAuthenticator(wallet)])
    client.mkdir("/hot")
    for i in range(FILES):
        client.put(b"payload " * 64, f"/hot/f{i}")
    return cluster, client


def read_frames() -> list[dict]:
    """The read-heavy op mix as raw request frames, in issue order."""
    paths = ["/hot"] + [f"/hot/f{i}" for i in range(FILES)]
    frames = []
    for _ in range(ROUNDS):
        for path in paths:
            frames.append({"op": "stat", "path": path})
            frames.append({"op": "access", "path": path, "letters": "l"})
            frames.append({"op": "getacl", "path": path})
    return frames


def _payload(reply: dict) -> dict:
    return {k: v for k, v in reply.items() if k != "ok"}


def run_plain(client, frames) -> list[dict]:
    """One wire frame per op — the baseline everyone pays today."""
    return [
        _payload(client._call(f["op"], **{k: v for k, v in f.items() if k != "op"}))
        for f in frames
    ]


def run_coalesced(client, frames) -> list[dict]:
    """The same ops in batch envelopes of up to ``BATCH_LIMIT``."""
    out = []
    for start in range(0, len(frames), BATCH_LIMIT):
        for slot in client.batch(frames[start : start + BATCH_LIMIT]):
            assert slot.get("ok"), slot
            out.append(_payload(slot))
    return out


def measure_read_heavy() -> dict:
    """ops/sec of simulated time, fast lane off vs on, results compared."""
    frames = read_frames()

    cluster, client = build_world(read_cache=None)
    t0 = cluster.clock.now_ns
    baseline = run_plain(client, frames)
    off_s = (cluster.clock.now_ns - t0) / NS_PER_S

    cluster, client = build_world(read_cache=ReadCache())
    t0 = cluster.clock.now_ns
    fast = run_coalesced(client, frames)
    on_s = (cluster.clock.now_ns - t0) / NS_PER_S

    assert baseline == fast, "fast lane changed a read result"
    ops = len(frames)
    return {
        "ops": ops,
        "identical": baseline == fast,
        "ops_per_sec_off": ops / off_s,
        "ops_per_sec_on": ops / on_s,
        "speedup_x": off_s / on_s,
    }


@pytest.fixture(scope="module")
def fastlane_results():
    return {"read_heavy": measure_read_heavy()}


def test_read_heavy_speedup(benchmark, fastlane_results):
    row = fastlane_results["read_heavy"]
    benchmark.extra_info["ops_per_sec_off"] = round(row["ops_per_sec_off"])
    benchmark.extra_info["ops_per_sec_on"] = round(row["ops_per_sec_on"])
    benchmark.extra_info["speedup_x"] = round(row["speedup_x"], 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert row["identical"], "cache on vs off diverged"
    assert row["speedup_x"] >= MIN_FASTLANE_SPEEDUP, (
        f"fast lane only {row['speedup_x']:.2f}x on the read-heavy mix "
        f"(bar: {MIN_FASTLANE_SPEEDUP:.1f}x)"
    )


def test_fastlane_report(benchmark, fastlane_results):
    """Print/persist the table and the gated JSON ``fastlane`` section."""

    def build() -> str:
        row = fastlane_results["read_heavy"]
        table = Table(headers=("workload", "off ops/s", "on ops/s", "speedup"))
        table.add(
            f"read-heavy ({row['ops']} ops)",
            f"{row['ops_per_sec_off']:.0f}",
            f"{row['ops_per_sec_on']:.0f}",
            f"{row['speedup_x']:.2f}x",
        )
        write_bench_json(
            "fig5",
            "fastlane",
            {
                "read_heavy": {
                    "ops": row["ops"],
                    "ops_per_sec_off": round(row["ops_per_sec_off"], 1),
                    "ops_per_sec_on": round(row["ops_per_sec_on"], 1),
                    "speedup_x": round(row["speedup_x"], 2),
                }
            },
        )
        text = (
            banner("Fast lane: memoized reads + coalesced frames")
            + "\n"
            + table.render()
        )
        save_and_print("fastlane", text)
        return text

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "speedup" in text
