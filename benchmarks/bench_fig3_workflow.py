"""Figure 3: the distributed stage-in / exec / stage-out workflow, timed.

The paper presents Figure 3 as a capability demonstration; this bench
regenerates the workflow end to end and reports where the simulated time
goes (network transfer vs. remote execution vs. protocol chatter), for a
spread of staged-file sizes.

Run:  pytest benchmarks/bench_fig3_workflow.py --benchmark-only -s
"""

import pytest

from repro.bench import Table, banner, save_and_print
from repro.chirp import ChirpClient, ChirpServer, GlobusAuthenticator, ServerAuth
from repro.core import Acl, Rights
from repro.gsi import CertificateAuthority, CredentialStore, provision_user
from repro.kernel import OpenFlags
from repro.net import Cluster

SERVER = "server1.nowhere.edu"
LAPTOP = "laptop.cs.nowhere.edu"
FRED_DN = "/O=UnivNowhere/CN=Fred"

SIZES = (4 * 1024, 64 * 1024, 1024 * 1024)


def build_world():
    cluster = Cluster()
    cluster.add_machine(SERVER)
    cluster.add_machine(LAPTOP)
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    wallet = provision_user(ca, trust, FRED_DN)
    machine = cluster.machine(SERVER)
    owner = machine.add_user("dthain")
    server = ChirpServer(
        machine, owner, network=cluster.network, auth=ServerAuth(credential_store=trust)
    )
    acl = Acl()
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlv(rwlax)"))
    server.set_root_acl(acl)
    server.serve()

    def sim(proc, args):
        yield proc.compute(ms=50)
        size = int(args[0]) if args else 4096
        fd = yield proc.sys.open("out.dat", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        addr = proc.alloc_bytes(b"r" * size)
        yield proc.sys.write(fd, addr, size)
        yield proc.sys.close(fd)
        return 0

    machine.register_program("sim", sim)
    return cluster, wallet


def run_workflow(size: int) -> dict[str, float]:
    """One Figure-3 round trip; returns simulated phase timings in ms."""
    cluster, wallet = build_world()
    clock = cluster.clock
    client = ChirpClient.connect(cluster.network, LAPTOP, SERVER)

    t0 = clock.now_ns
    client.authenticate([GlobusAuthenticator(wallet)])
    t_auth = clock.now_ns

    client.mkdir("/work")
    client.put(b"#!repro:sim\n", "/work/sim.exe", mode=0o755)
    stage_in_payload = b"i" * size
    client.put(stage_in_payload, "/work/input.dat")
    t_stage_in = clock.now_ns

    assert client.exec("/work/sim.exe", [str(size)], cwd="/work") == 0
    t_exec = clock.now_ns

    out = client.get("/work/out.dat")
    assert len(out) == size
    t_stage_out = clock.now_ns

    ms = 1e6
    return {
        "auth": (t_auth - t0) / ms,
        "stage_in": (t_stage_in - t_auth) / ms,
        "exec": (t_exec - t_stage_in) / ms,
        "stage_out": (t_stage_out - t_exec) / ms,
        "total": (t_stage_out - t0) / ms,
    }


@pytest.fixture(scope="module")
def fig3_results():
    return {size: run_workflow(size) for size in SIZES}


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"{s // 1024}KiB")
def test_fig3_workflow(benchmark, fig3_results, size):
    phases = fig3_results[size]
    for key, value in phases.items():
        benchmark.extra_info[f"{key}_ms"] = round(value, 3)
    benchmark.pedantic(run_workflow, args=(size,), rounds=1, iterations=1)
    assert phases["total"] > 0


def test_fig3_report(benchmark, fig3_results):
    def build() -> str:
        table = Table(
            headers=("payload", "auth ms", "stage-in ms", "exec ms", "stage-out ms", "total ms")
        )
        for size in SIZES:
            phases = fig3_results[size]
            table.add(
                f"{size // 1024} KiB",
                phases["auth"],
                phases["stage_in"],
                phases["exec"],
                phases["stage_out"],
                phases["total"],
            )
        text = (
            banner("Figure 3: remote stage/exec/fetch workflow (simulated)")
            + "\n"
            + table.render()
        )
        save_and_print("fig3_workflow", text)
        return text

    benchmark.pedantic(build, rounds=1, iterations=1)
    # shape: staging cost grows with payload; exec includes the 50ms compute
    small, big = fig3_results[SIZES[0]], fig3_results[SIZES[-1]]
    assert big["stage_in"] > small["stage_in"]
    assert big["stage_out"] > small["stage_out"]
    for size in SIZES:
        assert fig3_results[size]["exec"] >= 50.0
