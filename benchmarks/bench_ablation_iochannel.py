"""Ablation A: the I/O channel vs. word-at-a-time ptrace data movement.

§5 argues bulk data *must* travel through the shared I/O channel because
2005-era ptrace moves one word per syscall.  This ablation measures boxed
read latency across transfer sizes under three supervisor configurations:

* ``peekpoke`` — channel disabled (threshold above every transfer),
* ``channel``  — channel always used (threshold 0),
* ``hybrid``   — the default 32-byte threshold.

Expected shape: peek/poke is fine for a byte and catastrophic for 8 kB
(three orders of magnitude), the channel costs a fixed double-copy, and
the hybrid tracks the better of the two everywhere.

Run:  pytest benchmarks/bench_ablation_iochannel.py --benchmark-only -s
"""

import pytest

from repro.bench import Table, banner, save_and_print
from repro.core.acl import Acl
from repro.core.box import IdentityBox
from repro.core.telemetry import instrument
from repro.interpose.supervisor import Supervisor
from repro.kernel import Machine, OpenFlags
from repro.kernel.timing import NS_PER_US

SIZES = (1, 32, 256, 1024, 8192)
MODES = {
    "peekpoke": 1 << 30,  # never use the channel
    "hybrid": 32,  # the default
    "channel": 0,  # always use the channel
}
ITERS = 300


def boxed_read_latency(size: int, threshold: int, iterations: int) -> float:
    """Per-call boxed pread latency (µs).

    One instrumented run: the figure is the mean of the machine's
    ``pread`` latency histogram, which excludes the surrounding
    open/close bookkeeping by construction.
    """
    machine = Machine()
    telemetry = instrument(machine)
    cred = machine.add_user("grid")
    task = machine.host_task(cred)
    machine.write_file(task, "/home/grid/data", b"x" * max(size, 1) * 2)
    supervisor = Supervisor(machine, cred, small_io_threshold=threshold)
    box = IdentityBox(machine, cred, "Bench", supervisor=supervisor, make_home=False)
    box.policy.write_acl("/home/grid", Acl.for_owner("Bench"))

    def body(proc, args):
        fd = yield proc.sys.open("/home/grid/data", OpenFlags.O_RDONLY)
        buf = proc.alloc(max(size, 1))
        for _ in range(iterations):
            yield proc.sys.pread(fd, buf, size, 0)
        yield proc.sys.close(fd)
        return 0

    box.spawn(body, cwd="/home/grid")
    machine.run_to_completion()
    hist = telemetry.histogram("syscall.latency_ns", op="pread", mode="traced")
    assert hist.count == iterations
    return hist.mean / NS_PER_US


@pytest.fixture(scope="module")
def ablation_results():
    return {
        mode: {size: boxed_read_latency(size, threshold, ITERS) for size in SIZES}
        for mode, threshold in MODES.items()
    }


@pytest.mark.parametrize("mode", list(MODES), ids=list(MODES))
def test_ablation_iochannel_mode(benchmark, ablation_results, mode):
    for size, latency in ablation_results[mode].items():
        benchmark.extra_info[f"read_{size}B_us"] = round(latency, 2)
    benchmark.pedantic(
        boxed_read_latency,
        args=(1024, MODES[mode], 50),
        rounds=2,
        iterations=1,
    )


def test_ablation_iochannel_report(benchmark, ablation_results):
    def build() -> str:
        table = Table(headers=("read size", *(f"{m} us" for m in MODES)))
        for size in SIZES:
            table.add(
                f"{size} B",
                *(ablation_results[mode][size] for mode in MODES),
            )
        text = (
            banner("Ablation A: data movement strategy (boxed pread latency)")
            + "\n"
            + table.render()
        )
        save_and_print("ablation_iochannel", text)
        return text

    benchmark.pedantic(build, rounds=1, iterations=1)
    results = ablation_results
    # tiny transfers: peek/poke no worse than the channel
    assert results["peekpoke"][1] <= results["channel"][1] * 1.2
    # bulk transfers: peek/poke is ruinous — the paper's design point
    assert results["peekpoke"][8192] > 10 * results["channel"][8192]
    # the hybrid is never much worse than the best pure strategy
    for size in SIZES:
        best = min(results["peekpoke"][size], results["channel"][size])
        assert results["hybrid"][size] <= best * 1.25 + 0.5
