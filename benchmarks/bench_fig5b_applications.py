"""Figure 5(b): application runtime, unmodified vs. inside an identity box.

Regenerates the six application bars: AMANDA, BLAST, CMS, HF, IBIS and the
``make`` build.  Expected shape: the science codes pay 0.7-6.5 % (they are
compute-bound with large-block I/O); the metadata-storm build pays ~35 %.

Workloads run at a reduced scale (identical per-iteration composition, so
the overhead ratio is scale-invariant); reported runtimes are projected
back to full scale for side-by-side comparison with the paper's bars.
Boxed runs are telemetry-instrumented, so each row also reports syscall
throughput, and the report test writes the ``fig5b`` section of the
CI-gated ``BENCH_fig5.json``.

Run:  pytest benchmarks/bench_fig5b_applications.py --benchmark-only -s
Smoke (CI):  REPRO_BENCH_SMOKE=1 pytest benchmarks/bench_fig5b_applications.py -q
"""

import pytest

from repro.bench import Table, banner, bench_scale, save_and_print, write_bench_json
from repro.workloads import ALL_APPS, MAKE, SCIENCE_APPS, measure_app, run_app

SCALE = bench_scale(full=0.005, smoke=0.002)


@pytest.fixture(scope="module")
def fig5b_results():
    return {p.name: measure_app(p, scale=SCALE) for p in ALL_APPS}


@pytest.mark.parametrize("profile", ALL_APPS, ids=lambda p: p.name)
def test_fig5b_application(benchmark, fig5b_results, profile):
    result = fig5b_results[profile.name]
    benchmark.extra_info["overhead_pct"] = round(result.overhead_pct, 2)
    benchmark.extra_info["paper_overhead_pct"] = profile.paper_overhead_pct
    benchmark.extra_info["projected_runtime_s"] = round(result.base_s / SCALE, 1)
    benchmark.extra_info["boxed_ops_per_sec"] = round(result.boxed_ops_per_sec, 1)
    benchmark.pedantic(
        run_app,
        kwargs={"profile": profile, "boxed": True, "scale": SCALE / 2},
        rounds=3,
        iterations=1,
    )
    assert result.boxed_s > result.base_s
    # the boxed run was instrumented: per-op latency stats exist and
    # account for every delegated call the supervisor handled
    assert result.boxed_stats
    assert sum(s.count for s in result.boxed_stats.values()) > 0


def test_fig5b_report(benchmark, fig5b_results):
    def build() -> str:
        table = Table(
            headers=(
                "application",
                "runtime s (projected)",
                "boxed s (projected)",
                "overhead %",
                "boxed ops/s",
                "paper %",
                "paper runtime s",
            )
        )
        payload = {}
        for profile in ALL_APPS:
            r = fig5b_results[profile.name]
            table.add(
                profile.name,
                r.base_s / SCALE,
                r.boxed_s / SCALE,
                r.overhead_pct,
                f"{r.boxed_ops_per_sec:.0f}",
                profile.paper_overhead_pct,
                profile.paper_runtime_s,
            )
            payload[profile.name] = {
                "base_s": round(r.base_s, 6),
                "boxed_s": round(r.boxed_s, 6),
                "overhead_pct": round(r.overhead_pct, 3),
                "base_ops_per_sec": round(r.base_ops_per_sec, 2),
                "boxed_ops_per_sec": round(r.boxed_ops_per_sec, 2),
                "scale": SCALE,
            }
        write_bench_json("fig5", "fig5b", payload)
        text = (
            banner("Figure 5(b): application runtime overhead (simulated)")
            + "\n"
            + table.render()
        )
        save_and_print("fig5b_applications", text)
        return text

    benchmark.pedantic(build, rounds=1, iterations=1)
    # shape: science apps in the paper's single-digit band...
    for profile in SCIENCE_APPS:
        overhead = fig5b_results[profile.name].overhead_pct
        assert 0.2 < overhead < 10.0, f"{profile.name}: {overhead}%"
    # ...and make dramatically worse, around 35%
    make_overhead = fig5b_results[MAKE.name].overhead_pct
    assert 25.0 < make_overhead < 45.0
    assert make_overhead > 3 * max(
        fig5b_results[p.name].overhead_pct for p in SCIENCE_APPS
    )
