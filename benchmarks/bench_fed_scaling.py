"""Federation scaling: aggregate Chirp throughput at 1, 2, 4, and 8 shards.

One Chirp server serializes the whole export namespace; the federation
shards it by top-level directory.  This bench drives an identical op mix
(mkdir / put / stat / rename / get / readdir per prefix, spread over many
prefixes) through a :class:`~repro.chirp.federation.FederatedClient` at
each shard count and reports *aggregate* ops/sec under the parallel
wall-clock model: the shards are independent machines, so the fleet is
done when its busiest member is — aggregate ops/sec = total server-side
ops / max per-shard busy time.  Per-shard busy time and op counts come
straight off each shard's telemetry (the ``pipeline.latency_ns``
histograms and ``pipeline.ops`` counters), so the numbers are the same
ones the observability layer reports.

The expected shape: near-linear scaling while prefixes outnumber shards,
and ≥3x aggregate throughput at 8 shards (the ROADMAP acceptance bar).

Run:  pytest benchmarks/bench_fed_scaling.py --benchmark-only -s
Smoke (CI):  REPRO_BENCH_SMOKE=1 pytest benchmarks/bench_fed_scaling.py -q
"""

import pytest

from repro.bench import Table, banner, bench_scale, save_and_print, write_bench_json
from repro.chirp import FederatedClient, GlobusAuthenticator, ServerAuth, deploy_federation
from repro.core import Acl, Rights
from repro.gsi import CertificateAuthority, CredentialStore, provision_user
from repro.kernel.timing import NS_PER_S
from repro.net import Cluster

SHARD_COUNTS = (1, 2, 4, 8)
#: Top-level directories in the op mix; many prefixes per shard is what
#: lets consistent hashing balance the ring.
PREFIXES = bench_scale(full=48, smoke=24)
PAYLOAD = bench_scale(full=16 * 1024, smoke=4 * 1024)

LAPTOP = "bench.nowhere.edu"
FRED_DN = "/O=UnivNowhere/CN=Fred"


def run_mix(n_shards: int) -> dict:
    """Drive the fixed op mix at one shard count; read the telemetry."""
    cluster = Cluster()
    cluster.add_machine(LAPTOP)
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    wallet = provision_user(ca, trust, FRED_DN)
    acl = Acl()
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlav(rwlax)"))
    federation = deploy_federation(
        cluster,
        f"bench{n_shards}",
        n_shards,
        make_auth=lambda: ServerAuth(credential_store=trust),
        root_acl=acl,
    )
    client = FederatedClient.connect(
        cluster.network,
        LAPTOP,
        f"bench{n_shards}",
        federation.catalog_host,
        [GlobusAuthenticator(wallet)],
    )
    payload = bytes(i % 251 for i in range(PAYLOAD))
    for i in range(PREFIXES):
        d = f"/job{i:03d}"
        client.mkdir(d)
        client.put(payload, f"{d}/input.dat")
        client.stat(f"{d}/input.dat")
        client.rename(f"{d}/input.dat", f"{d}/staged.dat")
        assert client.get(f"{d}/staged.dat") == payload
        client.readdir(d)
    client.close()

    ops = federation.per_shard_op_counts()
    busy = federation.per_shard_busy_ns()
    total_ops = sum(ops.values())
    max_busy_ns = max(busy.values())
    return {
        "shards": n_shards,
        "total_ops": total_ops,
        "per_shard_ops": ops,
        "per_shard_busy_ms": {k: round(v / 1e6, 3) for k, v in busy.items()},
        "max_busy_s": max_busy_ns / NS_PER_S,
        "ops_per_sec": total_ops / (max_busy_ns / NS_PER_S),
    }


@pytest.fixture(scope="module")
def scaling_results():
    """One measured run per shard count (deterministic, so once is exact)."""
    return {n: run_mix(n) for n in SHARD_COUNTS}


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_fed_scaling(benchmark, scaling_results, n_shards):
    row = scaling_results[n_shards]
    base = scaling_results[1]
    speedup = row["ops_per_sec"] / base["ops_per_sec"]
    benchmark.extra_info["total_ops"] = row["total_ops"]
    benchmark.extra_info["ops_per_sec"] = round(row["ops_per_sec"], 1)
    benchmark.extra_info["speedup_x"] = round(speedup, 2)
    benchmark.pedantic(run_mix, args=(n_shards,), rounds=1, iterations=1)
    # identical workload at every shard count, net of the one
    # authentication handshake each connected shard serves
    assert row["total_ops"] - n_shards == base["total_ops"] - 1
    if n_shards == 1:
        assert len(row["per_shard_ops"]) == 1
    else:
        # sharding engaged: more than one member actually served ops
        assert sum(1 for c in row["per_shard_ops"].values() if c > 0) > 1
    if n_shards == 8:
        # the ROADMAP acceptance bar: >=3x aggregate throughput at 8 shards
        assert speedup >= 3.0, f"8-shard speedup only {speedup:.2f}x"


def test_fed_scaling_report(benchmark, scaling_results):
    """Print/persist the scaling table and the gated JSON section."""

    def build() -> str:
        table = Table(
            headers=(
                "shards",
                "total ops",
                "busiest shard ms",
                "agg ops/sec",
                "speedup",
            )
        )
        payload = {}
        base = scaling_results[1]
        for n in SHARD_COUNTS:
            row = scaling_results[n]
            speedup = row["ops_per_sec"] / base["ops_per_sec"]
            table.add(
                n,
                row["total_ops"],
                f"{row['max_busy_s'] * 1e3:.2f}",
                f"{row['ops_per_sec']:.0f}",
                f"{speedup:.2f}x",
            )
            payload[f"shards_{n}"] = {
                "shards": n,
                "total_ops": row["total_ops"],
                "ops_per_sec": round(row["ops_per_sec"], 2),
                "speedup_x": round(speedup, 3),
                "max_busy_s": round(row["max_busy_s"], 6),
            }
        write_bench_json("fig5", "federation", payload)
        text = (
            banner("Federation scaling: aggregate ops/sec by shard count")
            + "\n"
            + table.render()
            + "\n\nper-shard ops at 8 shards: "
            + ", ".join(
                f"{k}={v}" for k, v in scaling_results[8]["per_shard_ops"].items()
            )
        )
        save_and_print("fed_scaling", text)
        return text

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "speedup" in text
