"""Ablation C: ACL evaluation cost vs. directory depth, with/without cache.

Every checked call consults the ``.__acl`` file of a governing directory.
The supervisor caches parsed ACLs; without the cache each check re-reads
and re-parses the file through real (charged) kernel calls.  This ablation
measures boxed ``stat`` latency against path depth for both configurations.

Expected shape: with the cache, latency grows gently with depth (the walk
itself); without it, every check pays an extra open/read/close + parse,
roughly doubling metadata-call latency.

Run:  pytest benchmarks/bench_ablation_acl.py --benchmark-only -s
"""

import pytest

from repro.bench import Table, banner, save_and_print
from repro.core.acl import Acl
from repro.core.box import IdentityBox
from repro.core.telemetry import instrument
from repro.interpose.supervisor import Supervisor
from repro.kernel import Machine
from repro.kernel.timing import NS_PER_US
from repro.kernel.vfs import join

DEPTHS = (1, 2, 4, 8)
ITERS = 250


def boxed_stat_latency(depth: int, cache: bool, iterations: int) -> float:
    """Per-call boxed stat latency (µs) at a given directory depth.

    One instrumented run: the figure is the mean of the machine's
    ``stat`` latency histogram (cold-start ACL reads amortize into the
    mean exactly as they would into a long real-world run).
    """
    machine = Machine()
    telemetry = instrument(machine)
    cred = machine.add_user("grid")
    task = machine.host_task(cred)
    supervisor = Supervisor(machine, cred, acl_cache=cache)
    box = IdentityBox(machine, cred, "Bench", supervisor=supervisor, make_home=False)
    path = "/home/grid"
    for i in range(depth):
        path = join(path, f"d{i}")
        machine.kcall_x(task, "mkdir", path, 0o755)
        box.policy.write_acl(path, Acl.for_owner("Bench"))
    target = join(path, "file")
    machine.write_file(task, target, b"x")
    # warm nothing: the cache configuration under test does the work

    def body(proc, args):
        for _ in range(iterations):
            yield proc.sys.stat(target)
        return 0

    box.spawn(body, cwd="/home/grid")
    machine.run_to_completion()
    hist = telemetry.histogram("syscall.latency_ns", op="stat", mode="traced")
    assert hist.count == iterations
    return hist.mean / NS_PER_US


@pytest.fixture(scope="module")
def acl_results():
    return {
        cache: {depth: boxed_stat_latency(depth, cache, ITERS) for depth in DEPTHS}
        for cache in (True, False)
    }


@pytest.mark.parametrize("cache", (True, False), ids=("cached", "uncached"))
def test_ablation_acl_mode(benchmark, acl_results, cache):
    for depth, latency in acl_results[cache].items():
        benchmark.extra_info[f"depth_{depth}_us"] = round(latency, 2)
    benchmark.pedantic(boxed_stat_latency, args=(4, cache, 50), rounds=2, iterations=1)


def test_ablation_acl_report(benchmark, acl_results):
    def build() -> str:
        table = Table(headers=("path depth", "cached us", "uncached us", "penalty"))
        for depth in DEPTHS:
            cached = acl_results[True][depth]
            uncached = acl_results[False][depth]
            table.add(depth, cached, uncached, f"{uncached / cached:.2f}x")
        text = (
            banner("Ablation C: ACL consultation cost (boxed stat latency)")
            + "\n"
            + table.render()
        )
        save_and_print("ablation_acl", text)
        return text

    benchmark.pedantic(build, rounds=1, iterations=1)
    # shape: the uncached monitor pays a real penalty at every depth...
    for depth in DEPTHS:
        assert acl_results[False][depth] > acl_results[True][depth] * 1.1
    # ...and latency grows with depth in both configurations
    for cache in (True, False):
        assert acl_results[cache][DEPTHS[-1]] > acl_results[cache][DEPTHS[0]]
