"""Ablation B: context-switch price sensitivity (the paper's §9 argument).

The paper closes by proposing that identity boxing belongs *in the kernel*,
where the six context switches per call disappear.  This ablation sweeps
the context-switch cost from zero (an idealized in-kernel reference
monitor) through the calibrated default to a pessimistic 4x, and re-measures
the Figure 5(b) overheads for one science app and the build.

Expected shape: make's ~35 % overhead collapses toward single digits as
switches get cheap — the residual cost is ACL checks and double copies —
while amanda barely notices either way.

Run:  pytest benchmarks/bench_ablation_ctxswitch.py --benchmark-only -s
"""

import pytest

from repro.bench import Table, banner, save_and_print
from repro.kernel.timing import CostModel
from repro.workloads import AMANDA, MAKE, measure_app

SCALE = 0.004

SWEEP = {
    "in-kernel (0 ns)": 0,
    "fast (450 ns)": 450,
    "default (1800 ns)": 1800,
    "slow (7200 ns)": 7200,
}


def overheads_at(switch_ns: int) -> dict[str, float]:
    costs = CostModel().scaled(
        context_switch_ns=switch_ns,
        cache_flush_ns=0 if switch_ns == 0 else CostModel().cache_flush_ns,
    )
    return {
        profile.name: measure_app(profile, scale=SCALE, costs=costs).overhead_pct
        for profile in (AMANDA, MAKE)
    }


@pytest.fixture(scope="module")
def sweep_results():
    return {label: overheads_at(ns) for label, ns in SWEEP.items()}


@pytest.mark.parametrize("label", list(SWEEP), ids=list(SWEEP))
def test_ablation_ctxswitch_point(benchmark, sweep_results, label):
    result = sweep_results[label]
    benchmark.extra_info["amanda_pct"] = round(result["amanda"], 2)
    benchmark.extra_info["make_pct"] = round(result["make"], 2)
    benchmark.pedantic(overheads_at, args=(SWEEP[label],), rounds=1, iterations=1)


def test_ablation_ctxswitch_report(benchmark, sweep_results):
    def build() -> str:
        table = Table(headers=("context switch", "amanda overhead %", "make overhead %"))
        for label in SWEEP:
            result = sweep_results[label]
            table.add(label, result["amanda"], result["make"])
        text = (
            banner("Ablation B: context-switch cost sweep (boxed overhead)")
            + "\n"
            + table.render()
        )
        save_and_print("ablation_ctxswitch", text)
        return text

    benchmark.pedantic(build, rounds=1, iterations=1)
    # shape: overhead is monotone in switch cost, and an in-kernel
    # implementation cuts make's toll by well over half
    makes = [sweep_results[label]["make"] for label in SWEEP]
    assert makes == sorted(makes)
    assert sweep_results["in-kernel (0 ns)"]["make"] < 0.5 * sweep_results[
        "default (1800 ns)"
    ]["make"]
    # the science app is insensitive in absolute terms at every point
    assert all(sweep_results[label]["amanda"] < 5.0 for label in SWEEP)
