"""Figure 1: the identity-mapping comparison matrix, measured live.

Each admission method is exercised on a fresh simulated site; the matrix
cells come out of scenario behaviour (hostile reads, privacy probes,
grants, logout/return, counted root interventions), not assertions.

Expected shape: only the identity box row reads
``- yes yes yes yes -`` — no privilege, every property, no burden.

Run:  pytest benchmarks/bench_fig1_mapping_matrix.py --benchmark-only -s
"""

import pytest

from repro.bench import banner, save_and_print
from repro.core.mapping import (
    METHOD_CLASSES,
    evaluate_method,
    render_table,
)


@pytest.fixture(scope="module")
def fig1_reports():
    return {cls.name: evaluate_method(cls) for cls in METHOD_CLASSES}


@pytest.mark.parametrize("cls", METHOD_CLASSES, ids=lambda c: c.name)
def test_fig1_method(benchmark, fig1_reports, cls):
    report = fig1_reports[cls.name]
    benchmark.extra_info["row"] = " ".join(report.row())
    benchmark.pedantic(evaluate_method, args=(cls,), rounds=1, iterations=1)
    # every method must at least admit users and let them store data
    assert report.name == cls.name


def test_fig1_report(benchmark, fig1_reports):
    def build() -> str:
        reports = [fig1_reports[cls.name] for cls in METHOD_CLASSES]
        text = (
            banner("Figure 1: identity mapping methods (measured)")
            + "\n"
            + render_table(reports)
        )
        save_and_print("fig1_mapping_matrix", text)
        return text

    benchmark.pedantic(build, rounds=1, iterations=1)
    box = fig1_reports["IdentityBox"]
    assert box.required_privilege == "-"
    assert box.protects_owner == "yes"
    assert box.allows_privacy == "yes"
    assert box.allows_sharing == "yes"
    assert box.allows_return == "yes"
    assert box.admin_burden == "-"
    # and no Unix-based method matches that row (the paper's argument)
    for cls in METHOD_CLASSES:
        if cls.name == "IdentityBox":
            continue
        r = fig1_reports[cls.name]
        full_marks = (
            r.required_privilege == "-"
            and r.protects_owner == "yes"
            and r.allows_privacy == "yes"
            and r.allows_sharing == "yes"
            and r.allows_return == "yes"
            and r.admin_burden == "-"
        )
        assert not full_marks, f"{cls.name} unexpectedly matches the identity box"
