"""Local account database and process credentials.

This models exactly the machinery the paper says identity boxing makes
irrelevant: the ``/etc/passwd`` table of integer UIDs managed by root.  The
Figure-1 comparison needs it in full — the single / untrusted / private /
group / anonymous / pool schemes all manipulate this database (and all but
one require root to do so), whereas the identity box never touches it.

The database renders itself into passwd-file text because the identity box
implementation (``repro.core.passwd``) builds a *private copy* of
``/etc/passwd`` with the visiting identity prepended, so tools like
``whoami`` inside the box report the high-level name (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cow import CowMap
from .errno import Errno, err

ROOT_UID = 0
NOBODY_UID = 65534
NOBODY_NAME = "nobody"


@dataclass(frozen=True)
class Credentials:
    """Identity of a running process, Unix-level.

    The high-level (grid) identity of a boxed process is *not* stored here —
    it lives in the supervisor (``repro.core.box``), exactly as in the paper,
    where the kernel knows nothing about the visiting identity.
    """

    uid: int
    gid: int
    username: str

    @property
    def is_root(self) -> bool:
        return self.uid == ROOT_UID


@dataclass
class Account:
    """One row of the local account database."""

    name: str
    uid: int
    gid: int
    home: str
    shell: str = "/bin/sh"
    gecos: str = ""

    def passwd_line(self) -> str:
        return f"{self.name}:x:{self.uid}:{self.gid}:{self.gecos}:{self.home}:{self.shell}"


@dataclass
class UserDB:
    """The local account database, keyed by both name and uid.

    Every mutation requires root credentials: this is the administrative
    bottleneck the paper's Figure 1 quantifies as "admin burden".  Mutations
    are counted so the mapping-method evaluator can report how many root
    interventions each scheme costs.

    Both indexes are :class:`~repro.kernel.cow.CowMap` so the database
    snapshots in O(1); :class:`Account` rows are treated as immutable once
    created (create/remove replace whole rows), so the maps never need a
    per-row copy-on-write step.
    """

    _by_name: CowMap = field(default_factory=CowMap)
    _by_uid: CowMap = field(default_factory=CowMap)
    _next_uid: int = 1000
    #: Number of root-only mutations performed (account creation/removal).
    admin_actions: int = 0

    def __post_init__(self) -> None:
        for account in (
            Account("root", ROOT_UID, 0, "/root"),
            Account(NOBODY_NAME, NOBODY_UID, NOBODY_UID, "/nonexistent", "/bin/false"),
        ):
            self._by_name[account.name] = account
            self._by_uid[account.uid] = account

    # ------------------------------------------------------------------ #
    # queries (no privilege required)
    # ------------------------------------------------------------------ #

    def by_name(self, name: str) -> Account:
        try:
            return self._by_name[name]
        except KeyError:
            raise err(Errno.ENOENT, f"no account {name!r}") from None

    def by_uid(self, uid: int) -> Account:
        try:
            return self._by_uid[uid]
        except KeyError:
            raise err(Errno.ENOENT, f"no account with uid {uid}") from None

    def exists(self, name: str) -> bool:
        return name in self._by_name

    def accounts(self) -> list[Account]:
        return sorted(self._by_name.values(), key=lambda a: a.uid)

    def credentials_for(self, name: str) -> Credentials:
        account = self.by_name(name)
        return Credentials(uid=account.uid, gid=account.gid, username=account.name)

    def render_passwd(self) -> str:
        """The textual ``/etc/passwd`` contents for this database."""
        return "\n".join(a.passwd_line() for a in self.accounts()) + "\n"

    # ------------------------------------------------------------------ #
    # mutations (root only; counted as admin burden)
    # ------------------------------------------------------------------ #

    def _require_root(self, actor: Credentials) -> None:
        if not actor.is_root:
            raise err(Errno.EPERM, "account database mutation requires root")

    def create_account(
        self,
        actor: Credentials,
        name: str,
        home: str | None = None,
        uid: int | None = None,
    ) -> Account:
        """Create a local account.  Root only; counts one admin action."""
        self._require_root(actor)
        if name in self._by_name:
            raise err(Errno.EEXIST, f"account {name!r} exists")
        if uid is None:
            uid = self._next_uid
            self._next_uid += 1
        elif uid in self._by_uid:
            raise err(Errno.EEXIST, f"uid {uid} taken")
        else:
            self._next_uid = max(self._next_uid, uid + 1)
        account = Account(name=name, uid=uid, gid=uid, home=home or f"/home/{name}")
        self._by_name[name] = account
        self._by_uid[uid] = account
        self.admin_actions += 1
        return account

    def remove_account(self, actor: Credentials, name: str) -> None:
        """Delete a local account.  Root only; counts one admin action."""
        self._require_root(actor)
        account = self.by_name(name)
        if account.uid in (ROOT_UID, NOBODY_UID):
            raise err(Errno.EPERM, f"refusing to remove {name!r}")
        del self._by_name[account.name]
        del self._by_uid[account.uid]
        self.admin_actions += 1

    # ------------------------------------------------------------------ #
    # snapshot protocol (see repro.kernel.Snapshotable)
    # ------------------------------------------------------------------ #

    def snapshot_state(self) -> object:
        """Freeze both indexes; O(1)."""
        return (
            self._by_name.freeze(),
            self._by_uid.freeze(),
            self._next_uid,
            self.admin_actions,
        )

    def restore_state(self, state: object) -> None:
        name_layers, uid_layers, next_uid, admin_actions = state
        self._by_name.restore(name_layers)
        self._by_uid.restore(uid_layers)
        self._next_uid = next_uid
        self.admin_actions = admin_actions
