"""Path resolution (the ``namei`` machinery) over a :class:`LocalFS`.

Splitting path walking from the filesystem proper lets the interposition
agent reuse the same walker over its own namespace, and lets the ACL layer
(``repro.core.aclfs``) resolve ``.__acl`` files without duplicating symlink
handling.  The walker reports :class:`WalkStats` so the syscall layer can
charge the cost model per component touched — directory depth is what makes
``stat``-heavy workloads (the paper's ``make`` build) expensive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errno import Errno, err
from .inode import Inode, access_allowed
from .localfs import DOT_NAMES, LocalFS
from .users import Credentials

#: Maximum symlink traversals in one resolution, as on Linux.
MAX_SYMLINKS = 40

PATH_MAX = 4096


def split_path(path: str) -> list[str]:
    """Split a path into components, dropping empty ones (``//`` collapses)."""
    if len(path) > PATH_MAX:
        raise err(Errno.ENAMETOOLONG, path[:32] + "...")
    return [c for c in path.split("/") if c]


def normalize(path: str) -> str:
    """Lexically normalize an *absolute* path (resolve ``.`` and ``..``).

    Purely textual — does not consult the filesystem, so it must not be used
    where symlinks matter; the resolver below is the authoritative walker.
    """
    stack: list[str] = []
    for component in split_path(path):
        if component == ".":
            continue
        if component == "..":
            if stack:
                stack.pop()
            continue
        stack.append(component)
    return "/" + "/".join(stack)


def join(base: str, *parts: str) -> str:
    """Join path fragments; absolute fragments reset the base (like os.path.join)."""
    out = base
    for part in parts:
        if part.startswith("/"):
            out = part
        elif out.endswith("/"):
            out += part
        else:
            out += "/" + part
    return out


def dirname(path: str) -> str:
    """Parent directory of a normalized absolute path."""
    norm = normalize(path)
    if norm == "/":
        return "/"
    return "/" + "/".join(norm.strip("/").split("/")[:-1]) or "/"


def basename(path: str) -> str:
    """Final component of a normalized absolute path ('' for the root)."""
    norm = normalize(path)
    if norm == "/":
        return ""
    return norm.rsplit("/", 1)[-1]


@dataclass
class WalkStats:
    """Work performed during one resolution, for cost accounting."""

    components: int = 0
    symlinks: int = 0


@dataclass
class Resolution:
    """Outcome of resolving a path.

    ``inode`` is None when the final component does not exist but its parent
    does — the state create-style syscalls need.  ``parent`` is the directory
    that holds (or would hold) the final entry; ``name`` is that entry's
    name.  ``dir_path`` is the normalized absolute path of ``parent``, which
    the ACL layer uses to locate ``.__acl`` files.
    """

    inode: Inode | None
    parent: Inode
    name: str
    dir_path: str
    stats: WalkStats = field(default_factory=WalkStats)

    @property
    def exists(self) -> bool:
        return self.inode is not None

    def require(self) -> Inode:
        """Return the inode, raising ENOENT when the target is absent."""
        if self.inode is None:
            raise err(Errno.ENOENT, join(self.dir_path, self.name))
        return self.inode


class VFS:
    """Resolver bound to one :class:`LocalFS`."""

    def __init__(self, fs: LocalFS) -> None:
        self.fs = fs

    # ------------------------------------------------------------------ #
    # snapshot protocol (see repro.kernel.Snapshotable)
    # ------------------------------------------------------------------ #

    def snapshot_state(self) -> object:
        """The walker itself is stateless; delegate to the bound store.

        Machines snapshot through the VFS rather than the LocalFS so that
        an alternative mounted store only has to satisfy the protocol at
        this one seam.
        """
        return self.fs.snapshot_state()

    def restore_state(self, state: object) -> None:
        self.fs.restore_state(state)

    def resolve(
        self,
        path: str,
        cred: Credentials | None = None,
        *,
        cwd: str = "/",
        follow: bool = True,
        check_traverse: bool = True,
    ) -> Resolution:
        """Resolve ``path`` (absolute or relative to ``cwd``).

        When ``cred`` is given and ``check_traverse`` is true, each directory
        crossed must grant execute permission, as a real kernel requires.
        ``follow=False`` stops at a symlink in the final component (lstat,
        unlink, readlink semantics).
        """
        if not path:
            raise err(Errno.ENOENT, "empty path")
        full = path if path.startswith("/") else join(cwd, path)
        stats = WalkStats()
        node, parent, name, dir_path = self._walk(full, cred, follow, check_traverse, stats, 0)
        return Resolution(inode=node, parent=parent, name=name, dir_path=dir_path, stats=stats)

    def _walk(
        self,
        path: str,
        cred: Credentials | None,
        follow: bool,
        check_traverse: bool,
        stats: WalkStats,
        depth: int,
    ) -> tuple[Inode | None, Inode, str, str]:
        fs = self.fs
        current = fs.root
        current_path: list[str] = []
        components = split_path(path)
        if not components:
            return fs.root, fs.root, "", "/"
        i = 0
        while i < len(components):
            component = components[i]
            is_last = i == len(components) - 1
            stats.components += 1
            if not current.is_dir:
                raise err(Errno.ENOTDIR, "/" + "/".join(current_path))
            if check_traverse and cred is not None:
                if not access_allowed(current, cred.uid, cred.gid, 1):
                    raise err(Errno.EACCES, "/" + "/".join(current_path))
            if component == ".":
                i += 1
                continue
            if component == "..":
                current = fs.parent_of(current)
                if current_path:
                    current_path.pop()
                i += 1
                continue
            try:
                child = fs.lookup(current, component)
            except Exception as exc:  # noqa: BLE001 - narrow re-raise below
                from .errno import KernelError

                if isinstance(exc, KernelError) and exc.errno is Errno.ENOENT and is_last:
                    return None, current, component, "/" + "/".join(current_path)
                raise
            if child.is_symlink and (follow or not is_last):
                stats.symlinks += 1
                if stats.symlinks > MAX_SYMLINKS:
                    raise err(Errno.ELOOP, path)
                target = child.symlink_target
                if target.startswith("/"):
                    rest = split_path(target) + components[i + 1 :]
                    current = fs.root
                    current_path = []
                    components = rest
                    i = 0
                    if not components:
                        return fs.root, fs.root, "", "/"
                    continue
                components = components[:i] + split_path(target) + components[i + 1 :]
                continue
            if is_last:
                return child, current, component, "/" + "/".join(current_path)
            current = child
            if component not in DOT_NAMES:
                current_path.append(component)
            i += 1
        # the path ended in "." or ".." — we landed on a directory whose
        # identity is in current/current_path rather than a final component
        if current_path:
            return (
                current,
                fs.parent_of(current),
                current_path[-1],
                "/" + "/".join(current_path[:-1]),
            )
        return current, fs.parent_of(current), "", "/"

    def realpath(self, path: str, cwd: str = "/") -> str:
        """Fully-resolved absolute path of an existing object."""
        res = self.resolve(path, cwd=cwd, check_traverse=False)
        node = res.require()
        if node.ino == self.fs.root.ino:
            return "/"
        return join(res.dir_path, res.name)
