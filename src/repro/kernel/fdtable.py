"""Open-file objects and per-process descriptor tables.

As in a real kernel, an *open file description* (offset + flags + inode) is
distinct from a *file descriptor* (a small integer naming it in one
process), and descriptions are shared across ``fork`` and ``dup``.  The
interposition agent relies on this split: Parrot keeps its own table of open
files per traced process and maps the child's descriptors onto its own
(§3, "it must ... keep tables of open files").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errno import Errno, err
from .inode import Inode
from .pipes import Pipe


class OpenFlags(enum.IntFlag):
    """Subset of ``open(2)`` flags honoured by the simulated kernel."""

    O_RDONLY = 0o0
    O_WRONLY = 0o1
    O_RDWR = 0o2
    O_CREAT = 0o100
    O_EXCL = 0o200
    O_TRUNC = 0o1000
    O_APPEND = 0o2000
    O_DIRECTORY = 0o200000

    @property
    def accmode(self) -> "OpenFlags":
        return OpenFlags(self & 0o3)

    @property
    def readable(self) -> bool:
        return self.accmode in (OpenFlags.O_RDONLY, OpenFlags.O_RDWR)

    @property
    def writable(self) -> bool:
        return self.accmode in (OpenFlags.O_WRONLY, OpenFlags.O_RDWR)


#: Hard per-process descriptor limit (RLIMIT_NOFILE analogue).
FD_LIMIT = 1024


@dataclass
class OpenFile:
    """A shared open file description.

    Regular files reference an inode; pipe ends reference a
    :class:`~repro.kernel.pipes.Pipe` instead (``inode`` is None and
    ``pipe_end`` says which side this description holds).
    """

    inode: Inode | None
    flags: OpenFlags
    path: str  #: resolved path at open time (used for ACL audit records)
    offset: int = 0
    refcount: int = 1
    pipe: Pipe | None = None
    pipe_end: str = ""  #: "r" or "w" when this is a pipe end

    def seek_end(self) -> None:
        if self.inode is not None:
            self.offset = self.inode.size


@dataclass
class FDTable:
    """Per-process mapping of descriptor numbers to open file descriptions.

    ``epoch`` is the world-epoch token of the :class:`~repro.kernel.machine.
    Machine` that created the table.  The syscall layer compares it against
    the machine's current token: after a ``restore`` (or in a fork), every
    descriptor table stamped by the previous world fails with ``EBADF``
    instead of silently aliasing rewound inodes.  ``None`` means unstamped
    (standalone tables built directly in tests) and is never checked.
    """

    _files: dict[int, OpenFile] = field(default_factory=dict)
    _next_fd: int = 3  # 0..2 are reserved for std streams
    #: world-epoch token (identity-compared; see Machine.restore)
    epoch: object = None

    def install(self, of: OpenFile, fd: int | None = None) -> int:
        """Install a description at the lowest free fd (or a specific one)."""
        if fd is None:
            fd = self._next_fd
            while fd in self._files:
                fd += 1
            if fd >= FD_LIMIT:
                raise err(Errno.EMFILE, f"fd limit {FD_LIMIT} reached")
            self._next_fd = fd + 1
        else:
            if fd in self._files:
                self._drop(fd)
        self._files[fd] = of
        return fd

    def get(self, fd: int) -> OpenFile:
        try:
            return self._files[fd]
        except KeyError:
            raise err(Errno.EBADF, f"fd {fd}") from None

    def dup(self, fd: int) -> int:
        """``dup(2)``: new descriptor sharing the same description."""
        of = self.get(fd)
        of.refcount += 1
        return self.install(of)

    def _drop(self, fd: int) -> None:
        of = self._files.pop(fd)
        of.refcount -= 1
        if of.refcount == 0 and of.pipe is not None:
            of.pipe.drop_end(of.pipe_end)

    def close(self, fd: int) -> None:
        if fd not in self._files:
            raise err(Errno.EBADF, f"fd {fd}")
        self._drop(fd)
        if fd < self._next_fd:
            self._next_fd = max(fd, 3)

    def close_all(self) -> None:
        for fd in list(self._files):
            self._drop(fd)

    def open_fds(self) -> list[int]:
        return sorted(self._files)

    def pipes(self) -> list[Pipe]:
        """Distinct pipes referenced by this table (for exit-time wakeups)."""
        seen: list[Pipe] = []
        for of in self._files.values():
            if of.pipe is not None and of.pipe not in seen:
                seen.append(of.pipe)
        return seen

    def fork_copy(self) -> "FDTable":
        """Descriptor table for a forked child: same descriptions, shared offsets."""
        child = FDTable()
        child._next_fd = self._next_fd
        child.epoch = self.epoch
        for fd, of in self._files.items():
            of.refcount += 1
            child._files[fd] = of
        return child

    # ------------------------------------------------------------------ #
    # snapshot protocol (see repro.kernel.Snapshotable)
    # ------------------------------------------------------------------ #

    def snapshot_state(self) -> object:
        """Capture the table plus per-description cursor state.

        Pipe ends are refused (EBUSY): their end-of-stream bookkeeping
        lives on the shared :class:`~repro.kernel.pipes.Pipe`, so a table
        holding one is not independently restorable.  World-level
        snapshots never need this — ``Machine.snapshot`` requires
        quiescence and a fork starts with fresh tables — it exists for
        host agents that want to rewind their own descriptor state.
        """
        for of in self._files.values():
            if of.pipe is not None:
                raise err(Errno.EBUSY, "cannot snapshot a table holding a pipe end")
        descs = {id(of): of for of in self._files.values()}
        return (
            dict(self._files),
            [(of, of.refcount, of.offset) for of in descs.values()],
            self._next_fd,
            self.epoch,
        )

    def restore_state(self, state: object) -> None:
        files, descs, next_fd, epoch = state
        self._files = dict(files)
        self._next_fd = next_fd
        self.epoch = epoch
        for of, refcount, offset in descs:
            of.refcount = refcount
            of.offset = offset

    def __len__(self) -> int:
        return len(self._files)
