"""Persistent copy-on-write maps: the storage substrate for world snapshots.

Every mutable kernel store (inodes, accounts, directory parents) keeps its
records in a :class:`CowMap` — a layered dictionary.  Writes always land in
a private mutable *top* layer; beneath it sits a stack of frozen layers
shared structurally with every snapshot and fork taken so far.  Taking a
snapshot is O(1): :meth:`freeze` seals the current top layer and starts an
empty one.  A fork is O(1) too: a new map over the same frozen layers.
Only mutation pays, and it pays per *touched shard* — the store clones the
one record it is about to change into its own top layer (see
``LocalFS.writable``), never the whole table.

Deletions against a frozen layer are recorded as tombstones so a fork can
remove a key its ancestors still hold.  Lookup cost grows with the layer
count, so :meth:`freeze` compacts the stack into one materialized layer
once it gets deep; that makes an occasional snapshot O(n) but keeps every
read O(layers) with layers bounded.
"""

from __future__ import annotations

from typing import Any, Iterator

#: Marks a key deleted in a layer above one that still holds it.
_TOMBSTONE = object()
#: Internal "absent" sentinel (None is a legal stored value).
_MISS = object()

#: Frozen-layer depth that triggers compaction on the next freeze.
COMPACT_LAYERS = 12

#: The frozen-layer stack a snapshot holds: newest first.
Layers = tuple

class CowMap:
    """A layered persistent ``dict`` with O(1) snapshot and fork."""

    __slots__ = ("_top", "_layers")

    def __init__(self, layers: Layers = ()) -> None:
        self._top: dict = {}
        self._layers: Layers = tuple(layers)

    @classmethod
    def from_layers(cls, layers: Layers) -> "CowMap":
        """A fork: a fresh mutable map over shared frozen layers."""
        return cls(layers)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def get(self, key: Any, default: Any = None) -> Any:
        value = self._top.get(key, _MISS)
        if value is not _MISS:
            return default if value is _TOMBSTONE else value
        for layer in self._layers:
            value = layer.get(key, _MISS)
            if value is not _MISS:
                return default if value is _TOMBSTONE else value
        return default

    def __getitem__(self, key: Any) -> Any:
        value = self.get(key, _MISS)
        if value is _MISS:
            raise KeyError(key)
        return value

    def __contains__(self, key: Any) -> bool:
        return self.get(key, _MISS) is not _MISS

    def in_top(self, key: Any) -> bool:
        """True when ``key``'s current value lives in the mutable top layer
        (i.e. it is private to this map and safe to mutate in place)."""
        value = self._top.get(key, _MISS)
        return value is not _MISS and value is not _TOMBSTONE

    def items(self) -> Iterator[tuple[Any, Any]]:
        seen: set = set()
        for layer in (self._top, *self._layers):
            for key, value in layer.items():
                if key in seen:
                    continue
                seen.add(key)
                if value is not _TOMBSTONE:
                    yield key, value

    def keys(self) -> Iterator[Any]:
        for key, _value in self.items():
            yield key

    __iter__ = keys

    def values(self) -> Iterator[Any]:
        for _key, value in self.items():
            yield value

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    @property
    def layer_count(self) -> int:
        """Number of frozen layers below the mutable top (for tests/benches)."""
        return len(self._layers)

    def diff_keys(self) -> set:
        """Keys written (or tombstoned) since the last freeze/restore.

        Exactly the top layer's key set: everything this map may disagree
        about with the frozen stack beneath it.  This is what makes an
        O(size-of-diff) world *audit* possible, not just an O(diff) fork —
        after a run on a forked machine, the touched inodes are precisely
        these keys, so a containment check only inspects what the run
        actually reached (see ``repro.fuzz.executor``).  Deleted keys are
        included: a deletion is a difference.
        """
        return set(self._top)

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def __setitem__(self, key: Any, value: Any) -> None:
        self._top[key] = value

    set = __setitem__

    def __delitem__(self, key: Any) -> None:
        if key not in self:
            raise KeyError(key)
        if self._layers:
            # a frozen layer may still hold the key; shadow it
            self._top[key] = _TOMBSTONE
        else:
            del self._top[key]

    delete = __delitem__

    # ------------------------------------------------------------------ #
    # snapshot / fork
    # ------------------------------------------------------------------ #

    def freeze(self) -> Layers:
        """Seal the top layer and return the full frozen stack (O(1)).

        The returned tuple is the snapshot: hand it to
        :meth:`from_layers` (fork) or :meth:`restore` later.  After a
        freeze this map keeps working — its next write opens a fresh top
        layer — and the sealed layers are never mutated again, which is
        what makes sharing them with forks safe.
        """
        if self._top:
            self._layers = (self._top, *self._layers)
            self._top = {}
        if len(self._layers) >= COMPACT_LAYERS:
            self._layers = (self._materialize(),)
        return self._layers

    def restore(self, layers: Layers) -> None:
        """Rewind this map to a previously frozen stack (O(1))."""
        self._top = {}
        self._layers = tuple(layers)

    def _materialize(self) -> dict:
        merged: dict = {}
        seen: set = set()
        for layer in self._layers:
            for key, value in layer.items():
                if key in seen:
                    continue
                seen.add(key)
                if value is not _TOMBSTONE:
                    merged[key] = value
        return merged
