"""Errno values and the kernel error type for the simulated Unix kernel.

The simulated kernel reports failures the way a real Unix kernel does: a
syscall returns ``-errno``.  Inside the Python implementation we raise
:class:`KernelError` and let the syscall dispatch layer translate it into a
negative return value, mirroring how the Linux VFS propagates ``-EACCES`` &c.
up to the syscall boundary.

Only the errno values the simulated kernel actually generates are defined;
the numeric values match Linux/x86 so traces read naturally.
"""

from __future__ import annotations

import enum


class Errno(enum.IntEnum):
    """Subset of Linux errno values used by the simulated kernel."""

    EPERM = 1  #: Operation not permitted
    ENOENT = 2  #: No such file or directory
    ESRCH = 3  #: No such process
    EINTR = 4  #: Interrupted system call
    EIO = 5  #: I/O error
    EBADF = 9  #: Bad file descriptor
    ECHILD = 10  #: No child processes
    EAGAIN = 11  #: Try again
    ENOMEM = 12  #: Out of memory
    EACCES = 13  #: Permission denied
    EFAULT = 14  #: Bad address
    EBUSY = 16  #: Device or resource busy
    EEXIST = 17  #: File exists
    EXDEV = 18  #: Cross-device link
    ENOTDIR = 20  #: Not a directory
    EISDIR = 21  #: Is a directory
    EINVAL = 22  #: Invalid argument
    ENFILE = 23  #: File table overflow
    EMFILE = 24  #: Too many open files
    ENOSPC = 28  #: No space left on device
    ESPIPE = 29  #: Illegal seek
    EROFS = 30  #: Read-only file system
    EMLINK = 31  #: Too many links
    EPIPE = 32  #: Broken pipe
    ERANGE = 34  #: Result too large
    ENAMETOOLONG = 36  #: File name too long
    ENOSYS = 38  #: Function not implemented
    ENOTEMPTY = 39  #: Directory not empty
    ELOOP = 40  #: Too many symbolic links encountered
    EBADMSG = 74  #: Not a data message (malformed frame on the wire)
    ECONNRESET = 104  #: Connection reset by peer
    ETIMEDOUT = 110  #: Connection timed out
    ECONNREFUSED = 111  #: Connection refused


class KernelError(Exception):
    """A syscall failure carrying an :class:`Errno`.

    Raised inside kernel subsystems; caught at the syscall boundary and
    converted into a ``-errno`` return value.
    """

    def __init__(self, errno: Errno, message: str = "") -> None:
        self.errno = Errno(errno)
        detail = f"{self.errno.name}" + (f": {message}" if message else "")
        super().__init__(detail)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelError({self.errno.name}, {self.args[0]!r})"


def err(errno: Errno, message: str = "") -> KernelError:
    """Convenience constructor used throughout the kernel: ``raise err(Errno.EACCES)``."""
    return KernelError(errno, message)
