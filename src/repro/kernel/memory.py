"""Per-process address spaces for the simulated kernel.

Parrot moves data in and out of the traced child either one word at a time
(ptrace PEEK/POKE) or in bulk through the shared I/O channel.  To make both
paths honest, each simulated process owns an :class:`AddressSpace`: a sparse
bump-allocated heap of byte regions.  Applications allocate buffers and pass
*addresses* in syscall arguments; the kernel (or the interposition agent)
copies bytes in and out of those addresses, charging the cost model for each
transfer.

Addresses are plain integers.  The space is sparse: region bookkeeping keeps
reads/writes O(1) for the common in-region case via an interval check against
the containing region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errno import Errno, err

WORD_SIZE = 8  #: bytes per machine word (x86-64 flavoured)

_HEAP_BASE = 0x1000_0000
_ALIGN = 16


@dataclass
class _Region:
    base: int
    data: bytearray

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, addr: int, n: int = 1) -> bool:
        return self.base <= addr and addr + n <= self.end


@dataclass
class AddressSpace:
    """Sparse byte-addressable memory for one simulated process."""

    _regions: list[_Region] = field(default_factory=list)
    _brk: int = _HEAP_BASE

    def alloc(self, size: int) -> int:
        """Allocate ``size`` zeroed bytes; returns the base address."""
        if size <= 0:
            raise err(Errno.EINVAL, f"alloc size must be positive, got {size}")
        base = self._brk
        self._regions.append(_Region(base, bytearray(size)))
        self._brk = (base + size + _ALIGN - 1) & ~(_ALIGN - 1)
        return base

    def alloc_bytes(self, data: bytes) -> int:
        """Allocate a region initialized with ``data``; returns its address."""
        addr = self.alloc(max(1, len(data)))
        if data:
            self.write(addr, data)
        return addr

    def _find(self, addr: int, n: int) -> _Region:
        for region in self._regions:
            if region.contains(addr, n):
                return region
        raise err(Errno.EFAULT, f"bad address {addr:#x}+{n}")

    def read(self, addr: int, n: int) -> bytes:
        """Read ``n`` bytes at ``addr``; EFAULT if outside any region."""
        if n == 0:
            return b""
        region = self._find(addr, n)
        off = addr - region.base
        return bytes(region.data[off : off + n])

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr``; EFAULT if outside any region."""
        if not data:
            return
        region = self._find(addr, len(data))
        off = addr - region.base
        region.data[off : off + len(data)] = data

    def peek_word(self, addr: int) -> int:
        """Read one little-endian machine word (ptrace PEEKDATA analogue)."""
        return int.from_bytes(self.read(addr, WORD_SIZE), "little")

    def poke_word(self, addr: int, value: int) -> None:
        """Write one little-endian machine word (ptrace POKEDATA analogue)."""
        self.write(addr, (value & (2**64 - 1)).to_bytes(WORD_SIZE, "little"))

    def read_cstring(self, addr: int, limit: int = 4096) -> str:
        """Read a NUL-terminated string starting at ``addr``."""
        out = bytearray()
        region = self._find(addr, 1)
        off = addr - region.base
        while off < len(region.data) and len(out) < limit:
            byte = region.data[off]
            if byte == 0:
                return out.decode("utf-8", errors="replace")
            out.append(byte)
            off += 1
        if len(out) >= limit:
            raise err(Errno.ENAMETOOLONG, "unterminated string")
        raise err(Errno.EFAULT, f"string at {addr:#x} runs off region")

    def write_cstring(self, addr: int, text: str) -> None:
        """Write ``text`` plus a NUL terminator at ``addr``."""
        self.write(addr, text.encode("utf-8") + b"\x00")

    def total_allocated(self) -> int:
        """Total bytes currently allocated (for resource accounting tests)."""
        return sum(len(r.data) for r in self._regions)

    def clone(self) -> "AddressSpace":
        """Copy-on-fork semantics: a deep copy of all regions (fork analogue)."""
        twin = AddressSpace()
        twin._regions = [_Region(r.base, bytearray(r.data)) for r in self._regions]
        twin._brk = self._brk
        return twin

    # ------------------------------------------------------------------ #
    # snapshot protocol (see repro.kernel.Snapshotable)
    # ------------------------------------------------------------------ #

    def snapshot_state(self) -> object:
        """Frozen byte image of every region (process memory has no CoW
        store behind it; a quiescent process's heap is small)."""
        return (tuple((r.base, bytes(r.data)) for r in self._regions), self._brk)

    def restore_state(self, state: object) -> None:
        regions, brk = state
        self._regions = [_Region(base, bytearray(data)) for base, data in regions]
        self._brk = brk


def words_for(nbytes: int) -> int:
    """Number of machine words needed to move ``nbytes`` via peek/poke."""
    return (nbytes + WORD_SIZE - 1) // WORD_SIZE
