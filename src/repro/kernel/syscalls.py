"""Native syscall implementations of the simulated kernel.

Each syscall is a method on :class:`SyscallExecutor`, operating on a
:class:`~repro.kernel.process.Task` (credentials + fd table + cwd + optional
address space).  The executor charges the cost model for the work each call
performs — path components walked, inodes touched, bytes copied — so that
simulated timings react to workload structure the way real ones do.

The *trap* cost (entering/leaving the kernel) is charged by the dispatch
layer in :mod:`repro.kernel.machine`, not here, because host-level agents
(the interposition supervisor, the Chirp server) also pay it per call.

Return conventions follow Unix: non-negative results on success, ``-errno``
on failure (the dispatcher converts :class:`KernelError`).  Calls with
structured results (``stat``, ``readdir``, ``getcwd``) return objects, which
a real ABI would write through a pointer; their failure path is still a
negative int.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import stat as stat_mod

from .errno import Errno, err
from .fdtable import OpenFile, OpenFlags
from .inode import Inode, StatResult, access_allowed, stat_of
from .pipes import Pipe
from .process import Task
from .vfs import Resolution, join, normalize

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

#: os.access / access(2) mode bits
R_OK, W_OK, X_OK, F_OK = 4, 2, 1, 0

#: whence values for lseek
SEEK_SET, SEEK_CUR, SEEK_END = 0, 1, 2


class SyscallExecutor:
    """Implements the syscall table against one :class:`Machine`."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #

    def _charge(self, ns: int, category: str) -> None:
        self.machine.clock.advance(ns, category)

    def _charge_walk(self, res: Resolution) -> None:
        cost = self.machine.costs.path_component_ns * (
            res.stats.components + res.stats.symlinks
        )
        self._charge(cost, "vfs")

    def _resolve(
        self,
        task: Task,
        path: str,
        *,
        follow: bool = True,
    ) -> Resolution:
        res = self.machine.vfs.resolve(path, task.cred, cwd=task.cwd, follow=follow)
        self._charge_walk(res)
        return res

    def _check_perm(self, task: Task, inode: Inode, want: int) -> None:
        self._charge(self.machine.costs.inode_op_ns, "vfs")
        if not access_allowed(inode, task.cred.uid, task.cred.gid, want):
            raise err(Errno.EACCES, f"uid {task.cred.uid} wants {want:o} on inode {inode.ino}")

    def _mem(self, task: Task):
        if task.memory is None:
            raise err(Errno.EFAULT, "task has no address space")
        return task.memory

    def _fd(self, task: Task, fd: int) -> OpenFile:
        """Resolve a descriptor, enforcing world-epoch freshness.

        A table stamped by a previous world epoch (the parent of a fork,
        or the state before a restore) names inodes that no longer exist
        in this world; every descriptor in it is EBADF here, exactly as a
        stale handle should be.
        """
        self._check_epoch(task)
        return task.fdtable.get(fd)

    def _check_epoch(self, task: Task) -> None:
        epoch = task.fdtable.epoch
        if epoch is not None and epoch is not self.machine._epoch_token:
            raise err(Errno.EBADF, "descriptor table from a stale world epoch")

    # ------------------------------------------------------------------ #
    # identity & process info
    # ------------------------------------------------------------------ #

    def do_getpid(self, task: Task) -> int:
        proc = self.machine.process_of(task)
        return proc.pid if proc else 0

    def do_getppid(self, task: Task) -> int:
        proc = self.machine.process_of(task)
        return proc.ppid if proc else 0

    def do_getuid(self, task: Task) -> int:
        return task.cred.uid

    def do_get_user_name(self, task: Task) -> str:
        """The paper's new syscall.

        Natively (outside any identity box) it reports the Unix account
        name; inside a box the supervisor intercepts it and returns the
        high-level identity string instead (§3).
        """
        return task.cred.username

    # ------------------------------------------------------------------ #
    # file open/close and descriptor I/O
    # ------------------------------------------------------------------ #

    def do_open(self, task: Task, path: str, flags: int = 0, mode: int = 0o644) -> int:
        flags = OpenFlags(flags)
        res = self._resolve(task, path)
        costs = self.machine.costs
        now = self.machine.clock.now_ns
        if res.exists:
            node = res.require()
            if flags & OpenFlags.O_CREAT and flags & OpenFlags.O_EXCL:
                raise err(Errno.EEXIST, path)
            if node.is_dir and flags.writable:
                raise err(Errno.EISDIR, path)
            if flags & OpenFlags.O_DIRECTORY and not node.is_dir:
                raise err(Errno.ENOTDIR, path)
            want = (4 if flags.readable else 0) | (2 if flags.writable else 0)
            if want:
                self._check_perm(task, node, want)
            if flags & OpenFlags.O_TRUNC and node.is_file and flags.writable:
                node = self.machine.fs.truncate(node, 0, now)
        else:
            if not flags & OpenFlags.O_CREAT:
                raise err(Errno.ENOENT, path)
            self._check_perm(task, res.parent, 2)
            node = self.machine.fs.create_file(
                res.parent,
                res.name,
                task.cred.uid,
                task.cred.gid,
                mode & ~task.umask,
                now,
            )
        self._charge(costs.fd_op_ns, "fd")
        of = OpenFile(inode=node, flags=flags, path=join(res.dir_path, res.name) if res.name else "/")
        if flags & OpenFlags.O_APPEND:
            of.seek_end()
        return task.fdtable.install(of)

    def do_close(self, task: Task, fd: int) -> int:
        self._charge(self.machine.costs.fd_op_ns, "fd")
        of = self._fd(task, fd)
        task.fdtable.close(fd)
        if of.pipe is not None:
            # dropping an end may unblock the peer (EOF / EPIPE delivery)
            self.machine.wake_pipe(of.pipe)
        return 0

    def do_pipe(self, task: Task) -> tuple[int, int]:
        """Create a pipe; returns ``(read_fd, write_fd)``."""
        pipe = Pipe()
        read_of = OpenFile(
            inode=None, flags=OpenFlags.O_RDONLY, path="pipe:[r]", pipe=pipe, pipe_end="r"
        )
        write_of = OpenFile(
            inode=None, flags=OpenFlags.O_WRONLY, path="pipe:[w]", pipe=pipe, pipe_end="w"
        )
        pipe.add_end("r")
        pipe.add_end("w")
        self._charge(2 * self.machine.costs.fd_op_ns, "fd")
        return task.fdtable.install(read_of), task.fdtable.install(write_of)

    def do_dup(self, task: Task, fd: int) -> int:
        self._charge(self.machine.costs.fd_op_ns, "fd")
        self._check_epoch(task)
        return task.fdtable.dup(fd)

    def _read_common(self, task: Task, fd: int, length: int, offset: int | None) -> bytes:
        of = self._fd(task, fd)
        if not of.flags.readable:
            raise err(Errno.EBADF, f"fd {fd} not open for reading")
        costs = self.machine.costs
        if of.pipe is not None:
            if offset is not None:
                raise err(Errno.ESPIPE, "pread on a pipe")
            data = of.pipe.read(length)  # may raise WouldBlock
            self._charge(costs.io_base_ns + costs.copy_cost(len(data)), "io")
            self.machine.wake_pipe(of.pipe)  # freed space wakes writers
            return data
        pos = of.offset if offset is None else offset
        data = self.machine.fs.read_at(of.inode, pos, length)
        if offset is None:
            of.offset = pos + len(data)
        of.inode = self.machine.fs.touch_atime(of.inode, self.machine.clock.now_ns)
        self._charge(costs.io_base_ns + costs.copy_cost(len(data)), "io")
        return data

    def _write_common(self, task: Task, fd: int, data: bytes, offset: int | None) -> int:
        of = self._fd(task, fd)
        if not of.flags.writable:
            raise err(Errno.EBADF, f"fd {fd} not open for writing")
        costs = self.machine.costs
        now = self.machine.clock.now_ns
        if of.pipe is not None:
            if offset is not None:
                raise err(Errno.ESPIPE, "pwrite on a pipe")
            if of.pipe.readers == 0:
                raise err(Errno.EPIPE, "all read ends closed")
            n = of.pipe.write(data)  # may raise WouldBlock when full
            self._charge(costs.io_base_ns + costs.copy_cost(n), "io")
            self.machine.wake_pipe(of.pipe)  # new data wakes readers
            return n
        if of.flags & OpenFlags.O_APPEND and offset is None:
            of.offset = self.machine.fs.current(of.inode).size
        pos = of.offset if offset is None else offset
        n = self.machine.fs.write_at(of.inode, pos, data, now)
        if offset is None:
            of.offset = pos + n
        self._charge(costs.io_base_ns + costs.copy_cost(n), "io")
        return n

    def do_read(self, task: Task, fd: int, addr: int, length: int) -> int:
        data = self._read_common(task, fd, length, None)
        self._mem(task).write(addr, data)
        return len(data)

    def do_pread(self, task: Task, fd: int, addr: int, length: int, offset: int) -> int:
        data = self._read_common(task, fd, length, offset)
        self._mem(task).write(addr, data)
        return len(data)

    def do_write(self, task: Task, fd: int, addr: int, length: int) -> int:
        data = self._mem(task).read(addr, length)
        return self._write_common(task, fd, data, None)

    def do_pwrite(self, task: Task, fd: int, addr: int, length: int, offset: int) -> int:
        data = self._mem(task).read(addr, length)
        return self._write_common(task, fd, data, offset)

    # Byte-oriented variants for host agents without an address space.

    def do_read_bytes(self, task: Task, fd: int, length: int) -> bytes:
        return self._read_common(task, fd, length, None)

    def do_pread_bytes(self, task: Task, fd: int, length: int, offset: int) -> bytes:
        return self._read_common(task, fd, length, offset)

    def do_write_bytes(self, task: Task, fd: int, data: bytes) -> int:
        return self._write_common(task, fd, data, None)

    def do_pwrite_bytes(self, task: Task, fd: int, data: bytes, offset: int) -> int:
        return self._write_common(task, fd, data, offset)

    def do_lseek(self, task: Task, fd: int, offset: int, whence: int = SEEK_SET) -> int:
        of = self._fd(task, fd)
        if of.pipe is not None:
            raise err(Errno.ESPIPE, "pipes are not seekable")
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = of.offset + offset
        elif whence == SEEK_END:
            new = self.machine.fs.current(of.inode).size + offset
        else:
            raise err(Errno.EINVAL, f"whence {whence}")
        if new < 0:
            raise err(Errno.EINVAL, "negative file offset")
        of.offset = new
        return new

    def do_fstat(self, task: Task, fd: int) -> StatResult:
        self._charge(self.machine.costs.inode_op_ns, "vfs")
        of = self._fd(task, fd)
        if of.pipe is not None:
            return StatResult(
                st_ino=0,
                st_mode=stat_mod.S_IFIFO | 0o600,
                st_nlink=1,
                st_uid=task.cred.uid,
                st_gid=task.cred.gid,
                st_size=len(of.pipe.buffer),
                st_atime_ns=0,
                st_mtime_ns=0,
                st_ctime_ns=0,
            )
        return stat_of(self.machine.fs.current(of.inode))

    def do_ftruncate(self, task: Task, fd: int, length: int) -> int:
        of = self._fd(task, fd)
        if of.pipe is not None:
            raise err(Errno.EINVAL, "cannot truncate a pipe")
        if not of.flags.writable:
            raise err(Errno.EBADF, f"fd {fd} not open for writing")
        of.inode = self.machine.fs.truncate(of.inode, length, self.machine.clock.now_ns)
        self._charge(self.machine.costs.inode_op_ns, "io")
        return 0

    # ------------------------------------------------------------------ #
    # path-based metadata
    # ------------------------------------------------------------------ #

    def do_stat(self, task: Task, path: str) -> StatResult:
        res = self._resolve(task, path)
        self._charge(self.machine.costs.inode_op_ns, "vfs")
        return stat_of(res.require())

    def do_lstat(self, task: Task, path: str) -> StatResult:
        res = self._resolve(task, path, follow=False)
        self._charge(self.machine.costs.inode_op_ns, "vfs")
        return stat_of(res.require())

    def do_access(self, task: Task, path: str, mode: int) -> int:
        res = self._resolve(task, path)
        node = res.require()
        if mode != F_OK:
            self._check_perm(task, node, mode)
        return 0

    def do_readlink(self, task: Task, path: str) -> str:
        res = self._resolve(task, path, follow=False)
        node = res.require()
        if not node.is_symlink:
            raise err(Errno.EINVAL, path)
        return node.symlink_target

    def do_chmod(self, task: Task, path: str, mode: int) -> int:
        res = self._resolve(task, path)
        node = res.require()
        if task.cred.uid not in (0, node.uid):
            raise err(Errno.EPERM, path)
        self.machine.fs.set_mode(node, mode, self.machine.clock.now_ns)
        self._charge(self.machine.costs.inode_op_ns, "vfs")
        return 0

    def do_chown(self, task: Task, path: str, uid: int, gid: int) -> int:
        if not task.cred.is_root:
            raise err(Errno.EPERM, "chown requires root")
        res = self._resolve(task, path)
        node = res.require()
        self.machine.fs.set_owner(node, uid, gid, self.machine.clock.now_ns)
        self._charge(self.machine.costs.inode_op_ns, "vfs")
        return 0

    def do_truncate(self, task: Task, path: str, length: int) -> int:
        res = self._resolve(task, path)
        node = res.require()
        self._check_perm(task, node, 2)
        self.machine.fs.truncate(node, length, self.machine.clock.now_ns)
        return 0

    # ------------------------------------------------------------------ #
    # namespace mutation
    # ------------------------------------------------------------------ #

    def do_mkdir(self, task: Task, path: str, mode: int = 0o755) -> int:
        res = self._resolve(task, path)
        if res.exists:
            raise err(Errno.EEXIST, path)
        self._check_perm(task, res.parent, 2)
        self.machine.fs.mkdir(
            res.parent,
            res.name,
            task.cred.uid,
            task.cred.gid,
            mode & ~task.umask,
            self.machine.clock.now_ns,
        )
        return 0

    def do_rmdir(self, task: Task, path: str) -> int:
        res = self._resolve(task, path, follow=False)
        res.require()
        self._check_perm(task, res.parent, 2)
        self.machine.fs.rmdir(res.parent, res.name, self.machine.clock.now_ns)
        return 0

    def do_unlink(self, task: Task, path: str) -> int:
        res = self._resolve(task, path, follow=False)
        res.require()
        self._check_perm(task, res.parent, 2)
        self.machine.fs.unlink(res.parent, res.name, self.machine.clock.now_ns)
        return 0

    def do_rename(self, task: Task, oldpath: str, newpath: str) -> int:
        src = self._resolve(task, oldpath, follow=False)
        src.require()
        dst = self._resolve(task, newpath, follow=False)
        self._check_perm(task, src.parent, 2)
        self._check_perm(task, dst.parent, 2)
        self.machine.fs.rename(
            src.parent, src.name, dst.parent, dst.name, self.machine.clock.now_ns
        )
        return 0

    def do_symlink(self, task: Task, target: str, linkpath: str) -> int:
        res = self._resolve(task, linkpath, follow=False)
        if res.exists:
            raise err(Errno.EEXIST, linkpath)
        self._check_perm(task, res.parent, 2)
        self.machine.fs.symlink(
            res.parent, res.name, target, task.cred.uid, task.cred.gid,
            self.machine.clock.now_ns,
        )
        return 0

    def do_link(self, task: Task, oldpath: str, newpath: str) -> int:
        src = self._resolve(task, oldpath, follow=False)
        node = src.require()
        dst = self._resolve(task, newpath, follow=False)
        if dst.exists:
            raise err(Errno.EEXIST, newpath)
        self._check_perm(task, dst.parent, 2)
        self.machine.fs.link(dst.parent, dst.name, node, self.machine.clock.now_ns)
        return 0

    def do_readdir(self, task: Task, path: str) -> list[str]:
        res = self._resolve(task, path)
        node = res.require()
        self._check_perm(task, node, 4)
        names = self.machine.fs.readdir(node)
        self._charge(
            self.machine.costs.inode_op_ns + self.machine.costs.copy_cost(sum(map(len, names))),
            "vfs",
        )
        return names

    def do_chdir(self, task: Task, path: str) -> int:
        res = self._resolve(task, path)
        node = res.require()
        if not node.is_dir:
            raise err(Errno.ENOTDIR, path)
        self._check_perm(task, node, 1)
        task.cwd = normalize(join(res.dir_path, res.name)) if res.name else "/"
        return 0

    def do_getcwd(self, task: Task) -> str:
        return task.cwd

    # ------------------------------------------------------------------ #
    # processes & signals (delegated to the machine's process table)
    # ------------------------------------------------------------------ #

    def do_spawn(self, task: Task, path: str, args: tuple = ()) -> int:
        return self.machine.spawn_from_file(task, path, list(args))

    def do_thread(self, task: Task, factory, args: tuple = ()) -> int:
        """Create a thread of the calling process (shared Task)."""
        parent = self.machine.process_of(task)
        if parent is None:
            raise err(Errno.EINVAL, "host agents cannot spawn threads")
        if not callable(factory):
            raise err(Errno.EINVAL, "thread start routine must be callable")
        proc = self.machine.spawn_thread(
            parent, factory, list(args), comm=f"{parent.comm}:thr"
        )
        return proc.pid

    def do_kill(self, task: Task, pid: int, sig: int) -> int:
        return self.machine.deliver_signal(task, pid, sig)

    # exit / waitpid never reach the executor: the machine's scheduler
    # handles them before dispatch because they change scheduling state.

    # ------------------------------------------------------------------ #
    # deliberately unimplemented calls (§6: "a few system calls have not
    # been implemented", e.g. mount and ptrace-inside-parrot)
    # ------------------------------------------------------------------ #

    def do_mount(self, task: Task, *args) -> int:
        raise err(Errno.ENOSYS, "mount is administrator-only and unimplemented")

    def do_ptrace(self, task: Task, *args) -> int:
        raise err(Errno.ENOSYS, "nested ptrace is unimplemented")


def check(result):
    """Raise :class:`KernelError` if ``result`` is a negative errno int.

    Workload bodies use this to turn the Unix return convention back into
    exceptions where that reads better: ``check((yield proc.sys.open(...)))``.
    """
    if isinstance(result, int) and result < 0:
        raise KernelErrorFromResult(result)
    return result


class KernelErrorFromResult(Exception):
    """A checked syscall failure, carrying the errno."""

    def __init__(self, result: int) -> None:
        self.errno = Errno(-result)
        super().__init__(self.errno.name)
