"""Minimal Unix signal model.

Identity boxing constrains signals: "a process within an identity box may
only send signals to other processes with the same identity" (§3).  To test
that containment we need just enough of a signal model for ``kill(2)`` to
work — numbers, a permission rule, and default terminate/ignore actions.
"""

from __future__ import annotations

import enum


class Signal(enum.IntEnum):
    """Signals the simulated kernel knows about."""

    SIGHUP = 1
    SIGINT = 2
    SIGKILL = 9
    SIGUSR1 = 10
    SIGUSR2 = 12
    SIGTERM = 15
    SIGCHLD = 17
    SIGCONT = 18
    SIGSTOP = 19


#: Signals whose default action terminates the receiving process.
FATAL_SIGNALS = frozenset(
    {Signal.SIGHUP, Signal.SIGINT, Signal.SIGKILL, Signal.SIGTERM, Signal.SIGUSR1, Signal.SIGUSR2}
)

#: Signals ignored by default.
IGNORED_SIGNALS = frozenset({Signal.SIGCHLD, Signal.SIGCONT})


def default_is_fatal(sig: Signal) -> bool:
    """Whether the default disposition of ``sig`` terminates the process."""
    return sig in FATAL_SIGNALS


def can_signal_unix(sender_uid: int, target_uid: int) -> bool:
    """Classic Unix rule: root may signal anyone; others only their own uid."""
    return sender_uid == 0 or sender_uid == target_uid
