"""Inode structures for the simulated filesystem.

A faithful-enough Unix inode model: files, directories and symlinks, with
mode bits, an owner uid/gid, a link count, and timestamps in simulated
nanoseconds.  Hard links work the way they do on a real Unix — several
directory entries naming one inode — which matters to the paper: Parrot must
*refuse* hard links to files the boxed user cannot access, because there is
no way to find "the" containing directory of a multiply-linked inode to
check its ACL (§6, "Overlooking indirect paths").
"""

from __future__ import annotations

import enum
import stat as stat_mod
from dataclasses import dataclass, field


class FileType(enum.Enum):
    """Kind of object an inode describes."""

    FILE = "file"
    DIR = "dir"
    SYMLINK = "symlink"


# Permission-bit aliases (octal, as in <sys/stat.h>).
S_IRUSR = 0o400
S_IWUSR = 0o200
S_IXUSR = 0o100
S_IRGRP = 0o040
S_IWGRP = 0o020
S_IXGRP = 0o010
S_IROTH = 0o004
S_IWOTH = 0o002
S_IXOTH = 0o001

DEFAULT_FILE_MODE = 0o644
DEFAULT_DIR_MODE = 0o755


@dataclass
class Inode:
    """One filesystem object.

    ``data`` is the byte content for regular files; ``entries`` maps names to
    inode numbers for directories; ``symlink_target`` holds the link text for
    symlinks.  Exactly one of the three is meaningful, selected by ``ftype``.
    """

    ino: int
    ftype: FileType
    mode: int
    uid: int
    gid: int
    nlink: int = 1
    data: bytearray = field(default_factory=bytearray)
    entries: dict[str, int] = field(default_factory=dict)
    symlink_target: str = ""
    atime_ns: int = 0
    mtime_ns: int = 0
    ctime_ns: int = 0
    #: False while ``data`` is structurally shared with a frozen snapshot
    #: copy; the store takes a private copy before any data mutation, so a
    #: metadata-only touch (chmod, atime) never pays for the file bytes.
    owns_data: bool = True

    def clone(self) -> "Inode":
        """Copy-on-write twin for the mutable layer of a snapshotted store.

        Metadata and directory entries are copied (they are small and
        always mutable); file bytes stay shared with the frozen original
        until a data write claims ownership (see ``LocalFS._own_data``).
        """
        twin = Inode(
            ino=self.ino,
            ftype=self.ftype,
            mode=self.mode,
            uid=self.uid,
            gid=self.gid,
            nlink=self.nlink,
            data=self.data,
            entries=dict(self.entries),
            symlink_target=self.symlink_target,
            atime_ns=self.atime_ns,
            mtime_ns=self.mtime_ns,
            ctime_ns=self.ctime_ns,
            owns_data=False,
        )
        return twin

    @property
    def size(self) -> int:
        """Apparent size in bytes (symlinks report target length, like Linux)."""
        if self.ftype is FileType.FILE:
            return len(self.data)
        if self.ftype is FileType.SYMLINK:
            return len(self.symlink_target)
        return len(self.entries)

    @property
    def is_dir(self) -> bool:
        return self.ftype is FileType.DIR

    @property
    def is_file(self) -> bool:
        return self.ftype is FileType.FILE

    @property
    def is_symlink(self) -> bool:
        return self.ftype is FileType.SYMLINK

    def st_mode(self) -> int:
        """Full ``st_mode`` word combining file type and permission bits."""
        type_bits = {
            FileType.FILE: stat_mod.S_IFREG,
            FileType.DIR: stat_mod.S_IFDIR,
            FileType.SYMLINK: stat_mod.S_IFLNK,
        }[self.ftype]
        return type_bits | (self.mode & 0o7777)


@dataclass(frozen=True)
class StatResult:
    """What ``stat(2)`` returns; a frozen snapshot of an inode's metadata."""

    st_ino: int
    st_mode: int
    st_nlink: int
    st_uid: int
    st_gid: int
    st_size: int
    st_atime_ns: int
    st_mtime_ns: int
    st_ctime_ns: int

    @property
    def is_dir(self) -> bool:
        return stat_mod.S_ISDIR(self.st_mode)

    @property
    def is_file(self) -> bool:
        return stat_mod.S_ISREG(self.st_mode)

    @property
    def is_symlink(self) -> bool:
        return stat_mod.S_ISLNK(self.st_mode)


def stat_of(inode: Inode) -> StatResult:
    """Build a :class:`StatResult` snapshot from an inode."""
    return StatResult(
        st_ino=inode.ino,
        st_mode=inode.st_mode(),
        st_nlink=inode.nlink,
        st_uid=inode.uid,
        st_gid=inode.gid,
        st_size=inode.size,
        st_atime_ns=inode.atime_ns,
        st_mtime_ns=inode.mtime_ns,
        st_ctime_ns=inode.ctime_ns,
    )


def access_allowed(inode: Inode, uid: int, gid: int, want: int) -> bool:
    """Classic Unix permission check.

    ``want`` is a 3-bit mask (4=read, 2=write, 1=execute).  uid 0 (root)
    bypasses read/write checks and needs any-execute for execute, as on
    Linux.
    """
    if uid == 0:
        if want & 1:
            return bool(inode.mode & (S_IXUSR | S_IXGRP | S_IXOTH))
        return True
    if uid == inode.uid:
        bits = (inode.mode >> 6) & 0o7
    elif gid == inode.gid:
        bits = (inode.mode >> 3) & 0o7
    else:
        bits = inode.mode & 0o7
    return (bits & want) == want
