"""Processes, tasks, and the syscall-request protocol.

A simulated process body is a Python *generator*: it yields
:class:`Request` objects (syscalls or compute bursts) and is resumed with
each result.  This gives us real suspension points — the scheduler can stop
a process at a syscall boundary, hand control to a ptrace supervisor, rewrite
the "registers", and resume it — which is exactly the control flow Parrot
exploits (Figure 4 of the paper).

A :class:`Task` carries the kernel-visible execution context (credentials,
descriptor table, working directory).  Both simulated processes and
host-level agents (the interposition supervisor, the Chirp server) own a
Task, so the same syscall implementations serve both; host agents simply are
not scheduled or traced.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterator

from .fdtable import FDTable
from .memory import AddressSpace
from .users import Credentials

#: A process body: generator yielding Requests, resumed with results.
Body = Generator["Request", Any, Any]
#: A program: factory producing a body for a fresh process.
ProgramFactory = Callable[["ProcContext", "list[str]"], Body]


class ProcessState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"  #: waiting (waitpid) or stopped under trace
    ZOMBIE = "zombie"  #: exited, not yet reaped
    DEAD = "dead"  #: reaped


class RequestKind(enum.Enum):
    SYSCALL = "syscall"
    COMPUTE = "compute"


@dataclass
class Request:
    """What a process body yields to the kernel."""

    kind: RequestKind
    name: str = ""
    args: tuple = ()
    compute_ns: int = 0


@dataclass
class Regs:
    """The "registers" of a stopped process, as a tracer sees them.

    ``name``/``args`` stand in for the syscall number and argument
    registers; ``retval`` for the return register.  A ptrace supervisor
    rewrites these between the entry and exit stops — nullifying a call
    means setting ``name = "getpid"`` (§5).
    """

    name: str
    args: tuple
    retval: Any = None
    #: set by a tracer to force a return value without executing anything
    forced: bool = False


@dataclass
class Task:
    """Kernel-visible execution context shared by processes and host agents.

    ``memory`` is the address space for simulated processes; host agents
    (supervisor, Chirp server) pass ``None`` and use the byte-oriented
    syscall variants instead of address-based ones.
    """

    cred: Credentials
    fdtable: FDTable = field(default_factory=FDTable)
    cwd: str = "/"
    umask: int = 0o022
    memory: AddressSpace | None = None


class SysProxy:
    """Ergonomic constructor for syscall Requests.

    ``proc.sys.open("/x", flags)`` builds the Request the body then yields;
    no I/O happens until the kernel receives it.  Keeping this as a dumb
    constructor (rather than performing the call) is what preserves the
    suspension point.
    """

    def __getattr__(self, name: str):
        def build(*args: Any) -> Request:
            return Request(RequestKind.SYSCALL, name=name, args=args)

        build.__name__ = name
        return build


@dataclass
class ProcContext:
    """Handle a process body uses to talk to its own process.

    Exposes memory allocation (library-level, not a syscall) and the
    :class:`SysProxy`.  Bodies receive this as their first argument.
    """

    pid: int
    memory: AddressSpace
    sys: SysProxy = field(default_factory=SysProxy)
    #: arbitrary per-process scratch for workload bodies
    scratch: dict[str, Any] = field(default_factory=dict)

    def alloc(self, size: int) -> int:
        """Allocate a buffer in this process's address space."""
        return self.memory.alloc(size)

    def alloc_bytes(self, data: bytes) -> int:
        """Allocate and fill a buffer; returns its address."""
        return self.memory.alloc_bytes(data)

    def read_buffer(self, addr: int, n: int) -> bytes:
        """Read back a buffer (what a real program would just dereference)."""
        return self.memory.read(addr, n)

    @staticmethod
    def compute(ns: int = 0, us: int = 0, ms: int = 0, s: int = 0) -> Request:
        """Build a compute-burst request (burns simulated CPU time)."""
        total = ns + us * 1_000 + ms * 1_000_000 + s * 1_000_000_000
        return Request(RequestKind.COMPUTE, compute_ns=total)


@dataclass
class Process:
    """One simulated process."""

    pid: int
    ppid: int
    task: Task
    context: ProcContext
    body: Body
    state: ProcessState = ProcessState.READY
    exit_status: int | None = None
    #: result to deliver at next resume
    pending_result: Any = None
    #: registers visible while stopped under trace
    regs: Regs | None = None
    #: pid of the tracer-owning supervisor, if traced (0 = untraced)
    tracer: "Any" = None
    #: children pids (live or zombie)
    children: set[int] = field(default_factory=set)
    #: processes blocked in waitpid on us are woken via the scheduler
    waiting_for_child: bool = False
    #: request to re-execute after a pipe wakeup (None when not parked)
    pending_retry: Request | None = None
    #: threads share their creator's Task (memory, descriptors, cwd); the
    #: shared state outlives any single thread's exit
    is_thread: bool = False
    #: name for diagnostics (program path or label)
    comm: str = "?"

    @property
    def alive(self) -> bool:
        return self.state not in (ProcessState.ZOMBIE, ProcessState.DEAD)

    @property
    def inert(self) -> bool:
        """True when this record can ride a world snapshot unchanged.

        Generator bodies cannot be copied, so a snapshot requires every
        process to be finished (zombie or reaped); inert records are
        shared with forks by reference — nothing ever resumes or mutates
        them, and pids are allocated monotonically so they cannot clash.
        """
        return self.state in (ProcessState.ZOMBIE, ProcessState.DEAD)


def iterate_body(body: Body) -> Iterator[Request]:  # pragma: no cover - helper for tests
    """Drain a body ignoring results (only for trivial test bodies)."""
    try:
        req = body.send(None)
        while True:
            yield req
            req = body.send(0)
    except StopIteration:
        return
