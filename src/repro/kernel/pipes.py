"""Pipes: bounded in-kernel byte streams with blocking semantics.

§6 of the paper: "Multi-threaded applications and inter-process
communication are supported in the same way as in a real kernel.  Blocking
system calls place the calling thread or process into a wait state so that
the supervisor can wait upon and service system calls by other threads and
processes."  This module supplies the kernel half of that claim: a classic
POSIX pipe — bounded buffer, EOF when the last writer closes, EPIPE when
the last reader is gone, and *blocking* reads/writes that park the calling
process until its peer makes progress.

Blocking is signalled to the scheduler with :class:`WouldBlock`, which is
deliberately **not** a :class:`~repro.kernel.errno.KernelError`: the
syscall dispatcher converts KernelErrors into ``-errno`` results, whereas
WouldBlock must travel up to the scheduler, which parks the process and
retries the call when the pipe turns over.  Host agents (which cannot
block) receive ``-EAGAIN`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errno import Errno, err

#: Default pipe capacity, as on Linux.
PIPE_CAPACITY = 65536


class WouldBlock(Exception):
    """A pipe operation must wait; the scheduler parks the caller.

    ``mode`` is ``"read"`` or ``"write"``; the scheduler registers the
    process on the matching wait list of :attr:`pipe`.
    """

    def __init__(self, pipe: "Pipe", mode: str) -> None:
        self.pipe = pipe
        self.mode = mode
        super().__init__(f"pipe would block on {mode}")


@dataclass
class Pipe:
    """One pipe: a bounded FIFO of bytes plus end-of-stream bookkeeping."""

    capacity: int = PIPE_CAPACITY
    buffer: bytearray = field(default_factory=bytearray)
    #: open descriptor counts per end (maintained by the fd layer)
    readers: int = 0
    writers: int = 0
    #: pids parked waiting for data / for space
    waiting_readers: list[int] = field(default_factory=list)
    waiting_writers: list[int] = field(default_factory=list)

    @property
    def free_space(self) -> int:
        return self.capacity - len(self.buffer)

    # ------------------------------------------------------------------ #
    # data path (raises WouldBlock when the caller must wait)
    # ------------------------------------------------------------------ #

    def read(self, n: int) -> bytes:
        """Take up to ``n`` bytes; b"" at EOF; WouldBlock when empty but
        writers remain."""
        if n <= 0:
            return b""
        if self.buffer:
            data = bytes(self.buffer[:n])
            del self.buffer[: len(data)]
            return data
        if self.writers == 0:
            return b""  # EOF
        raise WouldBlock(self, "read")

    def write(self, data: bytes) -> int:
        """Append up to ``len(data)`` bytes (partial writes allowed);
        WouldBlock when completely full; caller must check readers>0 first
        (EPIPE policy lives at the syscall layer)."""
        if not data:
            return 0
        space = self.free_space
        if space == 0:
            raise WouldBlock(self, "write")
        taken = data[:space]
        self.buffer.extend(taken)
        return len(taken)

    # ------------------------------------------------------------------ #
    # wait-list management (the scheduler drains these on progress)
    # ------------------------------------------------------------------ #

    def park(self, pid: int, mode: str) -> None:
        lane = self.waiting_readers if mode == "read" else self.waiting_writers
        if pid not in lane:
            lane.append(pid)

    def take_wakeable(self) -> list[int]:
        """Pids that may make progress now (drained from the wait lists).

        Readers wake when data arrived or every writer is gone (EOF);
        writers wake when space appeared or every reader is gone (EPIPE
        must be delivered, not slept through).
        """
        woken: list[int] = []
        if self.buffer or self.writers == 0:
            woken.extend(self.waiting_readers)
            self.waiting_readers.clear()
        if self.free_space > 0 or self.readers == 0:
            woken.extend(self.waiting_writers)
            self.waiting_writers.clear()
        return woken

    # -- end-of-life bookkeeping (called by the fd layer) ------------------ #

    def add_end(self, end: str) -> None:
        if end == "r":
            self.readers += 1
        else:
            self.writers += 1

    def drop_end(self, end: str) -> None:
        if end == "r":
            self.readers -= 1
        else:
            self.writers -= 1

    # ------------------------------------------------------------------ #
    # snapshot protocol (see repro.kernel.Snapshotable)
    # ------------------------------------------------------------------ #

    def snapshot_state(self) -> object:
        """Capture buffered bytes and end counts; EBUSY with parked pids
        (a waiting process is scheduler state a pipe cannot carry)."""
        if self.waiting_readers or self.waiting_writers:
            raise err(Errno.EBUSY, "cannot snapshot a pipe with parked processes")
        return (self.capacity, bytes(self.buffer), self.readers, self.writers)

    def restore_state(self, state: object) -> None:
        capacity, buffered, readers, writers = state
        self.capacity = capacity
        self.buffer = bytearray(buffered)
        self.readers = readers
        self.writers = writers
        self.waiting_readers.clear()
        self.waiting_writers.clear()
