"""In-memory filesystem: the inode table and directory-level operations.

This is the storage half of the VFS split: :class:`LocalFS` owns inodes and
implements single-directory operations (create, link, unlink, readdir...),
while :mod:`repro.kernel.vfs` owns multi-component path resolution and the
symlink-following loop.  Keeping them separate keeps each testable on its own
and mirrors how a real kernel separates the namei machinery from a concrete
filesystem implementation.

The inode table is a :class:`~repro.kernel.cow.CowMap`, which makes the
whole filesystem snapshotable in O(1) and forkable with structural sharing:
after a snapshot, the first mutation of any inode clones just that inode
into the mutable layer (:meth:`LocalFS.writable`); file *bytes* stay shared
even then, until a data write claims them (:meth:`LocalFS._own_data`).
Callers therefore never mutate an inode object directly — every mutation
goes through a ``LocalFS`` method so the copy-on-write step cannot be
skipped.
"""

from __future__ import annotations

from .cow import CowMap
from .errno import Errno, err
from .inode import (
    DEFAULT_DIR_MODE,
    DEFAULT_FILE_MODE,
    FileType,
    Inode,
)

#: Names every directory implicitly resolves; never stored in ``entries``.
DOT_NAMES = (".", "..")

NAME_MAX = 255


def check_name(name: str) -> None:
    """Validate a single directory-entry name."""
    if not name or name in DOT_NAMES:
        raise err(Errno.EINVAL, f"bad entry name {name!r}")
    if "/" in name or "\x00" in name:
        raise err(Errno.EINVAL, f"bad entry name {name!r}")
    if len(name) > NAME_MAX:
        raise err(Errno.ENAMETOOLONG, name[:32] + "...")


class LocalFS:
    """A single in-memory filesystem instance (copy-on-write snapshotable)."""

    def __init__(self) -> None:
        self._inodes: CowMap = CowMap()
        self._next_ino = 2  # 1 is reserved for the root, allocated below
        #: Map of inode number -> parent inode number, maintained for
        #: directories only (files can be multiply linked; directories cannot).
        self._dir_parent: CowMap = CowMap()
        #: Open-but-unlinked inodes (nlink 0 but a description still holds
        #: them, POSIX-style).  Always the *writable* incarnation; never part
        #: of a snapshot — an unlinked file dies with its world.
        self._orphans: dict[int, Inode] = {}
        root = Inode(ino=1, ftype=FileType.DIR, mode=DEFAULT_DIR_MODE, uid=0, gid=0, nlink=2)
        self._inodes[1] = root
        self._dir_parent[1] = 1

    # ------------------------------------------------------------------ #
    # inode access
    # ------------------------------------------------------------------ #

    @property
    def root(self) -> Inode:
        return self._inodes[1]

    def inode(self, ino: int) -> Inode:
        """Look up an inode by number; EIO on a dangling reference."""
        node = self._inodes.get(ino)
        if node is None:
            raise err(Errno.EIO, f"dangling inode {ino}")
        return node

    def current(self, node: Inode) -> Inode:
        """The live incarnation of ``node`` (which may be a stale pre-CoW
        copy held by an open file description)."""
        got = self._inodes.get(node.ino)
        if got is not None:
            return got
        return self._orphans.get(node.ino, node)

    def writable(self, node: Inode) -> Inode:
        """The mutable incarnation of ``node``, cloning on first touch.

        After a snapshot the stored inode is frozen in a shared layer; the
        first mutation copies exactly that one inode — the CoW shard —
        into the mutable top layer.  Before any snapshot (and on every
        later touch) this is a plain lookup with no copying.
        """
        ino = node.ino
        if self._inodes.in_top(ino):
            return self._inodes[ino]
        stored = self._inodes.get(ino)
        if stored is None:
            # open-but-unlinked: the orphan registry holds the writable copy
            return self._orphans.get(ino, node)
        clone = stored.clone()
        self._inodes[ino] = clone
        return clone

    def _own_data(self, node: Inode) -> None:
        """Give a writable inode private file bytes before a data mutation."""
        if not node.owns_data:
            node.data = bytearray(node.data)
            node.owns_data = True

    def _alloc(self, ftype: FileType, mode: int, uid: int, gid: int, now_ns: int) -> Inode:
        ino = self._next_ino
        self._next_ino += 1
        node = Inode(
            ino=ino,
            ftype=ftype,
            mode=mode,
            uid=uid,
            gid=gid,
            atime_ns=now_ns,
            mtime_ns=now_ns,
            ctime_ns=now_ns,
        )
        self._inodes[ino] = node
        return node

    # ------------------------------------------------------------------ #
    # directory operations (single component, no path walking)
    # ------------------------------------------------------------------ #

    def lookup(self, directory: Inode, name: str) -> Inode:
        """Resolve ``name`` within ``directory``; ENOENT if absent."""
        if not directory.is_dir:
            raise err(Errno.ENOTDIR, f"inode {directory.ino}")
        if name == ".":
            return directory
        if name == "..":
            return self.inode(self._dir_parent[directory.ino])
        ino = directory.entries.get(name)
        if ino is None:
            raise err(Errno.ENOENT, name)
        return self.inode(ino)

    def parent_of(self, directory: Inode) -> Inode:
        """Parent of a directory (root is its own parent)."""
        if not directory.is_dir:
            raise err(Errno.ENOTDIR, f"inode {directory.ino}")
        return self.inode(self._dir_parent[directory.ino])

    def create_file(
        self,
        directory: Inode,
        name: str,
        uid: int,
        gid: int,
        mode: int = DEFAULT_FILE_MODE,
        now_ns: int = 0,
    ) -> Inode:
        """Create an empty regular file entry; EEXIST if the name is taken."""
        check_name(name)
        if not directory.is_dir:
            raise err(Errno.ENOTDIR, f"inode {directory.ino}")
        if name in directory.entries:
            raise err(Errno.EEXIST, name)
        directory = self.writable(directory)
        node = self._alloc(FileType.FILE, mode, uid, gid, now_ns)
        directory.entries[name] = node.ino
        directory.mtime_ns = now_ns
        return node

    def mkdir(
        self,
        directory: Inode,
        name: str,
        uid: int,
        gid: int,
        mode: int = DEFAULT_DIR_MODE,
        now_ns: int = 0,
    ) -> Inode:
        """Create a subdirectory; EEXIST if the name is taken."""
        check_name(name)
        if not directory.is_dir:
            raise err(Errno.ENOTDIR, f"inode {directory.ino}")
        if name in directory.entries:
            raise err(Errno.EEXIST, name)
        directory = self.writable(directory)
        node = self._alloc(FileType.DIR, mode, uid, gid, now_ns)
        node.nlink = 2  # "." plus the entry in the parent
        directory.entries[name] = node.ino
        directory.nlink += 1  # the child's ".."
        directory.mtime_ns = now_ns
        self._dir_parent[node.ino] = directory.ino
        return node

    def symlink(
        self,
        directory: Inode,
        name: str,
        target: str,
        uid: int,
        gid: int,
        now_ns: int = 0,
    ) -> Inode:
        """Create a symbolic link whose text is ``target``."""
        check_name(name)
        if not directory.is_dir:
            raise err(Errno.ENOTDIR, f"inode {directory.ino}")
        if name in directory.entries:
            raise err(Errno.EEXIST, name)
        directory = self.writable(directory)
        node = self._alloc(FileType.SYMLINK, 0o777, uid, gid, now_ns)
        node.symlink_target = target
        directory.entries[name] = node.ino
        directory.mtime_ns = now_ns
        return node

    def link(self, directory: Inode, name: str, target: Inode, now_ns: int = 0) -> None:
        """Create a hard link ``name`` -> ``target`` (EPERM on directories)."""
        check_name(name)
        if not directory.is_dir:
            raise err(Errno.ENOTDIR, f"inode {directory.ino}")
        if target.is_dir:
            raise err(Errno.EPERM, "hard links to directories are forbidden")
        if name in directory.entries:
            raise err(Errno.EEXIST, name)
        directory = self.writable(directory)
        target = self.writable(target)
        directory.entries[name] = target.ino
        target.nlink += 1
        target.ctime_ns = now_ns
        directory.mtime_ns = now_ns

    def unlink(self, directory: Inode, name: str, now_ns: int = 0) -> None:
        """Remove a non-directory entry, freeing the inode at nlink zero."""
        node = self.lookup(directory, name)
        if node.is_dir:
            raise err(Errno.EISDIR, name)
        directory = self.writable(directory)
        node = self.writable(node)
        del directory.entries[name]
        directory.mtime_ns = now_ns
        node.nlink -= 1
        node.ctime_ns = now_ns
        if node.nlink == 0:
            del self._inodes[node.ino]
            # POSIX: the file survives as long as a description holds it
            self._orphans[node.ino] = node

    def rmdir(self, directory: Inode, name: str, now_ns: int = 0) -> None:
        """Remove an empty subdirectory."""
        node = self.lookup(directory, name)
        if not node.is_dir:
            raise err(Errno.ENOTDIR, name)
        if node.entries:
            raise err(Errno.ENOTEMPTY, name)
        directory = self.writable(directory)
        node = self.writable(node)
        del directory.entries[name]
        directory.nlink -= 1
        directory.mtime_ns = now_ns
        del self._inodes[node.ino]
        del self._dir_parent[node.ino]
        self._orphans[node.ino] = node

    def rename(
        self,
        src_dir: Inode,
        src_name: str,
        dst_dir: Inode,
        dst_name: str,
        now_ns: int = 0,
    ) -> None:
        """Atomically move an entry, replacing a same-kind destination."""
        check_name(dst_name)
        node = self.lookup(src_dir, src_name)
        if dst_name in dst_dir.entries:
            existing = self.inode(dst_dir.entries[dst_name])
            if existing.ino == node.ino:
                # POSIX: when old and new resolve to the same existing
                # file, rename() does nothing — both links survive
                return
            if existing.is_dir != node.is_dir:
                raise err(
                    Errno.EISDIR if existing.is_dir else Errno.ENOTDIR, dst_name
                )
            if existing.is_dir:
                if existing.entries:
                    raise err(Errno.ENOTEMPTY, dst_name)
                self.rmdir(dst_dir, dst_name, now_ns)
            else:
                self.unlink(dst_dir, dst_name, now_ns)
        src_dir = self.writable(src_dir)
        dst_dir = self.writable(dst_dir)
        node = self.writable(node)
        del src_dir.entries[src_name]
        dst_dir.entries[dst_name] = node.ino
        if node.is_dir:
            self._dir_parent[node.ino] = dst_dir.ino
            src_dir.nlink -= 1
            dst_dir.nlink += 1
        src_dir.mtime_ns = now_ns
        dst_dir.mtime_ns = now_ns
        node.ctime_ns = now_ns

    def readdir(self, directory: Inode) -> list[str]:
        """Sorted entry names of a directory (no ``.``/``..``)."""
        if not directory.is_dir:
            raise err(Errno.ENOTDIR, f"inode {directory.ino}")
        return sorted(directory.entries)

    # ------------------------------------------------------------------ #
    # inode metadata mutation (the only sanctioned write paths)
    # ------------------------------------------------------------------ #

    def set_mode(self, node: Inode, mode: int, now_ns: int = 0) -> Inode:
        """chmod: replace the permission bits."""
        node = self.writable(node)
        node.mode = mode & 0o7777
        node.ctime_ns = now_ns
        return node

    def set_owner(self, node: Inode, uid: int, gid: int, now_ns: int = 0) -> Inode:
        """chown: replace owner and group."""
        node = self.writable(node)
        node.uid, node.gid = uid, gid
        node.ctime_ns = now_ns
        return node

    def touch_atime(self, node: Inode, now_ns: int) -> Inode:
        """Record an access-time update (read path)."""
        node = self.writable(node)
        node.atime_ns = now_ns
        return node

    # ------------------------------------------------------------------ #
    # file data operations
    # ------------------------------------------------------------------ #

    def read_at(self, node: Inode, offset: int, length: int) -> bytes:
        """Read up to ``length`` bytes at ``offset`` from a regular file."""
        node = self.current(node)
        if node.is_dir:
            raise err(Errno.EISDIR, f"inode {node.ino}")
        if not node.is_file:
            raise err(Errno.EINVAL, "read from non-file")
        if offset < 0 or length < 0:
            raise err(Errno.EINVAL, "negative offset or length")
        return bytes(node.data[offset : offset + length])

    def write_at(self, node: Inode, offset: int, data: bytes, now_ns: int = 0) -> int:
        """Write ``data`` at ``offset``, zero-filling any gap; returns len(data)."""
        node = self.current(node)
        if not node.is_file:
            raise err(Errno.EINVAL, "write to non-file")
        if offset < 0:
            raise err(Errno.EINVAL, "negative offset")
        if not data:
            return 0  # a zero-length write never extends the file (POSIX)
        node = self.writable(node)
        self._own_data(node)
        if offset > len(node.data):
            node.data.extend(b"\x00" * (offset - len(node.data)))
        node.data[offset : offset + len(data)] = data
        node.mtime_ns = now_ns
        return len(data)

    def truncate(self, node: Inode, length: int, now_ns: int = 0) -> Inode:
        """Set a regular file's length, extending with zeros if needed."""
        node = self.current(node)
        if not node.is_file:
            raise err(Errno.EINVAL, "truncate non-file")
        if length < 0:
            raise err(Errno.EINVAL, "negative length")
        node = self.writable(node)
        self._own_data(node)
        if length < len(node.data):
            del node.data[length:]
        else:
            node.data.extend(b"\x00" * (length - len(node.data)))
        node.mtime_ns = now_ns
        return node

    # ------------------------------------------------------------------ #
    # snapshot protocol (see repro.kernel.Snapshotable)
    # ------------------------------------------------------------------ #

    def snapshot_state(self) -> object:
        """Freeze both CoW stores; O(1).  Orphans (open-but-unlinked
        inodes) are deliberately not captured: with no link they are
        unreachable from the namespace, and descriptions holding them
        belong to the world being snapshotted, not to its forks."""
        return (self._inodes.freeze(), self._dir_parent.freeze(), self._next_ino)

    def restore_state(self, state: object) -> None:
        inode_layers, parent_layers, next_ino = state
        self._inodes.restore(inode_layers)
        self._dir_parent.restore(parent_layers)
        self._next_ino = next_ino
        self._orphans = {}

    # ------------------------------------------------------------------ #
    # invariant checks (used by property tests)
    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        """Assert structural invariants; raises AssertionError on violation."""
        referenced: dict[int, int] = {1: 1}  # root is self-referenced
        for node in self._inodes.values():
            if node.is_dir:
                assert self._dir_parent.get(node.ino) is not None, (
                    f"dir {node.ino} missing parent pointer"
                )
                for name, child_ino in node.entries.items():
                    assert child_ino in self._inodes, (
                        f"entry {name!r} in dir {node.ino} dangles to {child_ino}"
                    )
                    referenced[child_ino] = referenced.get(child_ino, 0) + 1
        for node in self._inodes.values():
            if node.is_file:
                assert node.nlink == referenced.get(node.ino, 0), (
                    f"file inode {node.ino} nlink={node.nlink} "
                    f"but {referenced.get(node.ino, 0)} references"
                )
                assert node.nlink >= 1, f"live file inode {node.ino} with nlink 0"
            elif node.is_dir and node.ino != 1:
                assert referenced.get(node.ino, 0) == 1, (
                    f"dir inode {node.ino} referenced {referenced.get(node.ino, 0)} times"
                )
