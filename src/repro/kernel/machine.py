"""The :class:`Machine`: one simulated host.

Ties together the clock/cost model, the account database, the filesystem,
the process table and scheduler, the syscall dispatcher, and the tracing
machinery.  Everything the rest of the reproduction does — identity boxes,
Chirp servers, workload runs — happens on a Machine.

Two call surfaces exist:

* **Simulated processes** yield syscall requests from generator bodies; the
  scheduler executes them, paying trap costs and, for traced processes, the
  full Figure-4 stop/peek/rewrite/resume dance.
* **Host agents** (the interposition supervisor, Chirp servers) call
  :meth:`kcall`/:meth:`kcall_x` directly with their own
  :class:`~repro.kernel.process.Task`.  They pay trap costs but are never
  traced — just as Parrot itself runs as an ordinary untraced process.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from .errno import Errno, KernelError, err
from .fdtable import FDTable
from .localfs import LocalFS
from .memory import AddressSpace
from .pipes import Pipe, WouldBlock
from .process import (
    ProcContext,
    Process,
    ProcessState,
    ProgramFactory,
    Regs,
    Request,
    RequestKind,
    Task,
)
from .ptrace import TraceSession, Tracer
from .signals import Signal, can_signal_unix, default_is_fatal
from .syscalls import SyscallExecutor
from .timing import Clock, CostModel
from .users import Credentials, UserDB
from .vfs import VFS

#: Shebang prefix marking a simulated executable file: ``#!repro:progname``.
SHEBANG = "#!repro:"

#: Exit-status encoding for signal deaths (mirrors WIFSIGNALED semantics).
SIGNAL_EXIT_BASE = 128

#: Sentinel returned by the traced-call machinery when the call blocked on
#: a pipe and the process has been parked (nothing to deliver yet).
PARKED = object()


@dataclass
class WaitResult:
    """What ``waitpid`` returns."""

    pid: int
    status: int


@dataclass(frozen=True)
class WorldSnapshot:
    """An O(1), structurally shared image of one Machine's mutable world.

    Produced by :meth:`Machine.snapshot`; consumed by :meth:`Machine.fork`
    (a new machine over this state), :meth:`Machine.restore` (rewind in
    place), or ``Machine(snapshot=...)`` (boot directly from it).  The
    heavy stores (inodes, accounts) are held as frozen CoW layers shared
    with the source machine and every fork; only divergence is ever
    copied, so taking and instantiating snapshots is O(size-of-diff).

    Not captured: live (runnable/blocked) processes — their generator
    bodies cannot be cloned, so :meth:`Machine.snapshot` demands a
    quiescent world — nor open-but-unlinked inodes, host-agent descriptor
    tables, or anything outside the kernel (live Chirp connections,
    supervisors, telemetry).  Finished process records are shared by
    reference: nothing ever resumes them, and pid allocation is monotonic.
    """

    hostname: str
    costs: CostModel
    epoch: int
    clock: object
    users: object
    fs: object
    procs: dict[int, Process]
    next_pid: int
    proc_syscalls: int
    programs: dict[str, ProgramFactory]
    taken_at_ns: int


class Machine:
    """One simulated host: kernel plus hardware cost model."""

    def __init__(
        self,
        costs: CostModel | None = None,
        hostname: str = "localhost",
        clock: Clock | None = None,
        telemetry=None,
        snapshot: WorldSnapshot | None = None,
    ) -> None:
        self.hostname = hostname
        self.costs = costs or CostModel()
        self.clock = clock if clock is not None else Clock()
        #: optional metrics sink (duck-typed; see :mod:`repro.core.telemetry`
        #: — the kernel never imports it).  When attached, every completed
        #: simulated-process syscall lands in a per-op latency histogram.
        self.telemetry = telemetry
        self.users = UserDB()
        self.fs = LocalFS()
        self.vfs = VFS(self.fs)
        self.executor = SyscallExecutor(self)
        self.trace = TraceSession(self)
        self.programs: dict[str, ProgramFactory] = {}
        self._procs: dict[int, Process] = {}
        self._next_pid = 100
        self._ready: deque[int] = deque()
        self._last_run_pid: int | None = None
        #: total syscalls dispatched by simulated processes (not host agents)
        self.proc_syscalls = 0
        #: monotone world-version counter; bumps on every restore
        self.epoch = 0
        #: identity token stamped onto descriptor tables; compared by the
        #: syscall layer so stale-world fds fail with EBADF (see ISSUE of
        #: aliasing in the class docstring of WorldSnapshot)
        self._epoch_token: object = object()
        if snapshot is not None:
            # fork-from-checkpoint: adopt the shared world state instead
            # of paying the cold bootstrap (mkdirs + passwd writes)
            self.restore(snapshot)
        else:
            self._bootstrap_fs()

    # ------------------------------------------------------------------ #
    # setup helpers
    # ------------------------------------------------------------------ #

    def _bootstrap_fs(self) -> None:
        """Create the conventional top-level directories and /etc/passwd."""
        root = self.host_task(self.users.credentials_for("root"))
        for path in ("/etc", "/home", "/tmp", "/usr", "/usr/bin", "/root"):
            self.kcall_x(root, "mkdir", path, 0o755)
        self.kcall_x(root, "chmod", "/tmp", 0o777)
        self.refresh_passwd_file()

    def refresh_passwd_file(self) -> None:
        """(Re)write /etc/passwd from the account database."""
        root = self.host_task(self.users.credentials_for("root"))
        self.write_file(root, "/etc/passwd", self.users.render_passwd().encode())

    def add_user(self, name: str, *, with_home: bool = True) -> Credentials:
        """Admin convenience: create an account, its home dir, and passwd entry."""
        root = self.host_task(self.users.credentials_for("root"))
        account = self.users.create_account(root.cred, name)
        if with_home:
            self.kcall_x(root, "mkdir", account.home, 0o755)
            self.kcall_x(root, "chown", account.home, account.uid, account.gid)
        self.refresh_passwd_file()
        return self.users.credentials_for(name)

    def host_task(self, cred: Credentials, cwd: str = "/") -> Task:
        """Execution context for a host-level agent (never scheduled)."""
        table = FDTable()
        table.epoch = self._epoch_token
        return Task(cred=cred, fdtable=table, cwd=cwd)

    # ------------------------------------------------------------------ #
    # world snapshot / fork / restore
    # ------------------------------------------------------------------ #

    def snapshot(self) -> WorldSnapshot:
        """Freeze the whole mutable world in O(1).

        Requires quiescence — no runnable or blocked process — because a
        live generator body cannot be cloned (EBUSY otherwise).  The
        returned snapshot shares its heavy state with this machine
        copy-on-write: both sides keep running at full speed and only
        pay, per touched inode/account, when they diverge.
        """
        self._require_quiescent()
        return WorldSnapshot(
            hostname=self.hostname,
            costs=self.costs,
            epoch=self.epoch,
            clock=self.clock.snapshot_state(),
            users=self.users.snapshot_state(),
            fs=self.vfs.snapshot_state(),
            procs=dict(self._procs),
            next_pid=self._next_pid,
            proc_syscalls=self.proc_syscalls,
            programs=dict(self.programs),
            taken_at_ns=self.clock.now_ns,
        )

    def fork(self, snapshot: WorldSnapshot | None = None) -> "Machine":
        """A new Machine over this world's state, O(size-of-diff).

        With no argument, snapshots the current (quiescent) world first.
        The fork gets its own clock (positioned at the snapshot instant),
        its own epoch token (parent descriptor tables are EBADF there),
        and — when this machine carries telemetry — a detached telemetry
        instance with a fresh trace lineage: the child's spans never nest
        under whatever span the parent world had open.
        """
        snap = snapshot if snapshot is not None else self.snapshot()
        fork_telemetry = None
        if self.telemetry is not None and hasattr(self.telemetry, "fork"):
            fork_telemetry = self.telemetry.fork()
        child = Machine(
            costs=snap.costs,
            hostname=snap.hostname,
            telemetry=fork_telemetry,
            snapshot=snap,
        )
        if fork_telemetry is not None:
            fork_telemetry.clock = child.clock
        return child

    def restore(self, snapshot: WorldSnapshot) -> None:
        """Rewind this machine to ``snapshot``, in place and O(diff).

        The CoW stores swap back to the snapshot's frozen layers; nothing
        is copied.  The world epoch advances past every epoch seen so
        far, so descriptor tables stamped before the restore (including
        ones from abandoned futures of the same snapshot) fail with
        EBADF rather than aliasing the rewound inodes.  Scheduler state
        is cleared; telemetry, if attached, keeps accumulating — wipe or
        replace it explicitly if the rewound world should report fresh.
        """
        self.hostname = snapshot.hostname
        self.costs = snapshot.costs
        self.clock.restore_state(snapshot.clock)
        self.users.restore_state(snapshot.users)
        self.vfs.restore_state(snapshot.fs)
        self.programs = dict(snapshot.programs)
        self._procs = dict(snapshot.procs)
        self._next_pid = snapshot.next_pid
        self._ready.clear()
        self._last_run_pid = None
        self.proc_syscalls = snapshot.proc_syscalls
        self.epoch = max(self.epoch, snapshot.epoch) + 1
        self._epoch_token = object()

    # protocol aliases: a Machine is itself Snapshotable
    snapshot_state = snapshot
    restore_state = restore

    def _require_quiescent(self) -> None:
        busy = [p for p in self._procs.values() if not p.inert]
        if busy or self._ready:
            names = ", ".join(f"{p.pid}:{p.comm}" for p in busy) or "<ready queue>"
            raise err(
                Errno.EBUSY,
                f"snapshot requires a quiescent world (live: {names})",
            )

    def register_program(self, name: str, factory: ProgramFactory) -> None:
        """Register a named program; executable files reference it by shebang."""
        self.programs[name] = factory

    def install_program(
        self, task: Task, path: str, program: str, mode: int = 0o755
    ) -> None:
        """Write an executable file whose shebang names a registered program."""
        if program not in self.programs:
            raise err(Errno.ENOENT, f"program {program!r} not registered")
        self.write_file(task, path, f"{SHEBANG}{program}\n".encode(), mode=mode)

    # ------------------------------------------------------------------ #
    # convenience file I/O for host agents (kcall wrappers)
    # ------------------------------------------------------------------ #

    def write_file(self, task: Task, path: str, data: bytes, mode: int = 0o644) -> None:
        from .fdtable import OpenFlags

        fd = self.kcall_x(task, "open", path, OpenFlags.O_WRONLY | OpenFlags.O_CREAT | OpenFlags.O_TRUNC, mode)
        try:
            self.kcall_x(task, "write_bytes", fd, data)
        finally:
            self.kcall_x(task, "close", fd)

    def read_file(self, task: Task, path: str) -> bytes:
        from .fdtable import OpenFlags

        fd = self.kcall_x(task, "open", path, OpenFlags.O_RDONLY)
        try:
            out = bytearray()
            while True:
                chunk = self.kcall_x(task, "read_bytes", fd, 65536)
                if not chunk:
                    return bytes(out)
                out.extend(chunk)
        finally:
            self.kcall_x(task, "close", fd)

    # ------------------------------------------------------------------ #
    # syscall dispatch
    # ------------------------------------------------------------------ #

    def _dispatch(self, task: Task, name: str, args: tuple) -> Any:
        """Execute one syscall body (no trap charge) with Unix error convention."""
        handler = getattr(self.executor, f"do_{name}", None)
        if handler is None:
            return -int(Errno.ENOSYS)
        try:
            return handler(task, *args)
        except KernelError as exc:
            return -int(exc.errno)

    def kcall(self, task: Task, name: str, *args: Any) -> Any:
        """Host-agent syscall: trap charge + dispatch; returns -errno on failure.

        Host agents are not scheduled, so a would-block pipe operation
        surfaces as ``-EAGAIN`` rather than parking anything.
        """
        self.clock.advance(self.costs.syscall_trap_ns, "trap")
        try:
            return self._dispatch(task, name, args)
        except WouldBlock:
            return -int(Errno.EAGAIN)

    def kcall_x(self, task: Task, name: str, *args: Any) -> Any:
        """Like :meth:`kcall` but raises :class:`KernelError` on failure."""
        result = self.kcall(task, name, *args)
        if isinstance(result, int) and result < 0:
            raise KernelError(Errno(-result), f"{name}{args!r}")
        return result

    def process_of(self, task: Task) -> Process | None:
        """Reverse-map a Task to its Process (None for host agents)."""
        for proc in self._procs.values():
            if proc.task is task:
                return proc
        return None

    # ------------------------------------------------------------------ #
    # process lifecycle
    # ------------------------------------------------------------------ #

    def spawn(
        self,
        factory: ProgramFactory,
        args: list[str] | None = None,
        *,
        cred: Credentials,
        cwd: str = "/",
        ppid: int = 0,
        tracer: Tracer | None = None,
        comm: str = "?",
        fdtable: FDTable | None = None,
    ) -> Process:
        """Create a process running ``factory`` and enqueue it.

        ``fdtable`` lets callers model fork-style descriptor inheritance
        (``spawn_from_file`` passes the parent's ``fork_copy``).
        """
        pid = self._next_pid
        self._next_pid += 1
        memory = AddressSpace()
        table = fdtable or FDTable()
        table.epoch = self._epoch_token
        task = Task(cred=cred, fdtable=table, cwd=cwd, memory=memory)
        context = ProcContext(pid=pid, memory=memory)
        body = factory(context, args or [])
        proc = Process(
            pid=pid,
            ppid=ppid,
            task=task,
            context=context,
            body=body,
            tracer=tracer,
            comm=comm,
        )
        self._procs[pid] = proc
        if ppid in self._procs:
            self._procs[ppid].children.add(pid)
        self.clock.advance(self.costs.fork_ns + self.costs.exec_ns, "proc")
        self._ready.append(pid)
        return proc

    def spawn_thread(
        self,
        parent: Process,
        factory: ProgramFactory,
        args: list[str] | None = None,
        comm: str = "thread",
    ) -> Process:
        """Create a thread of ``parent``: same Task (memory, descriptors,
        cwd, credentials), own pid and own execution (§6: "multi-threaded
        applications ... are supported in the same way as in a real
        kernel").  The thread inherits the parent's tracer, so boxed
        threads stay boxed."""
        pid = self._next_pid
        self._next_pid += 1
        context = ProcContext(pid=pid, memory=parent.task.memory)
        body = factory(context, args or [])
        proc = Process(
            pid=pid,
            ppid=parent.pid,
            task=parent.task,
            context=context,
            body=body,
            tracer=parent.tracer,
            is_thread=True,
            comm=comm,
        )
        self._procs[pid] = proc
        parent.children.add(pid)
        # thread creation is much cheaper than fork+exec
        self.clock.advance(self.costs.fork_ns // 4, "proc")
        self._ready.append(pid)
        return proc

    def spawn_from_file(self, parent_task: Task, path: str, args: list[str]) -> int:
        """The ``spawn`` syscall: run the program an executable file names.

        Requires execute permission on the file; the program is identified
        by a ``#!repro:name`` shebang.  The child inherits credentials, cwd
        and — crucially for containment — the parent's tracer: a boxed
        process cannot spawn its way out of the box.
        """
        from .inode import access_allowed

        res = self.vfs.resolve(path, parent_task.cred, cwd=parent_task.cwd)
        node = res.require()
        if node.is_dir:
            raise err(Errno.EACCES, path)
        if not access_allowed(node, parent_task.cred.uid, parent_task.cred.gid, 1):
            raise err(Errno.EACCES, f"no execute permission on {path}")
        factory = self.parse_executable(bytes(node.data), path)
        parent = self.process_of(parent_task)
        proc = self.spawn(
            factory,
            args,
            cred=parent_task.cred,
            cwd=parent_task.cwd,
            ppid=parent.pid if parent else 0,
            tracer=parent.tracer if parent else None,
            comm=path,
            # descriptors survive fork+exec, pipes included
            fdtable=parent_task.fdtable.fork_copy(),
        )
        return proc.pid

    def parse_executable(self, content: bytes, path: str) -> ProgramFactory:
        """Map an executable file's content to a registered program factory."""
        header = content.split(b"\n", 1)[0].decode("utf-8", errors="replace")
        if not header.startswith(SHEBANG):
            raise err(Errno.ENOSYS, f"{path} is not a recognized executable")
        name = header[len(SHEBANG) :].strip()
        factory = self.programs.get(name)
        if factory is None:
            raise err(Errno.ENOENT, f"program {name!r} not registered")
        return factory

    def _do_exit(self, proc: Process, status: int) -> None:
        proc.exit_status = status
        proc.state = ProcessState.ZOMBIE
        if not proc.is_thread:
            # threads share the table; only a process teardown closes it
            touched_pipes = proc.task.fdtable.pipes()
            proc.task.fdtable.close_all()
            for pipe in touched_pipes:
                self.wake_pipe(pipe)  # a dying peer is EOF/EPIPE for the peer
        if proc.tracer is not None:
            proc.tracer.on_process_exit(proc)
        # orphan our children
        for cpid in proc.children:
            child = self._procs.get(cpid)
            if child:
                child.ppid = 0
        parent = self._procs.get(proc.ppid)
        if parent is None or parent.state in (ProcessState.ZOMBIE, ProcessState.DEAD):
            proc.state = ProcessState.DEAD  # auto-reaped
            if parent:
                parent.children.discard(proc.pid)
        elif parent.waiting_for_child:
            parent.waiting_for_child = False
            parent.pending_result = self._reap(parent, proc)
            parent.state = ProcessState.READY
            self._ready.append(parent.pid)

    def _reap(self, parent: Process, child: Process) -> WaitResult:
        child.state = ProcessState.DEAD
        parent.children.discard(child.pid)
        return WaitResult(pid=child.pid, status=child.exit_status or 0)

    def deliver_signal(self, sender_task: Task, pid: int, sig: int) -> int:
        """The ``kill`` syscall body (Unix semantics; boxes add their own rule)."""
        target = self._procs.get(pid)
        if target is None or not target.alive:
            raise err(Errno.ESRCH, f"pid {pid}")
        if not can_signal_unix(sender_task.cred.uid, target.task.cred.uid):
            raise err(Errno.EPERM, f"uid {sender_task.cred.uid} -> pid {pid}")
        self.clock.advance(self.costs.signal_ns, "signal")
        signal = Signal(sig)
        if default_is_fatal(signal):
            self._terminate(target, signal)
        return 0

    def _terminate(self, proc: Process, signal: Signal) -> None:
        """Kill a process from outside (fatal signal)."""
        if proc.state is ProcessState.READY and proc.pid in self._ready:
            self._ready.remove(proc.pid)
        proc.body.close()
        proc.state = ProcessState.RUNNING  # so _do_exit's transitions are uniform
        self._do_exit(proc, SIGNAL_EXIT_BASE + int(signal))

    # ------------------------------------------------------------------ #
    # scheduler
    # ------------------------------------------------------------------ #

    def run(self, max_steps: int = 10_000_000) -> None:
        """Run until no process is runnable (blocked processes may remain)."""
        steps = 0
        while self._ready:
            steps += 1
            if steps > max_steps:
                raise RuntimeError(f"scheduler exceeded {max_steps} steps; livelock?")
            self._step()

    def run_to_completion(self, max_steps: int = 10_000_000) -> None:
        """Run and assert that nothing is left blocked (deadlock check)."""
        self.run(max_steps)
        stuck = [p for p in self._procs.values() if p.state is ProcessState.BLOCKED]
        if stuck:
            names = ", ".join(f"{p.pid}:{p.comm}" for p in stuck)
            raise RuntimeError(f"deadlock: processes still blocked: {names}")

    def _step(self) -> None:
        pid = self._ready.popleft()
        proc = self._procs.get(pid)
        if proc is None or not proc.alive or proc.state is not ProcessState.READY:
            return
        if self._last_run_pid is not None and self._last_run_pid != pid:
            self.clock.advance(
                self.costs.context_switch_ns + self.costs.cache_flush_ns, "switch"
            )
        self._last_run_pid = pid
        if proc.pending_retry is not None:
            # woken from a pipe wait: re-attempt the parked call without
            # resuming the body (it is still suspended at the same yield)
            proc.state = ProcessState.RUNNING
            if proc.regs is not None and proc.tracer is not None:
                self._resume_traced_native(proc)
            else:
                request, proc.pending_retry = proc.pending_retry, None
                self._handle_request(proc, request)
            return
        proc.state = ProcessState.RUNNING
        result, proc.pending_result = proc.pending_result, None
        try:
            request = proc.body.send(result)
        except StopIteration as stop:
            status = stop.value if isinstance(stop.value, int) else 0
            self._do_exit(proc, status)
            return
        except KernelError as exc:
            # A body let a checked error escape: that is a crash of the
            # simulated program, not of the simulator.
            self._do_exit(proc, SIGNAL_EXIT_BASE + 100 + int(exc.errno) % 100)
            return
        self._handle_request(proc, request)

    def _handle_request(self, proc: Process, request: Request) -> None:
        if request.kind is RequestKind.COMPUTE:
            self.clock.advance(request.compute_ns, "compute")
            proc.pending_result = 0
            proc.state = ProcessState.READY
            self._ready.append(proc.pid)
            return
        name, args = request.name, request.args
        self.proc_syscalls += 1
        if name == "exit":
            status = args[0] if args else 0
            self.clock.advance(self.costs.syscall_trap_ns, "trap")
            self._do_exit(proc, int(status))
            return
        if name == "waitpid":
            self.clock.advance(self.costs.syscall_trap_ns, "trap")
            self._handle_waitpid(proc)
            return
        # Per-syscall latency histograms (the Fig. 5a ground truth): one
        # observation spanning everything the call cost — traps, context
        # switches, supervisor delegation.  Pipe-parked calls finish out
        # of band and are deliberately not observed.
        telemetry = self.telemetry
        measure = telemetry is not None and telemetry.enabled
        start_ns = self.clock.now_ns if measure else 0
        if proc.tracer is not None:
            result = self._traced_syscall(proc, request)
            if result is PARKED:
                return  # blocked on a pipe mid-call; retried on wakeup
            if measure:
                telemetry.observe(
                    "syscall.latency_ns",
                    self.clock.now_ns - start_ns,
                    op=name,
                    mode="traced",
                )
        else:
            self.clock.advance(self.costs.syscall_trap_ns, "trap")
            try:
                result = self._dispatch(proc.task, name, args)
            except WouldBlock as wb:
                self._park(proc, request, wb)
                return
            if measure:
                telemetry.observe(
                    "syscall.latency_ns",
                    self.clock.now_ns - start_ns,
                    op=name,
                    mode="direct",
                )
        if not proc.alive:
            return  # the call terminated the caller (e.g. kill(self))
        proc.pending_result = result
        proc.state = ProcessState.READY
        self._ready.append(proc.pid)

    def _handle_waitpid(self, proc: Process) -> None:
        zombies = [
            self._procs[cpid]
            for cpid in sorted(proc.children)
            if self._procs[cpid].state is ProcessState.ZOMBIE
        ]
        if zombies:
            proc.pending_result = self._reap(proc, zombies[0])
            proc.state = ProcessState.READY
            self._ready.append(proc.pid)
            return
        if not proc.children:
            proc.pending_result = -int(Errno.ECHILD)
            proc.state = ProcessState.READY
            self._ready.append(proc.pid)
            return
        proc.waiting_for_child = True
        proc.state = ProcessState.BLOCKED

    # ------------------------------------------------------------------ #
    # pipe blocking: park, wake, retry
    # ------------------------------------------------------------------ #

    def _park(self, proc: Process, request: Request, wb: WouldBlock) -> None:
        """Block ``proc`` until the pipe it hit turns over."""
        proc.pending_retry = request
        proc.state = ProcessState.BLOCKED
        wb.pipe.park(proc.pid, wb.mode)

    def wake_pipe(self, pipe: Pipe) -> None:
        """Requeue every parked process that can now make progress."""
        for pid in pipe.take_wakeable():
            proc = self._procs.get(pid)
            if (
                proc is not None
                and proc.state is ProcessState.BLOCKED
                and proc.pending_retry is not None
            ):
                proc.state = ProcessState.READY
                self._ready.append(pid)

    # ------------------------------------------------------------------ #
    # the traced-syscall path (Figure 4 of the paper)
    # ------------------------------------------------------------------ #

    def _charge_stop(self) -> None:
        """Child hits a trace stop: trap into kernel, switch to supervisor,
        supervisor's ``wait()`` returns (one more trap)."""
        self.clock.advance(self.costs.syscall_trap_ns * 2, "trap")
        self.clock.advance(
            self.costs.context_switch_ns + self.costs.cache_flush_ns, "switch"
        )

    def _charge_resume(self) -> None:
        """Supervisor resumes the child: ptrace(CONT) trap, switch back."""
        self.clock.advance(self.costs.syscall_trap_ns, "trap")
        self.clock.advance(
            self.costs.context_switch_ns + self.costs.cache_flush_ns, "switch"
        )

    def _traced_syscall(self, proc: Process, request: Request) -> Any:
        """Execute one syscall of a traced process under supervisor control.

        Sequence (paper Figure 4a): (1) child traps, (2) supervisor notified
        at entry stop, (3) supervisor implements the action with its own
        syscalls, (4) supervisor rewrites the call (usually into getpid),
        (5) the rewritten call executes, (6) supervisor adjusts the result
        at the exit stop, (7) child resumes with the final value.
        """
        proc.regs = Regs(name=request.name, args=request.args)
        self._charge_stop()
        proc.tracer.on_syscall_entry(proc)
        if not proc.alive:
            # the supervisor's delegated action killed the child itself
            # (kill aimed at its own pid); there is nothing to resume
            proc.regs = None
            return None
        self._charge_resume()
        return self._run_traced_native(proc, request)

    def _run_traced_native(self, proc: Process, request: Request) -> Any:
        """Execute the (possibly rewritten) call natively, then the exit
        stop.  Returns the final result, or :data:`PARKED` if the native
        call blocked on a pipe (the process is parked; :meth:`_step` calls
        :meth:`_resume_traced_native` on wakeup)."""
        regs = proc.regs
        if not regs.forced:
            self.clock.advance(self.costs.syscall_trap_ns, "trap")
            try:
                regs.retval = self._dispatch(proc.task, regs.name, regs.args)
            except WouldBlock as wb:
                self._park(proc, request, wb)
                return PARKED
        self._charge_stop()
        proc.tracer.on_syscall_exit(proc)
        self._charge_resume()
        result = proc.regs.retval
        proc.regs = None
        proc.pending_retry = None
        return result

    def _resume_traced_native(self, proc: Process) -> None:
        """A traced process woke from a pipe wait mid-call: finish the call."""
        request = proc.pending_retry
        assert request is not None
        result = self._run_traced_native(proc, request)
        if result is PARKED or not proc.alive:
            return
        proc.pending_result = result
        proc.state = ProcessState.READY
        self._ready.append(proc.pid)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def process(self, pid: int) -> Process:
        try:
            return self._procs[pid]
        except KeyError:
            raise err(Errno.ESRCH, f"pid {pid}") from None

    def processes(self) -> list[Process]:
        return list(self._procs.values())

    def live_processes(self) -> list[Process]:
        return [p for p in self._procs.values() if p.alive]
