"""The ptrace-flavoured tracing interface of the simulated kernel.

This is the primitive the paper's whole implementation rests on: a
supervisor process attaches to children, the kernel stops each child at
syscall entry and exit and hands control to the supervisor, and the
supervisor inspects and rewrites the child's registers and memory one word
at a time (§5, Figure 4).

Cost realism matters here.  On 2005-era Linux every PEEKDATA/POKEDATA moved
*one word per syscall*, which is why bulk data had to travel through the
shared I/O channel instead — our cost accounting reproduces that pressure,
and the ``bench_ablation_iochannel`` benchmark shows what happens without
the channel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from .memory import WORD_SIZE, words_for
from .process import Process, Regs

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

#: Words "transferred" by a GETREGS/SETREGS call (syscall number + six
#: argument registers + return register).
REGS_WORDS = 8


class Tracer(Protocol):
    """What the kernel requires of a supervisor attached to a process.

    The kernel invokes these synchronously while the child is stopped; the
    scheduler has already charged the stop's context switches.  Everything
    the tracer does in response (peeks, pokes, its own syscalls) is charged
    to the cost model through the :class:`TraceSession` / kcall APIs.
    """

    def on_syscall_entry(self, proc: Process) -> None:
        """Child stopped at syscall entry; regs hold the attempted call."""

    def on_syscall_exit(self, proc: Process) -> None:
        """Child stopped at syscall exit; regs hold the native result."""

    def on_process_exit(self, proc: Process) -> None:
        """Child exited (bookkeeping only; the child cannot be resumed)."""


class TraceSession:
    """Supervisor-side handle for inspecting/rewriting stopped children.

    Every operation charges simulated time exactly as the corresponding
    ptrace call would cost: one kernel trap per request, plus per-word
    transfer cost.  Bulk helpers exist but deliberately pay the word-at-a-
    time price — that is the honest 2005 ptrace behaviour the I/O channel
    was invented to avoid.
    """

    def __init__(self, machine: "Machine") -> None:
        self._machine = machine

    def _charge(self, traps: int, nwords: int) -> None:
        costs = self._machine.costs
        self._machine.clock.advance(
            traps * costs.syscall_trap_ns + costs.peekpoke_cost(nwords), "trace"
        )

    # -- registers ------------------------------------------------------ #

    def peek_regs(self, proc: Process) -> Regs:
        """PTRACE_GETREGS: one trap, whole register set."""
        self._charge(1, REGS_WORDS)
        assert proc.regs is not None, "process is not stopped at a syscall"
        return proc.regs

    def poke_regs(self, proc: Process, regs: Regs) -> None:
        """PTRACE_SETREGS: one trap, whole register set."""
        self._charge(1, REGS_WORDS)
        proc.regs = regs

    def nullify(self, proc: Process) -> None:
        """Rewrite the pending call into ``getpid()`` (§5's null syscall)."""
        assert proc.regs is not None
        self._charge(1, REGS_WORDS)
        proc.regs.name = "getpid"
        proc.regs.args = ()

    def rewrite(self, proc: Process, name: str, args: tuple) -> None:
        """Rewrite the pending call into a different call (read -> pread)."""
        assert proc.regs is not None
        self._charge(1, REGS_WORDS)
        proc.regs.name = name
        proc.regs.args = args

    def set_result(self, proc: Process, value) -> None:
        """At exit stop: overwrite the return register with ``value``."""
        assert proc.regs is not None
        self._charge(1, 1)
        proc.regs.retval = value

    # -- memory (word at a time, as 2005 ptrace required) ---------------- #

    def peek_bytes(self, proc: Process, addr: int, n: int) -> bytes:
        """Read child memory; charged one trap *per word* (PEEKDATA)."""
        mem = proc.task.memory
        assert mem is not None
        self._charge(words_for(n), words_for(n))
        return mem.read(addr, n)

    def poke_bytes(self, proc: Process, addr: int, data: bytes) -> None:
        """Write child memory; charged one trap *per word* (POKEDATA)."""
        mem = proc.task.memory
        assert mem is not None
        nwords = words_for(len(data))
        self._charge(nwords, nwords)
        mem.write(addr, data)

    def peek_string_cost(self, proc: Process, text: str) -> str:
        """Charge the cost of peeking a string argument out of the child.

        Syscall arguments in this simulation carry Python strings directly,
        but a real supervisor must fetch them from child memory word by
        word; this charges that traffic without round-tripping the bytes.
        """
        nwords = words_for(len(text) + 1)
        self._charge(nwords, nwords)
        return text

    def word_size(self) -> int:
        return WORD_SIZE
