"""Simulated clock and hardware cost model.

The paper's evaluation (Figure 5) was performed on a 1545 MHz Athlon XP1800
running Linux 2.4.20.  We cannot rerun on that hardware, so the reproduction
charges *simulated nanoseconds* for each primitive hardware/kernel action and
reports results in simulated time.  The headline result of the paper is a
ratio — boxed syscalls cost ~10x an unmodified syscall because the
interposition agent needs at least six context switches plus register/word
traffic and, for bulk I/O, an extra data copy — and that ratio emerges from
the *mechanism* as long as the constants are individually plausible.

Calibration targets (Figure 5(a), unmodified column, microseconds/call):

=============  =======
getpid         ~0.4
stat           ~2.2
open+close     ~4.4
read 1 byte    ~1.0
read 8 kbyte   ~4.9
write 1 byte   ~1.2
write 8 kbyte  ~5.4
=============  =======

The boxed column in the paper sits roughly an order of magnitude above each
of these; our supervisor earns that the honest way, by paying
``context_switch_ns`` six times per trapped call plus peek/poke traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


@dataclass
class CostModel:
    """Per-primitive simulated costs, in nanoseconds.

    All knobs are public so ablation benchmarks can sweep them (e.g.
    ``bench_ablation_ctxswitch`` revisits the paper's closing argument that a
    kernel implementation would avoid most context-switch cost).
    """

    #: Entering/leaving the kernel for a syscall (trap + return).
    syscall_trap_ns: int = 350
    #: One scheduler context switch between two processes.  The dominant cost
    #: of interposition: each delegated call needs six of these (Fig. 4).
    context_switch_ns: int = 1_800
    #: Cache-refill penalty charged alongside each context switch; the paper
    #: notes the extra switches "flush processor caches".
    cache_flush_ns: int = 450
    #: ptrace PEEK/POKE of one machine word (register or memory).
    ptrace_word_ns: int = 120
    #: Copying one byte of user data (memcpy-style; ~2 GB/s => ~0.5 ns/B).
    copy_byte_ns_x1000: int = 500  # stored x1000 to keep integer math exact
    #: Resolving one path component in the VFS (dcache hit).
    path_component_ns: int = 320
    #: Touching an inode (permission check, stat fill-in).
    inode_op_ns: int = 800
    #: Allocating/releasing a file descriptor.
    fd_op_ns: int = 500
    #: Fixed per-I/O overhead once the file is resolved (buffer cache hit).
    io_base_ns: int = 300
    #: Process creation (fork) and image replacement (exec) base costs.
    fork_ns: int = 90_000
    exec_ns: int = 160_000
    #: Signal delivery bookkeeping.
    signal_ns: int = 900
    #: One simulated network round-trip between two hosts (LAN-ish).
    net_rtt_ns: int = 180_000
    #: Network throughput, bytes per microsecond (~100 Mb/s => 12.5 B/us).
    net_bytes_per_us: int = 12

    def copy_cost(self, nbytes: int) -> int:
        """Simulated cost of copying ``nbytes`` of user data."""
        return (nbytes * self.copy_byte_ns_x1000) // 1_000

    def peekpoke_cost(self, nwords: int) -> int:
        """Simulated cost of moving ``nwords`` machine words via ptrace."""
        return nwords * self.ptrace_word_ns

    def switch_cost(self, nswitches: int) -> int:
        """Simulated cost of ``nswitches`` context switches including cache refill."""
        return nswitches * (self.context_switch_ns + self.cache_flush_ns)

    def net_transfer_cost(self, nbytes: int) -> int:
        """Simulated cost of moving ``nbytes`` across the network (no RTT)."""
        return (nbytes * NS_PER_US) // max(1, self.net_bytes_per_us)

    def scaled(self, **overrides: int) -> "CostModel":
        """Return a copy with some knobs replaced; used by ablation sweeps."""
        return replace(self, **overrides)


@dataclass
class Clock:
    """Monotonic simulated clock, nanosecond resolution.

    Every kernel subsystem charges time through :meth:`advance`; benchmarks
    read :attr:`now_ns` before and after a run.  The clock is deterministic:
    equal workloads produce equal timings, which keeps benchmark output and
    tests reproducible.
    """

    now_ns: int = 0
    #: Cumulative charge breakdown by category, for reporting/ablations.
    charges: dict[str, int] = field(default_factory=dict)

    def advance(self, ns: int, category: str = "other") -> None:
        """Advance simulated time by ``ns`` nanoseconds (must be >= 0)."""
        if ns < 0:
            raise ValueError(f"cannot advance clock by negative time: {ns}")
        self.now_ns += ns
        if ns:
            self.charges[category] = self.charges.get(category, 0) + ns

    def elapsed_since(self, start_ns: int) -> int:
        """Nanoseconds elapsed since a previously captured ``now_ns``."""
        return self.now_ns - start_ns

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self.now_ns / NS_PER_US

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self.now_ns / NS_PER_S

    def snapshot(self) -> dict[str, int]:
        """Copy of the per-category charge breakdown."""
        return dict(self.charges)

    # ------------------------------------------------------------------ #
    # snapshot protocol (see repro.kernel.Snapshotable); distinct from the
    # legacy :meth:`snapshot` above, which copies only the charges
    # ------------------------------------------------------------------ #

    def snapshot_state(self) -> object:
        return (self.now_ns, dict(self.charges))

    def restore_state(self, state: object) -> None:
        now_ns, charges = state
        self.now_ns = now_ns
        self.charges = dict(charges)
