"""Simulated Unix kernel substrate.

Everything the paper's user-level implementation assumes from the host
operating system — processes, a filesystem, descriptors, accounts, signals,
and the ptrace debugging interface — implemented as a deterministic
simulation with a calibrated hardware cost model (see DESIGN.md §2 for the
substitution rationale).
"""

from typing import Protocol, runtime_checkable

from .cow import CowMap
from .errno import Errno, KernelError, err
from .fdtable import FDTable, OpenFile, OpenFlags
from .inode import FileType, Inode, StatResult, access_allowed, stat_of
from .localfs import LocalFS
from .machine import Machine, WaitResult, WorldSnapshot, SHEBANG
from .memory import AddressSpace, WORD_SIZE, words_for
from .pipes import PIPE_CAPACITY, Pipe, WouldBlock
from .process import (
    Body,
    ProcContext,
    Process,
    ProcessState,
    ProgramFactory,
    Regs,
    Request,
    RequestKind,
    SysProxy,
    Task,
)
from .ptrace import TraceSession, Tracer, REGS_WORDS
from .signals import Signal, can_signal_unix, default_is_fatal
from .syscalls import KernelErrorFromResult, R_OK, W_OK, X_OK, F_OK, SEEK_CUR, SEEK_END, SEEK_SET, check
from .timing import Clock, CostModel, NS_PER_MS, NS_PER_S, NS_PER_US
from .users import Account, Credentials, NOBODY_NAME, NOBODY_UID, ROOT_UID, UserDB
from .vfs import VFS, Resolution, WalkStats, basename, dirname, join, normalize, split_path


@runtime_checkable
class Snapshotable(Protocol):
    """The uniform copy-on-write snapshot protocol of the kernel layer.

    Every mutable world store — clock, account database, filesystem (via
    the VFS seam), descriptor tables, address spaces, pipes, and the
    :class:`Machine` itself — implements these two methods.
    ``snapshot_state`` returns an opaque, immutable-by-convention token in
    O(1) (frozen CoW layers for the dict-shaped stores, small value copies
    elsewhere); ``restore_state`` rewinds the object to that token.
    Components that cannot be captured in their current state (live
    processes, parked pipes, tables holding pipe ends) raise ``EBUSY``
    rather than snapshotting something unrestorable.  ``Machine.snapshot``
    composes the per-store tokens into one versioned
    :class:`~repro.kernel.machine.WorldSnapshot`.
    """

    def snapshot_state(self) -> object: ...

    def restore_state(self, state: object) -> None: ...


__all__ = [
    "AddressSpace",
    "Account",
    "Body",
    "Clock",
    "CostModel",
    "CowMap",
    "Credentials",
    "Errno",
    "FDTable",
    "FileType",
    "F_OK",
    "Inode",
    "KernelError",
    "KernelErrorFromResult",
    "LocalFS",
    "Machine",
    "NOBODY_NAME",
    "NOBODY_UID",
    "NS_PER_MS",
    "NS_PER_S",
    "NS_PER_US",
    "OpenFile",
    "OpenFlags",
    "PIPE_CAPACITY",
    "Pipe",
    "WouldBlock",
    "ProcContext",
    "Process",
    "ProcessState",
    "ProgramFactory",
    "REGS_WORDS",
    "ROOT_UID",
    "R_OK",
    "Regs",
    "Request",
    "RequestKind",
    "Resolution",
    "SEEK_CUR",
    "SEEK_END",
    "SEEK_SET",
    "SHEBANG",
    "Signal",
    "Snapshotable",
    "StatResult",
    "SysProxy",
    "Task",
    "TraceSession",
    "Tracer",
    "UserDB",
    "VFS",
    "WORD_SIZE",
    "WaitResult",
    "WalkStats",
    "WorldSnapshot",
    "W_OK",
    "X_OK",
    "access_allowed",
    "basename",
    "can_signal_unix",
    "check",
    "default_is_fatal",
    "dirname",
    "err",
    "join",
    "normalize",
    "split_path",
    "stat_of",
    "words_for",
]
