"""Community authorization service (CAS) admission policies.

§4 closes by noting that identity boxing lets a system "have complex
admission policies, such as access controls with wildcards, or reference
to a community authorization service, without the difficulty of
reconciling that policy to the existing user database."  This module
provides both policy styles as composable objects a Chirp server can
consult at connection time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.identity import identity_matches


class AdmissionPolicy:
    """Decides whether an authenticated principal may connect at all."""

    def admits(self, principal: str) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class OpenPolicy(AdmissionPolicy):
    """Admit everyone (ACLs still govern what they can do)."""

    def admits(self, principal: str) -> bool:
        return True


@dataclass
class WildcardPolicy(AdmissionPolicy):
    """Admit principals matching any of a list of wildcard patterns."""

    patterns: list[str] = field(default_factory=list)

    def admits(self, principal: str) -> bool:
        return any(identity_matches(p, principal) for p in self.patterns)


@dataclass
class CommunityAuthorizationService(AdmissionPolicy):
    """A CAS: communities of members, maintained by community admins.

    The *site* delegates membership management entirely — adding a user to
    a community needs no action from the site administrator, which is the
    point.
    """

    #: community name -> set of member principals
    communities: dict[str, set[str]] = field(default_factory=dict)
    #: communities this instance admits (a server may trust a subset)
    admitted_communities: set[str] = field(default_factory=set)

    def create_community(self, name: str) -> None:
        self.communities.setdefault(name, set())

    def add_member(self, community: str, principal: str) -> None:
        if community not in self.communities:
            raise KeyError(f"no community {community!r}")
        self.communities[community].add(principal)

    def remove_member(self, community: str, principal: str) -> None:
        self.communities.get(community, set()).discard(principal)

    def trust_community(self, community: str) -> None:
        self.admitted_communities.add(community)

    def member_of(self, principal: str) -> list[str]:
        return sorted(
            name
            for name, members in self.communities.items()
            if principal in members
        )

    def admits(self, principal: str) -> bool:
        return any(
            principal in self.communities.get(name, set())
            for name in self.admitted_communities
        )


@dataclass
class AnyOfPolicy(AdmissionPolicy):
    """Admit if any sub-policy admits (compose wildcard + CAS, etc.)."""

    policies: list[AdmissionPolicy] = field(default_factory=list)

    def admits(self, principal: str) -> bool:
        return any(p.admits(principal) for p in self.policies)
