"""A toy certificate authority for GSI-style credentials.

The paper assumes "the GSI public key security infrastructure [that]
allows grid users to be identified with strong cryptographic credentials
and a descriptive, globally-unique name such as /O=UnivNowhere/CN=Fred"
(§1).  Chirp consumes only the *verified subject name*, so this
reproduction substitutes HMAC signatures (keyed by a CA secret) for RSA:
the data flow — issue, present, verify, reject-forgery — is identical,
and no real cryptography is claimed or needed.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field


class CertificateError(ValueError):
    """A certificate failed validation."""


def _canonical(payload: dict[str, str]) -> bytes:
    return "\x1f".join(f"{k}={payload[k]}" for k in sorted(payload)).encode("utf-8")


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject DN to its issuer."""

    subject: str  #: e.g. "/O=UnivNowhere/CN=Fred"
    issuer: str  #: CA name, e.g. "UnivNowhere CA"
    serial: int
    signature: str  #: hex HMAC over (subject, issuer, serial)

    def payload(self) -> dict[str, str]:
        return {
            "subject": self.subject,
            "issuer": self.issuer,
            "serial": str(self.serial),
        }


@dataclass
class CertificateAuthority:
    """Issues and verifies subject certificates."""

    name: str
    #: the CA's private signing secret (a stand-in for its RSA key)
    _secret: bytes = field(default_factory=lambda: b"", repr=False)
    _serial: int = 0

    def __post_init__(self) -> None:
        if not self._secret:
            # deterministic per CA name: reproducible simulations
            self._secret = hashlib.sha256(f"ca-secret:{self.name}".encode()).digest()

    def _sign(self, payload: dict[str, str]) -> str:
        return hmac.new(self._secret, _canonical(payload), hashlib.sha256).hexdigest()

    def issue(self, subject: str) -> Certificate:
        """Issue a certificate binding ``subject`` to this CA."""
        if not subject.startswith("/"):
            raise CertificateError(f"subject DNs start with '/': {subject!r}")
        self._serial += 1
        cert = Certificate(
            subject=subject, issuer=self.name, serial=self._serial, signature=""
        )
        return Certificate(
            subject=cert.subject,
            issuer=cert.issuer,
            serial=cert.serial,
            signature=self._sign(cert.payload()),
        )

    def verify(self, cert: Certificate) -> bool:
        """Check a certificate was issued by this CA and is untampered."""
        if cert.issuer != self.name:
            return False
        expected = self._sign(cert.payload())
        return hmac.compare_digest(expected, cert.signature)

    def require_valid(self, cert: Certificate) -> str:
        """Verify and return the proven subject; raise on failure."""
        if not self.verify(cert):
            raise CertificateError(
                f"certificate for {cert.subject!r} failed verification by {self.name}"
            )
        return cert.subject
