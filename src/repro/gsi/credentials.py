"""User credential wallets and proxy delegation.

GSI's single sign-on works by delegating short-lived *proxy* credentials
signed by the user's long-lived certificate; a service verifying a proxy
walks the chain back to a trusted CA.  The chain walk is what matters to
the reproduction (Chirp's ``globus`` authenticator performs it), so proxies
here are HMAC-chained the same way the CA signs end-entity certificates.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field

from .ca import Certificate, CertificateAuthority, CertificateError


@dataclass(frozen=True)
class ProxyCredential:
    """A short-lived credential derived from a user certificate.

    ``depth`` counts delegations; the subject of a proxy is the end
    entity's subject (GSI appends ``/CN=proxy`` components — we keep the
    subject stable and track depth separately for clarity).
    """

    certificate: Certificate
    depth: int
    signature: str  #: HMAC by the holder's proxy secret chain

    @property
    def subject(self) -> str:
        return self.certificate.subject


@dataclass
class UserCredentials:
    """What a grid user holds: a certificate and the ability to sign."""

    certificate: Certificate
    _secret: bytes = field(default_factory=lambda: b"", repr=False)

    def __post_init__(self) -> None:
        if not self._secret:
            self._secret = hashlib.sha256(
                f"user-secret:{self.certificate.subject}:{self.certificate.serial}".encode()
            ).digest()

    @property
    def subject(self) -> str:
        return self.certificate.subject

    def _proxy_sig(self, depth: int) -> str:
        body = f"{self.certificate.signature}:{depth}".encode()
        return hmac.new(self._secret, body, hashlib.sha256).hexdigest()

    def make_proxy(self, depth: int = 1) -> ProxyCredential:
        """Single sign-on step: mint a delegatable proxy."""
        if depth < 1:
            raise CertificateError("proxy depth must be >= 1")
        return ProxyCredential(
            certificate=self.certificate, depth=depth, signature=self._proxy_sig(depth)
        )

    def proxy_is_mine(self, proxy: ProxyCredential) -> bool:
        """Verify a proxy chains back to this user (server-side helper)."""
        return hmac.compare_digest(proxy.signature, self._proxy_sig(proxy.depth))


@dataclass
class CredentialStore:
    """Server-side trust anchors: which CAs we accept, plus proxy checks.

    A Chirp server holds one of these; verifying a login means (1) the
    chain ends at a trusted CA, (2) the proxy signature matches the user
    secret registered at proxy-issuance time (the simulation's stand-in
    for public-key verification, which needs no shared registry in real
    GSI).
    """

    trusted_cas: dict[str, CertificateAuthority] = field(default_factory=dict)
    #: subject -> user wallet; populated when users are provisioned, so the
    #: server can verify proxy signatures without real asymmetric crypto
    _known_users: dict[str, UserCredentials] = field(default_factory=dict)

    def trust(self, ca: CertificateAuthority) -> None:
        self.trusted_cas[ca.name] = ca

    def register_user(self, wallet: UserCredentials) -> None:
        self._known_users[wallet.subject] = wallet

    def verify_proxy(self, proxy: ProxyCredential) -> str:
        """Full chain validation; returns the proven subject DN."""
        ca = self.trusted_cas.get(proxy.certificate.issuer)
        if ca is None:
            raise CertificateError(
                f"issuer {proxy.certificate.issuer!r} is not a trusted CA"
            )
        subject = ca.require_valid(proxy.certificate)
        wallet = self._known_users.get(subject)
        if wallet is None or not wallet.proxy_is_mine(proxy):
            raise CertificateError(f"proxy for {subject!r} failed verification")
        return subject


def provision_user(
    ca: CertificateAuthority, store: CredentialStore, subject: str
) -> UserCredentials:
    """Issue a certificate for ``subject`` and register it with a server's
    trust store (the offline 'get a certificate' ceremony)."""
    wallet = UserCredentials(certificate=ca.issue(subject))
    store.register_user(wallet)
    return wallet
