"""A toy Kerberos: realms, KDCs, and service tickets.

Chirp negotiates Kerberos as one of its authentication methods, producing
principals like ``kerberos:fred@nowhere.edu`` (§4).  Only the
issue/present/verify flow matters here, so tickets are HMAC-sealed by a
per-realm KDC secret shared (out of band) with member services.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field


class KerberosError(ValueError):
    """Ticket validation failed."""


@dataclass(frozen=True)
class Ticket:
    """A service ticket binding a client principal to a target service."""

    client: str  #: e.g. "fred@nowhere.edu"
    service: str  #: e.g. "chirp/server1.nowhere.edu"
    realm: str
    seal: str

    def body(self) -> bytes:
        return f"{self.client}|{self.service}|{self.realm}".encode("utf-8")


@dataclass
class KeyDistributionCenter:
    """One realm's KDC."""

    realm: str  #: e.g. "NOWHERE.EDU"
    _secret: bytes = field(default_factory=lambda: b"", repr=False)
    #: principals allowed to request tickets (password database stand-in)
    _principals: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self._secret:
            self._secret = hashlib.sha256(f"kdc:{self.realm}".encode()).digest()

    def add_principal(self, principal: str) -> None:
        """Register a user (kadmin addprinc)."""
        self._principals.add(principal)

    def _seal(self, ticket: Ticket) -> str:
        return hmac.new(self._secret, ticket.body(), hashlib.sha256).hexdigest()

    def issue_ticket(self, client: str, service: str) -> Ticket:
        """TGS exchange: mint a sealed service ticket."""
        if client not in self._principals:
            raise KerberosError(f"unknown principal {client!r}")
        ticket = Ticket(client=client, service=service, realm=self.realm, seal="")
        return Ticket(
            client=ticket.client,
            service=ticket.service,
            realm=ticket.realm,
            seal=self._seal(ticket),
        )

    def verify_ticket(self, ticket: Ticket, service: str) -> str:
        """Service-side check; returns the proven client principal."""
        if ticket.realm != self.realm:
            raise KerberosError(f"ticket realm {ticket.realm!r} != {self.realm!r}")
        if ticket.service != service:
            raise KerberosError(
                f"ticket is for {ticket.service!r}, not {service!r}"
            )
        if not hmac.compare_digest(ticket.seal, self._seal(ticket)):
            raise KerberosError(f"ticket for {ticket.client!r} has a bad seal")
        return ticket.client
