"""Toy grid security infrastructure: CA, proxies, Kerberos, CAS."""

from .ca import Certificate, CertificateAuthority, CertificateError
from .cas import (
    AdmissionPolicy,
    AnyOfPolicy,
    CommunityAuthorizationService,
    OpenPolicy,
    WildcardPolicy,
)
from .credentials import (
    CredentialStore,
    ProxyCredential,
    UserCredentials,
    provision_user,
)
from .kerberos import KerberosError, KeyDistributionCenter, Ticket

__all__ = [
    "AdmissionPolicy",
    "AnyOfPolicy",
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "CommunityAuthorizationService",
    "CredentialStore",
    "KerberosError",
    "KeyDistributionCenter",
    "OpenPolicy",
    "ProxyCredential",
    "Ticket",
    "UserCredentials",
    "WildcardPolicy",
    "provision_user",
]
