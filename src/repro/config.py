"""One home for the reproduction's ``REPRO_*`` environment knobs.

Every runtime switch the test suites, benchmarks, and the fuzzer honor is
parsed here, once, instead of each conftest re-implementing the same
``os.environ.get`` dance:

===========================  =================================================
``REPRO_FAULT_RATE``         per-kind fault probability on the Chirp port
                             (CI's ``test-faulted`` job sets ``0.1``)
``REPRO_FAULT_SEED``         seed for the fault plan and retry jitter
``REPRO_SHARDS``             federation shard count (CI sets ``8``)
``REPRO_REPLICAS``           owners per directory prefix (CI's
                             ``test-replicated`` job sets ``3``)
``REPRO_BLACKOUT``           ``start:end`` op-count window during which one
                             federation shard is blacked out mid-run
``REPRO_SNAPSHOT_FIXTURES``  fork test machines from warm CoW snapshots
``REPRO_BENCH_SMOKE``        CI-sized benchmark iteration counts
``REPRO_CACHE``              fast-lane read-op memoization at the pipeline
                             mouth (CI's ``test-fastlane`` leg sets ``1``)
``REPRO_COALESCE``           client-side frame coalescing: adjacent Chirp
                             frames batch into one wire frame
``REPRO_QUOTA``              per-identity op budget as ``rate[:burst]``
                             ops/sec at the pipeline mouth (EAGAIN past it)
===========================  =================================================

All readers are *dynamic* — they consult the environment on every call, so
tests can flip a knob with ``monkeypatch.setenv`` and see the change
without reimporting anything.  Import-time constants belong to the caller
(e.g. ``tests/chirp/conftest.py`` snapshots the fault rate once per
session because fixtures must agree with the skip markers built from it).
"""

from __future__ import annotations

import os

#: Default seed for fault plans and retry jitter; any fixed value works,
#: the point is that every consumer agrees on it.
DEFAULT_FAULT_SEED = 20260805


def env_flag(name: str) -> bool:
    """A boolean knob: unset, empty, and ``0`` are off; anything else is on."""
    return os.environ.get(name, "") not in ("", "0")


def _env_number(name: str, default: str, cast) -> float | int:
    """A numeric knob; an empty value counts as unset."""
    return cast(os.environ.get(name, default) or default)


def fault_rate() -> float:
    """Per-kind fault probability injected under the Chirp test suite."""
    return _env_number("REPRO_FAULT_RATE", "0", float)


def fault_seed() -> int:
    """Seed shared by the fault plan and the retry policies surviving it."""
    return _env_number("REPRO_FAULT_SEED", str(DEFAULT_FAULT_SEED), int)


def shard_count() -> int:
    """Federation shard count for federation-aware tests."""
    return _env_number("REPRO_SHARDS", "1", int)


def replica_count() -> int:
    """Replicas per directory prefix (``1`` = today's single-owner mode)."""
    return max(1, _env_number("REPRO_REPLICAS", "1", int))


def blackout_window() -> tuple[int, int] | None:
    """A scheduled shard blackout as a ``start:end`` op-count window.

    ``None`` when unset; the chaos CI job sets e.g. ``REPRO_BLACKOUT=40:120``
    so one replica goes dark mid-run and rejoins before the end.
    """
    raw = os.environ.get("REPRO_BLACKOUT", "")
    if not raw:
        return None
    start, _, end = raw.partition(":")
    window = (int(start), int(end))
    if window[0] < 0 or window[1] <= window[0]:
        raise ValueError(f"REPRO_BLACKOUT window {raw!r} is not start<end")
    return window


def snapshot_fixtures_enabled() -> bool:
    """Whether test fixtures fork machines from warm snapshots."""
    return env_flag("REPRO_SNAPSHOT_FIXTURES")


def bench_smoke() -> bool:
    """CI-sized benchmark runs: set ``REPRO_BENCH_SMOKE=1``."""
    return env_flag("REPRO_BENCH_SMOKE")


def read_cache_enabled() -> bool:
    """Fast-lane memoization of read-only ops at the pipeline mouth."""
    return env_flag("REPRO_CACHE")


def coalesce_enabled() -> bool:
    """Client-side frame coalescing for chunked Chirp transfers."""
    return env_flag("REPRO_COALESCE")


def quota_spec() -> tuple[float, int] | None:
    """Per-identity op budget as ``rate[:burst]`` (ops/sec, bucket size).

    ``None`` when unset.  ``REPRO_QUOTA=200`` means 200 ops/sec per
    principal with the default burst; ``REPRO_QUOTA=200:16`` sets both.
    """
    raw = os.environ.get("REPRO_QUOTA", "")
    if not raw:
        return None
    rate_text, _, burst_text = raw.partition(":")
    rate = float(rate_text)
    burst = int(burst_text) if burst_text else 16
    if rate <= 0 or burst < 1:
        raise ValueError(f"REPRO_QUOTA {raw!r} needs rate>0 and burst>=1")
    return rate, burst
