"""A cluster: several simulated machines sharing one clock and network.

Distributed experiments (Figure 3's Chirp workflow) need a client host and
a server host whose simulated times advance together; a :class:`Cluster`
provides that plus the wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.machine import Machine
from ..kernel.timing import Clock, CostModel
from .faults import Blackout, FaultPlan
from .network import Network


@dataclass
class Cluster:
    """A set of machines on one network, one shared simulated clock."""

    costs: CostModel = field(default_factory=CostModel)
    clock: Clock = field(default_factory=Clock)
    machines: dict[str, Machine] = field(default_factory=dict)
    network: Network = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.network is None:
            self.network = Network(clock=self.clock, costs=self.costs)

    def add_machine(self, hostname: str) -> Machine:
        """Provision a host: its kernel shares the cluster clock."""
        if hostname in self.machines:
            raise ValueError(f"host {hostname!r} already exists")
        machine = Machine(costs=self.costs, hostname=hostname, clock=self.clock)
        self.machines[hostname] = machine
        self.network.add_host(hostname)
        return machine

    def add_machines(self, *hostnames: str) -> list[Machine]:
        """Provision several hosts at once (federations need fleets)."""
        return [self.add_machine(hostname) for hostname in hostnames]

    def machine(self, hostname: str) -> Machine:
        return self.machines[hostname]

    # ------------------------------------------------------------------ #
    # failure model
    # ------------------------------------------------------------------ #

    def install_faults(self, plan: FaultPlan | None) -> None:
        """Subject the cluster's wires to a seeded fault plan."""
        self.network.install_faults(plan)

    def schedule_blackout(
        self, port: int, start_op: int, end_op: int, host: str = ""
    ) -> Blackout:
        """Schedule a whole-endpoint outage on the installed fault plan.

        Extends the current plan (installing an otherwise-silent one if
        none is active) with a :class:`~repro.net.faults.Blackout`: while
        the plan's global op counter is inside ``[start_op, end_op)``,
        connects to ``host:port`` are refused and live connections break.
        An empty ``host`` darkens every endpoint on the port.
        """
        plan = self.network.faults
        if plan is None:
            plan = FaultPlan(ports=(port,))
            self.network.install_faults(plan)
        elif plan.ports is not None and port not in plan.ports:
            plan.ports = plan.ports + (port,)
        blackout = Blackout(port=port, start_op=start_op, end_op=end_op, host=host)
        plan.blackouts = plan.blackouts + (blackout,)
        return blackout

    def crash_server(self, hostname: str, port: int | None = None) -> int:
        """Abruptly kill a host's services: live connections break and,
        when ``port`` is given, that port stops listening until the server
        is served again.  Returns the number of connections broken."""
        if port is None:
            return self.network.break_connections(hostname)
        return self.network.crash_service(hostname, port)

    def run_all(self) -> None:
        """Drain every machine's scheduler (servers may enqueue work)."""
        for machine in self.machines.values():
            machine.run()
