"""A cluster: several simulated machines sharing one clock and network.

Distributed experiments (Figure 3's Chirp workflow) need a client host and
a server host whose simulated times advance together; a :class:`Cluster`
provides that plus the wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.machine import Machine
from ..kernel.timing import Clock, CostModel
from .network import Network


@dataclass
class Cluster:
    """A set of machines on one network, one shared simulated clock."""

    costs: CostModel = field(default_factory=CostModel)
    clock: Clock = field(default_factory=Clock)
    machines: dict[str, Machine] = field(default_factory=dict)
    network: Network = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.network is None:
            self.network = Network(clock=self.clock, costs=self.costs)

    def add_machine(self, hostname: str) -> Machine:
        """Provision a host: its kernel shares the cluster clock."""
        if hostname in self.machines:
            raise ValueError(f"host {hostname!r} already exists")
        machine = Machine(costs=self.costs, hostname=hostname, clock=self.clock)
        self.machines[hostname] = machine
        self.network.add_host(hostname)
        return machine

    def machine(self, hostname: str) -> Machine:
        return self.machines[hostname]

    def run_all(self) -> None:
        """Drain every machine's scheduler (servers may enqueue work)."""
        for machine in self.machines.values():
            machine.run()
