"""An in-memory network with a latency/throughput cost model.

Chirp's semantics are transport-independent (§4): what matters is that a
client connects, authenticates, and exchanges framed requests — and that
the *hostname* authentication method can see the peer's address.  The
network therefore models: named hosts, services listening on (host, port),
stateful connections, and per-message charges of one round-trip plus a
throughput-proportional transfer cost on the shared simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from ..kernel.errno import Errno, err
from ..kernel.timing import Clock, CostModel


@dataclass(frozen=True)
class Peer:
    """What a server learns about who connected (reverse-DNS included)."""

    hostname: str


class ConnectionHandler(Protocol):
    """Server-side state for one live connection."""

    def handle(self, payload: bytes) -> bytes:
        """Process one framed request, return one framed response."""

    def on_close(self) -> None:  # pragma: no cover - optional hook
        """Connection torn down."""


#: A service factory: invoked per inbound connection.
ServiceFactory = Callable[[Peer], ConnectionHandler]


@dataclass
class Connection:
    """Client-side handle on an open connection."""

    network: "Network"
    client_host: str
    server_host: str
    port: int
    handler: ConnectionHandler
    closed: bool = False
    #: traffic accounting
    bytes_sent: int = 0
    bytes_received: int = 0

    def call(self, payload: bytes) -> bytes:
        """One request/response exchange (one RTT + transfer charges)."""
        if self.closed:
            raise err(Errno.EPIPE, "connection is closed")
        costs = self.network.costs
        self.network.clock.advance(costs.net_rtt_ns, "net")
        self.network.clock.advance(
            costs.net_transfer_cost(len(payload)), "net"
        )
        response = self.handler.handle(payload)
        self.network.clock.advance(
            costs.net_transfer_cost(len(response)), "net"
        )
        self.bytes_sent += len(payload)
        self.bytes_received += len(response)
        return response

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            on_close = getattr(self.handler, "on_close", None)
            if on_close is not None:
                on_close()


@dataclass
class Network:
    """The wires between simulated hosts."""

    clock: Clock
    costs: CostModel
    _services: dict[tuple[str, int], ServiceFactory] = field(default_factory=dict)
    _hosts: set[str] = field(default_factory=set)

    def add_host(self, hostname: str) -> None:
        self._hosts.add(hostname)

    def listen(self, hostname: str, port: int, factory: ServiceFactory) -> None:
        """Bind a service; one factory call per inbound connection."""
        if hostname not in self._hosts:
            raise err(Errno.ENOENT, f"unknown host {hostname!r}")
        key = (hostname, port)
        if key in self._services:
            raise err(Errno.EBUSY, f"{hostname}:{port} already bound")
        self._services[key] = factory

    def unlisten(self, hostname: str, port: int) -> None:
        self._services.pop((hostname, port), None)

    def connect(self, client_host: str, server_host: str, port: int) -> Connection:
        """TCP-ish connection setup: charged one round trip."""
        if client_host not in self._hosts:
            raise err(Errno.ENOENT, f"unknown client host {client_host!r}")
        factory = self._services.get((server_host, port))
        if factory is None:
            raise err(Errno.ECONNREFUSED, f"{server_host}:{port}")
        self.clock.advance(self.costs.net_rtt_ns, "net")
        handler = factory(Peer(hostname=client_host))
        return Connection(
            network=self,
            client_host=client_host,
            server_host=server_host,
            port=port,
            handler=handler,
        )

    def services(self) -> list[tuple[str, int]]:
        return sorted(self._services)
