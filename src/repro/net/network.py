"""An in-memory network with a latency/throughput cost model.

Chirp's semantics are transport-independent (§4): what matters is that a
client connects, authenticates, and exchanges framed requests — and that
the *hostname* authentication method can see the peer's address.  The
network therefore models: named hosts, services listening on (host, port),
stateful connections, and per-message charges of one round-trip plus a
throughput-proportional transfer cost on the shared simulated clock.

Installing a :class:`~repro.net.faults.FaultPlan` makes the wires
unreliable: connects may be refused, connections may break before or
after the server processes a request, frames may arrive truncated or
corrupted, exchanges may stall, and whole servers may crash/restart.
Without a plan the network behaves exactly as before — the fault hooks
are single ``None`` checks on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from ..kernel.errno import Errno, err
from ..kernel.timing import Clock, CostModel
from .faults import FaultPlan, mangle_frame


@dataclass(frozen=True)
class Peer:
    """What a server learns about who connected (reverse-DNS included)."""

    hostname: str


class ConnectionHandler(Protocol):
    """Server-side state for one live connection."""

    def handle(self, payload: bytes) -> bytes:
        """Process one framed request, return one framed response."""

    def on_close(self) -> None:  # pragma: no cover - optional hook
        """Connection torn down."""


#: A service factory: invoked per inbound connection.
ServiceFactory = Callable[[Peer], ConnectionHandler]


@dataclass
class Connection:
    """Client-side handle on an open connection."""

    network: "Network"
    client_host: str
    server_host: str
    port: int
    handler: ConnectionHandler
    conn_id: int = 0
    closed: bool = False
    #: set when the connection died abruptly (fault or server crash)
    broken: bool = False
    #: traffic accounting
    bytes_sent: int = 0
    bytes_received: int = 0
    _torn_down: bool = False

    def call(self, payload: bytes) -> bytes:
        """One request/response exchange (one RTT + transfer charges)."""
        if self.closed:
            if self.broken:
                raise err(Errno.ECONNRESET, "connection was reset")
            raise err(Errno.EPIPE, "connection is closed")
        network = self.network
        costs = network.costs
        clock = network.clock
        plan = network.faults
        if plan is not None and not plan.applies_to(self.port):
            plan = None
        if plan is not None and plan.due_restart():
            # whole-server crash/restart: every live connection to the
            # service breaks at once; the service itself keeps listening
            network.break_connections(self.server_host, self.port)
            raise err(Errno.ECONNRESET, f"{self.server_host}:{self.port} restarted")
        if plan is not None and plan.blackout_denies(self.server_host, self.port):
            # scheduled endpoint outage: the whole service is dark, so
            # every live connection to it dies, not just this one
            network.break_connections(self.server_host, self.port)
            raise err(
                Errno.ECONNRESET, f"{self.server_host}:{self.port} blacked out"
            )
        clock.advance(costs.net_rtt_ns, "net")
        clock.advance(costs.net_transfer_cost(len(payload)), "net")
        self.bytes_sent += len(payload)
        if plan is not None:
            spike = plan.latency_spike(clock)
            if spike:
                clock.advance(spike, "net")
            if plan.drop_request(clock):
                self._break()
                raise err(Errno.ECONNRESET, "connection dropped before request")
            if plan.corrupt_request(clock):
                payload = mangle_frame(payload)
        response = self.handler.handle(payload)
        if plan is not None and plan.drop_response(clock):
            self._break()
            raise err(Errno.ECONNRESET, "connection dropped; response lost")
        clock.advance(costs.net_transfer_cost(len(response)), "net")
        if plan is not None and plan.truncate_response(clock):
            response = response[: len(response) // 2]
        self.bytes_received += len(response)
        return response

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._teardown()

    def _break(self, reason: str = "") -> None:
        """Abrupt death: same teardown as close, but calls now fail RESET."""
        if not self.closed:
            self.closed = True
            self.broken = True
            self._teardown()

    def _teardown(self) -> None:
        """Release server-side state exactly once, however we died."""
        if self._torn_down:
            return
        self._torn_down = True
        self.network._unregister(self)
        on_close = getattr(self.handler, "on_close", None)
        if on_close is not None:
            on_close()


@dataclass
class Network:
    """The wires between simulated hosts."""

    clock: Clock
    costs: CostModel
    faults: FaultPlan | None = None
    _services: dict[tuple[str, int], ServiceFactory] = field(default_factory=dict)
    _hosts: set[str] = field(default_factory=set)
    _live: dict[tuple[str, int], list[Connection]] = field(default_factory=dict)
    _next_conn_id: int = 0

    def add_host(self, hostname: str) -> None:
        self._hosts.add(hostname)

    def install_faults(self, plan: FaultPlan | None) -> None:
        """Make the wires unreliable according to ``plan`` (None: perfect)."""
        self.faults = plan

    def listen(self, hostname: str, port: int, factory: ServiceFactory) -> None:
        """Bind a service; one factory call per inbound connection."""
        if hostname not in self._hosts:
            raise err(Errno.ENOENT, f"unknown host {hostname!r}")
        key = (hostname, port)
        if key in self._services:
            raise err(Errno.EBUSY, f"{hostname}:{port} already bound")
        self._services[key] = factory

    def unlisten(self, hostname: str, port: int) -> None:
        self._services.pop((hostname, port), None)

    def connect(self, client_host: str, server_host: str, port: int) -> Connection:
        """TCP-ish connection setup: charged one round trip."""
        if client_host not in self._hosts:
            raise err(Errno.ENOENT, f"unknown client host {client_host!r}")
        factory = self._services.get((server_host, port))
        if factory is None:
            raise err(Errno.ECONNREFUSED, f"{server_host}:{port}")
        self.clock.advance(self.costs.net_rtt_ns, "net")
        plan = self.faults
        if plan is not None and plan.applies_to(port):
            if plan.blackout_denies(server_host, port):
                raise err(Errno.ECONNREFUSED, f"{server_host}:{port} blacked out")
            if plan.refuse_connect(self.clock):
                raise err(Errno.ECONNREFUSED, f"{server_host}:{port} (injected fault)")
        handler = factory(Peer(hostname=client_host))
        self._next_conn_id += 1
        connection = Connection(
            network=self,
            client_host=client_host,
            server_host=server_host,
            port=port,
            handler=handler,
            conn_id=self._next_conn_id,
        )
        self._live.setdefault((server_host, port), []).append(connection)
        return connection

    def _unregister(self, connection: Connection) -> None:
        conns = self._live.get((connection.server_host, connection.port))
        if conns is not None:
            try:
                conns.remove(connection)
            except ValueError:
                pass

    # ------------------------------------------------------------------ #
    # failure primitives (used by fault plans and by Cluster.crash_server)
    # ------------------------------------------------------------------ #

    def live_connections(self, server_host: str, port: int | None = None) -> list[Connection]:
        return [
            conn
            for (host, p), conns in self._live.items()
            if host == server_host and (port is None or p == port)
            for conn in list(conns)
        ]

    def break_connections(self, server_host: str, port: int | None = None) -> int:
        """Abruptly kill every live connection to a service; returns count."""
        victims = self.live_connections(server_host, port)
        for conn in victims:
            conn._break()
        return len(victims)

    def crash_service(self, server_host: str, port: int) -> int:
        """A server dies: live connections break AND the port stops
        listening.  Restart by calling ``listen`` (or ``serve``) again."""
        broken = self.break_connections(server_host, port)
        self.unlisten(server_host, port)
        return broken

    def services(self) -> list[tuple[str, int]]:
        return sorted(self._services)
