"""Wire framing for simulated protocols.

Messages are dictionaries of JSON-able values plus raw byte strings;
encoding renders honest byte counts so the network's throughput charge
reflects real payload sizes (an 8 MB ``put`` costs 8 MB of transfer).
Bytes values are tagged and base64-encoded inside the JSON envelope.
"""

from __future__ import annotations

import base64
import json
from typing import Any


class ProtocolError(ValueError):
    """A frame failed to decode or had the wrong shape."""


_BYTES_TAG = "__b64__"
_ESCAPE_TAG = "__esc__"
_TAG_SHAPES = ({_BYTES_TAG}, {_ESCAPE_TAG})


def _encode_value(value: Any) -> Any:
    if isinstance(value, bytes):
        return {_BYTES_TAG: base64.b64encode(value).decode("ascii")}
    if isinstance(value, dict):
        encoded = {k: _encode_value(v) for k, v in value.items()}
        if set(encoded.keys()) in _TAG_SHAPES:
            # a user dict that *looks* like one of our tag envelopes must
            # not round-trip as bytes: wrap it so decode can tell them apart
            return {_ESCAPE_TAG: encoded}
        return encoded
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ProtocolError(f"cannot encode {type(value).__name__} on the wire")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        keys = set(value.keys())
        if keys == {_BYTES_TAG}:
            return base64.b64decode(value[_BYTES_TAG])
        if keys == {_ESCAPE_TAG} and isinstance(value[_ESCAPE_TAG], dict):
            # escaped user dict: its values decode normally, but the dict
            # itself is returned verbatim rather than treated as a tag
            inner = value[_ESCAPE_TAG]
            return {k: _decode_value(v) for k, v in inner.items()}
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialize a message dict to wire bytes."""
    try:
        return json.dumps(
            _encode_value(message), separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unencodable message: {exc}") from exc


def decode_message(frame: bytes) -> dict[str, Any]:
    """Parse wire bytes back into a message dict."""
    try:
        decoded = _decode_value(json.loads(frame.decode("utf-8")))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad frame: {exc}") from exc
    if not isinstance(decoded, dict):
        raise ProtocolError(f"frame is not a message dict: {type(decoded).__name__}")
    return decoded
