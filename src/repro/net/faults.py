"""Deterministic fault injection for the simulated network.

The paper's Chirp deployment lives on a wide-area grid where connections
stall, peers vanish mid-authentication, and servers restart (§4).  The
reproduction's network is perfectly reliable unless a :class:`FaultPlan`
is installed on it; the plan then injects, per connection attempt and per
request/response exchange:

* **refuse** — the connect itself fails with ``ECONNREFUSED``,
* **drop** — the connection dies before the server sees the request,
* **drop_after** — the server processes the request but the response is
  lost and the connection dies (the case idempotency keys exist for),
* **spike** — the exchange is charged extra simulated latency,
* **truncate** — the response frame is cut short (garbage at the client),
* **corrupt** — the request frame is mangled before the server parses it,
* **restart** — at scheduled op counts, every live connection to the
  service breaks at once, as if the whole server crashed and restarted,
* **blackout** — a whole endpoint refuses *everything* for a scheduled
  op-count window: connects are refused, live connections break on their
  next call.  Unlike ``restart`` (one instantaneous crash) a blackout
  has *duration*, which is what shard-death drills need — the service is
  dark for the window and comes back by itself when it closes.

Every decision is drawn from an RNG seeded on ``(plan seed, fault kind,
draw counter, simulated clock)``, so a given seed produces the same fault
sequence on every run of the same (deterministic) workload: failures are
reproducible, which is what makes them debuggable and CI-safe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..kernel.timing import Clock, NS_PER_MS

#: The injectable fault kinds, in the order they are consulted per call.
KIND_REFUSE = "refuse"
KIND_DROP = "drop"
KIND_DROP_AFTER = "drop_after"
KIND_SPIKE = "spike"
KIND_TRUNCATE = "truncate"
KIND_CORRUPT = "corrupt"
KIND_RESTART = "restart"
KIND_BLACKOUT = "blackout"

ALL_KINDS = (
    KIND_REFUSE,
    KIND_DROP,
    KIND_DROP_AFTER,
    KIND_SPIKE,
    KIND_TRUNCATE,
    KIND_CORRUPT,
    KIND_RESTART,
    KIND_BLACKOUT,
)


@dataclass(frozen=True)
class Blackout:
    """One scheduled whole-endpoint outage.

    The window is measured on the plan's global op counter (the same
    counter ``restart_at_ops`` uses): the endpoint is dark while
    ``start_op <= ops_seen < end_op``.  ``host`` empty means every host
    serving ``port`` — a port-wide outage; naming a host scopes the
    blackout to that one endpoint, which is how a single federation
    shard dies while its replica peers (same port, different hosts)
    stay up.
    """

    port: int
    start_op: int
    end_op: int
    host: str = ""

    def covers(self, host: str, port: int, ops_seen: int) -> bool:
        return (
            port == self.port
            and (not self.host or host == self.host)
            and self.start_op <= ops_seen < self.end_op
        )


@dataclass
class FaultStats:
    """How many faults of each kind a plan has actually injected."""

    injected: dict[str, int] = field(default_factory=dict)

    def count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def total(self) -> int:
        return sum(self.injected.values())


def mangle_frame(frame: bytes) -> bytes:
    """Deterministically wreck a frame so no codec can parse it."""
    return b"\xff" + frame[: len(frame) // 2]


@dataclass
class FaultPlan:
    """A seeded, reproducible schedule of network faults.

    Rates are independent per-event probabilities in ``[0, 1]``.  The
    optional ``ports`` filter restricts injection to the listed server
    ports (so e.g. catalog traffic can stay clean while Chirp traffic is
    stressed).  ``restart_at_ops`` lists global call counts at which the
    server being called crashes and instantly restarts: all of its live
    connections break, but the service keeps listening.
    """

    seed: int = 0
    refuse_rate: float = 0.0
    drop_rate: float = 0.0
    drop_after_rate: float = 0.0
    spike_rate: float = 0.0
    spike_ns: int = 50 * NS_PER_MS
    truncate_rate: float = 0.0
    corrupt_rate: float = 0.0
    restart_at_ops: tuple[int, ...] = ()
    #: scheduled whole-endpoint outages (see :class:`Blackout`)
    blackouts: tuple[Blackout, ...] = ()
    ports: tuple[int, ...] | None = None
    stats: FaultStats = field(default_factory=FaultStats)
    #: optional metrics sink (duck-typed ``counter_inc``): every injected
    #: fault also lands in a ``fault.<kind>`` counter, so observers (the
    #: fuzzer's coverage signal, ``repro metrics``) read fault activity
    #: off telemetry instead of reaching into this module's internals
    telemetry: object | None = field(default=None, repr=False, compare=False)
    _forced: list[str] = field(default_factory=list)
    _draws: int = 0
    _ops_seen: int = 0

    @classmethod
    def uniform(cls, seed: int, rate: float, **overrides) -> "FaultPlan":
        """The standard stress plan: every fault kind at one rate."""
        return cls(
            seed=seed,
            refuse_rate=rate,
            drop_rate=rate,
            drop_after_rate=rate,
            spike_rate=rate,
            truncate_rate=rate,
            corrupt_rate=rate,
            **overrides,
        )

    # ------------------------------------------------------------------ #
    # decision drawing
    # ------------------------------------------------------------------ #

    def applies_to(self, port: int) -> bool:
        return self.ports is None or port in self.ports

    def bind_telemetry(self, telemetry: object | None) -> "FaultPlan":
        """Mirror every injected fault into ``fault.<kind>`` counters."""
        self.telemetry = telemetry
        return self

    def _record(self, kind: str) -> None:
        self.stats.count(kind)
        if self.telemetry is not None:
            self.telemetry.counter_inc(f"fault.{kind}")

    def force(self, *kinds: str) -> None:
        """Queue one-shot faults consumed at the next matching decision.

        Lets tests trigger a specific fault deterministically without
        tuning rates: ``plan.force("drop_after")`` fires exactly once.
        """
        for kind in kinds:
            if kind not in ALL_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
            self._forced.append(kind)

    def _roll(self, kind: str, rate: float, clock: Clock) -> bool:
        if kind in self._forced:
            self._forced.remove(kind)
            self._record(kind)
            return True
        if rate <= 0.0:
            return False
        self._draws += 1
        rng = random.Random(f"{self.seed}:{kind}:{self._draws}:{clock.now_ns}")
        if rng.random() < rate:
            self._record(kind)
            return True
        return False

    def refuse_connect(self, clock: Clock) -> bool:
        return self._roll(KIND_REFUSE, self.refuse_rate, clock)

    def drop_request(self, clock: Clock) -> bool:
        return self._roll(KIND_DROP, self.drop_rate, clock)

    def drop_response(self, clock: Clock) -> bool:
        return self._roll(KIND_DROP_AFTER, self.drop_after_rate, clock)

    def latency_spike(self, clock: Clock) -> int:
        """Extra latency to charge this exchange (0 when not spiked)."""
        if self._roll(KIND_SPIKE, self.spike_rate, clock):
            return self.spike_ns
        return 0

    def truncate_response(self, clock: Clock) -> bool:
        return self._roll(KIND_TRUNCATE, self.truncate_rate, clock)

    def corrupt_request(self, clock: Clock) -> bool:
        return self._roll(KIND_CORRUPT, self.corrupt_rate, clock)

    def due_restart(self) -> bool:
        """Advance the global op counter; true at scheduled crash points."""
        if KIND_RESTART in self._forced:
            self._forced.remove(KIND_RESTART)
            self._record(KIND_RESTART)
            return True
        self._ops_seen += 1
        if self._ops_seen in self.restart_at_ops:
            self._record(KIND_RESTART)
            return True
        return False

    def blackout_active(self, host: str, port: int) -> bool:
        """Is ``host:port`` inside a scheduled outage window right now?

        Pure query — no recording, no counter advance — so routing layers
        can ask without perturbing the fault schedule.
        """
        return any(b.covers(host, port, self._ops_seen) for b in self.blackouts)

    def blackout_denies(self, host: str, port: int) -> bool:
        """Deny one connect/call to a blacked-out endpoint (recorded).

        A forced ``blackout`` (see :meth:`force`) denies the next
        matching decision exactly once, window or no window.
        """
        if KIND_BLACKOUT in self._forced:
            self._forced.remove(KIND_BLACKOUT)
            self._record(KIND_BLACKOUT)
            return True
        if self.blackout_active(host, port):
            self._record(KIND_BLACKOUT)
            return True
        return False
