"""Simulated network substrate: hosts, connections, framing, clusters."""

from .cluster import Cluster
from .network import Connection, ConnectionHandler, Network, Peer, ServiceFactory
from .rpc import ProtocolError, decode_message, encode_message

__all__ = [
    "Cluster",
    "Connection",
    "ConnectionHandler",
    "Network",
    "Peer",
    "ProtocolError",
    "ServiceFactory",
    "decode_message",
    "encode_message",
]
