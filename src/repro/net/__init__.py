"""Simulated network substrate: hosts, connections, framing, clusters."""

from .cluster import Cluster
from .faults import ALL_KINDS, Blackout, FaultPlan, FaultStats
from .network import Connection, ConnectionHandler, Network, Peer, ServiceFactory
from .rpc import ProtocolError, decode_message, encode_message

__all__ = [
    "ALL_KINDS",
    "Blackout",
    "Cluster",
    "Connection",
    "ConnectionHandler",
    "FaultPlan",
    "FaultStats",
    "Network",
    "Peer",
    "ProtocolError",
    "ServiceFactory",
    "decode_message",
    "encode_message",
]
