"""Command-line front end: drive the reproduction's demos and quick benches.

Usage::

    python -m repro <command>

Commands:

``quickstart``
    the Figure-2 interactive session,
``workflow``
    the Figure-3 distributed stage/exec/fetch workflow,
``survey``
    the Figure-1 identity-mapping matrix, measured live,
``audit``
    the untrusted-program forensic demo (§9),
``fig5a`` / ``fig5b``
    quick single-run versions of the evaluation tables (the full harness
    lives in ``benchmarks/``),
``metrics``
    the Figure-3 workflow run under the telemetry layer, dumping the
    full metrics/trace snapshot as JSON (counters, latency histograms
    with percentiles, the client→server→syscall span tree, the
    reference monitor's per-errno denial breakdown, and a
    ``replication`` section — quorum writes, failover reads, read
    repairs, and anti-entropy repair totals from a replicated-
    federation blackout drill, read off the ``repl.*`` counters),
``fuzz``
    the coverage-guided scenario fuzzer (:mod:`repro.fuzz`): fork
    thousands of variant worlds from one warm snapshot, mutate op
    scripts / identities / ACL grants / fault schedules, keep inputs
    that reach new coverage, and shrink any containment violation to a
    minimal machine-readable reproducer.

This module stays import-cheap and side-effect-free so `python -m repro`
startup is instant; each command imports what it needs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable


def _run_quickstart(_args: argparse.Namespace) -> int:
    from repro import AuditLog, IdentityBox, Machine

    machine = Machine()
    dthain = machine.add_user("dthain")
    owner = machine.host_task(dthain)
    machine.write_file(owner, "/home/dthain/secret", b"top secret", mode=0o600)
    audit = AuditLog()
    box = IdentityBox(machine, dthain, "Freddy", audit=audit)

    from repro.kernel import OpenFlags

    def session(proc, args):
        name = yield proc.sys.get_user_name()
        print(f"% whoami\n{name}")
        denied = yield proc.sys.open("/home/dthain/secret", OpenFlags.O_RDONLY)
        print(f"% cat /home/dthain/secret\ncat: Permission denied ({denied})")
        fd = yield proc.sys.open("mydata", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        yield proc.sys.write(fd, proc.alloc_bytes(b"notes"), 5)
        yield proc.sys.close(fd)
        names = yield proc.sys.readdir(".")
        print(f"% ls\n{'  '.join(names)}")
        return 0

    proc = box.run(session)
    print(f"\n[exit {proc.exit_status}] audit:")
    print(audit.render())
    return 0


def _run_workflow(_args: argparse.Namespace) -> int:
    from repro import Cluster
    from repro.chirp import ChirpClient, ChirpServer, GlobusAuthenticator, ServerAuth
    from repro.core import Acl, Rights
    from repro.gsi import CertificateAuthority, CredentialStore, provision_user
    from repro.kernel import OpenFlags

    cluster = Cluster()
    server_machine = cluster.add_machine("server1.nowhere.edu")
    cluster.add_machine("laptop.cs.nowhere.edu")
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    wallet = provision_user(ca, trust, "/O=UnivNowhere/CN=Fred")
    owner = server_machine.add_user("dthain")
    server = ChirpServer(
        server_machine, owner, network=cluster.network,
        auth=ServerAuth(credential_store=trust),
    )
    acl = Acl()
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlv(rwlax)"))
    server.set_root_acl(acl)
    server.serve()

    def sim(proc, args):
        yield proc.compute(ms=100)
        fd = yield proc.sys.open("out.dat", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        yield proc.sys.write(fd, proc.alloc_bytes(b"results!\n" * 100), 900)
        yield proc.sys.close(fd)
        return 0

    server_machine.register_program("sim", sim)
    client = ChirpClient.connect(
        cluster.network, "laptop.cs.nowhere.edu", "server1.nowhere.edu"
    )
    print("authenticated as", client.authenticate([GlobusAuthenticator(wallet)]))
    client.mkdir("/work")
    print("reserved /work with ACL:", client.getacl("/work").strip())
    client.put(b"#!repro:sim\n", "/work/sim.exe", mode=0o755)
    print("exec status:", client.exec("/work/sim.exe", cwd="/work"))
    print("retrieved", len(client.get("/work/out.dat")), "bytes of output")
    print(f"simulated time: {cluster.clock.now_ns / 1e6:.2f} ms")
    return 0


def _run_survey(_args: argparse.Namespace) -> int:
    from repro.core.mapping import evaluate_all, render_table

    print(render_table(evaluate_all()))
    return 0


def _run_audit(_args: argparse.Namespace) -> int:
    from repro import AuditLog, IdentityBox, Machine
    from repro.kernel import OpenFlags

    machine = Machine()
    alice = machine.add_user("alice")
    task = machine.host_task(alice)
    machine.write_file(task, "/home/alice/.secret-key", b"KEY", mode=0o600)
    audit = AuditLog()
    box = IdentityBox(machine, alice, "BigSoftwareCorp", audit=audit)

    def downloaded(proc, args):
        fd = yield proc.sys.open("cache.bin", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        yield proc.sys.write(fd, proc.alloc_bytes(b"\x00" * 100), 100)
        yield proc.sys.close(fd)
        yield proc.sys.open("/home/alice/.secret-key", OpenFlags.O_RDONLY)
        return 0

    box.run(downloaded)
    print("forensic audit for BigSoftwareCorp:")
    print(audit.render())
    return 0


def _run_fig5a(args: argparse.Namespace) -> int:
    from repro.workloads import MICROBENCHES, measure_microbench

    print(f"{'syscall':<12} {'unmod us':>10} {'boxed us':>10} {'slowdown':>9}")
    for spec in MICROBENCHES:
        r = measure_microbench(spec, iterations=args.iterations)
        print(
            f"{r.name:<12} {r.unmodified_us:>10.2f} {r.boxed_us:>10.2f} "
            f"{r.slowdown:>8.1f}x"
        )
    return 0


def _run_fig5b(args: argparse.Namespace) -> int:
    from repro.workloads import ALL_APPS, measure_app

    print(f"{'app':<8} {'base s':>10} {'boxed s':>10} {'overhead %':>11} {'paper %':>8}")
    for profile in ALL_APPS:
        r = measure_app(profile, scale=args.scale)
        print(
            f"{profile.name:<8} {r.base_s / args.scale:>10.1f} "
            f"{r.boxed_s / args.scale:>10.1f} {r.overhead_pct:>11.2f} "
            f"{profile.paper_overhead_pct:>8.1f}"
        )
    return 0


def _run_metrics(args: argparse.Namespace) -> int:
    """Replay the Figure-3 workflow instrumented; dump telemetry JSON."""
    import json

    from repro import Cluster
    from repro.chirp import ChirpClient, ChirpServer, GlobusAuthenticator, ServerAuth
    from repro.core import Acl, Rights, Telemetry
    from repro.gsi import CertificateAuthority, CredentialStore, provision_user
    from repro.kernel import OpenFlags

    cluster = Cluster()
    server_machine = cluster.add_machine("server1.nowhere.edu")
    cluster.add_machine("laptop.cs.nowhere.edu")
    # one Telemetry shared by the RPC client and the server's supervisor,
    # so remote execs produce a single nested trace
    telemetry = Telemetry(cluster.clock)
    server_machine.telemetry = telemetry
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    wallet = provision_user(ca, trust, "/O=UnivNowhere/CN=Fred")
    owner = server_machine.add_user("dthain")
    server = ChirpServer(
        server_machine, owner, network=cluster.network,
        auth=ServerAuth(credential_store=trust),
    )
    acl = Acl()
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlv(rwlax)"))
    server.set_root_acl(acl)
    server.serve()

    def sim(proc, _sim_args):
        yield proc.compute(ms=100)
        fd = yield proc.sys.open("out.dat", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        yield proc.sys.write(fd, proc.alloc_bytes(b"results!\n" * 100), 900)
        yield proc.sys.close(fd)
        return 0

    server_machine.register_program("sim", sim)
    client = ChirpClient.connect(
        cluster.network, "laptop.cs.nowhere.edu", "server1.nowhere.edu",
        telemetry=telemetry,
    )
    client.authenticate([GlobusAuthenticator(wallet)])
    client.mkdir("/work")
    client.put(b"#!repro:sim\n", "/work/sim.exe", mode=0o755)
    client.exec("/work/sim.exe", cwd="/work")
    client.get("/work/out.dat")
    # one denied op so the denial-errno breakdown has something to say
    from repro.chirp import ChirpError

    try:
        client.unlink("/.__acl")
    except ChirpError:
        pass
    out = telemetry.snapshot(spans=args.spans)
    out["denials"] = server.pipeline.stats().get("denials", {})
    out["replication"] = _replication_drill(trust, wallet)
    out["fastlane"] = _fastlane_drill(trust, wallet)
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def _fastlane_drill(trust, wallet) -> dict:
    """A server with the fast lane armed, driven through its states, so
    the metrics snapshot's ``fastlane`` section reports live numbers: a
    memoized read hitting, a mutation invalidating it, a batch envelope
    coalescing frames, and one principal running its op budget dry."""
    from repro import Cluster
    from repro.chirp import (
        ChirpClient,
        ChirpError,
        ChirpServer,
        GlobusAuthenticator,
        ServerAuth,
    )
    from repro.core import Acl, IdentityQuota, ReadCache, Rights, Telemetry

    cluster = Cluster()
    machine = cluster.add_machine("server1.nowhere.edu")
    cluster.add_machine("laptop.cs.nowhere.edu")
    telemetry = Telemetry(cluster.clock)
    machine.telemetry = telemetry
    owner = machine.add_user("dthain")
    server = ChirpServer(
        machine,
        owner,
        network=cluster.network,
        auth=ServerAuth(credential_store=trust),
        telemetry=telemetry,
        read_cache=ReadCache(),
        quota=IdentityQuota(rate_per_s=10.0, burst=4),
    )
    acl = Acl()
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlv(rwlax)"))
    server.set_root_acl(acl)
    server.serve()
    client = ChirpClient.connect(
        cluster.network, "laptop.cs.nowhere.edu", "server1.nowhere.edu"
    )
    client.authenticate([GlobusAuthenticator(wallet)])
    client.mkdir("/hot")
    client.batch(
        [{"op": "stat", "path": "/hot"}, {"op": "stat", "path": "/hot"}]
    )
    client.mkdir("/hot/new")  # invalidates the memoized verdict
    try:
        while True:  # drain the budget until EAGAIN
            client.stat("/hot")
    except ChirpError:
        pass
    return {
        "cache": server.read_cache.snapshot(),
        "quota": server.quota.snapshot(),
        "batches": server.stats.batches,
        "coalesced_frames": server.stats.coalesced,
        "cache_hits": telemetry.counter_total("fastlane.cache.hits"),
        "cache_invalidations": telemetry.counter_total(
            "fastlane.cache.invalidations"
        ),
        "quota_rejections": telemetry.counter_total("fastlane.quota.rejections"),
    }


def _replication_drill(trust, wallet) -> dict:
    """A replicated federation losing and regaining one replica, so the
    metrics snapshot's ``replication`` section reports live ``repl.*``
    numbers: a quorum write past a dark shard, a failover read, the
    missed-write replay when the shard returns, and the anti-entropy
    repair a rejoin runs."""
    from repro import Cluster
    from repro.chirp import (
        FederatedClient,
        GlobusAuthenticator,
        RetryPolicy,
        ServerAuth,
        deploy_federation,
    )
    from repro.core import Acl, Rights, Telemetry

    cluster = Cluster()
    cluster.add_machine("console.nowhere.edu")
    telemetry = Telemetry(cluster.clock)
    acl = Acl()
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlv(rwlax)"))
    federation = deploy_federation(
        cluster,
        "pool",
        4,
        make_auth=lambda: ServerAuth(credential_store=trust),
        root_acl=acl,
        replicas=3,
    )
    client = FederatedClient.connect(
        cluster.network,
        "console.nowhere.edu",
        "pool",
        federation.catalog_host,
        [GlobusAuthenticator(wallet)],
        retry=RetryPolicy(max_attempts=5, seed=1),
        telemetry=telemetry,
        replicas=3,
    )
    client.mkdir("/data")
    client.put(b"replicated payload\n", "/data/f")
    victim = client.shard_of("/data")
    federation.blackout_shard(victim, 0, 10**9)
    client.put(b"written while dark\n", "/data/g")  # quorum write, 2 of 3
    client.get("/data/g")  # failover read off a live replica
    cluster.network.faults.blackouts = ()  # the outage lifts
    client.get("/data/g")  # the revived replica replays what it missed
    client.close()
    federation.rejoin_shard(victim)  # anti-entropy repair, then re-advertise
    shard_tel = federation.shards[victim].telemetry
    return {
        "quorum_writes": telemetry.counter_total("repl.quorum_writes"),
        "quorum_failures": telemetry.counter_total("repl.quorum_failures"),
        "failover_reads": telemetry.counter_total("repl.failover_reads"),
        "read_repairs": telemetry.counter_total("repl.read_repairs"),
        "missed_writes": telemetry.counter_total("repl.missed_writes"),
        "repairs": shard_tel.counter_total("repl.repairs"),
        "repair_files": shard_tel.counter_total("repl.repair_files"),
        "repair_bytes": shard_tel.counter_total("repl.repair_bytes"),
        "repair_removed": shard_tel.counter_total("repl.repair_removed"),
    }


def _run_fuzz(args: argparse.Namespace) -> int:
    """Run a fuzzing campaign; write corpus/coverage/reproducer artifacts."""
    import json
    from pathlib import Path

    from repro.fuzz import FuzzConfig, FuzzEngine

    surfaces = (
        ("syscall", "chirp") if args.surface == "both" else (args.surface,)
    )
    config = FuzzConfig(
        seed=args.seed,
        budget=args.budget,
        surfaces=surfaces,
        guided=not args.unguided,
    )
    engine = FuzzEngine(config)
    report = engine.run()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    def dump(name: str, payload) -> None:
        path = out / name
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    dump("report.json", report)
    dump("corpus.json", report["corpus"])
    dump("coverage.json", report["coverage"])
    for index, reproducer in enumerate(report["reproducers"]):
        dump(f"reproducer-{index:03d}.json", reproducer)

    mode = "guided" if config.guided else "unguided"
    print(
        f"fuzz ({mode}): {report['executions']} execs on "
        f"{'+'.join(surfaces)} -> {report['edge_count']} coverage edges, "
        f"{len(report['corpus'])} corpus entries, "
        f"{report['violations']} violations"
    )
    print(f"artifacts in {out}/")
    if report["violations"]:
        for index, reproducer in enumerate(report["reproducers"]):
            print(f"  reproducer-{index:03d}.json: {reproducer['verdict']}")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Identity Boxing (Thain, SC'05) — reproduction demos",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("quickstart", help="Figure 2: an interactive identity box")
    sub.add_parser("workflow", help="Figure 3: remote stage/exec/fetch via Chirp")
    sub.add_parser("survey", help="Figure 1: the identity-mapping matrix, measured")
    sub.add_parser("audit", help="§9: untrusted program under a credentialed name")

    p5a = sub.add_parser("fig5a", help="quick Figure 5(a) syscall-latency table")
    p5a.add_argument("--iterations", type=int, default=1000)

    p5b = sub.add_parser("fig5b", help="quick Figure 5(b) application-overhead table")
    p5b.add_argument("--scale", type=float, default=0.005)

    pm = sub.add_parser(
        "metrics", help="run the Figure-3 workflow instrumented; dump JSON telemetry"
    )
    pm.add_argument(
        "--spans", type=int, default=50, help="max trace spans to include"
    )

    pf = sub.add_parser(
        "fuzz", help="coverage-guided scenario fuzzing of the security boundary"
    )
    pf.add_argument("--seed", type=int, default=0, help="campaign RNG seed")
    pf.add_argument(
        "--budget", type=int, default=500, help="total scenario executions"
    )
    pf.add_argument(
        "--surface",
        choices=["syscall", "chirp", "both"],
        default="syscall",
        help="which boundary to fuzz",
    )
    pf.add_argument(
        "--unguided",
        action="store_true",
        help="disable coverage feedback (the random-sampling baseline)",
    )
    pf.add_argument(
        "--out", default="fuzz-out", help="artifact directory (created)"
    )

    return parser


COMMANDS: dict[str, Callable[[argparse.Namespace], int]] = {
    "quickstart": _run_quickstart,
    "workflow": _run_workflow,
    "survey": _run_survey,
    "audit": _run_audit,
    "fig5a": _run_fig5a,
    "fig5b": _run_fig5b,
    "metrics": _run_metrics,
    "fuzz": _run_fuzz,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
