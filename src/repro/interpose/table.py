"""Supervisor-side bookkeeping for boxed children.

Parrot "must track a tree of processes [and] keep tables of open files"
(§3).  The child's own kernel descriptor table holds nothing but the I/O
channel; every file the child believes it has open actually lives in the
supervisor's table.  :class:`VirtualFD` records that mapping, plus the
driver that owns the handle (local delegation or a remote service such as
Chirp mounted under ``/chirp``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..kernel.errno import Errno, err

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.process import Process
    from .drivers import Driver

#: Sentinel distinguishing "no forced result" from a result of None.
NO_RESULT = object()


@dataclass
class VirtualFD:
    """One descriptor as the boxed child perceives it."""

    driver: "Driver"
    handle: Any  #: driver-private handle (an int fd for the local driver)
    path: str  #: path the child opened (post-redirect, absolute)
    flags: int
    #: Offset mirror for drivers that are stateless (e.g. remote protocols
    #: that only support pread/pwrite); the local driver keeps offset state
    #: in the supervisor's own descriptor instead.
    offset: int = 0


@dataclass
class ChildState:
    """Everything the supervisor knows about one boxed process."""

    pid: int
    identity: str
    home: str
    #: absolute path of the private /etc/passwd copy ('' = no redirect)
    passwd_redirect: str = ""
    vfds: dict[int, VirtualFD] = field(default_factory=dict)
    _next_fd: int = 3
    #: continuation to run at the syscall-exit stop, if any
    exit_action: Callable[["Process", "ChildState"], None] | None = None
    #: value to poke into the return register at the exit stop
    exit_value: Any = NO_RESULT
    #: the call as originally attempted (before nullify/rewrite), kept so
    #: strace-style recording reports what the *child* asked for
    current_call: tuple | None = None
    #: threads share their creator's vfd dict; their exit must not close it
    shares_fds: bool = False

    # ------------------------------------------------------------------ #

    def install(self, vfd: VirtualFD) -> int:
        fd = self._next_fd
        while fd in self.vfds:
            fd += 1
        self._next_fd = fd + 1
        self.vfds[fd] = vfd
        return fd

    def get(self, fd: int) -> VirtualFD:
        try:
            return self.vfds[fd]
        except KeyError:
            raise err(Errno.EBADF, f"boxed fd {fd}") from None

    def drop(self, fd: int) -> VirtualFD:
        vfd = self.get(fd)
        del self.vfds[fd]
        if fd < self._next_fd:
            self._next_fd = max(fd, 3)
        return vfd

    def open_fds(self) -> list[int]:
        return sorted(self.vfds)

    # -- per-syscall scratch -------------------------------------------- #

    def reset_syscall(self) -> None:
        self.exit_action = None
        self.exit_value = NO_RESULT
        self.current_call = None


@dataclass
class ProcessTable:
    """All children currently inside one supervisor's boxes."""

    children: dict[int, ChildState] = field(default_factory=dict)

    def adopt(self, state: ChildState) -> None:
        self.children[state.pid] = state

    def get(self, pid: int) -> ChildState:
        try:
            return self.children[pid]
        except KeyError:
            raise err(Errno.ESRCH, f"pid {pid} is not in any identity box") from None

    def forget(self, pid: int) -> ChildState | None:
        return self.children.pop(pid, None)

    def pids_with_identity(self, identity: str) -> list[int]:
        return sorted(
            pid for pid, st in self.children.items() if st.identity == identity
        )

    def __contains__(self, pid: int) -> bool:
        return pid in self.children

    def __len__(self) -> int:
        return len(self.children)
