"""The shared I/O channel (Figure 4(b) of the paper).

2005-era ptrace moves one word per call, so bulk data through PEEK/POKE is
ruinously slow (the ``bench_ablation_iochannel`` benchmark shows just how
slow).  Parrot's answer: a small in-memory file shared between the
supervisor and all children.  The supervisor maps it; each child holds a
plain file descriptor to it.  To satisfy a big ``read``, the supervisor
copies the data *into the channel*, rewrites the child's syscall into a
``pread`` on the channel descriptor, and lets the child pull the data in
itself — one extra copy instead of thousands of ptrace round trips.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..kernel.errno import Errno, err
from ..kernel.fdtable import OpenFile, OpenFlags

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.machine import Machine
    from ..kernel.process import Process, Task

#: Descriptor number at which every boxed child finds the channel.
CHANNEL_FD = 999

#: Default channel capacity; offsets wrap when exhausted (single in-flight
#: transfer per stopped child, so wrapping is safe).
DEFAULT_CHANNEL_SIZE = 8 * 1024 * 1024

_counter = 0


def _next_channel_name() -> str:
    global _counter
    _counter += 1
    return f"/tmp/.parrot.channel.{_counter}"


class IOChannel:
    """One supervisor's shared buffer file."""

    def __init__(
        self,
        machine: "Machine",
        owner_task: "Task",
        size: int = DEFAULT_CHANNEL_SIZE,
    ) -> None:
        self.machine = machine
        self.owner_task = owner_task
        self.size = size
        self.path = _next_channel_name()
        machine.write_file(owner_task, self.path, b"", mode=0o600)
        self.fd = machine.kcall_x(owner_task, "open", self.path, OpenFlags.O_RDWR)
        self._next_off = 0
        #: bytes moved through the channel, for reporting
        self.bytes_staged = 0

    # ------------------------------------------------------------------ #

    def alloc(self, n: int) -> int:
        """Reserve ``n`` bytes of channel space; returns the offset."""
        if n > self.size:
            raise err(Errno.ENOSPC, f"transfer of {n} exceeds channel size {self.size}")
        if self._next_off + n > self.size:
            self._next_off = 0
        off = self._next_off
        self._next_off += n
        return off

    def stage(self, data: bytes) -> int:
        """Copy ``data`` into the channel (supervisor-side pwrite); returns offset."""
        off = self.alloc(len(data))
        if data:
            self.machine.kcall_x(self.owner_task, "pwrite_bytes", self.fd, data, off)
        self.bytes_staged += len(data)
        return off

    def stage_mapped(self, data: bytes) -> int:
        """Place ``data`` in the channel through the supervisor's mapping.

        "The supervisor maps the channel into memory" (§5): bytes the
        supervisor just read already sit in the mapped region, so staging
        them costs no additional copy — the total for a bulk read is the
        paper's two copies (file → channel, channel → child), not three.
        """
        off = self.alloc(len(data))
        if data:
            node = self.owner_task.fdtable.get(self.fd).inode
            self.machine.fs.write_at(node, off, data, self.machine.clock.now_ns)
        self.bytes_staged += len(data)
        return off

    def read_back(self, off: int, n: int) -> bytes:
        """Read data a child deposited in the channel (supervisor-side pread)."""
        self.bytes_staged += n
        return self.machine.kcall_x(self.owner_task, "pread_bytes", self.fd, n, off)

    def read_back_mapped(self, off: int, n: int) -> bytes:
        """Read deposited data through the mapping (no extra copy charge);
        the forwarding write to the real destination is the second copy."""
        self.bytes_staged += n
        node = self.owner_task.fdtable.get(self.fd).inode
        return self.machine.fs.read_at(node, off, n)

    # ------------------------------------------------------------------ #

    def attach_child(self, proc: "Process") -> None:
        """Give a freshly boxed child its channel descriptor.

        Models fd inheritance across fork: the child's descriptor table
        gets an open RDWR description of the channel inode at a fixed,
        well-known number.
        """
        res = self.machine.vfs.resolve(self.path, self.owner_task.cred)
        node = res.require()
        proc.task.fdtable.install(
            OpenFile(inode=node, flags=OpenFlags.O_RDWR, path=self.path),
            fd=CHANNEL_FD,
        )

    def close(self) -> None:
        self.machine.kcall(self.owner_task, "close", self.fd)
