"""Signal-containment policies for the supervisor.

The paper's base rule (§3): "a process within an identity box may only send
signals to other processes with the same identity."  Its future-work
proposal (§9, Figure 6) generalizes this to a hierarchy, where an ancestor
identity manages — and may signal — its descendants.

The supervisor takes a policy object so both rules (and site-specific
variants) are pluggable.  The hierarchical policy is opt-in: it interprets
identities as colon-separated paths (``root:dthain:visitor``), which is the
Figure-6 naming style, *not* the ``method:name`` principal style — don't
enable it for Chirp principals, where ``globus`` would become everyone's
ancestor.
"""

from __future__ import annotations

from ..core.hierarchy import HierarchicalIdentity, HierarchyError


class SameIdentityPolicy:
    """The paper's §3 rule: signals only between equal identities."""

    def may_signal(self, sender: str, target: str) -> bool:
        return sender == target


class HierarchicalSignalPolicy:
    """The Figure-6 rule: same identity, or the sender is an ancestor.

    Identities that do not parse as hierarchical paths fall back to exact
    equality, so mixing styles degrades safely.
    """

    def may_signal(self, sender: str, target: str) -> bool:
        if sender == target:
            return True
        try:
            sender_id = HierarchicalIdentity.parse(sender)
            target_id = HierarchicalIdentity.parse(target)
        except HierarchyError:
            return False
        return sender_id.is_ancestor_of(target_id)
