"""Descriptor lifecycle and data movement inside an identity box.

This is where the paper's Figure 4(b) lives.  Small transfers move through
ptrace word-at-a-time peeks and pokes; anything larger is staged in the
shared I/O channel and the child's syscall is rewritten into a
``pread``/``pwrite`` on the channel descriptor, coercing the application
into copying its own data.

The ``open`` rights check (r/w per flags, write-in-directory for O_CREAT)
is declared in :data:`repro.core.ops.OP_PATH_SPECS` and enforced by the
pipeline's reference monitor before :func:`h_open` runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...core.ops import OP_PATH_SPECS, OpSpec
from ...kernel.errno import Errno, err
from ...kernel.fdtable import OpenFlags
from ..drivers import NATIVE, NativePassthrough
from ..iochannel import CHANNEL_FD
from ..table import VirtualFD

if TYPE_CHECKING:  # pragma: no cover
    from ...core.pipeline import Operation
    from ...kernel.process import Process
    from ..table import ChildState
    from . import SyscallContext


# ---------------------------------------------------------------------- #
# open & close
# ---------------------------------------------------------------------- #


def h_open(op: "Operation", ctx: "SyscallContext") -> None:
    path = op.path()
    flags = OpenFlags(int(op.args["flags"]))
    handle = path.driver.open(path.sub, int(flags), op.args["mode"])
    fd = ctx.state.install(
        VirtualFD(driver=path.driver, handle=handle, path=path.full, flags=int(flags))
    )
    ctx.finish(fd)


def h_close(op: "Operation", ctx: "SyscallContext") -> None:
    vfd = ctx.state.drop(op.args["fd"])
    if isinstance(vfd.driver, NativePassthrough):
        # the descriptor lives in the child's own table: close it there
        ctx.sup.machine.trace.rewrite(ctx.proc, "close", (vfd.handle,))
        return
    vfd.driver.close(vfd.handle)
    ctx.finish(0)


def h_dup(op: "Operation", ctx: "SyscallContext") -> None:
    state = ctx.state
    vfd = state.get(op.args["fd"])
    if isinstance(vfd.driver, NativePassthrough):
        of = ctx.proc.task.fdtable.get(vfd.handle)
        new_fd = state.install(
            VirtualFD(driver=NATIVE, handle=0, path=vfd.path, flags=vfd.flags)
        )
        of.refcount += 1
        ctx.proc.task.fdtable.install(of, fd=new_fd)
        state.get(new_fd).handle = new_fd
        ctx.finish(new_fd)
        return
    handle = vfd.driver.dup(vfd.handle)
    fd = state.install(
        VirtualFD(driver=vfd.driver, handle=handle, path=vfd.path, flags=vfd.flags)
    )
    ctx.finish(fd)


def h_pipe(op: "Operation", ctx: "SyscallContext") -> None:
    """Create a pipe whose ends live natively in the child (see
    :class:`~repro.interpose.drivers.NativePassthrough`).

    The native descriptors are installed at the *virtual* numbers, so
    child-visible fds form one namespace whichever kind they are.
    """
    from ...kernel.fdtable import OpenFile
    from ...kernel.pipes import Pipe

    state = ctx.state
    pipe = Pipe()
    r_of = OpenFile(
        inode=None, flags=OpenFlags.O_RDONLY, path="pipe:[r]", pipe=pipe, pipe_end="r"
    )
    w_of = OpenFile(
        inode=None, flags=OpenFlags.O_WRONLY, path="pipe:[w]", pipe=pipe, pipe_end="w"
    )
    pipe.add_end("r")
    pipe.add_end("w")
    read_v = state.install(
        VirtualFD(driver=NATIVE, handle=0, path="pipe:[r]", flags=int(OpenFlags.O_RDONLY))
    )
    write_v = state.install(
        VirtualFD(driver=NATIVE, handle=0, path="pipe:[w]", flags=int(OpenFlags.O_WRONLY))
    )
    ctx.proc.task.fdtable.install(r_of, fd=read_v)
    ctx.proc.task.fdtable.install(w_of, fd=write_v)
    state.get(read_v).handle = read_v
    state.get(write_v).handle = write_v
    ctx.sup.machine.clock.advance(2 * ctx.sup.machine.costs.fd_op_ns, "fd")
    ctx.finish((read_v, write_v))


# ---------------------------------------------------------------------- #
# reads
# ---------------------------------------------------------------------- #


def _deliver_read(ctx: "SyscallContext", data: bytes, addr: int) -> None:
    """Move fetched data into the child: poke small, channel big."""
    sup = ctx.sup
    if len(data) <= sup.small_io_threshold:
        if data:
            sup.machine.trace.poke_bytes(ctx.proc, addr, data)
        ctx.finish(len(data))
        return
    off = sup.channel.stage_mapped(data)
    # Rewrite the call into a pread on the channel; the child itself
    # pulls the data in, "unaware of the activity necessary to place
    # it there" (§5).  The rewritten call's own return value is the
    # byte count, so no exit-stop poke is needed.
    sup.machine.trace.rewrite(ctx.proc, "pread", (CHANNEL_FD, addr, len(data), off))


def h_read(op: "Operation", ctx: "SyscallContext") -> None:
    fd, addr, length = op.args["fd"], op.args["addr"], op.args["length"]
    vfd = ctx.state.get(fd)
    if not OpenFlags(vfd.flags).readable:
        raise err(Errno.EBADF, f"fd {fd} not open for reading")
    if isinstance(vfd.driver, NativePassthrough):
        # pipe end: execute natively so the kernel can block the child
        ctx.sup.machine.trace.rewrite(ctx.proc, "read", (vfd.handle, addr, length))
        return
    data = vfd.driver.read(vfd.handle, length)
    _deliver_read(ctx, data, addr)


def h_pread(op: "Operation", ctx: "SyscallContext") -> None:
    fd, addr = op.args["fd"], op.args["addr"]
    vfd = ctx.state.get(fd)
    if not OpenFlags(vfd.flags).readable:
        raise err(Errno.EBADF, f"fd {fd} not open for reading")
    if isinstance(vfd.driver, NativePassthrough):
        raise err(Errno.ESPIPE, "pread on a pipe")
    data = vfd.driver.pread(vfd.handle, op.args["length"], op.args["offset"])
    _deliver_read(ctx, data, addr)


# ---------------------------------------------------------------------- #
# writes
# ---------------------------------------------------------------------- #


def h_write(op: "Operation", ctx: "SyscallContext") -> None:
    sup, proc, state = ctx.sup, ctx.proc, ctx.state
    fd, addr, length = op.args["fd"], op.args["addr"], op.args["length"]
    vfd = state.get(fd)
    if not OpenFlags(vfd.flags).writable:
        raise err(Errno.EBADF, f"fd {fd} not open for writing")
    if isinstance(vfd.driver, NativePassthrough):
        sup.machine.trace.rewrite(proc, "write", (vfd.handle, addr, length))
        return
    if length <= sup.small_io_threshold:
        data = sup.machine.trace.peek_bytes(proc, addr, length)
        n = vfd.driver.write(vfd.handle, data)
        ctx.finish(n)
        return
    off = sup.channel.alloc(length)
    sup.machine.trace.rewrite(proc, "pwrite", (CHANNEL_FD, addr, length, off))

    def complete(proc2: "Process", state2: "ChildState") -> None:
        written = proc2.regs.retval
        if not isinstance(written, int) or written < 0:
            return  # channel write failed; pass the error through
        data = sup.channel.read_back_mapped(off, written)
        n = vfd.driver.write(vfd.handle, data)
        sup.machine.trace.set_result(proc2, n)

    state.exit_action = complete


def h_pwrite(op: "Operation", ctx: "SyscallContext") -> None:
    sup, proc, state = ctx.sup, ctx.proc, ctx.state
    fd, addr = op.args["fd"], op.args["addr"]
    length, offset = op.args["length"], op.args["offset"]
    vfd = state.get(fd)
    if not OpenFlags(vfd.flags).writable:
        raise err(Errno.EBADF, f"fd {fd} not open for writing")
    if isinstance(vfd.driver, NativePassthrough):
        raise err(Errno.ESPIPE, "pwrite on a pipe")
    if length <= sup.small_io_threshold:
        data = sup.machine.trace.peek_bytes(proc, addr, length)
        n = vfd.driver.pwrite(vfd.handle, data, offset)
        ctx.finish(n)
        return
    off = sup.channel.alloc(length)
    sup.machine.trace.rewrite(proc, "pwrite", (CHANNEL_FD, addr, length, off))

    def complete(proc2: "Process", state2: "ChildState") -> None:
        written = proc2.regs.retval
        if not isinstance(written, int) or written < 0:
            return
        data = sup.channel.read_back_mapped(off, written)
        n = vfd.driver.pwrite(vfd.handle, data, offset)
        sup.machine.trace.set_result(proc2, n)

    state.exit_action = complete


# ---------------------------------------------------------------------- #
# descriptor metadata
# ---------------------------------------------------------------------- #


def h_lseek(op: "Operation", ctx: "SyscallContext") -> None:
    fd, offset, whence = op.args["fd"], op.args["offset"], op.args["whence"]
    vfd = ctx.state.get(fd)
    if isinstance(vfd.driver, NativePassthrough):
        ctx.sup.machine.trace.rewrite(ctx.proc, "lseek", (vfd.handle, offset, whence))
        return
    ctx.finish(vfd.driver.lseek(vfd.handle, offset, whence))


def h_fstat(op: "Operation", ctx: "SyscallContext") -> None:
    vfd = ctx.state.get(op.args["fd"])
    if isinstance(vfd.driver, NativePassthrough):
        ctx.sup.machine.trace.rewrite(ctx.proc, "fstat", (vfd.handle,))
        return
    ctx.finish(vfd.driver.fstat(vfd.handle))


def h_ftruncate(op: "Operation", ctx: "SyscallContext") -> None:
    fd, length = op.args["fd"], op.args["length"]
    vfd = ctx.state.get(fd)
    if isinstance(vfd.driver, NativePassthrough):
        ctx.sup.machine.trace.rewrite(ctx.proc, "ftruncate", (vfd.handle, length))
        return
    if not OpenFlags(vfd.flags).writable:
        raise err(Errno.EBADF, f"fd {fd} not open for writing")
    vfd.driver.ftruncate(vfd.handle, length)
    ctx.finish(0)


def register(registry) -> None:
    """Contribute the descriptor-lifecycle ops to ``registry``."""
    for name, handler in [
        ("open", h_open),
        ("close", h_close),
        ("dup", h_dup),
        ("pipe", h_pipe),
        ("read", h_read),
        ("pread", h_pread),
        ("write", h_write),
        ("pwrite", h_pwrite),
        ("lseek", h_lseek),
        ("fstat", h_fstat),
        ("ftruncate", h_ftruncate),
    ]:
        registry.register(OpSpec(name, handler, paths=OP_PATH_SPECS.get(name, ())))
