"""Descriptor lifecycle and data movement inside an identity box.

This is where the paper's Figure 4(b) lives.  Small transfers move through
ptrace word-at-a-time peeks and pokes; anything larger is staged in the
shared I/O channel and the child's syscall is rewritten into a
``pread``/``pwrite`` on the channel descriptor, coercing the application
into copying its own data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...kernel.errno import Errno, err
from ...kernel.fdtable import OpenFlags
from ..drivers import NATIVE, NativePassthrough
from ..iochannel import CHANNEL_FD
from ..table import ChildState, VirtualFD

if TYPE_CHECKING:  # pragma: no cover
    from ...kernel.process import Process, Regs


class FileHandlers:
    """open/close/dup/read/write/pread/pwrite/lseek/fstat/ftruncate."""

    # ------------------------------------------------------------------ #
    # open & close
    # ------------------------------------------------------------------ #

    def h_open(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        path = self._peek_path(proc, regs.args[0])
        flags = OpenFlags(regs.args[1] if len(regs.args) > 1 else 0)
        mode = regs.args[2] if len(regs.args) > 2 else 0o644
        full = self._abspath(proc, path)
        full = self._passwd_redirect(state, full)
        self._protect_acl_file(full)
        driver, sub = self._route(full)
        if driver.requires_local_acl:
            letters = ""
            if flags.readable:
                letters += "r"
            if flags.writable:
                letters += "w"
            if flags & OpenFlags.O_CREAT and not self.policy.exists(sub):
                # creating: the governing check is write in the directory;
                # read-on-missing-file is meaningless
                letters = "w"
            self._check(proc, state, sub, letters or "r")
        handle = driver.open(sub, int(flags), mode)
        fd = state.install(VirtualFD(driver=driver, handle=handle, path=full, flags=int(flags)))
        self._finish(proc, state, fd)

    def h_close(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        vfd = state.drop(regs.args[0])
        if isinstance(vfd.driver, NativePassthrough):
            # the descriptor lives in the child's own table: close it there
            self.machine.trace.rewrite(proc, "close", (vfd.handle,))
            return
        vfd.driver.close(vfd.handle)
        self._finish(proc, state, 0)

    def h_dup(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        vfd = state.get(regs.args[0])
        if isinstance(vfd.driver, NativePassthrough):
            of = proc.task.fdtable.get(vfd.handle)
            new_fd = state.install(
                VirtualFD(driver=NATIVE, handle=0, path=vfd.path, flags=vfd.flags)
            )
            of.refcount += 1
            proc.task.fdtable.install(of, fd=new_fd)
            state.get(new_fd).handle = new_fd
            self._finish(proc, state, new_fd)
            return
        handle = vfd.driver.dup(vfd.handle)
        fd = state.install(
            VirtualFD(driver=vfd.driver, handle=handle, path=vfd.path, flags=vfd.flags)
        )
        self._finish(proc, state, fd)

    def h_pipe(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        """Create a pipe whose ends live natively in the child (see
        :class:`~repro.interpose.drivers.NativePassthrough`).

        The native descriptors are installed at the *virtual* numbers, so
        child-visible fds form one namespace whichever kind they are.
        """
        from ...kernel.fdtable import OpenFile
        from ...kernel.pipes import Pipe

        pipe = Pipe()
        r_of = OpenFile(
            inode=None, flags=OpenFlags.O_RDONLY, path="pipe:[r]", pipe=pipe, pipe_end="r"
        )
        w_of = OpenFile(
            inode=None, flags=OpenFlags.O_WRONLY, path="pipe:[w]", pipe=pipe, pipe_end="w"
        )
        pipe.add_end("r")
        pipe.add_end("w")
        read_v = state.install(
            VirtualFD(driver=NATIVE, handle=0, path="pipe:[r]", flags=int(OpenFlags.O_RDONLY))
        )
        write_v = state.install(
            VirtualFD(driver=NATIVE, handle=0, path="pipe:[w]", flags=int(OpenFlags.O_WRONLY))
        )
        proc.task.fdtable.install(r_of, fd=read_v)
        proc.task.fdtable.install(w_of, fd=write_v)
        state.get(read_v).handle = read_v
        state.get(write_v).handle = write_v
        self.machine.clock.advance(2 * self.machine.costs.fd_op_ns, "fd")
        self._finish(proc, state, (read_v, write_v))

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def _deliver_read(
        self,
        proc: "Process",
        state: ChildState,
        data: bytes,
        addr: int,
    ) -> None:
        """Move fetched data into the child: poke small, channel big."""
        if len(data) <= self.small_io_threshold:
            if data:
                self.machine.trace.poke_bytes(proc, addr, data)
            self._finish(proc, state, len(data))
            return
        off = self.channel.stage_mapped(data)
        # Rewrite the call into a pread on the channel; the child itself
        # pulls the data in, "unaware of the activity necessary to place
        # it there" (§5).  The rewritten call's own return value is the
        # byte count, so no exit-stop poke is needed.
        self.machine.trace.rewrite(proc, "pread", (CHANNEL_FD, addr, len(data), off))

    def h_read(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        fd, addr, length = regs.args
        vfd = state.get(fd)
        if not OpenFlags(vfd.flags).readable:
            raise err(Errno.EBADF, f"fd {fd} not open for reading")
        if isinstance(vfd.driver, NativePassthrough):
            # pipe end: execute natively so the kernel can block the child
            self.machine.trace.rewrite(proc, "read", (vfd.handle, addr, length))
            return
        data = vfd.driver.read(vfd.handle, length)
        self._deliver_read(proc, state, data, addr)

    def h_pread(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        fd, addr, length, offset = regs.args
        vfd = state.get(fd)
        if not OpenFlags(vfd.flags).readable:
            raise err(Errno.EBADF, f"fd {fd} not open for reading")
        if isinstance(vfd.driver, NativePassthrough):
            raise err(Errno.ESPIPE, "pread on a pipe")
        data = vfd.driver.pread(vfd.handle, length, offset)
        self._deliver_read(proc, state, data, addr)

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def h_write(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        fd, addr, length = regs.args
        vfd = state.get(fd)
        if not OpenFlags(vfd.flags).writable:
            raise err(Errno.EBADF, f"fd {fd} not open for writing")
        if isinstance(vfd.driver, NativePassthrough):
            self.machine.trace.rewrite(proc, "write", (vfd.handle, addr, length))
            return
        if length <= self.small_io_threshold:
            data = self.machine.trace.peek_bytes(proc, addr, length)
            n = vfd.driver.write(vfd.handle, data)
            self._finish(proc, state, n)
            return
        off = self.channel.alloc(length)
        self.machine.trace.rewrite(proc, "pwrite", (CHANNEL_FD, addr, length, off))

        def complete(proc2: "Process", state2: ChildState) -> None:
            written = proc2.regs.retval
            if not isinstance(written, int) or written < 0:
                return  # channel write failed; pass the error through
            data = self.channel.read_back_mapped(off, written)
            n = vfd.driver.write(vfd.handle, data)
            self.machine.trace.set_result(proc2, n)

        state.exit_action = complete

    def h_pwrite(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        fd, addr, length, offset = regs.args
        vfd = state.get(fd)
        if not OpenFlags(vfd.flags).writable:
            raise err(Errno.EBADF, f"fd {fd} not open for writing")
        if isinstance(vfd.driver, NativePassthrough):
            raise err(Errno.ESPIPE, "pwrite on a pipe")
        if length <= self.small_io_threshold:
            data = self.machine.trace.peek_bytes(proc, addr, length)
            n = vfd.driver.pwrite(vfd.handle, data, offset)
            self._finish(proc, state, n)
            return
        off = self.channel.alloc(length)
        self.machine.trace.rewrite(proc, "pwrite", (CHANNEL_FD, addr, length, off))

        def complete(proc2: "Process", state2: ChildState) -> None:
            written = proc2.regs.retval
            if not isinstance(written, int) or written < 0:
                return
            data = self.channel.read_back_mapped(off, written)
            n = vfd.driver.pwrite(vfd.handle, data, offset)
            self.machine.trace.set_result(proc2, n)

        state.exit_action = complete

    # ------------------------------------------------------------------ #
    # descriptor metadata
    # ------------------------------------------------------------------ #

    def h_lseek(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        fd, offset, whence = regs.args
        vfd = state.get(fd)
        if isinstance(vfd.driver, NativePassthrough):
            self.machine.trace.rewrite(proc, "lseek", (vfd.handle, offset, whence))
            return
        self._finish(proc, state, vfd.driver.lseek(vfd.handle, offset, whence))

    def h_fstat(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        vfd = state.get(regs.args[0])
        if isinstance(vfd.driver, NativePassthrough):
            self.machine.trace.rewrite(proc, "fstat", (vfd.handle,))
            return
        self._finish(proc, state, vfd.driver.fstat(vfd.handle))

    def h_ftruncate(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        fd, length = regs.args
        vfd = state.get(fd)
        if isinstance(vfd.driver, NativePassthrough):
            self.machine.trace.rewrite(proc, "ftruncate", (vfd.handle, length))
            return
        if not OpenFlags(vfd.flags).writable:
            raise err(Errno.EBADF, f"fd {fd} not open for writing")
        vfd.driver.ftruncate(vfd.handle, length)
        self._finish(proc, state, 0)
