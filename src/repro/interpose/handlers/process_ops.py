"""Process, identity, and ACL-administration syscalls inside a box.

* ``spawn`` keeps containment transitive: children of boxed processes are
  adopted into the same box, with the same identity, before they run.
  Execution requires the ``x`` right on the program (§4) — checked by the
  pipeline's reference monitor before :func:`h_spawn` runs.
* ``kill`` enforces the paper's signal rule: "a process within an identity
  box may only send signals to other processes with the same identity"
  (§3).
* ``get_user_name`` is the paper's new syscall returning the high-level
  identity.
* ``getacl``/``setacl`` expose the ACL administration interface; ``setacl``
  demands the ``a`` right (the monitor's admin check).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...core.ops import OP_PATH_SPECS, OpSpec, acl_dir_for, apply_setacl
from ...kernel.errno import Errno, err
from ..table import ChildState, VirtualFD

if TYPE_CHECKING:  # pragma: no cover
    from ...core.pipeline import Operation
    from . import SyscallContext


# ---------------------------------------------------------------------- #
# identity introspection
# ---------------------------------------------------------------------- #


def h_getpid(op: "Operation", ctx: "SyscallContext") -> None:
    # Pass through: the pid is not a secret and the native call is the
    # designated null syscall anyway.
    return


def h_getppid(op: "Operation", ctx: "SyscallContext") -> None:
    return


def h_getuid(op: "Operation", ctx: "SyscallContext") -> None:
    # The Unix uid inside the box is the supervising user's; the private
    # /etc/passwd copy maps it to the visiting identity so name lookups
    # (whoami) show the high-level name (Figure 2).
    return


def h_get_user_name(op: "Operation", ctx: "SyscallContext") -> None:
    ctx.finish(ctx.state.identity)


# ---------------------------------------------------------------------- #
# process creation: adopt children into the box before they run
# ---------------------------------------------------------------------- #


def h_spawn(op: "Operation", ctx: "SyscallContext") -> None:
    sup, proc, state = ctx.sup, ctx.proc, ctx.state
    path = op.path()
    args = list(op.args["args"])
    content = path.driver.fetch_executable(path.sub)
    factory = sup.machine.parse_executable(content, path.full)
    child = sup.machine.spawn(
        factory,
        args,
        cred=proc.task.cred,
        cwd=proc.task.cwd,
        ppid=proc.pid,
        tracer=sup,
        comm=path.full,
    )
    child_state = sup.adopt(
        child,
        identity=state.identity,
        home=state.home,
        passwd_redirect=state.passwd_redirect,
    )
    _inherit_native_fds(proc, state, child, child_state)
    ctx.audit("spawn", path.full, True, f"child pid {child.pid}")
    ctx.finish(child.pid)


def h_thread(op: "Operation", ctx: "SyscallContext") -> None:
    """Threads stay in the box: same identity, shared descriptors."""
    sup, proc, state = ctx.sup, ctx.proc, ctx.state
    factory = op.args["factory"]
    args = list(op.args["args"])
    if not callable(factory):
        raise err(Errno.EINVAL, "thread start routine must be callable")
    child = sup.machine.spawn_thread(proc, factory, args, comm=f"{proc.comm}:thr")
    thread_state = ChildState(
        pid=child.pid,
        identity=state.identity,
        home=state.home,
        passwd_redirect=state.passwd_redirect,
        vfds=state.vfds,  # one descriptor namespace per thread group
        shares_fds=True,
    )
    sup.table.adopt(thread_state)
    ctx.audit("thread", proc.comm, True, f"tid {child.pid}")
    ctx.finish(child.pid)


def _inherit_native_fds(proc, state, child, child_state) -> None:
    """Pipe ends survive spawn, as descriptors survive fork+exec.

    Shared open-file descriptions keep offsets and pipe end-counts
    coherent between parent and child (a dying parent is EOF for the
    child's read end only once both have closed)."""
    from ..drivers import NativePassthrough

    for fd_num, vfd in sorted(state.vfds.items()):
        if not isinstance(vfd.driver, NativePassthrough):
            continue
        of = proc.task.fdtable.get(vfd.handle)
        of.refcount += 1
        child.task.fdtable.install(of, fd=fd_num)
        child_state.vfds[fd_num] = VirtualFD(
            driver=vfd.driver, handle=fd_num, path=vfd.path, flags=vfd.flags
        )


# ---------------------------------------------------------------------- #
# signals: same-identity containment
# ---------------------------------------------------------------------- #


def h_kill(op: "Operation", ctx: "SyscallContext") -> None:
    sup, state = ctx.sup, ctx.state
    pid, sig = op.args["pid"], op.args["sig"]
    target = sup.table.children.get(pid)
    if target is None:
        # The target either does not exist or lives outside every box;
        # either way the visitor may not learn which (ESRCH would leak
        # process existence), so deny uniformly.
        ctx.audit("kill", f"pid {pid}", False, "target outside box")
        raise err(Errno.EPERM, f"pid {pid} is not visible from this box")
    if not sup.signal_policy.may_signal(state.identity, target.identity):
        ctx.audit("kill", f"pid {pid}", False, f"identity {target.identity}")
        raise err(
            Errno.EPERM,
            f"{state.identity} may not signal {target.identity}",
        )
    result = sup.machine.kcall_x(sup.task, "kill", pid, sig)
    ctx.audit("kill", f"pid {pid} sig {sig}", True, "same identity")
    ctx.finish(result)


# ---------------------------------------------------------------------- #
# ACL administration
# ---------------------------------------------------------------------- #


def h_getacl(op: "Operation", ctx: "SyscallContext") -> None:
    path = op.path()
    if not path.check_acl:
        ctx.finish(path.driver.getacl(path.sub))
        return
    acl = ctx.sup.policy.acl_of(acl_dir_for(path.driver, path.sub))
    ctx.finish(acl.render() if acl is not None else "")


def h_setacl(op: "Operation", ctx: "SyscallContext") -> None:
    path = op.path()
    subject, rights_text = op.args["subject"], op.args["rights"]
    if not path.check_acl:
        path.driver.setacl(path.sub, subject, rights_text)
        ctx.finish(0)
        return
    acl_dir = op.scratch["acl_dir"]  # stashed by the monitor's admin check
    rights = apply_setacl(ctx.sup.policy, acl_dir, subject, rights_text)
    ctx.audit("setacl", acl_dir, True, f"{subject} {rights}")
    ctx.finish(0)


def register(registry) -> None:
    """Contribute the process/identity/ACL-admin ops to ``registry``."""
    for name, handler in [
        ("getpid", h_getpid),
        ("getppid", h_getppid),
        ("getuid", h_getuid),
        ("get_user_name", h_get_user_name),
        ("spawn", h_spawn),
        ("thread", h_thread),
        ("kill", h_kill),
        ("getacl", h_getacl),
        ("setacl", h_setacl),
    ]:
        registry.register(OpSpec(name, handler, paths=OP_PATH_SPECS.get(name, ())))
