"""Process, identity, and ACL-administration syscalls inside a box.

* ``spawn`` keeps containment transitive: children of boxed processes are
  adopted into the same box, with the same identity, before they run.
  Execution requires the ``x`` right on the program (§4).
* ``kill`` enforces the paper's signal rule: "a process within an identity
  box may only send signals to other processes with the same identity"
  (§3).
* ``get_user_name`` is the paper's new syscall returning the high-level
  identity.
* ``getacl``/``setacl`` expose the ACL administration interface; ``setacl``
  demands the ``a`` right.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...core.rights import Rights, RightsError
from ...kernel.errno import Errno, err
from ..table import ChildState, VirtualFD

if TYPE_CHECKING:  # pragma: no cover
    from ...kernel.process import Process, Regs


class ProcessHandlers:
    """spawn/kill/getpid/getuid/get_user_name/getacl/setacl."""

    # ------------------------------------------------------------------ #
    # identity introspection
    # ------------------------------------------------------------------ #

    def h_getpid(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        # Pass through: the pid is not a secret and the native call is the
        # designated null syscall anyway.
        return

    def h_getppid(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        return

    def h_getuid(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        # The Unix uid inside the box is the supervising user's; the private
        # /etc/passwd copy maps it to the visiting identity so name lookups
        # (whoami) show the high-level name (Figure 2).
        return

    def h_get_user_name(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        self._finish(proc, state, state.identity)

    # ------------------------------------------------------------------ #
    # process creation: adopt children into the box before they run
    # ------------------------------------------------------------------ #

    def h_spawn(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        path = self._peek_path(proc, regs.args[0])
        args = list(regs.args[1]) if len(regs.args) > 1 else []
        full = self._abspath(proc, path)
        driver, sub = self._route(full)
        if driver.requires_local_acl:
            self._check(proc, state, sub, "x")
        content = driver.fetch_executable(sub)
        factory = self.machine.parse_executable(content, full)
        child = self.machine.spawn(
            factory,
            args,
            cred=proc.task.cred,
            cwd=proc.task.cwd,
            ppid=proc.pid,
            tracer=self,
            comm=full,
        )
        child_state = self.adopt(
            child,
            identity=state.identity,
            home=state.home,
            passwd_redirect=state.passwd_redirect,
        )
        self._inherit_native_fds(proc, state, child, child_state)
        self._audit(state, "spawn", full, True, f"child pid {child.pid}")
        self._finish(proc, state, child.pid)

    def h_thread(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        """Threads stay in the box: same identity, shared descriptors."""
        factory = regs.args[0]
        args = list(regs.args[1]) if len(regs.args) > 1 else []
        if not callable(factory):
            raise err(Errno.EINVAL, "thread start routine must be callable")
        child = self.machine.spawn_thread(
            proc, factory, args, comm=f"{proc.comm}:thr"
        )
        thread_state = ChildState(
            pid=child.pid,
            identity=state.identity,
            home=state.home,
            passwd_redirect=state.passwd_redirect,
            vfds=state.vfds,  # one descriptor namespace per thread group
            shares_fds=True,
        )
        self.table.adopt(thread_state)
        self._audit(state, "thread", proc.comm, True, f"tid {child.pid}")
        self._finish(proc, state, child.pid)

    def _inherit_native_fds(self, proc, state, child, child_state) -> None:
        """Pipe ends survive spawn, as descriptors survive fork+exec.

        Shared open-file descriptions keep offsets and pipe end-counts
        coherent between parent and child (a dying parent is EOF for the
        child's read end only once both have closed)."""
        from ..drivers import NativePassthrough
        from ..table import VirtualFD

        for fd_num, vfd in sorted(state.vfds.items()):
            if not isinstance(vfd.driver, NativePassthrough):
                continue
            of = proc.task.fdtable.get(vfd.handle)
            of.refcount += 1
            child.task.fdtable.install(of, fd=fd_num)
            child_state.vfds[fd_num] = VirtualFD(
                driver=vfd.driver, handle=fd_num, path=vfd.path, flags=vfd.flags
            )

    # ------------------------------------------------------------------ #
    # signals: same-identity containment
    # ------------------------------------------------------------------ #

    def h_kill(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        pid, sig = regs.args
        target = self.table.children.get(pid)
        if target is None:
            # The target either does not exist or lives outside every box;
            # either way the visitor may not learn which (ESRCH would leak
            # process existence), so deny uniformly.
            self._audit(state, "kill", f"pid {pid}", False, "target outside box")
            raise err(Errno.EPERM, f"pid {pid} is not visible from this box")
        if not self.signal_policy.may_signal(state.identity, target.identity):
            self._audit(
                state, "kill", f"pid {pid}", False, f"identity {target.identity}"
            )
            raise err(
                Errno.EPERM,
                f"{state.identity} may not signal {target.identity}",
            )
        result = self.machine.kcall_x(self.task, "kill", pid, sig)
        self._audit(state, "kill", f"pid {pid} sig {sig}", True, "same identity")
        self._finish(proc, state, result)

    # ------------------------------------------------------------------ #
    # ACL administration
    # ------------------------------------------------------------------ #

    def _acl_dir_for(self, driver, sub: str) -> str:
        """The directory whose ACL governs ``sub``: itself if a directory,
        else its parent."""
        st = driver.stat(sub)
        if st.is_dir:
            return sub
        head, _, _tail = sub.rpartition("/")
        return head or "/"

    def h_getacl(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        path = self._peek_path(proc, regs.args[0])
        full = self._abspath(proc, path)
        driver, sub = self._route(full)
        if not driver.requires_local_acl:
            self._finish(proc, state, driver.getacl(sub))
            return
        self._check(proc, state, sub, "l")
        acl_dir = self._acl_dir_for(driver, sub)
        acl = self.policy.acl_of(acl_dir)
        self._finish(proc, state, acl.render() if acl is not None else "")

    def h_setacl(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        path = self._peek_path(proc, regs.args[0])
        subject = regs.args[1]
        rights_text = regs.args[2]
        full = self._abspath(proc, path)
        driver, sub = self._route(full)
        if not driver.requires_local_acl:
            driver.setacl(sub, subject, rights_text)
            self._finish(proc, state, 0)
            return
        acl_dir = self._acl_dir_for(driver, sub)
        self.policy.require_admin(state.identity, acl_dir)
        try:
            rights = Rights.parse(rights_text)
        except RightsError as exc:
            raise err(Errno.EINVAL, str(exc)) from exc
        acl = self.policy.acl_of(acl_dir)
        if acl is None:
            raise err(Errno.EACCES, f"{acl_dir} has no ACL to administer")
        acl.set_entry(subject, rights)
        self.policy.write_acl(acl_dir, acl)
        self._audit(state, "setacl", acl_dir, True, f"{subject} {rights}")
        self._finish(proc, state, 0)
