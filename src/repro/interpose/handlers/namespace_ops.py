"""Namespace-mutating syscalls inside an identity box.

``mkdir`` carries the paper's most interesting semantics: a visitor with
``w`` in the parent gets a directory that *inherits* the parent ACL, while
a visitor holding only the reserve right ``v(...)`` gets a fresh private
namespace initialized with the parenthesized rights (§4).  Hard links are
the one place the paper's monitor must refuse rather than check — there is
no unique containing directory to consult ("Overlooking indirect paths",
§6).  Those rules all live in the shared pipeline now (the mkdir plan,
rmdir's two-armed check, and the hard-link vetting run before these
handlers); what remains here is the delegated action itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...core.ops import (
    OP_PATH_SPECS,
    OpSpec,
    rename_clearing_acl,
    rmdir_clearing_acl,
)

if TYPE_CHECKING:  # pragma: no cover
    from ...core.pipeline import Operation
    from . import SyscallContext


def h_mkdir(op: "Operation", ctx: "SyscallContext") -> None:
    path = op.path()
    path.driver.mkdir(path.sub, op.args["mode"])
    if path.check_acl:
        ctx.sup.policy.apply_mkdir(path.sub, op.scratch["mkdir_acl"])
        ctx.audit("mkdir", path.full, True, "acl-installed")
    ctx.finish(0)


def h_rmdir(op: "Operation", ctx: "SyscallContext") -> None:
    path = op.path()
    if path.check_acl:
        rmdir_clearing_acl(path.driver, path.sub)
        ctx.sup.policy.invalidate(path.sub)
    else:
        path.driver.rmdir(path.sub)
    ctx.finish(0)


def h_unlink(op: "Operation", ctx: "SyscallContext") -> None:
    path = op.path()
    path.driver.unlink(path.sub)
    ctx.finish(0)


def h_rename(op: "Operation", ctx: "SyscallContext") -> None:
    old, new = op.path(0), op.path(1)
    if old.check_acl:
        rename_clearing_acl(old.driver, old.sub, new.sub)
        # a directory (and the ACLs beneath it) may have moved
        ctx.sup.policy.invalidate_all()
    else:
        old.driver.rename(old.sub, new.sub)
    ctx.finish(0)


def h_symlink(op: "Operation", ctx: "SyscallContext") -> None:
    # the target is stored raw, never resolved here, so it is not a
    # checked path argument; it still costs a child-memory peek
    target = ctx.sup._peek_path(ctx.proc, op.args["target"])
    link = op.path()
    link.driver.symlink(target, link.sub)
    ctx.finish(0)


def h_link(op: "Operation", ctx: "SyscallContext") -> None:
    old, new = op.path(0), op.path(1)
    old.driver.link(old.sub, new.sub)
    ctx.finish(0)


def register(registry) -> None:
    """Contribute the namespace-mutating ops to ``registry``."""
    for name, handler in [
        ("mkdir", h_mkdir),
        ("rmdir", h_rmdir),
        ("unlink", h_unlink),
        ("rename", h_rename),
        ("symlink", h_symlink),
        ("link", h_link),
    ]:
        registry.register(OpSpec(name, handler, paths=OP_PATH_SPECS.get(name, ())))
