"""Namespace-mutating syscalls inside an identity box.

``mkdir`` carries the paper's most interesting semantics: a visitor with
``w`` in the parent gets a directory that *inherits* the parent ACL, while
a visitor holding only the reserve right ``v(...)`` gets a fresh private
namespace initialized with the parenthesized rights (§4).  Hard links are
the one place the paper's monitor must refuse rather than check — there is
no unique containing directory to consult ("Overlooking indirect paths",
§6).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...core.acl import ACL_FILE_NAME
from ...kernel.errno import Errno, KernelError, err
from ...kernel.vfs import join
from ..table import ChildState

if TYPE_CHECKING:  # pragma: no cover
    from ...kernel.process import Process, Regs


class NamespaceHandlers:
    """mkdir/rmdir/unlink/rename/symlink/link."""

    def h_mkdir(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        path = self._peek_path(proc, regs.args[0])
        mode = regs.args[1] if len(regs.args) > 1 else 0o755
        full = self._abspath(proc, path)
        driver, sub = self._route(full)
        if driver.requires_local_acl:
            _res, new_acl = self.policy.plan_mkdir(state.identity, sub)
            driver.mkdir(sub, mode)
            self.policy.apply_mkdir(sub, new_acl)
            self._audit(state, "mkdir", full, True, "acl-installed")
        else:
            driver.mkdir(sub, mode)
        self._finish(proc, state, 0)

    def h_rmdir(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        path = self._peek_path(proc, regs.args[0])
        full = self._abspath(proc, path)
        driver, sub = self._route(full)
        if driver.requires_local_acl:
            decision = self.policy.check_remove_dir(
                state.identity, sub, cwd=proc.task.cwd
            )
            self._audit(state, "check:rmdir", sub, decision.allowed, decision.reason)
            if not decision.allowed:
                raise err(Errno.EACCES, f"{state.identity} may not rmdir {sub}")
            # attempt first so errno semantics (ENOTDIR, ENOENT, ...) match
            # the kernel's exactly; the directory's own ACL file is the one
            # obstacle the box itself planted, so clear it and retry
            try:
                driver.rmdir(sub)
            except KernelError as exc:
                if exc.errno is not Errno.ENOTEMPTY:
                    raise
                if driver.readdir(sub) != [ACL_FILE_NAME]:
                    raise
                driver.unlink(join(sub, ACL_FILE_NAME))
                driver.rmdir(sub)
            self.policy.invalidate(sub)
        else:
            driver.rmdir(sub)
        self._finish(proc, state, 0)

    def h_unlink(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        path = self._peek_path(proc, regs.args[0])
        full = self._abspath(proc, path)
        self._protect_acl_file(full)
        driver, sub = self._route(full)
        if driver.requires_local_acl:
            self._check(proc, state, sub, "w", follow=False, scope="parent")
        driver.unlink(sub)
        self._finish(proc, state, 0)

    def h_rename(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        oldpath = self._peek_path(proc, regs.args[0])
        newpath = self._peek_path(proc, regs.args[1])
        old_full = self._abspath(proc, oldpath)
        new_full = self._abspath(proc, newpath)
        self._protect_acl_file(old_full)
        self._protect_acl_file(new_full)
        old_driver, old_sub = self._route(old_full)
        new_driver, new_sub = self._route(new_full)
        if old_driver is not new_driver:
            raise err(Errno.EXDEV, f"{old_full} -> {new_full}")
        if old_driver.requires_local_acl:
            # errno precedence matches the kernel: trouble with the source
            # (ENOENT, ENOTDIR, ELOOP) reports before the destination's
            self.policy.require_exists(old_sub, cwd=proc.task.cwd, follow=False)
            self._check(proc, state, old_sub, "w", follow=False, scope="parent")
            self._check(proc, state, new_sub, "w", follow=False, scope="parent")
        old_driver.rename(old_sub, new_sub)
        if old_driver.requires_local_acl:
            # a directory (and the ACLs beneath it) may have moved
            self.policy.invalidate_all()
        self._finish(proc, state, 0)

    def h_symlink(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        target = self._peek_path(proc, regs.args[0])
        linkpath = self._peek_path(proc, regs.args[1])
        link_full = self._abspath(proc, linkpath)
        self._protect_acl_file(link_full)
        driver, sub = self._route(link_full)
        if driver.requires_local_acl:
            self._check(proc, state, sub, "w", follow=False)
        # Creating the link needs only write-in-directory; any later access
        # *through* it is checked against the target directory's ACL.
        driver.symlink(target, sub)
        self._finish(proc, state, 0)

    def h_link(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        oldpath = self._peek_path(proc, regs.args[0])
        newpath = self._peek_path(proc, regs.args[1])
        old_full = self._abspath(proc, oldpath)
        new_full = self._abspath(proc, newpath)
        self._protect_acl_file(old_full)
        self._protect_acl_file(new_full)
        old_driver, old_sub = self._route(old_full)
        new_driver, new_sub = self._route(new_full)
        if old_driver is not new_driver:
            raise err(Errno.EXDEV, f"{old_full} -> {new_full}")
        if old_driver.requires_local_acl:
            self.policy.check_hard_link(state.identity, old_sub, new_sub)
            self._audit(state, "link", f"{old_full} -> {new_full}", True, "hard-link-vetted")
        old_driver.link(old_sub, new_sub)
        self._finish(proc, state, 0)
