"""Registered syscall handlers composing the supervisor's operation registry.

Each module contributes ``h_<syscall>`` handler functions plus a
``register(registry)`` hook; :func:`build_syscall_registry` assembles the
full table the supervisor's pipeline dispatches through.  Splitting by
concern keeps each file reviewable:

* :mod:`.files` — descriptor lifecycle and data movement (the Figure-4
  small-transfer peek/poke path and the I/O-channel bulk path)
* :mod:`.metadata` — stat-family, access, readdir, readlink, truncate, and
  the deliberate EPERM on chmod/chown (ACLs replace Unix bits in a box)
* :mod:`.namespace_ops` — mkdir (inheritance + reserve right), unlink,
  rmdir, rename, symlink, hard links
* :mod:`.process_ops` — spawn, kill containment, identity introspection,
  and the getacl/setacl administration calls

Handlers receive ``(op, ctx)`` where ``op`` is the pipeline's bound
:class:`~repro.core.pipeline.Operation` (ACL checks already done by the
interceptor chain) and ``ctx`` is a :class:`SyscallContext` carrying the
supervisor, the stopped process, and its box state.

``SYSCALL_SIGNATURES`` names each trapped call's positional arguments so
the supervisor's binder can expose them as ``op.args`` — the declarative
counterpart of the old hand-rolled ``regs.args[i]`` indexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ...core.ops import OpRegistry, REQUIRED
from ...kernel.syscalls import F_OK

if TYPE_CHECKING:  # pragma: no cover
    from ...kernel.process import Process, Regs
    from ..supervisor import Supervisor
    from ..table import ChildState


@dataclass
class SyscallContext:
    """Per-trap context handed to syscall handlers by the supervisor."""

    sup: "Supervisor"
    proc: "Process"
    state: "ChildState"
    regs: "Regs"

    def finish(self, value: Any) -> None:
        """Nullify the pending call and arrange ``value`` as its result."""
        self.sup._finish(self.proc, self.state, value)

    def audit(self, operation: str, target: str, allowed: bool, detail: str = "") -> None:
        self.sup.pipeline.audit.emit(
            self.state.identity, operation, target, allowed, detail
        )


#: Positional argument names (with defaults) per trapped syscall.
SYSCALL_SIGNATURES: dict[str, tuple[tuple[str, Any], ...]] = {
    "open": (("path", REQUIRED), ("flags", 0), ("mode", 0o644)),
    "close": (("fd", REQUIRED),),
    "dup": (("fd", REQUIRED),),
    "pipe": (),
    "read": (("fd", REQUIRED), ("addr", REQUIRED), ("length", REQUIRED)),
    "pread": (
        ("fd", REQUIRED),
        ("addr", REQUIRED),
        ("length", REQUIRED),
        ("offset", REQUIRED),
    ),
    "write": (("fd", REQUIRED), ("addr", REQUIRED), ("length", REQUIRED)),
    "pwrite": (
        ("fd", REQUIRED),
        ("addr", REQUIRED),
        ("length", REQUIRED),
        ("offset", REQUIRED),
    ),
    "lseek": (("fd", REQUIRED), ("offset", REQUIRED), ("whence", REQUIRED)),
    "fstat": (("fd", REQUIRED),),
    "ftruncate": (("fd", REQUIRED), ("length", REQUIRED)),
    "stat": (("path", REQUIRED),),
    "lstat": (("path", REQUIRED),),
    "access": (("path", REQUIRED), ("mode", F_OK)),
    "readlink": (("path", REQUIRED),),
    "readdir": (("path", REQUIRED),),
    "truncate": (("path", REQUIRED), ("length", REQUIRED)),
    "chdir": (("path", REQUIRED),),
    "getcwd": (),
    "chmod": (),
    "chown": (),
    "mkdir": (("path", REQUIRED), ("mode", 0o755)),
    "rmdir": (("path", REQUIRED),),
    "unlink": (("path", REQUIRED),),
    "rename": (("oldpath", REQUIRED), ("newpath", REQUIRED)),
    "symlink": (("target", REQUIRED), ("linkpath", REQUIRED)),
    "link": (("oldpath", REQUIRED), ("newpath", REQUIRED)),
    "getpid": (),
    "getppid": (),
    "getuid": (),
    "get_user_name": (),
    "spawn": (("path", REQUIRED), ("args", ())),
    "thread": (("factory", REQUIRED), ("args", ())),
    "kill": (("pid", REQUIRED), ("sig", REQUIRED)),
    "getacl": (("path", REQUIRED),),
    "setacl": (("path", REQUIRED), ("subject", REQUIRED), ("rights", REQUIRED)),
}


def build_syscall_registry() -> OpRegistry:
    """The full trapped-syscall operation table, one module at a time."""
    from . import files, metadata, namespace_ops, process_ops

    registry = OpRegistry()
    files.register(registry)
    metadata.register(registry)
    namespace_ops.register(registry)
    process_ops.register(registry)
    return registry


__all__ = [
    "SYSCALL_SIGNATURES",
    "SyscallContext",
    "build_syscall_registry",
]
