"""Per-syscall handler mixins composing the supervisor.

Each mixin implements ``h_<syscall>`` methods against the helper surface
that :class:`repro.interpose.supervisor.Supervisor` provides (`_finish`,
`_route`, `_check`, ...).  Splitting by concern keeps each file reviewable:

* :mod:`.files` — descriptor lifecycle and data movement (the Figure-4
  small-transfer peek/poke path and the I/O-channel bulk path)
* :mod:`.metadata` — stat-family, access, readdir, readlink, truncate, and
  the deliberate EPERM on chmod/chown (ACLs replace Unix bits in a box)
* :mod:`.namespace_ops` — mkdir (inheritance + reserve right), unlink,
  rmdir, rename, symlink, hard links
* :mod:`.process_ops` — spawn, kill containment, identity introspection,
  and the getacl/setacl administration calls
"""

from .files import FileHandlers
from .metadata import MetadataHandlers
from .namespace_ops import NamespaceHandlers
from .process_ops import ProcessHandlers

__all__ = [
    "FileHandlers",
    "MetadataHandlers",
    "NamespaceHandlers",
    "ProcessHandlers",
]
