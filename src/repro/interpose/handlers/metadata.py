"""Metadata syscalls inside an identity box.

``stat``-family calls are the hot path of the paper's worst case: the
``make`` workload is "slowed by 35 percent" because builds issue storms of
small metadata operations (§7).  Every call here pays for a register
peek, an ACL consultation (now run by the pipeline's reference monitor),
a delegated kernel call, and the result poke — which is exactly where
that 35 % comes from.

``chmod``/``chown`` are refused: within a box "we abandon the Unix
protection scheme and adopt access control lists instead" (§3), so the
Unix bits are not the visitor's to change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...core.acl import ACL_FILE_NAME
from ...core.ops import OP_PATH_SPECS, OpSpec
from ...kernel.errno import Errno, err

if TYPE_CHECKING:  # pragma: no cover
    from ...core.pipeline import Operation
    from . import SyscallContext


def h_stat(op: "Operation", ctx: "SyscallContext") -> None:
    path = op.path()
    ctx.finish(path.driver.stat(path.sub))


def h_lstat(op: "Operation", ctx: "SyscallContext") -> None:
    path = op.path()
    ctx.finish(path.driver.lstat(path.sub))


def h_access(op: "Operation", ctx: "SyscallContext") -> None:
    # existence probe (F_OK, and confirms the object for R/W/X too); the
    # rights themselves were checked by the monitor per the mode mask
    path = op.path()
    path.driver.stat(path.sub)
    ctx.finish(0)


def h_readlink(op: "Operation", ctx: "SyscallContext") -> None:
    path = op.path()
    ctx.finish(path.driver.readlink(path.sub))


def h_readdir(op: "Operation", ctx: "SyscallContext") -> None:
    path = op.path()
    names = [n for n in path.driver.readdir(path.sub) if n != ACL_FILE_NAME]
    ctx.finish(names)


def h_truncate(op: "Operation", ctx: "SyscallContext") -> None:
    path = op.path()
    path.driver.truncate(path.sub, op.args["length"])
    ctx.finish(0)


# ---------------------------------------------------------------------- #
# working directory (tracked by the supervisor, like Parrot's own
# process table; works uniformly for local and mounted namespaces)
# ---------------------------------------------------------------------- #


def h_chdir(op: "Operation", ctx: "SyscallContext") -> None:
    path = op.path()
    st = path.driver.stat(path.sub)
    if not st.is_dir:
        raise err(Errno.ENOTDIR, path.full)
    ctx.proc.task.cwd = path.full
    ctx.finish(0)


def h_getcwd(op: "Operation", ctx: "SyscallContext") -> None:
    ctx.finish(ctx.proc.task.cwd)


# ---------------------------------------------------------------------- #
# Unix permission bits are not the visitor's to modify
# ---------------------------------------------------------------------- #


def h_chmod(op: "Operation", ctx: "SyscallContext") -> None:
    raise err(Errno.EPERM, "identity boxes use ACLs, not Unix mode bits")


def h_chown(op: "Operation", ctx: "SyscallContext") -> None:
    raise err(Errno.EPERM, "identity boxes use ACLs, not Unix ownership")


def register(registry) -> None:
    """Contribute the metadata ops to ``registry``."""
    for name, handler in [
        ("stat", h_stat),
        ("lstat", h_lstat),
        ("access", h_access),
        ("readlink", h_readlink),
        ("readdir", h_readdir),
        ("truncate", h_truncate),
        ("chdir", h_chdir),
        ("getcwd", h_getcwd),
        ("chmod", h_chmod),
        ("chown", h_chown),
    ]:
        registry.register(OpSpec(name, handler, paths=OP_PATH_SPECS.get(name, ())))
