"""Metadata syscalls inside an identity box.

``stat``-family calls are the hot path of the paper's worst case: the
``make`` workload is "slowed by 35 percent" because builds issue storms of
small metadata operations (§7).  Every handler here pays for a register
peek, an ACL consultation, a delegated kernel call, and the result poke —
which is exactly where that 35 % comes from.

``chmod``/``chown`` are refused: within a box "we abandon the Unix
protection scheme and adopt access control lists instead" (§3), so the
Unix bits are not the visitor's to change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...kernel.errno import Errno, err
from ...kernel.syscalls import F_OK, R_OK, W_OK, X_OK
from ..table import ChildState

if TYPE_CHECKING:  # pragma: no cover
    from ...kernel.process import Process, Regs

from ...core.acl import ACL_FILE_NAME


class MetadataHandlers:
    """stat/lstat/access/readlink/readdir/truncate/chdir/getcwd/chmod/chown."""

    def h_stat(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        path = self._peek_path(proc, regs.args[0])
        full = self._passwd_redirect(state, self._abspath(proc, path))
        self._hide_acl_file(full)
        driver, sub = self._route(full)
        if driver.requires_local_acl:
            self._check(proc, state, sub, "l")
        self._finish(proc, state, driver.stat(sub))

    def h_lstat(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        path = self._peek_path(proc, regs.args[0])
        full = self._passwd_redirect(state, self._abspath(proc, path))
        self._hide_acl_file(full)
        driver, sub = self._route(full)
        if driver.requires_local_acl:
            self._check(proc, state, sub, "l", follow=False)
        self._finish(proc, state, driver.lstat(sub))

    def h_access(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        path = self._peek_path(proc, regs.args[0])
        mode = regs.args[1] if len(regs.args) > 1 else F_OK
        full = self._passwd_redirect(state, self._abspath(proc, path))
        self._hide_acl_file(full)
        driver, sub = self._route(full)
        letters = ""
        if mode & R_OK:
            letters += "r"
        if mode & W_OK:
            letters += "w"
        if mode & X_OK:
            letters += "x"
        if driver.requires_local_acl and letters:
            self._check(proc, state, sub, letters)
        # existence probe (F_OK, and confirms the object for R/W/X too)
        driver.stat(sub)
        self._finish(proc, state, 0)

    def h_readlink(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        path = self._peek_path(proc, regs.args[0])
        full = self._abspath(proc, path)
        self._hide_acl_file(full)
        driver, sub = self._route(full)
        if driver.requires_local_acl:
            self._check(proc, state, sub, "l", follow=False)
        self._finish(proc, state, driver.readlink(sub))

    def h_readdir(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        path = self._peek_path(proc, regs.args[0])
        full = self._abspath(proc, path)
        driver, sub = self._route(full)
        if driver.requires_local_acl:
            self._check(proc, state, sub, "l")
        names = [n for n in driver.readdir(sub) if n != ACL_FILE_NAME]
        self._finish(proc, state, names)

    def h_truncate(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        path = self._peek_path(proc, regs.args[0])
        length = regs.args[1]
        full = self._abspath(proc, path)
        self._protect_acl_file(full)
        driver, sub = self._route(full)
        if driver.requires_local_acl:
            self._check(proc, state, sub, "w")
        driver.truncate(sub, length)
        self._finish(proc, state, 0)

    # ------------------------------------------------------------------ #
    # working directory (tracked by the supervisor, like Parrot's own
    # process table; works uniformly for local and mounted namespaces)
    # ------------------------------------------------------------------ #

    def h_chdir(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        path = self._peek_path(proc, regs.args[0])
        full = self._abspath(proc, path)
        driver, sub = self._route(full)
        if driver.requires_local_acl:
            self._check(proc, state, sub, "l")
        st = driver.stat(sub)
        if not st.is_dir:
            raise err(Errno.ENOTDIR, full)
        proc.task.cwd = full
        self._finish(proc, state, 0)

    def h_getcwd(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        self._finish(proc, state, proc.task.cwd)

    # ------------------------------------------------------------------ #
    # Unix permission bits are not the visitor's to modify
    # ------------------------------------------------------------------ #

    def h_chmod(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        raise err(Errno.EPERM, "identity boxes use ACLs, not Unix mode bits")

    def h_chown(self, proc: "Process", state: ChildState, regs: "Regs") -> None:
        raise err(Errno.EPERM, "identity boxes use ACLs, not Unix ownership")
