"""The interposition supervisor: Parrot with identity boxing.

One :class:`Supervisor` plays the role the paper's modified Parrot plays —
an ordinary, unprivileged user process that runs visiting applications
under ptrace, implements their system calls by delegation, and attaches a
free-form identity to every process and resource (§3, §5).

The control flow per trapped syscall is Figure 4(a) verbatim:

1. the child's syscall traps; the kernel stops it and wakes us
   (machine charges the stop's context switches),
2. we peek the registers, decode the call, and bind its path arguments
   into an :class:`~repro.core.pipeline.Operation`,
3. the shared operation pipeline runs the ACL reference monitor, audit,
   and denial accounting, then the registered handler implements the
   action with our *own* syscalls (delegation),
4. we rewrite the child's call — usually into ``getpid()``, or into a
   ``pread``/``pwrite`` on the I/O channel for bulk data,
5. the rewritten call executes natively,
6. at the exit stop we poke the result we computed into the return
   register (or run a completion action for channel writes),
7. the child resumes, none the wiser.

The same pipeline machinery fronts the Chirp server's RPC surface
(:mod:`repro.chirp.server`), so the reference monitor exists exactly once.
Strace-style recording stays at the syscall-*exit* stop rather than being
an entry-side interceptor: results only materialize there.

Escape-proofing: the child's *kernel-visible* descriptor table contains
only the I/O channel, its credentials are the supervising user's, and
every other effect must pass through a trapped syscall — so "users cannot
escape from an identity box" (§1) holds by construction here just as it
does under real ptrace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..core.aclfs import AclPolicy
from ..core.audit import AuditLog
from ..core.identity import validate_identity
from ..core.ops import REQUIRED
from ..core.pipeline import BoundPath, Operation, build_pipeline
from ..kernel.errno import Errno, KernelError, err
from ..kernel.vfs import join, normalize
from .drivers import Driver, LocalDriver, Namespace
from .handlers import SYSCALL_SIGNATURES, SyscallContext, build_syscall_registry
from .iochannel import IOChannel
from .signal_policy import SameIdentityPolicy
from .table import NO_RESULT, ChildState, ProcessTable

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.machine import Machine
    from ..kernel.process import Process, Regs
    from ..kernel.users import Credentials

#: Transfers at or below this many bytes move by ptrace peek/poke; larger
#: ones go through the I/O channel (§5).  Tunable for the ablation bench.
DEFAULT_SMALL_IO_THRESHOLD = 32

#: One registry shared by every supervisor: the syscall op table is fixed
#: at import time and never mutated after construction, so rebuilding its
#: ~40 OpSpecs per supervisor is pure waste — and fork-heavy loops (the
#: snapshot fuzzer re-hosts a supervisor per forked world) feel it.
_SHARED_REGISTRY = None


def shared_syscall_registry():
    """The lazily built, process-wide syscall :class:`OpRegistry`."""
    global _SHARED_REGISTRY
    if _SHARED_REGISTRY is None:
        _SHARED_REGISTRY = build_syscall_registry()
    return _SHARED_REGISTRY


class Supervisor:
    """A delegating system-call interposition agent with identity boxing."""

    def __init__(
        self,
        machine: "Machine",
        owner_cred: "Credentials",
        *,
        policy: AclPolicy | None = None,
        audit: AuditLog | None = None,
        small_io_threshold: int = DEFAULT_SMALL_IO_THRESHOLD,
        acl_cache: bool = True,
        signal_policy=None,
        telemetry=None,
    ) -> None:
        self.machine = machine
        self.owner_cred = owner_cred
        #: world epoch this supervisor was built against; adopting into a
        #: forked/restored world must go through :meth:`fork` instead
        self._epoch_token = getattr(machine, "_epoch_token", None)
        self.task = machine.host_task(owner_cred)
        self.policy = policy or AclPolicy(machine, self.task, cache_enabled=acl_cache)
        self.audit = audit
        #: metrics sink; defaults to whatever is attached to the machine,
        #: so one `instrument(machine)` covers every surface on the host
        self.telemetry = (
            telemetry if telemetry is not None else getattr(machine, "telemetry", None)
        )
        self.small_io_threshold = small_io_threshold
        self.signal_policy = signal_policy or SameIdentityPolicy()
        self.channel = IOChannel(machine, self.task)
        self.table = ProcessTable()
        #: optional strace-style recorder (see :mod:`.strace`)
        self.strace = None
        self.namespace = Namespace(LocalDriver(machine, self.task))
        #: statistics for reporting
        self.syscalls_handled = 0
        self.denials = 0
        #: the shared operation pipeline (registry + interceptor chain)
        self.registry = shared_syscall_registry()
        self.pipeline = build_pipeline(
            self.registry,
            policy=self.policy,
            clock=machine.clock,
            audit_log=audit,
            resolve_identity=lambda op, ctx: ctx.state.identity,
            on_denial=self._count_denial,
            telemetry=self.telemetry,
        )

    def _count_denial(self, op: Operation) -> None:
        self.denials += 1

    # ------------------------------------------------------------------ #
    # box membership
    # ------------------------------------------------------------------ #

    def adopt(
        self,
        proc: "Process",
        identity: str,
        home: str,
        passwd_redirect: str = "",
    ) -> ChildState:
        """Place a process under this supervisor with a visiting identity."""
        self._check_epoch()
        validate_identity(identity)
        state = ChildState(
            pid=proc.pid,
            identity=identity,
            home=home,
            passwd_redirect=passwd_redirect,
        )
        self.table.adopt(state)
        self.channel.attach_child(proc)
        return state

    def state_of(self, proc: "Process") -> ChildState:
        return self.table.get(proc.pid)

    def _check_epoch(self) -> None:
        token = getattr(self.machine, "_epoch_token", None)
        if self._epoch_token is not None and self._epoch_token is not token:
            raise err(
                Errno.EBADF,
                "supervisor belongs to a previous world epoch; fork() a new one",
            )

    def fork(self, machine: "Machine") -> "Supervisor":
        """Re-host this supervisor's configuration on a forked world.

        Everything bound to the parent epoch — host task, I/O channel,
        process table, ACL cache, pipeline — is rebuilt fresh against
        ``machine``, and the counters start at zero so a forked world's
        metrics never blend into the parent's.  Only *configuration*
        (owner name, thresholds, signal policy, audit class) carries over;
        the audit trail itself stays with the parent.  Telemetry comes from
        the forked machine, which :meth:`Machine.fork` already detached
        into a fresh trace lineage.
        """
        owner = machine.users.credentials_for(self.owner_cred.username)
        audit = type(self.audit)() if self.audit is not None else None
        return Supervisor(
            machine,
            owner,
            audit=audit,
            small_io_threshold=self.small_io_threshold,
            signal_policy=self.signal_policy,
            telemetry=getattr(machine, "telemetry", None),
        )

    def mount(self, prefix: str, driver: Driver) -> None:
        """Attach a service driver (e.g. Chirp under ``/chirp``)."""
        self.namespace.mount(prefix, driver)

    # ------------------------------------------------------------------ #
    # Tracer interface (called by the kernel while the child is stopped)
    # ------------------------------------------------------------------ #

    def on_syscall_entry(self, proc: "Process") -> None:
        state = self.table.get(proc.pid)
        state.reset_syscall()
        regs = self.machine.trace.peek_regs(proc)
        state.current_call = (regs.name, regs.args)
        self.syscalls_handled += 1
        ctx = SyscallContext(sup=self, proc=proc, state=state, regs=regs)
        try:
            op = self._bind(proc, state, regs)
            self.pipeline.run(op, ctx)
        except KernelError as exc:
            self._finish(proc, state, -int(exc.errno))

    def on_syscall_exit(self, proc: "Process") -> None:
        state = self.table.get(proc.pid)
        # We must at least look at the stop (a real supervisor can't skip
        # its wait() wakeup); peeking the return register is one word.
        self.machine.trace.peek_regs(proc)
        if state.exit_action is not None:
            action, state.exit_action = state.exit_action, None
            action(proc, state)
        elif state.exit_value is not NO_RESULT:
            self.machine.trace.set_result(proc, state.exit_value)
            state.exit_value = NO_RESULT
        if self.strace is not None and state.current_call is not None:
            name, args = state.current_call
            self.strace.record(
                self.machine.clock.now_ns,
                proc.pid,
                state.identity,
                name,
                args,
                proc.regs.retval if proc.regs is not None else None,
            )

    def on_process_exit(self, proc: "Process") -> None:
        state = self.table.forget(proc.pid)
        if state is not None and not state.shares_fds:
            for fd in state.open_fds():
                vfd = state.drop(fd)
                try:
                    vfd.driver.close(vfd.handle)
                except KernelError as exc:
                    # nothing to reclaim, but a leaked descriptor that also
                    # fails to close is worth a trace in the audit record
                    self.pipeline.audit.emit(
                        state.identity,
                        "close-on-exit",
                        vfd.path,
                        False,
                        f"fd {fd}: {exc}",
                    )

    # ------------------------------------------------------------------ #
    # binding a trapped call into a pipeline operation
    # ------------------------------------------------------------------ #

    def _bind(self, proc: "Process", state: ChildState, regs: "Regs") -> Operation:
        """Decode registers into an :class:`Operation` with bound paths."""
        try:
            spec = self.registry.get(regs.name)
        except KeyError:
            raise err(
                Errno.ENOSYS, f"boxed syscall {regs.name!r} unimplemented"
            ) from None
        args: dict[str, Any] = {}
        for i, (arg_name, default) in enumerate(SYSCALL_SIGNATURES.get(regs.name, ())):
            if i < len(regs.args):
                args[arg_name] = regs.args[i]
            elif default is REQUIRED:
                raise err(Errno.EFAULT, f"{regs.name} missing argument {arg_name!r}")
            else:
                args[arg_name] = default
        op = Operation(
            name=regs.name, surface="syscall", args=args, cwd=proc.task.cwd
        )
        for path_spec in spec.paths:
            text = self._peek_path(proc, args[path_spec.field])
            full = self._abspath(proc, text)
            if path_spec.passwd_redirect:
                full = self._passwd_redirect(state, full)
            driver, sub = self._route(full)
            op.paths.append(
                BoundPath(
                    spec=path_spec,
                    raw=text,
                    full=full,
                    sub=sub,
                    driver=driver,
                    check_acl=driver.requires_local_acl,
                )
            )
        return op

    # ------------------------------------------------------------------ #
    # helpers used by the binder and the registered handlers
    # ------------------------------------------------------------------ #

    def _finish(self, proc: "Process", state: ChildState, value: Any) -> None:
        """Nullify the pending call and arrange ``value`` as its result."""
        self.machine.trace.nullify(proc)
        state.exit_value = value

    def _peek_path(self, proc: "Process", path: Any) -> str:
        """Fetch a path argument from child memory (charges word traffic)."""
        if not isinstance(path, str):
            raise err(Errno.EFAULT, f"bad path argument {path!r}")
        return self.machine.trace.peek_string_cost(proc, path)

    def _abspath(self, proc: "Process", path: str) -> str:
        if not path:
            raise err(Errno.ENOENT, "empty path")
        if path.startswith("/"):
            return normalize(path)
        return normalize(join(proc.task.cwd, path))

    def _route(self, full: str) -> tuple[Driver, str]:
        return self.namespace.route(full)

    def _passwd_redirect(self, state: ChildState, full: str) -> str:
        """Figure 2's trick: /etc/passwd reads see the private copy."""
        if state.passwd_redirect and full == "/etc/passwd":
            return state.passwd_redirect
        return full
