"""The interposition supervisor: Parrot with identity boxing.

One :class:`Supervisor` plays the role the paper's modified Parrot plays —
an ordinary, unprivileged user process that runs visiting applications
under ptrace, implements their system calls by delegation, and attaches a
free-form identity to every process and resource (§3, §5).

The control flow per trapped syscall is Figure 4(a) verbatim:

1. the child's syscall traps; the kernel stops it and wakes us
   (machine charges the stop's context switches),
2. we peek the registers, decode the call, run the ACL reference monitor,
3. we implement the action with our *own* syscalls (delegation),
4. we rewrite the child's call — usually into ``getpid()``, or into a
   ``pread``/``pwrite`` on the I/O channel for bulk data,
5. the rewritten call executes natively,
6. at the exit stop we poke the result we computed into the return
   register (or run a completion action for channel writes),
7. the child resumes, none the wiser.

Escape-proofing: the child's *kernel-visible* descriptor table contains
only the I/O channel, its credentials are the supervising user's, and
every other effect must pass through a trapped syscall — so "users cannot
escape from an identity box" (§1) holds by construction here just as it
does under real ptrace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..core.aclfs import AclPolicy
from ..core.acl import ACL_FILE_NAME
from ..core.audit import AuditLog
from ..core.identity import validate_identity
from ..kernel.errno import Errno, KernelError, err
from ..kernel.vfs import basename, join, normalize
from .drivers import Driver, LocalDriver, Namespace
from .handlers import FileHandlers, MetadataHandlers, NamespaceHandlers, ProcessHandlers
from .iochannel import IOChannel
from .signal_policy import SameIdentityPolicy
from .table import NO_RESULT, ChildState, ProcessTable

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.machine import Machine
    from ..kernel.process import Process
    from ..kernel.users import Credentials

#: Transfers at or below this many bytes move by ptrace peek/poke; larger
#: ones go through the I/O channel (§5).  Tunable for the ablation bench.
DEFAULT_SMALL_IO_THRESHOLD = 32


class Supervisor(FileHandlers, MetadataHandlers, NamespaceHandlers, ProcessHandlers):
    """A delegating system-call interposition agent with identity boxing."""

    def __init__(
        self,
        machine: "Machine",
        owner_cred: "Credentials",
        *,
        policy: AclPolicy | None = None,
        audit: AuditLog | None = None,
        small_io_threshold: int = DEFAULT_SMALL_IO_THRESHOLD,
        acl_cache: bool = True,
        signal_policy=None,
    ) -> None:
        self.machine = machine
        self.owner_cred = owner_cred
        self.task = machine.host_task(owner_cred)
        self.policy = policy or AclPolicy(machine, self.task, cache_enabled=acl_cache)
        self.audit = audit
        self.small_io_threshold = small_io_threshold
        self.signal_policy = signal_policy or SameIdentityPolicy()
        self.channel = IOChannel(machine, self.task)
        self.table = ProcessTable()
        #: optional strace-style recorder (see :mod:`.strace`)
        self.strace = None
        self.namespace = Namespace(LocalDriver(machine, self.task))
        #: statistics for reporting
        self.syscalls_handled = 0
        self.denials = 0

    # ------------------------------------------------------------------ #
    # box membership
    # ------------------------------------------------------------------ #

    def adopt(
        self,
        proc: "Process",
        identity: str,
        home: str,
        passwd_redirect: str = "",
    ) -> ChildState:
        """Place a process under this supervisor with a visiting identity."""
        validate_identity(identity)
        state = ChildState(
            pid=proc.pid,
            identity=identity,
            home=home,
            passwd_redirect=passwd_redirect,
        )
        self.table.adopt(state)
        self.channel.attach_child(proc)
        return state

    def state_of(self, proc: "Process") -> ChildState:
        return self.table.get(proc.pid)

    def mount(self, prefix: str, driver: Driver) -> None:
        """Attach a service driver (e.g. Chirp under ``/chirp``)."""
        self.namespace.mount(prefix, driver)

    # ------------------------------------------------------------------ #
    # Tracer interface (called by the kernel while the child is stopped)
    # ------------------------------------------------------------------ #

    def on_syscall_entry(self, proc: "Process") -> None:
        state = self.table.get(proc.pid)
        state.reset_syscall()
        regs = self.machine.trace.peek_regs(proc)
        state.current_call = (regs.name, regs.args)
        self.syscalls_handled += 1
        handler = getattr(self, f"h_{regs.name}", None)
        try:
            if handler is None:
                raise err(Errno.ENOSYS, f"boxed syscall {regs.name!r} unimplemented")
            handler(proc, state, regs)
        except KernelError as exc:
            if exc.errno in (Errno.EACCES, Errno.EPERM):
                self.denials += 1
            self._finish(proc, state, -int(exc.errno))

    def on_syscall_exit(self, proc: "Process") -> None:
        state = self.table.get(proc.pid)
        # We must at least look at the stop (a real supervisor can't skip
        # its wait() wakeup); peeking the return register is one word.
        self.machine.trace.peek_regs(proc)
        if state.exit_action is not None:
            action, state.exit_action = state.exit_action, None
            action(proc, state)
        elif state.exit_value is not NO_RESULT:
            self.machine.trace.set_result(proc, state.exit_value)
            state.exit_value = NO_RESULT
        if self.strace is not None and state.current_call is not None:
            name, args = state.current_call
            self.strace.record(
                self.machine.clock.now_ns,
                proc.pid,
                state.identity,
                name,
                args,
                proc.regs.retval if proc.regs is not None else None,
            )

    def on_process_exit(self, proc: "Process") -> None:
        state = self.table.forget(proc.pid)
        if state is not None and not state.shares_fds:
            for fd in state.open_fds():
                vfd = state.drop(fd)
                try:
                    vfd.driver.close(vfd.handle)
                except KernelError:
                    pass  # descriptor already gone; nothing to reclaim

    # ------------------------------------------------------------------ #
    # helpers used by the handler mixins
    # ------------------------------------------------------------------ #

    def _finish(self, proc: "Process", state: ChildState, value: Any) -> None:
        """Nullify the pending call and arrange ``value`` as its result."""
        self.machine.trace.nullify(proc)
        state.exit_value = value

    def _peek_path(self, proc: "Process", path: Any) -> str:
        """Fetch a path argument from child memory (charges word traffic)."""
        if not isinstance(path, str):
            raise err(Errno.EFAULT, f"bad path argument {path!r}")
        return self.machine.trace.peek_string_cost(proc, path)

    def _abspath(self, proc: "Process", path: str) -> str:
        if not path:
            raise err(Errno.ENOENT, "empty path")
        if path.startswith("/"):
            return normalize(path)
        return normalize(join(proc.task.cwd, path))

    def _route(self, full: str) -> tuple[Driver, str]:
        return self.namespace.route(full)

    def _passwd_redirect(self, state: ChildState, full: str) -> str:
        """Figure 2's trick: /etc/passwd reads see the private copy."""
        if state.passwd_redirect and full == "/etc/passwd":
            return state.passwd_redirect
        return full

    def _protect_acl_file(self, full: str) -> None:
        """ACL files are only reachable through getacl/setacl."""
        if basename(full) == ACL_FILE_NAME:
            raise err(Errno.EACCES, "ACL files are managed via setacl")

    def _hide_acl_file(self, full: str) -> None:
        """For read-only probes the ACL file simply does not exist."""
        if basename(full) == ACL_FILE_NAME:
            raise err(Errno.ENOENT, full)

    def _check(
        self,
        proc: "Process",
        state: ChildState,
        path: str,
        letters: str,
        *,
        follow: bool = True,
        scope: str = "auto",
    ) -> None:
        """Run the reference monitor; audit and raise EACCES on denial."""
        decision = self.policy.check(
            state.identity,
            path,
            letters,
            cwd=proc.task.cwd,
            follow=follow,
            scope=scope,
        )
        self._audit(state, f"check:{letters}", path, decision.allowed, decision.reason)
        if not decision.allowed:
            raise err(Errno.EACCES, f"{state.identity} lacks {letters!r} on {path}")

    def _audit(
        self, state: ChildState, operation: str, target: str, allowed: bool, detail: str
    ) -> None:
        if self.audit is not None:
            self.audit.record(
                self.machine.clock.now_ns,
                state.identity,
                operation,
                target,
                allowed,
                detail,
            )
