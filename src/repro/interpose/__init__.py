"""User-level system-call interposition (the Parrot analogue).

A delegating supervisor traps every syscall of its children through the
simulated ptrace interface, implements the call itself, and rewrites the
original into a null operation — carrying a high-level identity and an ACL
reference monitor along the way.
"""

from .drivers import Driver, LocalDriver, Namespace
from .iochannel import CHANNEL_FD, DEFAULT_CHANNEL_SIZE, IOChannel
from .signal_policy import HierarchicalSignalPolicy, SameIdentityPolicy
from .strace import SyscallTrace, TraceRecord
from .supervisor import DEFAULT_SMALL_IO_THRESHOLD, Supervisor
from .table import ChildState, ProcessTable, VirtualFD

__all__ = [
    "CHANNEL_FD",
    "ChildState",
    "DEFAULT_CHANNEL_SIZE",
    "DEFAULT_SMALL_IO_THRESHOLD",
    "Driver",
    "HierarchicalSignalPolicy",
    "IOChannel",
    "LocalDriver",
    "Namespace",
    "ProcessTable",
    "SameIdentityPolicy",
    "Supervisor",
    "SyscallTrace",
    "TraceRecord",
    "VirtualFD",
]
