"""Filesystem drivers behind the supervisor's namespace.

Parrot attaches "filesystem-like services to existing applications" —
ordinary paths are delegated to the host kernel, while prefixes like
``/chirp/server/path`` or ``/gsiftp/...`` route to remote-protocol drivers
(§3).  A :class:`Driver` turns the supervisor's file operations into
whatever its backing store speaks; handlers in the supervisor stay
driver-agnostic.

The local driver performs its work with the *supervising user's* kernel
task, which is the heart of the delegation architecture: the child never
touches the real filesystem itself.  Access control for local paths is the
supervisor's ACL policy; remote drivers enforce ACLs server-side instead
(``requires_local_acl = False``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..kernel.errno import Errno, err
from ..kernel.inode import StatResult

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.machine import Machine
    from ..kernel.process import Task


class Driver:
    """Interface every namespace driver implements.

    Handles returned by :meth:`open` are driver-private; the supervisor
    stores them in its virtual descriptor table and passes them back.
    All methods raise :class:`~repro.kernel.errno.KernelError` on failure.
    """

    #: Whether the supervisor must run its own ACL policy for this driver's
    #: paths (local files: yes; remote services with server-side ACLs: no).
    requires_local_acl = True

    name = "abstract"

    def open(self, path: str, flags: int, mode: int) -> Any:
        raise err(Errno.ENOSYS, f"{self.name}: open")

    def close(self, handle: Any) -> None:
        raise err(Errno.ENOSYS, f"{self.name}: close")

    def read(self, handle: Any, length: int) -> bytes:
        raise err(Errno.ENOSYS, f"{self.name}: read")

    def write(self, handle: Any, data: bytes) -> int:
        raise err(Errno.ENOSYS, f"{self.name}: write")

    def pread(self, handle: Any, length: int, offset: int) -> bytes:
        raise err(Errno.ENOSYS, f"{self.name}: pread")

    def pwrite(self, handle: Any, data: bytes, offset: int) -> int:
        raise err(Errno.ENOSYS, f"{self.name}: pwrite")

    def lseek(self, handle: Any, offset: int, whence: int) -> int:
        raise err(Errno.ENOSYS, f"{self.name}: lseek")

    def dup(self, handle: Any) -> Any:
        raise err(Errno.ENOSYS, f"{self.name}: dup")

    def ftruncate(self, handle: Any, length: int) -> None:
        raise err(Errno.ENOSYS, f"{self.name}: ftruncate")

    def fstat(self, handle: Any) -> StatResult:
        raise err(Errno.ENOSYS, f"{self.name}: fstat")

    def stat(self, path: str) -> StatResult:
        raise err(Errno.ENOSYS, f"{self.name}: stat")

    def lstat(self, path: str) -> StatResult:
        raise err(Errno.ENOSYS, f"{self.name}: lstat")

    def readlink(self, path: str) -> str:
        raise err(Errno.ENOSYS, f"{self.name}: readlink")

    def readdir(self, path: str) -> list[str]:
        raise err(Errno.ENOSYS, f"{self.name}: readdir")

    def mkdir(self, path: str, mode: int) -> None:
        raise err(Errno.ENOSYS, f"{self.name}: mkdir")

    def rmdir(self, path: str) -> None:
        raise err(Errno.ENOSYS, f"{self.name}: rmdir")

    def unlink(self, path: str) -> None:
        raise err(Errno.ENOSYS, f"{self.name}: unlink")

    def rename(self, oldpath: str, newpath: str) -> None:
        raise err(Errno.ENOSYS, f"{self.name}: rename")

    def symlink(self, target: str, linkpath: str) -> None:
        raise err(Errno.ENOSYS, f"{self.name}: symlink")

    def link(self, oldpath: str, newpath: str) -> None:
        raise err(Errno.ENOSYS, f"{self.name}: link")

    def truncate(self, path: str, length: int) -> None:
        raise err(Errno.ENOSYS, f"{self.name}: truncate")

    def getacl(self, path: str) -> str:
        raise err(Errno.ENOSYS, f"{self.name}: getacl")

    def setacl(self, path: str, subject: str, rights: str) -> None:
        raise err(Errno.ENOSYS, f"{self.name}: setacl")

    def fetch_executable(self, path: str) -> bytes:
        """Read a program file so the supervisor can spawn it locally."""
        raise err(Errno.ENOSYS, f"{self.name}: fetch_executable")


class NativePassthrough(Driver):
    """Marker driver for descriptors that live in the *child's* own kernel
    table (pipe ends).  The supervisor rewrites operations on them into
    native calls instead of delegating, because pipe reads/writes must be
    able to block — something a host-level supervisor cannot do on the
    child's behalf (§6's wait-state rule is the kernel's job).

    The handle is the child's native descriptor number, kept equal to the
    virtual descriptor number for sanity.
    """

    requires_local_acl = False
    name = "native"


#: Shared instance; the class is stateless.
NATIVE = NativePassthrough()


class LocalDriver(Driver):
    """Delegate to the host kernel as the supervising user."""

    requires_local_acl = True
    name = "local"

    def __init__(self, machine: "Machine", owner_task: "Task") -> None:
        self.machine = machine
        self.task = owner_task

    def _x(self, call: str, *args: Any) -> Any:
        return self.machine.kcall_x(self.task, call, *args)

    def open(self, path: str, flags: int, mode: int) -> int:
        return self._x("open", path, flags, mode)

    def close(self, handle: int) -> None:
        self._x("close", handle)

    def read(self, handle: int, length: int) -> bytes:
        return self._x("read_bytes", handle, length)

    def write(self, handle: int, data: bytes) -> int:
        return self._x("write_bytes", handle, data)

    def pread(self, handle: int, length: int, offset: int) -> bytes:
        return self._x("pread_bytes", handle, length, offset)

    def pwrite(self, handle: int, data: bytes, offset: int) -> int:
        return self._x("pwrite_bytes", handle, data, offset)

    def lseek(self, handle: int, offset: int, whence: int) -> int:
        return self._x("lseek", handle, offset, whence)

    def dup(self, handle: int) -> int:
        return self._x("dup", handle)

    def ftruncate(self, handle: int, length: int) -> None:
        self._x("ftruncate", handle, length)

    def fstat(self, handle: int) -> StatResult:
        return self._x("fstat", handle)

    def stat(self, path: str) -> StatResult:
        return self._x("stat", path)

    def lstat(self, path: str) -> StatResult:
        return self._x("lstat", path)

    def readlink(self, path: str) -> str:
        return self._x("readlink", path)

    def readdir(self, path: str) -> list[str]:
        return self._x("readdir", path)

    def mkdir(self, path: str, mode: int) -> None:
        self._x("mkdir", path, mode)

    def rmdir(self, path: str) -> None:
        self._x("rmdir", path)

    def unlink(self, path: str) -> None:
        self._x("unlink", path)

    def rename(self, oldpath: str, newpath: str) -> None:
        self._x("rename", oldpath, newpath)

    def symlink(self, target: str, linkpath: str) -> None:
        self._x("symlink", target, linkpath)

    def link(self, oldpath: str, newpath: str) -> None:
        self._x("link", oldpath, newpath)

    def truncate(self, path: str, length: int) -> None:
        self._x("truncate", path, length)

    def fetch_executable(self, path: str) -> bytes:
        return self.machine.read_file(self.task, path)


class Namespace:
    """Longest-prefix mount table routing paths to drivers."""

    def __init__(self, root_driver: Driver) -> None:
        self._root = root_driver
        self._mounts: list[tuple[str, Driver]] = []

    def mount(self, prefix: str, driver: Driver) -> None:
        """Attach ``driver`` under ``prefix`` (e.g. ``/chirp``)."""
        prefix = prefix.rstrip("/")
        if not prefix.startswith("/"):
            raise err(Errno.EINVAL, f"mount prefix must be absolute: {prefix!r}")
        self._mounts.append((prefix, driver))
        # longest prefix first
        self._mounts.sort(key=lambda m: len(m[0]), reverse=True)

    def route(self, path: str) -> tuple[Driver, str]:
        """Pick the driver for an absolute path; returns (driver, subpath).

        For mounted prefixes the subpath is relative to the mount (with a
        leading ``/``); the root driver sees the full path.
        """
        for prefix, driver in self._mounts:
            if path == prefix or path.startswith(prefix + "/"):
                sub = path[len(prefix) :] or "/"
                return driver, sub
        return self._root, path

    def mounts(self) -> list[tuple[str, Driver]]:
        return list(self._mounts)
