"""strace-style syscall recording for identity boxes.

The paper's forensic proposal (§9) wants "the objects accessed and the
activities taken by the untrusted user" on record.  The :class:`AuditLog`
captures policy decisions; this module captures the *system-call stream*
itself — every call a boxed process attempted, with arguments and results,
rendered like strace output:

    [pid 101 Freddy] open("mydata", 0x41) = 3
    [pid 101 Freddy] write(3, <addr>, 15) = 15
    [pid 101 Freddy] open("/home/dthain/secret", 0x0) = -13 (EACCES)

Attach one to a supervisor with ``supervisor.strace = SyscallTrace()``;
recording costs no simulated time (a real supervisor already holds all of
this in registers it has peeked).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..kernel.errno import Errno

#: Truncate long rendered arguments to keep traces readable.
ARG_LIMIT = 60


def _render_arg(arg: Any) -> str:
    if isinstance(arg, str):
        text = f'"{arg}"'
    elif isinstance(arg, bytes):
        text = repr(arg)
    elif isinstance(arg, int) and arg > 0xFFFF:
        text = "<addr>"  # heap addresses are noise
    elif isinstance(arg, (tuple, list)):
        text = "[" + ", ".join(_render_arg(a) for a in arg) + "]"
    else:
        text = repr(arg)
    if len(text) > ARG_LIMIT:
        text = text[: ARG_LIMIT - 3] + "..."
    return text


def _render_result(result: Any) -> str:
    if isinstance(result, int) and result < 0:
        try:
            return f"{result} ({Errno(-result).name})"
        except ValueError:
            return str(result)
    if isinstance(result, (int, str)):
        return _render_arg(result) if isinstance(result, str) else str(result)
    return f"<{type(result).__name__}>"


@dataclass(frozen=True)
class TraceRecord:
    """One completed syscall of one boxed process."""

    time_ns: int
    pid: int
    identity: str
    name: str
    args: tuple
    result: Any

    def render(self) -> str:
        rendered_args = ", ".join(_render_arg(a) for a in self.args)
        return (
            f"[pid {self.pid} {self.identity}] "
            f"{self.name}({rendered_args}) = {_render_result(self.result)}"
        )


@dataclass
class SyscallTrace:
    """An append-only record of the boxed syscall stream."""

    records: list[TraceRecord] = field(default_factory=list)
    #: keep at most this many records (0 = unbounded); oldest dropped first
    limit: int = 0

    def record(
        self,
        time_ns: int,
        pid: int,
        identity: str,
        name: str,
        args: tuple,
        result: Any,
    ) -> None:
        self.records.append(
            TraceRecord(
                time_ns=time_ns,
                pid=pid,
                identity=identity,
                name=name,
                args=args,
                result=result,
            )
        )
        if self.limit and len(self.records) > self.limit:
            del self.records[: len(self.records) - self.limit]

    # -- queries ----------------------------------------------------------- #

    def for_pid(self, pid: int) -> list[TraceRecord]:
        return [r for r in self.records if r.pid == pid]

    def for_identity(self, identity: str) -> list[TraceRecord]:
        return [r for r in self.records if r.identity == identity]

    def calls_named(self, name: str) -> list[TraceRecord]:
        return [r for r in self.records if r.name == name]

    def failures(self) -> list[TraceRecord]:
        return [
            r
            for r in self.records
            if isinstance(r.result, int) and r.result < 0
        ]

    def histogram(self) -> dict[str, int]:
        """Call counts by syscall name (the profile §8 says users lack)."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.name] = counts.get(record.name, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: -kv[1]))

    def render(self) -> str:
        return "\n".join(record.render() for record in self.records)

    def __len__(self) -> int:
        return len(self.records)
