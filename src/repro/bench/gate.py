"""CI regression gate: diff ``BENCH_fig5.json`` against the baseline.

Usage (what the CI ``bench`` job runs after the Fig. 5 benchmarks)::

    PYTHONPATH=src python -m repro.bench.gate BENCH_fig5.json benchmarks/baseline.json

The gate fails (exit 1) when the reproduction got meaningfully *slower*
than the checked-in baseline:

* fig5a — any op whose boxed p50 latency exceeds baseline by >25 %,
* fig5b — any workload whose boxed throughput (ops/sec) fell >25 %,
* federation — any shard count whose aggregate throughput fell >25 %
  (this is what holds the 1-vs-8-shard scaling claim),
* snapshot — any fork-from-checkpoint measurement whose speedup ratio
  over cold boot fell >25 % below baseline (``speedup_x`` is
  dimensionless, so this gate is stable across host machines; the
  baseline of 25x for ``fork_vs_boot`` makes the floor the ≥20x
  acceptance bar),
* fuzz — the scenario fuzzer's warm-fork vs cold-boot ``speedup_x``,
  gated the same dimensionless way (baseline 25x → floor 20x: the
  ISSUE's warm-fork throughput bar),
* fastlane — the read-heavy ops/sec ratio with the fast lane (read
  cache + frame coalescing) on vs off, gated on the dimensionless
  ``speedup_x`` (baseline 2.5x → floor 2x: the fast-lane acceptance
  bar),
* replication — read availability during a single-replica blackout at
  three replicas must not fall below baseline *at all* (the baseline is
  100%, and availability is a correctness bar, not a perf number), and
  the quorum-write overhead ratio vs one replica must not grow >25%.

It also fails when an op/workload present in the baseline is missing from
the current run (a silently skipped benchmark is a regression too).
Getting *faster* never fails; refresh the baseline in the same PR that
earns the speedup so the new level is held.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

#: >25% worse than baseline fails the gate.
TOLERANCE = 1.25


def _load(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare(current: dict[str, Any], baseline: dict[str, Any]) -> list[str]:
    """Every way ``current`` regressed from ``baseline``, as messages."""
    failures: list[str] = []
    for op, base_row in sorted(baseline.get("fig5a", {}).items()):
        row = current.get("fig5a", {}).get(op)
        if row is None:
            failures.append(f"fig5a/{op}: missing from current run")
            continue
        limit = base_row["boxed_p50_us"] * TOLERANCE
        if row["boxed_p50_us"] > limit:
            failures.append(
                f"fig5a/{op}: boxed p50 {row['boxed_p50_us']:.3f}us exceeds "
                f"{limit:.3f}us (baseline {base_row['boxed_p50_us']:.3f}us +25%)"
            )
    for app, base_row in sorted(baseline.get("fig5b", {}).items()):
        row = current.get("fig5b", {}).get(app)
        if row is None:
            failures.append(f"fig5b/{app}: missing from current run")
            continue
        floor = base_row["boxed_ops_per_sec"] / TOLERANCE
        if row["boxed_ops_per_sec"] < floor:
            failures.append(
                f"fig5b/{app}: boxed {row['boxed_ops_per_sec']:.0f} ops/s below "
                f"{floor:.0f} (baseline {base_row['boxed_ops_per_sec']:.0f} -25%)"
            )
    for count, base_row in sorted(baseline.get("federation", {}).items()):
        row = current.get("federation", {}).get(count)
        if row is None:
            failures.append(f"federation/{count}: missing from current run")
            continue
        floor = base_row["ops_per_sec"] / TOLERANCE
        if row["ops_per_sec"] < floor:
            failures.append(
                f"federation/{count}: {row['ops_per_sec']:.0f} ops/s below "
                f"{floor:.0f} (baseline {base_row['ops_per_sec']:.0f} -25%)"
            )
    for section in ("snapshot", "fuzz", "fastlane"):
        for name, base_row in sorted(baseline.get(section, {}).items()):
            row = current.get(section, {}).get(name)
            if row is None:
                failures.append(f"{section}/{name}: missing from current run")
                continue
            floor = base_row["speedup_x"] / TOLERANCE
            if row["speedup_x"] < floor:
                failures.append(
                    f"{section}/{name}: {row['speedup_x']:.2f}x speedup below "
                    f"{floor:.2f}x (baseline {base_row['speedup_x']:.2f}x -25%)"
                )
    base_avail = baseline.get("replication", {}).get("blackout_availability")
    if base_avail is not None:
        row = current.get("replication", {}).get("blackout_availability")
        if row is None:
            failures.append(
                "replication/blackout_availability: missing from current run"
            )
        elif row["read_availability_pct"] < base_avail["read_availability_pct"]:
            # availability is held exactly: any dropped read during a
            # single-replica outage is a broken failover, not a slowdown
            failures.append(
                "replication/blackout_availability: "
                f"{row['read_availability_pct']:.2f}% reads available, below "
                f"the baseline {base_avail['read_availability_pct']:.2f}%"
            )
    base_quorum = baseline.get("replication", {}).get("quorum_overhead")
    if base_quorum is not None:
        row = current.get("replication", {}).get("quorum_overhead")
        if row is None:
            failures.append("replication/quorum_overhead: missing from current run")
        else:
            limit = base_quorum["write_overhead_x"] * TOLERANCE
            if row["write_overhead_x"] > limit:
                failures.append(
                    "replication/quorum_overhead: quorum writes cost "
                    f"{row['write_overhead_x']:.2f}x single-owner writes, over "
                    f"{limit:.2f}x (baseline "
                    f"{base_quorum['write_overhead_x']:.2f}x +25%)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.gate", description=__doc__.splitlines()[0]
    )
    parser.add_argument("current", help="BENCH_*.json produced by this run")
    parser.add_argument("baseline", help="checked-in benchmarks/baseline.json")
    options = parser.parse_args(argv)
    current = _load(options.current)
    baseline = _load(options.baseline)
    failures = compare(current, baseline)
    checked = sum(
        len(baseline.get(s, {}))
        for s in (
            "fig5a",
            "fig5b",
            "federation",
            "snapshot",
            "fuzz",
            "fastlane",
            "replication",
        )
    )
    if failures:
        print(f"bench gate: {len(failures)} regression(s) in {checked} series:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(f"bench gate: OK ({checked} series within 25% of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
