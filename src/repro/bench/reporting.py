"""Benchmark reporting: paper-shaped text tables plus machine artifacts.

Each benchmark regenerates one paper table or figure as text: the same
rows and series the paper reports, with a paper-vs-measured column so the
shape comparison is one glance.  Output goes both to stdout (visible with
``pytest -s``) and to ``results/<name>.txt`` for EXPERIMENTS.md.

Alongside the prose, benchmarks write machine-readable ``BENCH_<name>.json``
files at the repo root (:func:`write_bench_json`): per-op p50/p90/p99 and
per-workload throughput, which CI diffs against ``benchmarks/baseline.json``
(see :mod:`repro.bench.gate`).  ``REPRO_BENCH_SMOKE=1`` selects reduced
iteration counts for CI — per-call costs are deterministic constants, so
the percentiles the gate compares are iteration-count-invariant.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from ..config import bench_smoke

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..", "..")
RESULTS_DIR = os.path.join(REPO_ROOT, "results")


def smoke_mode() -> bool:
    """CI-sized benchmark runs: set ``REPRO_BENCH_SMOKE=1``."""
    return bench_smoke()


def bench_scale(full: Any, smoke: Any) -> Any:
    """Pick the full-run or smoke-run flavor of a benchmark parameter."""
    return smoke if smoke_mode() else full


def write_bench_json(name: str, section: str, payload: dict[str, Any]) -> str:
    """Merge one benchmark's section into ``BENCH_<name>.json``.

    Merge-on-write lets the fig5a and fig5b modules each own a section of
    the same artifact regardless of which ran (or re-ran) last.
    """
    path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    data: dict[str, Any] = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    data[section] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@dataclass
class Table:
    """A fixed-column text table."""

    headers: tuple[str, ...]
    rows: list[tuple[str, ...]] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        row = tuple(
            f"{c:.2f}" if isinstance(c, float) else str(c) for c in cells
        )
        if len(row) != len(self.headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(self.headers)}")
        self.rows.append(row)

    def render(self) -> str:
        all_rows = [self.headers] + self.rows
        widths = [max(len(r[i]) for r in all_rows) for i in range(len(self.headers))]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)).rstrip(),
            "  ".join("-" * w for w in widths),
        ]
        for row in self.rows:
            lines.append(
                "  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip()
            )
        return "\n".join(lines)


def banner(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def save_and_print(name: str, text: str) -> str:
    """Print a report and persist it under results/<name>.txt."""
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path
