"""Plain-text tables matching the paper's rows, saved under results/.

Each benchmark regenerates one paper table or figure as text: the same
rows and series the paper reports, with a paper-vs-measured column so the
shape comparison is one glance.  Output goes both to stdout (visible with
``pytest -s``) and to ``results/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "results")


@dataclass
class Table:
    """A fixed-column text table."""

    headers: tuple[str, ...]
    rows: list[tuple[str, ...]] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        row = tuple(
            f"{c:.2f}" if isinstance(c, float) else str(c) for c in cells
        )
        if len(row) != len(self.headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(self.headers)}")
        self.rows.append(row)

    def render(self) -> str:
        all_rows = [self.headers] + self.rows
        widths = [max(len(r[i]) for r in all_rows) for i in range(len(self.headers))]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)).rstrip(),
            "  ".join("-" * w for w in widths),
        ]
        for row in self.rows:
            lines.append(
                "  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip()
            )
        return "\n".join(lines)


def banner(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def save_and_print(name: str, text: str) -> str:
    """Print a report and persist it under results/<name>.txt."""
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path
