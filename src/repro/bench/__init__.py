"""Reporting helpers shared by the benchmark harness."""

from .reporting import (
    Table,
    banner,
    bench_scale,
    save_and_print,
    smoke_mode,
    write_bench_json,
)

__all__ = [
    "Table",
    "banner",
    "bench_scale",
    "save_and_print",
    "smoke_mode",
    "write_bench_json",
]
