"""Reporting helpers shared by the benchmark harness."""

from .reporting import Table, banner, save_and_print

__all__ = ["Table", "banner", "save_and_print"]
