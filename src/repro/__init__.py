"""repro: a reproduction of "Identity Boxing: A New Technique for
Consistent Global Identity" (Douglas Thain, SC'05).

The package implements the paper's full stack on a simulated Unix kernel
substrate (see DESIGN.md for the substitution rationale):

* :mod:`repro.kernel` — the simulated host: processes, VFS, descriptors,
  accounts, signals, ptrace, and a calibrated hardware cost model.
* :mod:`repro.interpose` — the Parrot analogue: a delegating syscall
  interposition supervisor with an I/O channel and a mountable namespace.
* :mod:`repro.core` — the contribution: identities, rights, ACLs, the
  identity box, the Figure-1 mapping-method comparison, and the Figure-6
  hierarchical namespace.
* :mod:`repro.gsi` — toy GSI/Kerberos credentials and community
  authorization.
* :mod:`repro.net` / :mod:`repro.chirp` — the distributed substrate and
  the Chirp storage system with remote exec in identity boxes.
* :mod:`repro.workloads` — the evaluation's microbenchmarks and
  application models.

Quickstart (Figure 2 in four lines)::

    from repro import Machine, IdentityBox
    machine = Machine()
    dthain = machine.add_user("dthain")
    box = IdentityBox(machine, dthain, "Freddy")
    box.run(my_program)   # my_program yields syscalls; ACLs enforced
"""

from .core import (
    Acl,
    AclPolicy,
    AuditLog,
    IdentityBox,
    Principal,
    Rights,
    identity_box_run,
    identity_matches,
)
from .core.hierarchy import HierarchicalIdentity, IdentityTree
from .interpose import Supervisor
from .kernel import (
    CostModel,
    Credentials,
    Errno,
    KernelError,
    Machine,
    OpenFlags,
    ProcContext,
)
from .net import Cluster

__version__ = "1.0.0"

__all__ = [
    "Acl",
    "AclPolicy",
    "AuditLog",
    "Cluster",
    "CostModel",
    "Credentials",
    "Errno",
    "HierarchicalIdentity",
    "IdentityBox",
    "IdentityTree",
    "KernelError",
    "Machine",
    "OpenFlags",
    "Principal",
    "ProcContext",
    "Rights",
    "Supervisor",
    "identity_box_run",
    "identity_matches",
    "__version__",
]
