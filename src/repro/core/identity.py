"""High-level identities and principal names.

The central idea of the paper: a subject is named by a *free-form text
string* — ``/O=UnivNowhere/CN=Fred``, ``MyFriend``, ``Anonymous429`` — with
no relationship to the local account database (§3).  In a distributed
setting the string is a *principal name* that records how the subject
authenticated: ``globus:/O=UnivNowhere/CN=Fred``,
``kerberos:fred@nowhere.edu``, ``hostname:laptop.cs.nowhere.edu`` (§4).

Identity strings may contain wildcards when used as ACL *subjects*:
``/O=UnivNowhere/*`` matches every holder of a UnivNowhere certificate, and
``hostname:*.nowhere.edu`` matches every host in that domain.  Only ``*``
(any run of characters) and ``?`` (any single character) are special;
matching is anchored at both ends.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

#: Authentication methods Chirp negotiates, in this reproduction.
KNOWN_METHODS = ("globus", "kerberos", "hostname", "unix")


class IdentityError(ValueError):
    """An identity or principal string is malformed."""


def validate_identity(identity: str) -> str:
    """Check an identity string is usable; returns it unchanged.

    Identities are nearly free-form ("absolutely any name", §3), but they
    must be printable, non-empty, and free of newlines and whitespace so
    they can live as one token per line in ``.__acl`` files.
    """
    if not identity:
        raise IdentityError("identity must be non-empty")
    if any(c.isspace() for c in identity):
        raise IdentityError(f"identity may not contain whitespace: {identity!r}")
    if not identity.isprintable():
        raise IdentityError(f"identity must be printable: {identity!r}")
    return identity


@lru_cache(maxsize=4096)
def _compile_pattern(pattern: str) -> re.Pattern[str]:
    out = []
    for ch in pattern:
        if ch == "*":
            out.append(".*")
        elif ch == "?":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$")


def identity_matches(pattern: str, identity: str) -> bool:
    """Does ACL subject ``pattern`` cover ``identity``?

    Exact strings match themselves; ``*``/``?`` glob.  Matching is
    case-sensitive — ``/O=UnivNowhere/CN=Fred`` and
    ``/o=univnowhere/cn=fred`` are different principals, as with real DNs.
    """
    if "*" not in pattern and "?" not in pattern:
        return pattern == identity
    return _compile_pattern(pattern).match(identity) is not None


def is_pattern(subject: str) -> bool:
    """Whether an ACL subject uses wildcards (matters for reserve rights)."""
    return "*" in subject or "?" in subject


@dataclass(frozen=True)
class Principal:
    """An authenticated identity: method + proven name.

    ``str(Principal("globus", "/O=UnivNowhere/CN=Fred"))`` is the canonical
    form used in ACLs and process labels.
    """

    method: str
    name: str

    def __post_init__(self) -> None:
        if not self.method or ":" in self.method:
            raise IdentityError(f"bad method {self.method!r}")
        validate_identity(self.name)

    def __str__(self) -> str:
        return f"{self.method}:{self.name}"

    @classmethod
    def parse(cls, text: str) -> "Principal":
        """Parse ``method:name``; raises :class:`IdentityError` if malformed."""
        method, sep, name = text.partition(":")
        if not sep or not method or not name:
            raise IdentityError(f"principal must look like method:name, got {text!r}")
        return cls(method=method, name=name)

    def matches(self, pattern: str) -> bool:
        """Does an ACL subject pattern cover this principal?"""
        return identity_matches(pattern, str(self))


def mangle_for_path(identity: str) -> str:
    """Turn an identity into a safe single path component.

    Used to name per-visitor home directories
    (``/tmp/boxes/globus_O=UnivNowhere_CN=Fred``).  The result is unique
    per distinct identity: characters unsafe in a path component are
    percent-encoded.
    """
    out = []
    for ch in identity:
        if ch.isalnum() or ch in "=.@+-":
            out.append(ch)
        else:
            out.append(f"%{ord(ch):02x}")
    return "".join(out)
