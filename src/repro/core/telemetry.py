"""Always-on telemetry for the shared operation pipeline.

The paper's central quantitative claim is an overhead story (Figure 5),
so the reproduction needs first-class measurement: not per-benchmark
timing loops, but one observability layer both entry surfaces feed.
This module provides it, in three pieces:

* :class:`Telemetry` — a metrics registry: labelled counters, gauges,
  and fixed-bucket latency histograms, all stamped from the *simulated*
  clock.  Recording never advances the clock, so instrumentation is
  invisible to the thing being measured: a run with telemetry attached
  spends exactly the same simulated nanoseconds as a bare run.
* :class:`Span` — one timed unit of work in a trace tree.  Spans nest
  through a stack on the owning :class:`Telemetry` (the simulation is
  single-threaded, so stack discipline holds), and a ``trace_id`` can be
  carried across the Chirp wire so a remote ``exec``'s boxed syscalls
  nest under the RPC that caused them.
* :class:`TracingInterceptor` — the pipeline hookup.  Installed at the
  mouth of :func:`repro.core.pipeline.build_pipeline`, it opens a span
  per operation, observes per-op/per-surface/per-identity latency into
  the shared histograms, and counts outcomes (ok / errno, denials).

Everything a snapshot returns is a fresh copy: callers may mutate the
result freely without corrupting live state (see ``Pipeline.stats``).
"""

from __future__ import annotations

import itertools
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..kernel.errno import KernelError
from ..kernel.timing import NS_PER_US

#: Fixed histogram bucket upper bounds in nanoseconds: geometric, x2 per
#: bucket from 125 ns to ~4.3 s, plus an implicit overflow bucket.  Wide
#: enough for one trapped syscall (~10 us) and a whole RPC with backoff.
DEFAULT_BUCKET_EDGES_NS: tuple[int, ...] = tuple(
    125 * (1 << i) for i in range(26)
)

#: Trace and span ids are process-unique (not per-Telemetry) so the
#: client- and server-side instances on either end of a wire can never
#: mint colliding ids inside one propagated trace.
_TRACE_IDS = itertools.count(1)
_SPAN_IDS = itertools.count(1)

#: Label-set key: a canonical, hashable rendering of **labels.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(name: str, key: LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


@dataclass
class Histogram:
    """A fixed-bucket latency histogram with exact moments.

    ``edges`` are inclusive upper bounds; bucket ``i`` counts values
    ``edges[i-1] < v <= edges[i]`` and one overflow bucket catches the
    rest.  Alongside the buckets the histogram tracks exact count, sum,
    min and max, so the mean is exact and percentiles of a constant
    stream (the common case in a deterministic simulation) are exact
    too; mixed streams interpolate linearly inside the bucket.
    """

    edges: tuple[int, ...] = DEFAULT_BUCKET_EDGES_NS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: int = 0
    min: int = 0
    max: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def observe(self, value_ns: int) -> None:
        value_ns = int(value_ns)
        if self.count == 0:
            self.min = self.max = value_ns
        else:
            self.min = min(self.min, value_ns)
            self.max = max(self.max, value_ns)
        self.count += 1
        self.sum += value_ns
        self.counts[bisect_left(self.edges, value_ns)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (0 < q <= 100), deterministic.

        Exact when every sample is identical; otherwise the bucket
        containing the rank is found and the value interpolated
        linearly between its bounds (clamped to observed min/max).
        """
        if self.count == 0:
            return 0.0
        if self.min == self.max:
            return float(self.min)
        rank = max(1, -(-int(q * self.count) // 100))  # ceil(q% of count)
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lower = self.edges[i - 1] if i > 0 else 0
                upper = self.edges[i] if i < len(self.edges) else self.max
                frac = (rank - cumulative) / n
                value = lower + frac * (upper - lower)
                return float(min(max(value, self.min), self.max))
            cumulative += n
        return float(self.max)  # pragma: no cover - rank <= count always hits

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        if other.count == 0:
            return
        if other.edges != self.edges:
            raise ValueError("cannot merge histograms with different buckets")
        if self.count == 0:
            self.min, self.max = other.min, other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.sum += other.sum
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]

    def snapshot(self) -> dict[str, Any]:
        """A detached copy safe for callers to mutate."""
        return {
            "count": self.count,
            "sum_ns": self.sum,
            "min_ns": self.min,
            "max_ns": self.max,
            "mean_ns": self.mean,
            "p50_ns": self.percentile(50),
            "p90_ns": self.percentile(90),
            "p99_ns": self.percentile(99),
            "buckets": list(self.counts),
            "edges_ns": list(self.edges),
        }


@dataclass(frozen=True)
class LatencyStats:
    """A histogram summarized in microseconds — the benchmarks' unit.

    Built from one or more histograms (multi-call microbenchmarks like
    open-close merge their ops' distributions); percentiles describe
    *individual* calls even when a caller reports a per-iteration sum.
    """

    count: int = 0
    mean_us: float = 0.0
    p50_us: float = 0.0
    p90_us: float = 0.0
    p99_us: float = 0.0

    @classmethod
    def from_histograms(cls, *hists: Histogram) -> "LatencyStats":
        live = [h for h in hists if h.count]
        if not live:
            return cls()
        merged = Histogram(edges=live[0].edges)
        for hist in live:
            merged.merge(hist)
        return cls(
            count=merged.count,
            mean_us=merged.mean / NS_PER_US,
            p50_us=merged.percentile(50) / NS_PER_US,
            p90_us=merged.percentile(90) / NS_PER_US,
            p99_us=merged.percentile(99) / NS_PER_US,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "mean_us": round(self.mean_us, 4),
            "p50_us": round(self.p50_us, 4),
            "p90_us": round(self.p90_us, 4),
            "p99_us": round(self.p99_us, 4),
        }


@dataclass
class Span:
    """One timed unit of work inside a trace tree."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str = ""
    surface: str = ""
    identity: str = ""
    start_ns: int = 0
    end_ns: int = 0
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "surface": self.surface,
            "identity": self.identity,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


def format_trace_parent(span: Span) -> str:
    """Render a span as the ``trace`` wire field: ``<trace_id>/<span_id>``."""
    return f"{span.trace_id}/{span.span_id}"


def parse_trace_parent(text: str) -> tuple[str, str]:
    """Split a wire ``trace`` field; tolerant of a bare trace id."""
    trace_id, _, span_id = str(text).partition("/")
    return trace_id, span_id


class Telemetry:
    """The metrics registry and tracer for one simulated host (or client).

    All mutating methods are no-ops when ``enabled`` is false, and no
    method ever advances the simulated clock, so attaching telemetry is
    free in simulated time by construction.
    """

    def __init__(
        self,
        clock=None,
        *,
        enabled: bool = True,
        max_spans: int = 20_000,
        bucket_edges_ns: tuple[int, ...] = DEFAULT_BUCKET_EDGES_NS,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.bucket_edges_ns = tuple(bucket_edges_ns)
        self.counters: dict[tuple[str, LabelKey], int] = {}
        self.gauges: dict[tuple[str, LabelKey], float] = {}
        self.histograms: dict[tuple[str, LabelKey], Histogram] = {}
        self.spans: deque[Span] = deque(maxlen=max_spans)
        self._stack: list[Span] = []

    # ------------------------------------------------------------------ #
    # clock access
    # ------------------------------------------------------------------ #

    def now_ns(self) -> int:
        return self.clock.now_ns if self.clock is not None else 0

    # ------------------------------------------------------------------ #
    # counters and gauges
    # ------------------------------------------------------------------ #

    def counter_inc(self, name: str, value: int = 1, **labels: Any) -> None:
        if not self.enabled:
            return
        key = (name, _label_key(labels))
        self.counters[key] = self.counters.get(key, 0) + value

    def counter(self, name: str, **labels: Any) -> int:
        return self.counters.get((name, _label_key(labels)), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter across every label combination."""
        return sum(v for (n, _k), v in self.counters.items() if n == name)

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        self.gauges[(name, _label_key(labels))] = value

    def gauge(self, name: str, **labels: Any) -> float:
        return self.gauges.get((name, _label_key(labels)), 0.0)

    # ------------------------------------------------------------------ #
    # histograms
    # ------------------------------------------------------------------ #

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram for this exact label set (created on demand)."""
        key = (name, _label_key(labels))
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram(edges=self.bucket_edges_ns)
        return hist

    def observe(self, name: str, value_ns: int, **labels: Any) -> None:
        if not self.enabled:
            return
        self.histogram(name, **labels).observe(value_ns)

    def histograms_named(self, name: str) -> Iterator[tuple[LabelKey, Histogram]]:
        for (n, key), hist in self.histograms.items():
            if n == name:
                yield key, hist

    # ------------------------------------------------------------------ #
    # spans
    # ------------------------------------------------------------------ #

    def start_span(
        self,
        name: str,
        *,
        surface: str = "",
        trace_parent: str = "",
        identity: str = "",
        **attrs: Any,
    ) -> Span | None:
        """Open a span; returns ``None`` when telemetry is disabled.

        Parentage, most specific first: an explicit ``trace_parent``
        (``trace_id/span_id`` off the wire), else the innermost active
        span on this Telemetry, else a fresh trace.
        """
        if not self.enabled:
            return None
        if trace_parent:
            trace_id, parent_id = parse_trace_parent(trace_parent)
        elif self._stack:
            top = self._stack[-1]
            trace_id, parent_id = top.trace_id, top.span_id
        else:
            trace_id, parent_id = f"t{next(_TRACE_IDS):06d}", ""
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=f"s{next(_SPAN_IDS):06d}",
            parent_id=parent_id,
            surface=surface,
            identity=identity,
            start_ns=self.now_ns(),
            attrs=dict(attrs),
        )
        self._stack.append(span)
        return span

    def end_span(self, span: Span | None, status: str = "ok") -> None:
        if span is None or not self.enabled:
            return
        span.end_ns = self.now_ns()
        span.status = status
        if span in self._stack:
            # pop through (tolerates a caller that leaked a child span)
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            self._stack.pop()
        self.spans.append(span)

    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def new_trace_parent(self, name: str, **attrs: Any) -> Span | None:
        """Start a root-capable span destined for wire propagation."""
        return self.start_span(name, **attrs)

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def spans_in_trace(self, trace_id: str) -> list[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    # ------------------------------------------------------------------ #
    # snapshot / reset
    # ------------------------------------------------------------------ #

    def snapshot(self, *, spans: int | None = 200) -> dict[str, Any]:
        """A fully detached, JSON-ready copy of everything recorded.

        ``spans`` bounds how many (most recent) finished spans are
        included; ``None`` includes them all.  Mutating the returned
        structure never touches live state.
        """
        span_list = list(self.spans)
        if spans is not None:
            span_list = span_list[-spans:]
        return {
            "enabled": self.enabled,
            "clock_ns": self.now_ns(),
            "counters": {
                _render_key(name, key): value
                for (name, key), value in sorted(self.counters.items())
            },
            "gauges": {
                _render_key(name, key): value
                for (name, key), value in sorted(self.gauges.items())
            },
            "histograms": {
                _render_key(name, key): hist.snapshot()
                for (name, key), hist in sorted(self.histograms.items())
            },
            "spans": [span.to_dict() for span in span_list],
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()
        self._stack.clear()

    def fork(self) -> "Telemetry":
        """A detached instance for a forked world.

        Same configuration (enabled flag, span capacity, buckets), zero
        recorded state, and — critically — an empty span stack: the first
        span opened in the fork starts a *new root trace* instead of
        silently nesting under whatever span the parent world had open.
        The caller binds the fork's clock (``Machine.fork`` does).
        """
        return Telemetry(
            None,
            enabled=self.enabled,
            max_spans=self.spans.maxlen or 20_000,
            bucket_edges_ns=self.bucket_edges_ns,
        )


def instrument(machine) -> Telemetry:
    """Attach a fresh :class:`Telemetry` to a machine's clock.

    Convenience for benchmarks and the CLI: the kernel never imports this
    module; it only duck-reads ``machine.telemetry``.
    """
    telemetry = Telemetry(machine.clock)
    machine.telemetry = telemetry
    return telemetry


#: Denial errnos, mirrored from the pipeline's DenialCounter semantics.
_DENIAL_STATUSES = frozenset({"EACCES", "EPERM"})


class TracingInterceptor:
    """Pipeline-mouth interceptor: spans + latency histograms + outcomes.

    Installed first by :func:`~repro.core.pipeline.build_pipeline`, so
    its span brackets the whole chain (identity gate, guards, reference
    monitor, handler) and its histogram records the operation's full
    pipeline latency.  Wire-carried trace parents (stashed by the Chirp
    server under ``op.scratch['trace_parent']``) reparent the span onto
    the caller's trace; otherwise nesting follows the active-span stack,
    which is how a remote ``exec``'s boxed syscalls end up under the RPC
    span that spawned them.
    """

    #: scratch slot surfaces use to hand over a wire trace parent
    SCRATCH_KEY = "trace_parent"

    def __init__(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry

    def __call__(self, op, ctx, proceed):
        t = self.telemetry
        if t is None or not t.enabled:
            return proceed()
        span = t.start_span(
            f"{op.surface}:{op.name}",
            surface=op.surface,
            trace_parent=str(op.scratch.pop(self.SCRATCH_KEY, "") or ""),
        )
        status = "ok"
        try:
            return proceed()
        except KernelError as exc:
            status = exc.errno.name
            raise
        except BaseException:
            status = "error"
            raise
        finally:
            identity = op.identity or "?"
            span.identity = identity
            t.end_span(span, status=status)
            labels = {"surface": op.surface, "op": op.name, "identity": identity}
            t.observe("pipeline.latency_ns", span.duration_ns, **labels)
            t.counter_inc("pipeline.ops", **labels)
            t.counter_inc(
                "pipeline.outcomes", surface=op.surface, op=op.name, status=status
            )
            if status in _DENIAL_STATUSES:
                t.counter_inc("pipeline.denials", **labels)
