"""Group accounts per collaboration (Figure 1 row 4; the Grid3 model).

"There are a small number of accounts, each corresponding to a well-known
experiment or collaboration...  These accounts essentially enforce static
privacy and sharing policies.  Within one group, nothing is private, and
all data is shared.  Between groups, there is privacy but no sharing"
(§2) — the evaluator reports those two columns as *fixed*.

The group of a DN-style identity is its first component (the virtual
organization): ``/O=CMS/CN=Alice`` belongs to group ``/O=CMS``.
"""

from __future__ import annotations

from ...core.identity import mangle_for_path
from .base import MappingMethod, NeedsAdministrator, Site, SiteSession


def group_of(grid_identity: str) -> str:
    """Extract the VO from a DN-like identity (first path component)."""
    stripped = grid_identity.lstrip("/")
    first = stripped.split("/", 1)[0]
    return "/" + first if grid_identity.startswith("/") else first


class GroupAccounts(MappingMethod):
    """Each collaboration → one shared local account."""

    name = "Group"
    requires_privilege = True

    def __init__(self, site: Site) -> None:
        super().__init__(site)
        #: VO name -> local account name; root-managed
        self.groupmap: dict[str, str] = {}
        self._seq = 0

    def admit(self, grid_identity: str) -> SiteSession:
        vo = group_of(grid_identity)
        account_name = self.groupmap.get(vo)
        if account_name is None:
            raise NeedsAdministrator(f"no group account for {vo}")
        machine = self.site.machine
        cred = machine.users.credentials_for(account_name)
        home = machine.users.by_name(account_name).home
        return SiteSession(
            site=self.site,
            grid_identity=grid_identity,
            cred=cred,
            home=home,
            method=self,
        )

    def administer(self, grid_identity: str) -> None:
        """A human, as root, creates the collaboration account — once per
        group, not per user (the figure's "per group" burden)."""
        vo = group_of(grid_identity)
        if vo in self.groupmap:
            return  # already provisioned; no extra burden
        root = self.site.admin_action(f"groupadd for {vo}")
        machine = self.site.machine
        self._seq += 1
        account_name = f"grp{self._seq}_{mangle_for_path(vo)[:16]}"
        account = machine.users.create_account(root, account_name)
        root_task = machine.host_task(root)
        machine.kcall_x(root_task, "mkdir", account.home, 0o700)
        machine.kcall_x(root_task, "chown", account.home, account.uid, account.gid)
        machine.refresh_passwd_file()
        self.groupmap[vo] = account_name
