"""Untrusted account: every visitor runs as ``nobody`` (Figure 1 row 2).

"A slight variation is to run all processes in a special account for
unknown or untrusted users (nobody) that carries fewer privileges than an
ordinary user.  This approach is generally used by Web and FTP servers...
but requires privileges in order to create and use it" (§2) — switching
uid to nobody is a ``setuid`` call only root may make.
"""

from __future__ import annotations

from ...kernel.users import NOBODY_NAME
from .base import MappingMethod, Site, SiteSession

UNTRUSTED_WORKDIR = "/var/gridpub"


class UntrustedAccount(MappingMethod):
    """All grid users → ``nobody``."""

    name = "Untrusted"
    requires_privilege = True  # the gateway must setuid() to nobody

    def __init__(self, site: Site) -> None:
        super().__init__(site)
        machine = site.machine
        # One-time privileged setup of the shared nobody workspace.  This
        # is service installation, not per-user burden, so it uses the
        # automated root authority.
        root_task = machine.host_task(site.automated_root())
        machine.kcall_x(root_task, "mkdir", "/var", 0o755)
        machine.kcall_x(root_task, "mkdir", UNTRUSTED_WORKDIR, 0o755)
        nobody = machine.users.by_name(NOBODY_NAME)
        machine.kcall_x(root_task, "chown", UNTRUSTED_WORKDIR, nobody.uid, nobody.gid)
        self.nobody_cred = machine.users.credentials_for(NOBODY_NAME)

    def admit(self, grid_identity: str) -> SiteSession:
        return SiteSession(
            site=self.site,
            grid_identity=grid_identity,
            cred=self.nobody_cred,
            home=UNTRUSTED_WORKDIR,
            method=self,
        )
