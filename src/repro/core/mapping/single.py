"""Single account: every visitor runs as the service owner (Figure 1 row 1).

"The simplest method of identity mapping is to run all visiting processes
in the same account... it requires no special privileges.  Obviously, it
does not protect the account holder from malicious users, nor does it
afford visiting users any privacy from each other" (§2).  The paper's
example is a personal GASS server.
"""

from __future__ import annotations

from ...kernel.vfs import join
from .base import MappingMethod, Site, SiteSession


class SingleAccount(MappingMethod):
    """All grid users → the operator's own account."""

    name = "Single"
    requires_privilege = False

    def __init__(self, site: Site) -> None:
        super().__init__(site)
        # one shared workspace inside the operator's home
        self.workdir = join(
            self.site.machine.users.by_uid(site.operator.uid).home, "gridwork"
        )
        task = site.machine.host_task(site.operator)
        site.machine.kcall_x(task, "mkdir", self.workdir, 0o755)

    def admit(self, grid_identity: str) -> SiteSession:
        # No mapping table, no account creation: everyone becomes siteop.
        return SiteSession(
            site=self.site,
            grid_identity=grid_identity,
            cred=self.site.operator,
            home=self.workdir,
            method=self,
        )
