"""Account pools (Figure 1 row 6; Globus and Legion).

"The system administrator may create a pool of anonymous accounts (i.e.
grid0-grid99)... an account pool does not allow for return: a given user
might be grid9 today and grid33 tomorrow.  However, it does protect the
system owner from users and users from each other" (§2).

One manual root intervention provisions the whole pool ("per pool"
burden); assignment and recycling afterwards are automatic.  Recycled
homes are wiped so the next holder cannot read the last one's files.
"""

from __future__ import annotations

from collections import deque

from ...kernel.errno import Errno, err
from .base import MappingMethod, Site, SiteSession

DEFAULT_POOL_SIZE = 8


class AccountPool(MappingMethod):
    """Grid users → temporarily leased pool accounts (grid0..gridN)."""

    name = "Pool"
    requires_privilege = True

    def __init__(self, site: Site, pool_size: int = DEFAULT_POOL_SIZE) -> None:
        super().__init__(site)
        machine = site.machine
        # ONE manual act by the administrator provisions the entire pool.
        root = site.admin_action(f"provision account pool grid0..grid{pool_size - 1}")
        root_task = machine.host_task(root)
        self._free: deque[str] = deque()
        for i in range(pool_size):
            account = machine.users.create_account(root, f"grid{i}")
            machine.kcall_x(root_task, "mkdir", account.home, 0o700)
            machine.kcall_x(root_task, "chown", account.home, account.uid, account.gid)
            self._free.append(account.name)
        machine.refresh_passwd_file()
        self._leases: dict[int, str] = {}

    def admit(self, grid_identity: str) -> SiteSession:
        if not self._free:
            raise err(Errno.EAGAIN, "account pool exhausted")
        # FIFO rotation: a returning user almost surely lands on a
        # different account — grid9 today, grid33 tomorrow.
        account_name = self._free.popleft()
        machine = self.site.machine
        session = SiteSession(
            site=self.site,
            grid_identity=grid_identity,
            cred=machine.users.credentials_for(account_name),
            home=machine.users.by_name(account_name).home,
            method=self,
        )
        self._leases[id(session)] = account_name
        return session

    def on_logout(self, session: SiteSession) -> None:
        """Recycle the account: wipe the home, return it to the pool."""
        account_name = self._leases.pop(id(session), None)
        if account_name is None:
            return
        machine = self.site.machine
        root_task = machine.host_task(self.site.automated_root())
        self._wipe(root_task, session.home)
        self._free.append(account_name)

    def _wipe(self, task, path: str) -> None:
        machine = self.site.machine
        from ...kernel.errno import KernelError
        from ...kernel.vfs import join

        try:
            names = machine.kcall_x(task, "readdir", path)
        except KernelError:
            return
        for name in names:
            child = join(path, name)
            st = machine.kcall_x(task, "lstat", child)
            if st.is_dir:
                self._wipe(task, child)
                machine.kcall_x(task, "rmdir", child)
            else:
                machine.kcall_x(task, "unlink", child)
