"""Anonymous per-job accounts (Figure 1 row 5; Condor on Windows NT).

"A system may create a temporary account that lasts only for the duration
of a single job...  it does not require the administrator's involvement
for every user.  The primary drawback is that an ID no longer has any
meaning after a job completes" (§2) — no *return* to stored data.

The account churn is automated root activity: privileged, but not a
manual administrative burden.
"""

from __future__ import annotations

from .base import MappingMethod, Site, SiteSession


class AnonymousAccounts(MappingMethod):
    """Each session → a brand-new account, destroyed at logout."""

    name = "Anonymous"
    requires_privilege = True

    def __init__(self, site: Site) -> None:
        super().__init__(site)
        self._seq = 0
        #: session home dirs torn down at logout, keyed by account name
        self._session_accounts: dict[int, str] = {}

    def admit(self, grid_identity: str) -> SiteSession:
        machine = self.site.machine
        root = self.site.automated_root()  # unattended daemon, no burden
        self._seq += 1
        account_name = f"anon{self._seq}"
        account = machine.users.create_account(root, account_name)
        root_task = machine.host_task(root)
        machine.kcall_x(root_task, "mkdir", account.home, 0o700)
        machine.kcall_x(root_task, "chown", account.home, account.uid, account.gid)
        machine.refresh_passwd_file()
        session = SiteSession(
            site=self.site,
            grid_identity=grid_identity,
            cred=machine.users.credentials_for(account_name),
            home=account.home,
            method=self,
        )
        self._session_accounts[id(session)] = account_name
        return session

    def on_logout(self, session: SiteSession) -> None:
        """The job is done: the account and its files evaporate."""
        machine = self.site.machine
        root = self.site.automated_root()
        root_task = machine.host_task(root)
        account_name = self._session_accounts.pop(id(session), None)
        if account_name is None:
            return
        self._remove_tree(root_task, session.home)
        machine.users.remove_account(root, account_name)
        machine.refresh_passwd_file()

    def _remove_tree(self, task, path: str) -> None:
        machine = self.site.machine
        from ...kernel.errno import KernelError
        from ...kernel.vfs import join

        try:
            names = machine.kcall_x(task, "readdir", path)
        except KernelError:
            return
        for name in names:
            child = join(path, name)
            st = machine.kcall_x(task, "lstat", child)
            if st.is_dir:
                self._remove_tree(task, child)
                machine.kcall_x(task, "rmdir", child)
            else:
                machine.kcall_x(task, "unlink", child)
        # the home directory itself is removed by the caller if desired;
        # emptying it is enough to make stored data unreachable
