"""Common machinery for the Figure-1 identity-mapping methods.

Figure 1 of the paper compares seven ways of admitting a grid user to a
local system: single, untrusted, private, group, anonymous, and pooled
accounts, plus the identity box.  Each method here is a concrete
:class:`MappingMethod` that admits grid identities to a :class:`Site`
(one simulated machine run by one service operator) and hands back a
:class:`SiteSession` through which the visitor acts.

The evaluator (:mod:`.evaluator`) then *measures* the figure's columns
instead of asserting them: it runs a hostile-visitor scenario against the
owner's private file, a cross-user privacy probe, a sharing grant, a
logout/return round-trip, and counts manual root interventions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ...kernel.errno import Errno, KernelError
from ...kernel.fdtable import OpenFlags
from ...kernel.machine import Machine
from ...kernel.users import Credentials
from ...kernel.vfs import join

#: Mode of the site owner's private file the hostile scenario attacks.
OWNER_SECRET = "/home/siteop/private.dat"


class NeedsAdministrator(Exception):
    """Admission stalled: a human must act as root before this user can
    log in (the "Admin Burden" column)."""


@dataclass
class Site:
    """One resource-providing site: a machine, its operator, and a count
    of manual root interventions."""

    machine: Machine
    #: the unprivileged service operator ("siteop") running the gateway
    operator: Credentials
    #: root credentials, used *only* through :meth:`admin_action`
    root: Credentials
    manual_admin_actions: int = 0

    @classmethod
    def build(cls) -> "Site":
        machine = Machine()
        operator = machine.add_user("siteop")
        root = machine.users.credentials_for("root")
        site = cls(machine=machine, operator=operator, root=root)
        # the owner's private data that "protects owner" scenarios attack
        op_task = machine.host_task(operator)
        machine.write_file(op_task, OWNER_SECRET, b"the owner's secret", mode=0o600)
        return site

    def admin_action(self, description: str) -> Credentials:
        """A human administrator logs in as root: counted as burden."""
        self.manual_admin_actions += 1
        return self.root

    def automated_root(self) -> Credentials:
        """Root authority exercised by an *unattended* daemon (anonymous /
        pool accounts): privileged, but not a manual burden."""
        return self.root


@dataclass
class SiteSession:
    """A logged-in grid user's handle on a site.

    The base implementation acts through plain kernel calls under a local
    Unix credential; the identity-box method overrides the hooks to act
    through boxed processes instead.
    """

    site: Site
    grid_identity: str
    cred: Credentials
    home: str
    method: "MappingMethod"
    alive: bool = True

    # -- primitive actions (override points) ------------------------------ #

    def _task(self):
        return self.site.machine.host_task(self.cred, cwd=self.home)

    def write_file(self, name: str, data: bytes) -> bool:
        """Store data under the session's workspace; False on denial."""
        try:
            self.site.machine.write_file(self._task(), join(self.home, name), data)
            return True
        except KernelError:
            return False

    def read_file(self, path: str) -> bytes | None:
        """Read an absolute path; None on denial/absence."""
        try:
            return self.site.machine.read_file(self._task(), path)
        except KernelError:
            return None

    def path_of(self, name: str) -> str:
        return join(self.home, name)

    def grant(self, other_grid_identity: str) -> bool:
        """Try to share this session's workspace with another *grid*
        identity.  The default Unix implementation fails: an ordinary
        user has no way to translate a grid name into a local account,
        let alone grant it rights (§1: sharing "requires each user to
        know the local identities", which are unavailable here)."""
        return False

    def logout(self) -> None:
        self.alive = False
        self.method.on_logout(self)


class MappingMethod(abc.ABC):
    """One row of Figure 1."""

    #: short name matching the figure ("Single", "Private", ...)
    name: str = "?"
    #: does operating this gateway require root? (the figure's column 2)
    requires_privilege: bool = False

    def __init__(self, site: Site) -> None:
        self.site = site

    @abc.abstractmethod
    def admit(self, grid_identity: str) -> SiteSession:
        """Authenticate + map a grid identity to a local session.

        Raises :class:`NeedsAdministrator` when a human must intervene
        first; the evaluator then performs the intervention via
        :meth:`administer` and retries — counting the burden.
        """

    def administer(self, grid_identity: str) -> None:
        """Manual root step enabling a future :meth:`admit` (default: none)."""
        raise NeedsAdministrator(f"{self.name} has no administration procedure")

    def on_logout(self, session: SiteSession) -> None:
        """Hook for methods that tear down accounts at logout."""

    # -- helpers ----------------------------------------------------------- #

    def _read_denied(self, cred: Credentials, path: str) -> bool:
        """True if ``cred`` cannot read ``path`` (used by scenario probes)."""
        machine = self.site.machine
        task = machine.host_task(cred)
        result = machine.kcall(task, "open", path, OpenFlags.O_RDONLY)
        if isinstance(result, int) and result < 0:
            return Errno(-result) in (Errno.EACCES, Errno.EPERM, Errno.ENOENT)
        machine.kcall(task, "close", result)
        return False
