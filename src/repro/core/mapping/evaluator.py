"""Measure Figure 1's columns instead of asserting them.

For each identity-mapping method this runs live scenarios on a fresh
simulated site:

* **Protect owner?** — a hostile visitor tries to read the operator's
  mode-600 private file.
* **Allow privacy?** — Fred stores a file; George (same VO) and Heidi
  (another VO) try to read it uninvited.
* **Allow sharing?** — Fred grants Heidi access by *grid identity* and
  Heidi retries; George's uninvited read distinguishes "fixed" group
  sharing.
* **Allow return?** — Fred stores data, logs out, logs in again, and looks
  for it.
* **Admin burden** — admitting a fresh slate of users across two VOs while
  counting manual root interventions.

The output is the full matrix the paper prints, derived from behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from .anonymous import AnonymousAccounts
from .base import MappingMethod, NeedsAdministrator, OWNER_SECRET, Site, SiteSession
from .group import GroupAccounts
from .identbox import IdentityBoxMethod
from .pool import AccountPool
from .private import PrivateAccounts
from .single import SingleAccount
from .untrusted import UntrustedAccount

FRED = "/O=UnivNowhere/CN=Fred"
GEORGE = "/O=UnivNowhere/CN=George"  # same VO as Fred
HEIDI = "/O=NotreDame/CN=Heidi"  # different VO
MALLORY = "/O=EvilCorp/CN=Mallory"

#: Figure-1 row order.
METHOD_CLASSES: tuple[type[MappingMethod], ...] = (
    SingleAccount,
    UntrustedAccount,
    PrivateAccounts,
    GroupAccounts,
    AnonymousAccounts,
    AccountPool,
    IdentityBoxMethod,
)


@dataclass
class MethodReport:
    """One evaluated row of Figure 1."""

    name: str
    required_privilege: str  # "root" or "-"
    protects_owner: str  # yes / no
    allows_privacy: str  # yes / no / fixed
    allows_sharing: str  # yes / no / fixed
    allows_return: str  # yes / no
    admin_burden: str  # "-", "per user", "per group", "per pool"
    #: raw counts backing the burden label
    setup_admin_actions: int = 0
    admissions_admin_actions: int = 0

    def row(self) -> tuple[str, ...]:
        return (
            self.name,
            self.required_privilege,
            self.protects_owner,
            self.allows_privacy,
            self.allows_sharing,
            self.allows_return,
            self.admin_burden,
        )


def _admit(method: MappingMethod, identity: str) -> SiteSession:
    """Admit, performing the manual administration step if one is needed."""
    try:
        return method.admit(identity)
    except NeedsAdministrator:
        method.administer(identity)
        return method.admit(identity)


def _yn(flag: bool) -> str:
    return "yes" if flag else "no"


def evaluate_method(method_cls: type[MappingMethod]) -> MethodReport:
    """Run the full scenario battery against one mapping method."""
    site = Site.build()
    setup_before = site.manual_admin_actions
    method = method_cls(site)
    setup_actions = site.manual_admin_actions - setup_before

    # -- protect owner ---------------------------------------------------- #
    mallory = _admit(method, MALLORY)
    secret = mallory.read_file(OWNER_SECRET)
    protects_owner = secret is None
    mallory.logout()

    # -- privacy ----------------------------------------------------------- #
    fred = _admit(method, FRED)
    assert fred.write_file("private.txt", b"fred's private data"), (
        f"{method.name}: fred could not even store a file"
    )
    george = _admit(method, GEORGE)
    heidi = _admit(method, HEIDI)
    george_reads = george.read_file(fred.path_of("private.txt")) is not None
    heidi_reads = heidi.read_file(fred.path_of("private.txt")) is not None
    if not george_reads and not heidi_reads:
        privacy = "yes"
    elif george_reads and heidi_reads:
        privacy = "no"
    else:
        privacy = "fixed"  # group semantics: open within the VO, closed across

    # -- sharing ----------------------------------------------------------- #
    assert fred.write_file("shared.txt", b"for heidi")
    granted = fred.grant(HEIDI)
    heidi_shared = (
        granted and heidi.read_file(fred.path_of("shared.txt")) is not None
    )
    if heidi_shared:
        sharing = "yes"
    elif george_reads and not heidi_reads:
        sharing = "fixed"  # can share, but only inside the static group
    elif george_reads:
        sharing = "yes"  # everyone in one account: sharing is implicit
    else:
        sharing = "no"

    # -- return ------------------------------------------------------------ #
    marker = b"see you tomorrow"
    assert fred.write_file("keep.txt", marker)
    fred.logout()
    fred_again = _admit(method, FRED)
    back = fred_again.read_file(fred_again.path_of("keep.txt"))
    allows_return = back == marker
    for session in (george, heidi, fred_again):
        session.logout()

    # -- admin burden -------------------------------------------------------- #
    before = site.manual_admin_actions
    # fresh users in fresh VOs, so prior provisioning can't mask the cost
    cohort = [
        "/O=Atlas/CN=NewUser1",
        "/O=Atlas/CN=NewUser2",
        "/O=Babar/CN=NewUser3",
        "/O=Babar/CN=NewUser4",
    ]
    for identity in cohort:
        _admit(method, identity).logout()
    admissions_actions = site.manual_admin_actions - before
    n_users, n_groups = len(cohort), 2
    if setup_actions == 0 and admissions_actions == 0:
        burden = "-"
    elif admissions_actions >= n_users:
        burden = "per user"
    elif admissions_actions == n_groups:
        burden = "per group"
    elif setup_actions > 0:
        burden = "per pool"
    else:
        burden = f"{admissions_actions}/{n_users} users"

    return MethodReport(
        name=method.name,
        required_privilege="root" if method.requires_privilege else "-",
        protects_owner=_yn(protects_owner),
        allows_privacy=privacy,
        allows_sharing=sharing,
        allows_return=_yn(allows_return),
        admin_burden=burden,
        setup_admin_actions=setup_actions,
        admissions_admin_actions=admissions_actions,
    )


def evaluate_all() -> list[MethodReport]:
    """Evaluate every Figure-1 method on its own fresh site."""
    return [evaluate_method(cls) for cls in METHOD_CLASSES]


HEADERS = (
    "Account Type",
    "Required Privilege",
    "Protect Owner?",
    "Allow Privacy?",
    "Allow Sharing?",
    "Allow Return?",
    "Admin Burden",
)


def render_table(reports: list[MethodReport]) -> str:
    """Render the measured matrix in the paper's Figure-1 layout."""
    rows = [HEADERS] + [r.row() for r in reports]
    widths = [max(len(row[i]) for row in rows) for i in range(len(HEADERS))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
