"""The Figure-1 identity-mapping methods and their evaluator."""

from .anonymous import AnonymousAccounts
from .base import (
    MappingMethod,
    NeedsAdministrator,
    OWNER_SECRET,
    Site,
    SiteSession,
)
from .evaluator import (
    METHOD_CLASSES,
    MethodReport,
    evaluate_all,
    evaluate_method,
    render_table,
)
from .group import GroupAccounts, group_of
from .identbox import BoxSession, IdentityBoxMethod
from .pool import AccountPool, DEFAULT_POOL_SIZE
from .private import PrivateAccounts
from .single import SingleAccount
from .untrusted import UntrustedAccount

__all__ = [
    "AccountPool",
    "AnonymousAccounts",
    "BoxSession",
    "DEFAULT_POOL_SIZE",
    "GroupAccounts",
    "IdentityBoxMethod",
    "METHOD_CLASSES",
    "MappingMethod",
    "MethodReport",
    "NeedsAdministrator",
    "OWNER_SECRET",
    "PrivateAccounts",
    "Site",
    "SiteSession",
    "SingleAccount",
    "UntrustedAccount",
    "evaluate_all",
    "evaluate_method",
    "group_of",
    "render_table",
]
