"""The identity box as an admission method (Figure 1, last row).

No root, no account database, no administrator: the unprivileged service
operator runs a supervisor, and each visiting grid identity gets a boxed
protection domain named by its own identity string.  Sharing works by
*grid* identity through ACLs; privacy and owner protection come from the
reference monitor; return works because the identity — and therefore the
home directory and its ACL — is the same on every visit.

Unlike the Unix rows, this session's actions honestly run as *boxed
processes*: every probe the evaluator makes goes through the trapped-
syscall path, not through a shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ...interpose.supervisor import Supervisor
from ...kernel.fdtable import OpenFlags
from ...kernel.vfs import join
from ..box import IdentityBox
from .base import MappingMethod, Site, SiteSession

BOXES_ROOT = "/tmp/site-boxes"


@dataclass
class BoxSession(SiteSession):
    """A session whose actions run inside an identity box."""

    box: IdentityBox = None  # type: ignore[assignment]

    # -- boxed-process plumbing ------------------------------------------- #

    def _run_boxed(self, body_factory) -> Any:
        """Run a small program inside the box; return what it produces."""
        outcome: list[Any] = []

        def program(proc, args):
            result = yield from body_factory(proc)
            outcome.append(result)
            return 0

        self.box.spawn(program, comm=f"session:{self.grid_identity}")
        self.site.machine.run()
        return outcome[0] if outcome else None

    def write_file(self, name: str, data: bytes) -> bool:
        path = join(self.home, name)

        def body(proc):
            fd = yield proc.sys.open(
                path, OpenFlags.O_WRONLY | OpenFlags.O_CREAT | OpenFlags.O_TRUNC
            )
            if isinstance(fd, int) and fd < 0:
                return False
            addr = proc.alloc_bytes(data)
            n = yield proc.sys.write(fd, addr, len(data))
            yield proc.sys.close(fd)
            return isinstance(n, int) and n == len(data)

        return bool(self._run_boxed(body))

    def read_file(self, path: str) -> bytes | None:
        def body(proc):
            fd = yield proc.sys.open(path, OpenFlags.O_RDONLY)
            if isinstance(fd, int) and fd < 0:
                return None
            out = bytearray()
            buf = proc.alloc(65536)
            while True:
                n = yield proc.sys.read(fd, buf, 65536)
                if not isinstance(n, int) or n <= 0:
                    break
                out.extend(proc.read_buffer(buf, n))
            yield proc.sys.close(fd)
            return bytes(out)

        return self._run_boxed(body)

    def grant(self, other_grid_identity: str) -> bool:
        """Share the workspace *by grid identity* — the box's superpower.

        The visitor holds the ``a`` right on its own home, so a boxed
        ``setacl`` succeeds with no administrator anywhere in sight.
        """
        home = self.home

        def body(proc):
            result = yield proc.sys.setacl(home, other_grid_identity, "rlx")
            return isinstance(result, int) and result == 0

        return bool(self._run_boxed(body))


class IdentityBoxMethod(MappingMethod):
    """Admit grid users into identity boxes under one shared supervisor."""

    name = "IdentityBox"
    requires_privilege = False

    def __init__(self, site: Site) -> None:
        super().__init__(site)
        # one unprivileged supervisor hosts every visitor
        self.supervisor = Supervisor(site.machine, site.operator)

    def admit(self, grid_identity: str) -> BoxSession:
        box = IdentityBox(
            self.site.machine,
            self.site.operator,
            grid_identity,
            supervisor=self.supervisor,
            boxes_root=BOXES_ROOT,
        )
        return BoxSession(
            site=self.site,
            grid_identity=grid_identity,
            cred=self.site.operator,
            home=box.home,
            method=self,
            box=box,
        )
