"""Private accounts with a gridmap file (Figure 1 row 3).

"One may create a distinct local account for every single user.  A table
called a 'gridmap' file is then needed to map from grid identities to
local accounts... it requires privileges to execute and requires a human
administrator to be involved for each new local account creation" (§2).
First demonstrated by I-WAY; still the canonical GSI deployment.
"""

from __future__ import annotations

from ...core.identity import mangle_for_path
from .base import MappingMethod, NeedsAdministrator, Site, SiteSession


class PrivateAccounts(MappingMethod):
    """Each grid user → their own local account, via a gridmap."""

    name = "Private"
    requires_privilege = True  # gateway setuid()s into mapped accounts

    def __init__(self, site: Site) -> None:
        super().__init__(site)
        #: the gridmap: grid identity -> local account name (root-managed)
        self.gridmap: dict[str, str] = {}
        self._seq = 0

    def admit(self, grid_identity: str) -> SiteSession:
        account_name = self.gridmap.get(grid_identity)
        if account_name is None:
            raise NeedsAdministrator(
                f"no gridmap entry for {grid_identity}; ask the administrator"
            )
        machine = self.site.machine
        cred = machine.users.credentials_for(account_name)
        home = machine.users.by_name(account_name).home
        return SiteSession(
            site=self.site,
            grid_identity=grid_identity,
            cred=cred,
            home=home,
            method=self,
        )

    def administer(self, grid_identity: str) -> None:
        """A human, as root: useradd + gridmap entry (one burden unit)."""
        root = self.site.admin_action(f"useradd for {grid_identity}")
        machine = self.site.machine
        self._seq += 1
        account_name = f"grid_u{self._seq}_{mangle_for_path(grid_identity)[:16]}"
        account = machine.users.create_account(root, account_name)
        root_task = machine.host_task(root)
        machine.kcall_x(root_task, "mkdir", account.home, 0o700)
        machine.kcall_x(root_task, "chown", account.home, account.uid, account.gid)
        machine.refresh_passwd_file()
        self.gridmap[grid_identity] = account_name
