"""Hierarchical user identities (Figure 6; the paper's future work).

The conclusion proposes that operating systems let *every* user create new
protection domains on the fly, with conflicts prevented by a hierarchical
namespace: the user ``root:dthain`` may create ``root:dthain:visitor``,
a web server ``root:httpd`` may create ``root:httpd:webapp``, and a grid
server may mint ``root:grid:/O=UnivNowhere/CN=Freddy`` children (§9).

Management follows ancestry: an identity may create, destroy, and signal
its descendants — the supervising user of an identity box is exactly the
parent in this tree.  This module implements that namespace so the
reproduction covers the paper's proposed extension, and so tests can check
the invariants the paper sketches (uniqueness, ancestor management,
unbounded unprivileged creation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

SEPARATOR = ":"
ROOT_NAME = "root"


class HierarchyError(ValueError):
    """An operation violated the identity tree's rules."""


@dataclass(frozen=True)
class HierarchicalIdentity:
    """A path in the identity tree, e.g. ``root:dthain:visitor``.

    Labels are free-form non-empty strings without the separator or
    whitespace; a grid label like ``/O=UnivNowhere/CN=Freddy`` is a single
    label (slashes are not separators here).
    """

    labels: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.labels:
            raise HierarchyError("identity needs at least one label")
        for label in self.labels:
            if not label or SEPARATOR in label or any(c.isspace() for c in label):
                raise HierarchyError(f"bad label {label!r}")

    @classmethod
    def parse(cls, text: str) -> "HierarchicalIdentity":
        return cls(tuple(text.split(SEPARATOR)))

    def __str__(self) -> str:
        return SEPARATOR.join(self.labels)

    @property
    def parent(self) -> "HierarchicalIdentity | None":
        if len(self.labels) == 1:
            return None
        return HierarchicalIdentity(self.labels[:-1])

    @property
    def depth(self) -> int:
        return len(self.labels)

    def child(self, label: str) -> "HierarchicalIdentity":
        return HierarchicalIdentity(self.labels + (label,))

    def is_ancestor_of(self, other: "HierarchicalIdentity") -> bool:
        """Strict ancestry: ``root:a`` is an ancestor of ``root:a:b``."""
        return (
            len(self.labels) < len(other.labels)
            and other.labels[: len(self.labels)] == self.labels
        )

    def may_manage(self, other: "HierarchicalIdentity") -> bool:
        """An identity manages itself and every descendant (§9)."""
        return self == other or self.is_ancestor_of(other)


@dataclass
class IdentityTree:
    """The registry of live identities on one (hypothetical future) system.

    Unlike the Unix account database, creation is unprivileged: any
    registered identity may mint children beneath itself, no superuser
    involved — the property the paper says traditional systems lack.
    """

    _nodes: dict[str, HierarchicalIdentity] = field(default_factory=dict)

    def __post_init__(self) -> None:
        root = HierarchicalIdentity((ROOT_NAME,))
        self._nodes[str(root)] = root

    @property
    def root(self) -> HierarchicalIdentity:
        return self._nodes[ROOT_NAME]

    def exists(self, identity: HierarchicalIdentity | str) -> bool:
        return str(identity) in self._nodes

    def get(self, text: str) -> HierarchicalIdentity:
        try:
            return self._nodes[text]
        except KeyError:
            raise HierarchyError(f"no such identity {text!r}") from None

    def create(
        self, actor: HierarchicalIdentity, parent: HierarchicalIdentity, label: str
    ) -> HierarchicalIdentity:
        """``actor`` creates a child under ``parent``.

        Allowed iff the actor manages the parent (is the parent or one of
        its ancestors) and the parent exists.  The child name is unique by
        construction — this is the hierarchy doing the work the DNS
        analogy promises.
        """
        if not self.exists(parent):
            raise HierarchyError(f"parent {parent} is not registered")
        if not actor.may_manage(parent):
            raise HierarchyError(f"{actor} may not create under {parent}")
        child = parent.child(label)
        if self.exists(child):
            raise HierarchyError(f"{child} already exists")
        self._nodes[str(child)] = child
        return child

    def destroy(self, actor: HierarchicalIdentity, target: HierarchicalIdentity) -> None:
        """Remove ``target`` and its whole subtree (actor must manage it,
        and nobody may destroy the root)."""
        if target == self.root:
            raise HierarchyError("the root identity is indestructible")
        if not self.exists(target):
            raise HierarchyError(f"{target} is not registered")
        if not actor.is_ancestor_of(target):
            raise HierarchyError(f"{actor} may not destroy {target}")
        doomed = [
            name
            for name, node in self._nodes.items()
            if node == target or target.is_ancestor_of(node)
        ]
        for name in doomed:
            del self._nodes[name]

    def may_signal(
        self, sender: HierarchicalIdentity, receiver: HierarchicalIdentity
    ) -> bool:
        """Signal rule generalizing the box's: same identity, or the sender
        is an ancestor (a supervisor is "root with respect to" its boxes)."""
        return sender == receiver or sender.is_ancestor_of(receiver)

    def children_of(self, parent: HierarchicalIdentity) -> list[HierarchicalIdentity]:
        return sorted(
            (
                node
                for node in self._nodes.values()
                if node.parent == parent
            ),
            key=str,
        )

    def __len__(self) -> int:
        return len(self._nodes)
