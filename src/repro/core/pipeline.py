"""The shared operation pipeline: one choke point for both entry surfaces.

Every guarded operation — a syscall trapped inside an identity box (§3,
Figure 4a) or a Chirp RPC from an authenticated principal (§4) — flows
through one :class:`Pipeline`: an ordered chain of interceptors ending at
the operation's registered handler.  The standard chain is

1. :class:`DenialCounter` — maps EACCES/EPERM into the surface's denial
   statistic (``Supervisor.denials``, ``ServerStats.denials``),
2. :class:`IdentityGate` — resolves *who* is acting (the box member's
   identity; the connection's principal, refusing unauthenticated calls),
3. :class:`AclFileGuard` — shields the per-directory ACL file, which is
   reachable only through getacl/setacl,
4. :class:`ReferenceMonitor` — the paper's ACL check, consulting the
   directory ACL for the letters each :class:`~repro.core.ops.PathArg`
   declares, with the mkdir/rmdir/hard-link special rules, feeding the
   audit log,
5. the handler, which only implements the action.

Cross-cutting features (caching, batching, tracing — see ROADMAP) insert
one interceptor here instead of patching ~40 handler methods.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from ..kernel.errno import Errno, KernelError, err
from ..kernel.timing import NS_PER_S
from ..kernel.vfs import basename
from .acl import ACL_FILE_NAME
from .aclfs import AclPolicy
from .audit import AuditLog
from .ops import (
    CACHEABLE_OPS,
    CHECK_ADMIN,
    CHECK_HARDLINK,
    CHECK_LETTERS,
    CHECK_MKDIR,
    CHECK_NONE,
    CHECK_RMDIR,
    GUARD_HIDE,
    GUARD_PROTECT,
    MUTATING_OPS,
    OpRegistry,
    OpSpec,
    PathArg,
    acl_dir_for,
    open_mutates,
)
from .telemetry import Telemetry, TracingInterceptor

#: Interceptor signature: ``(op, ctx, proceed) -> result``.  Call
#: ``proceed()`` to continue down the chain; raise to short-circuit.
Interceptor = Callable[["Operation", Any, Callable[[], Any]], Any]


@dataclass
class BoundPath:
    """One path argument after surface-specific resolution.

    ``full`` is the caller-visible absolute path (used for ACL-file
    guarding and messages); ``sub`` is the driver/policy-facing path
    (mount-relative for the supervisor, export-rooted for Chirp).
    """

    spec: PathArg
    raw: str
    full: str
    sub: str
    driver: Any = None
    check_acl: bool = True


@dataclass
class Operation:
    """One operation in flight, surface-agnostic."""

    name: str
    surface: str
    args: dict[str, Any] = field(default_factory=dict)
    identity: str | None = None
    cwd: str = "/"
    paths: list[BoundPath] = field(default_factory=list)
    scratch: dict[str, Any] = field(default_factory=dict)
    spec: OpSpec | None = None

    def path(self, index: int = 0) -> BoundPath:
        return self.paths[index]


class AuditSink:
    """Timestamped adapter from the pipeline to an :class:`AuditLog`.

    A ``None`` log makes every emit a no-op, so handlers and interceptors
    audit unconditionally.
    """

    def __init__(self, clock=None, log: AuditLog | None = None) -> None:
        self.clock = clock
        self.log = log

    def emit(
        self,
        identity: str | None,
        operation: str,
        target: str,
        allowed: bool,
        detail: str = "",
    ) -> None:
        if self.log is None:
            return
        self.log.record(
            self.clock.now_ns if self.clock is not None else 0,
            identity or "?",
            operation,
            target,
            allowed,
            detail,
        )


# ---------------------------------------------------------------------- #
# ACL-file shielding (the only module that knows how)
# ---------------------------------------------------------------------- #


def _protect_acl_file(full: str) -> None:
    """ACL files are only reachable through getacl/setacl."""
    if basename(full) == ACL_FILE_NAME:
        raise err(Errno.EACCES, "ACL files are managed via setacl")


def _hide_acl_file(full: str) -> None:
    """For read-only probes the ACL file simply does not exist."""
    if basename(full) == ACL_FILE_NAME:
        raise err(Errno.ENOENT, full)


# ---------------------------------------------------------------------- #
# the standard interceptors
# ---------------------------------------------------------------------- #


class DenialCounter:
    """Outermost: turn policy refusals into the surface's denial stat.

    Also keeps a per-errno breakdown (EACCES vs EPERM) so the denial
    statistic is inspectable without re-deriving it from telemetry;
    surfaced through :meth:`Pipeline.stats` and ``repro metrics``.
    """

    def __init__(self, on_denial: Callable[["Operation"], None] | None) -> None:
        self.on_denial = on_denial
        self.errnos: dict[str, int] = {}

    def snapshot(self) -> dict[str, int]:
        """A detached copy of the per-errno denial counts."""
        return dict(self.errnos)

    def __call__(self, op: Operation, ctx: Any, proceed: Callable[[], Any]) -> Any:
        try:
            return proceed()
        except KernelError as exc:
            if exc.errno in (Errno.EACCES, Errno.EPERM):
                name = exc.errno.name
                self.errnos[name] = self.errnos.get(name, 0) + 1
                if self.on_denial:
                    self.on_denial(op)
            raise


class IdentityGate:
    """Resolve the acting identity before any policy decision."""

    def __init__(
        self, resolve: Callable[["Operation", Any], str | None] | None
    ) -> None:
        self.resolve = resolve

    def __call__(self, op: Operation, ctx: Any, proceed: Callable[[], Any]) -> Any:
        if op.identity is None and self.resolve is not None:
            op.identity = self.resolve(op, ctx)
        return proceed()


@dataclass
class HealthStats:
    """Counters the circuit breaker surfaces in pipeline stats."""

    successes: int = 0
    failures: int = 0
    trips: int = 0
    rejected: int = 0


class CircuitBreaker:
    """Per-identity consecutive-failure circuit breaker.

    Grimlock-style graceful degradation: an identity whose operations
    fail ``threshold`` times in a row stops being serviced for
    ``cooldown_ns`` of simulated time — its calls are rejected with
    EAGAIN at the pipeline mouth, shielding the handlers (and the
    machine behind them) from a client stuck in a failure loop.  After
    the cooldown the circuit half-opens: the next operation runs, and
    its outcome closes or re-trips the breaker.
    """

    def __init__(
        self,
        clock=None,
        threshold: int = 8,
        cooldown_ns: int = NS_PER_S,
    ) -> None:
        self.clock = clock
        self.threshold = threshold
        self.cooldown_ns = cooldown_ns
        self.stats = HealthStats()
        self._consecutive: dict[str, int] = {}
        self._open_until: dict[str, int] = {}

    def _now(self) -> int:
        return self.clock.now_ns if self.clock is not None else 0

    def is_open(self, identity: str) -> bool:
        until = self._open_until.get(identity)
        return until is not None and self._now() < until

    def failure_count(self, identity: str) -> int:
        return self._consecutive.get(identity, 0)

    def snapshot(self) -> dict[str, Any]:
        """A detached copy: callers may mutate it without corrupting the breaker."""
        return {
            "successes": self.stats.successes,
            "failures": self.stats.failures,
            "trips": self.stats.trips,
            "rejected": self.stats.rejected,
            "open": sorted(i for i in self._open_until if self.is_open(i)),
        }

    def __call__(self, op: Operation, ctx: Any, proceed: Callable[[], Any]) -> Any:
        identity = op.identity or "<anonymous>"
        now = self._now()
        until = self._open_until.get(identity)
        if until is not None:
            if now < until:
                self.stats.rejected += 1
                raise err(
                    Errno.EAGAIN, f"circuit open for {identity}; degraded service"
                )
            # cooldown over: half-open, let this operation probe
            del self._open_until[identity]
            self._consecutive[identity] = 0
        try:
            result = proceed()
        except KernelError:
            self.stats.failures += 1
            count = self._consecutive.get(identity, 0) + 1
            self._consecutive[identity] = count
            if count >= self.threshold:
                self._open_until[identity] = now + self.cooldown_ns
                self._consecutive[identity] = 0
                self.stats.trips += 1
            raise
        self._consecutive[identity] = 0
        self.stats.successes += 1
        return result


def _paths_related(cached: str, mutated: str) -> bool:
    """Could a mutation at ``mutated`` change what a read at ``cached``
    observed?  Yes if either path contains the other: writing a child
    changes the parent directory's stat/readdir, and replacing a parent
    (rename, setacl on the governing dir) changes every verdict below."""
    return (
        cached == mutated
        or cached.startswith(mutated + "/")
        or mutated.startswith(cached + "/")
    )


class ReadCache:
    """Fast-lane memoization of read-only ops at the pipeline mouth.

    Threadbox-style repeated-decision caching: a hit on the key
    ``(identity, op, paths, args)`` returns the memoized handler result
    without walking the guard or the reference monitor again — the
    original decision was checked and audited; replaying it for the same
    principal on unchanged state is what makes per-boundary enforcement
    viable on a hot path.  Correctness rests on invalidation, not
    expiry:

    * every mutating op flowing through the same chain drops entries for
      each path it touches, its ancestors (a created child changes the
      parent's stat), and its descendants (a renamed or re-ACL'd
      directory changes every verdict below it) — ``setacl`` invalidates
      from the *governing* directory down;
    * descriptor writes (``pwrite``/``ftruncate``) invalidate via the
      ``op.scratch["fastlane_paths"]`` hint the surface stashes; a
      path-less mutation flushes everything;
    * invalidation runs even when the mutation fails, because a handler
      may have partially applied before raising;
    * a world-epoch change (``Machine.restore``) flushes everything —
      entries must never outlive the world they were read from;
    * errors are never cached, so ENOENT-then-create stays visible.

    Only successful results of ops in ``cacheable`` are stored, and only
    surfaces whose handlers are pure install the cache at all (the Chirp
    server does; the supervisor's handlers act on child process state).
    """

    def __init__(
        self,
        cacheable: frozenset[str] = CACHEABLE_OPS,
        *,
        capacity: int = 4096,
        telemetry: Telemetry | None = None,
        epoch_source: Callable[[], Any] | None = None,
    ) -> None:
        self.cacheable = cacheable
        self.capacity = capacity
        self.telemetry = telemetry
        self.epoch_source = epoch_source
        self._epoch = epoch_source() if epoch_source is not None else None
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> dict[str, int]:
        """Detached counters for :meth:`Pipeline.stats` and ``repro metrics``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "flushes": self.flushes,
            "entries": len(self._entries),
        }

    def _count(self, name: str, **labels: str) -> None:
        if self.telemetry is not None:
            self.telemetry.counter_inc(name, **labels)

    def _key(self, op: Operation) -> tuple | None:
        path_fields = {bound.spec.field for bound in op.paths}
        extras = tuple(
            sorted(
                (k, v)
                for k, v in op.args.items()
                if k not in path_fields
            )
        )
        key = (
            op.identity,
            op.name,
            tuple(bound.sub for bound in op.paths),
            extras,
        )
        try:
            hash(key)
        except TypeError:
            return None  # unhashable argument: bypass, never a wrong answer
        return key

    def _check_epoch(self) -> None:
        if self.epoch_source is None:
            return
        epoch = self.epoch_source()
        if epoch != self._epoch:
            # the world was restored out from under us: every entry
            # describes a state that no longer exists
            self._epoch = epoch
            if self._entries:
                self.invalidate_all()

    def invalidate_all(self) -> None:
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.invalidations += dropped
        self.flushes += 1
        self._count("fastlane.cache.flushes")

    def invalidate_paths(self, paths: list[str]) -> None:
        doomed = [
            key
            for key in self._entries
            if any(
                _paths_related(cached, mutated)
                for cached in key[2]
                for mutated in paths
            )
        ]
        for key in doomed:
            del self._entries[key]
        if doomed:
            self.invalidations += len(doomed)
            self._count("fastlane.cache.invalidations")

    def _invalidate_for(self, op: Operation) -> None:
        # setacl's verdict scope is the governing directory the monitor
        # resolved (a file's ACL lives in its parent): invalidate from
        # there down, not just the named path
        paths = [bound.sub for bound in op.paths]
        acl_dir = op.scratch.get("acl_dir")
        if acl_dir is not None:
            paths.append(acl_dir)
        hints = op.scratch.get("fastlane_paths")
        if hints is not None:
            if any(hint is None for hint in hints):
                self.invalidate_all()
                return
            paths.extend(hints)
        if not paths or op.name in ("exec", "spawn"):
            # a path-less mutation, or arbitrary code running as the
            # caller: nothing narrower than a flush is sound
            self.invalidate_all()
            return
        self.invalidate_paths(paths)

    def __call__(self, op: Operation, ctx: Any, proceed: Callable[[], Any]) -> Any:
        self._check_epoch()
        name = op.name
        if name in self.cacheable and op.paths:
            key = self._key(op)
            if key is not None:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self._count("fastlane.cache.hits", op=name)
                    value = self._entries[key]
                    return dict(value) if isinstance(value, dict) else value
                result = proceed()
                self.misses += 1
                self._count("fastlane.cache.misses", op=name)
                self._entries[key] = (
                    dict(result) if isinstance(result, dict) else result
                )
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                return result
            return proceed()
        if name in MUTATING_OPS and (name != "open" or open_mutates(op)):
            try:
                return proceed()
            finally:
                self._invalidate_for(op)
        return proceed()


@dataclass
class QuotaStats:
    """Counters the per-identity quota surfaces in pipeline stats."""

    admitted: int = 0
    rejected: int = 0


class IdentityQuota:
    """Per-identity op budget: a token bucket per principal at the mouth.

    Grimlock-style admission control.  PR 2's :class:`OverloadPolicy`
    sheds by *arrival* — one server-wide bucket, blind to who is asking —
    so a single hot principal can starve everyone.  This interceptor
    meters each identity separately: every op drains that principal's
    bucket, which refills at ``rate_per_s`` of simulated time up to
    ``burst``.  Past the budget the op is refused with EAGAIN *before*
    any guard or monitor work runs — the same transient-errno contract
    the shed and the circuit breaker use, so a retrying client backs
    off, the simulated clock advances, and the bucket refills.
    Pre-auth ops (``auth``) are exempt: an identity must be resolvable
    to be metered.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: int = 16,
        clock=None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.clock = clock
        self.telemetry = telemetry
        self.stats = QuotaStats()
        self._buckets: dict[str, tuple[float, int]] = {}

    def _now(self) -> int:
        return self.clock.now_ns if self.clock is not None else 0

    def tokens(self, identity: str) -> float:
        """Current balance (after refill), mainly for tests and metrics."""
        tokens, last_ns = self._buckets.get(identity, (float(self.burst), 0))
        elapsed = max(0, self._now() - last_ns)
        return min(float(self.burst), tokens + elapsed * self.rate_per_s / 1e9)

    def _admit(self, identity: str, now_ns: int) -> bool:
        tokens, last_ns = self._buckets.get(identity, (float(self.burst), now_ns))
        elapsed = max(0, now_ns - last_ns)
        tokens = min(float(self.burst), tokens + elapsed * self.rate_per_s / 1e9)
        if tokens >= 1.0:
            self._buckets[identity] = (tokens - 1.0, now_ns)
            return True
        self._buckets[identity] = (tokens, now_ns)
        return False

    def snapshot(self) -> dict[str, Any]:
        """A detached copy: admitted/rejected plus identities at zero."""
        return {
            "admitted": self.stats.admitted,
            "rejected": self.stats.rejected,
            "exhausted": sorted(
                identity
                for identity in self._buckets
                if self.tokens(identity) < 1.0
            ),
            "rate_per_s": self.rate_per_s,
            "burst": self.burst,
        }

    def __call__(self, op: Operation, ctx: Any, proceed: Callable[[], Any]) -> Any:
        if op.spec is not None and op.spec.pre_auth:
            return proceed()
        identity = op.identity or "<anonymous>"
        if not self._admit(identity, self._now()):
            self.stats.rejected += 1
            if self.telemetry is not None:
                self.telemetry.counter_inc(
                    "fastlane.quota.rejections", op=op.name
                )
            raise err(
                Errno.EAGAIN,
                f"per-identity quota exceeded for {identity}; retry later",
            )
        self.stats.admitted += 1
        return proceed()


class AclFileGuard:
    """Apply each path's declared ACL-file shielding mode."""

    def __call__(self, op: Operation, ctx: Any, proceed: Callable[[], Any]) -> Any:
        for bound in op.paths:
            if bound.spec.guard == GUARD_PROTECT:
                _protect_acl_file(bound.full)
            elif bound.spec.guard == GUARD_HIDE:
                _hide_acl_file(bound.full)
        return proceed()


class ReferenceMonitor:
    """The paper's ACL reference monitor, shared by both surfaces.

    Runs the check each :class:`PathArg` declares, audits the decision,
    and raises EACCES on refusal — the handler below never runs.  Paths
    whose driver enforces ACLs server-side (``check_acl`` false) are
    skipped, as are cross-driver pairs after the EXDEV refusal.
    """

    def __init__(self, policy: AclPolicy, audit: AuditSink) -> None:
        self.policy = policy
        self.audit = audit

    def __call__(self, op: Operation, ctx: Any, proceed: Callable[[], Any]) -> Any:
        if len(op.paths) == 2:
            first, second = op.paths
            if (
                first.driver is not None
                and second.driver is not None
                and first.driver is not second.driver
            ):
                raise err(Errno.EXDEV, f"{first.full} -> {second.full}")
        for bound in op.paths:
            if not bound.check_acl or bound.spec.check == CHECK_NONE:
                continue
            self._check_path(op, bound)
        return proceed()

    def _check_path(self, op: Operation, bound: BoundPath) -> None:
        spec = bound.spec
        if spec.check == CHECK_LETTERS:
            if spec.require_exists:
                # errno precedence matches the kernel: trouble resolving
                # the object (ENOENT, ENOTDIR, ELOOP) reports before ACLs
                self.policy.require_exists(bound.sub, cwd=op.cwd, follow=spec.follow)
            letters = spec.letters
            if callable(letters):
                letters = letters(op, bound, self.policy)
            if not letters:
                return
            decision = self.policy.check(
                op.identity,
                bound.sub,
                letters,
                cwd=op.cwd,
                follow=spec.follow,
                scope=spec.scope,
            )
            self.audit.emit(
                op.identity,
                f"check:{letters}",
                bound.sub,
                decision.allowed,
                decision.reason,
            )
            if not decision.allowed:
                raise err(
                    Errno.EACCES, f"{op.identity} lacks {letters!r} on {bound.sub}"
                )
        elif spec.check == CHECK_MKDIR:
            _res, new_acl = self.policy.plan_mkdir(op.identity, bound.sub, cwd=op.cwd)
            op.scratch["mkdir_acl"] = new_acl
        elif spec.check == CHECK_RMDIR:
            decision = self.policy.check_remove_dir(op.identity, bound.sub, cwd=op.cwd)
            self.audit.emit(
                op.identity, "check:rmdir", bound.sub, decision.allowed, decision.reason
            )
            if not decision.allowed:
                raise err(Errno.EACCES, f"{op.identity} may not rmdir {bound.sub}")
        elif spec.check == CHECK_HARDLINK:
            other = op.path(1)
            self.policy.check_hard_link(op.identity, bound.sub, other.sub, cwd=op.cwd)
            self.audit.emit(
                op.identity,
                "link",
                f"{bound.full} -> {other.full}",
                True,
                "hard-link-vetted",
            )
        elif spec.check == CHECK_ADMIN:
            acl_dir = acl_dir_for(bound.driver, bound.sub)
            self.policy.require_admin(op.identity, acl_dir)
            op.scratch["acl_dir"] = acl_dir
        else:  # pragma: no cover - registration-time programming error
            raise err(Errno.EINVAL, f"unknown check mode {spec.check!r}")


# ---------------------------------------------------------------------- #
# the pipeline proper
# ---------------------------------------------------------------------- #


class Pipeline:
    """An ordered interceptor chain in front of an operation registry."""

    def __init__(
        self,
        registry: OpRegistry,
        interceptors: list[Interceptor] | None = None,
        audit: AuditSink | None = None,
        health: CircuitBreaker | None = None,
        telemetry: Telemetry | None = None,
        denial_counter: DenialCounter | None = None,
        cache: ReadCache | None = None,
        quota: IdentityQuota | None = None,
    ) -> None:
        self.registry = registry
        self.interceptors: list[Interceptor] = list(interceptors or [])
        self.audit = audit or AuditSink()
        self.health = health
        self.telemetry = telemetry
        self.denial_counter = denial_counter
        self.cache = cache
        self.quota = quota

    def stats(self) -> dict[str, Any]:
        """Cross-cutting pipeline state: breaker health, denials, telemetry.

        Every value is a detached copy — callers may mutate the result
        (sort it, annotate it, json-dump it destructively) without
        corrupting the live breaker or the live histograms.
        """
        out: dict[str, Any] = {}
        if self.health is not None:
            out["health"] = self.health.snapshot()
        if self.denial_counter is not None:
            out["denials"] = self.denial_counter.snapshot()
        if self.cache is not None or self.quota is not None:
            fastlane: dict[str, Any] = {}
            if self.cache is not None:
                fastlane["cache"] = self.cache.snapshot()
            if self.quota is not None:
                fastlane["quota"] = self.quota.snapshot()
            out["fastlane"] = fastlane
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry.snapshot()
        return out

    def add_interceptor(self, interceptor: Interceptor, index: int | None = None) -> None:
        """Insert an interceptor (outermost by default, i.e. index 0)."""
        if index is None:
            index = 0
        self.interceptors.insert(index, interceptor)

    def run(self, op: Operation, ctx: Any) -> Any:
        """Send ``op`` down the chain to its handler; returns its result."""
        spec = self.registry.get(op.name)
        op.spec = spec
        chain = self.interceptors

        def call(depth: int) -> Any:
            if depth == len(chain):
                return spec.handler(op, ctx)
            return chain[depth](op, ctx, lambda: call(depth + 1))

        return call(0)


def build_pipeline(
    registry: OpRegistry,
    *,
    policy: AclPolicy,
    clock=None,
    audit_log: AuditLog | None = None,
    resolve_identity: Callable[[Operation, Any], str | None] | None = None,
    on_denial: Callable[[Operation], None] | None = None,
    health: CircuitBreaker | None = None,
    telemetry: Telemetry | None = None,
    cache: ReadCache | None = None,
    quota: IdentityQuota | None = None,
) -> Pipeline:
    """Compose the standard enforcement chain over ``registry``.

    A :class:`CircuitBreaker` passed as ``health`` slots in right after
    identity resolution, so it can meter per-identity failures before
    any policy work is done for a tripped identity.  A
    :class:`Telemetry` goes outermost: its span and latency histogram
    bracket the entire chain, rejections and denials included.

    The fast lane slots in around the breaker: an :class:`IdentityQuota`
    goes right after identity resolution (admission is decided before
    any work is spent on the op), and a :class:`ReadCache` goes just
    inside the breaker — a hit answers before the ACL-file guard and
    the reference monitor run, a mutating op invalidates on its way
    through.  Both inherit the pipeline's clock/telemetry unless they
    brought their own.
    """
    audit = AuditSink(clock, audit_log)
    denials = DenialCounter(on_denial)
    interceptors: list[Interceptor] = [
        denials,
        IdentityGate(resolve_identity),
    ]
    if quota is not None:
        if quota.clock is None:
            quota.clock = clock
        if quota.telemetry is None:
            quota.telemetry = telemetry
        interceptors.append(quota)
    if health is not None:
        interceptors.append(health)
    if cache is not None:
        if cache.telemetry is None:
            cache.telemetry = telemetry
        interceptors.append(cache)
    interceptors += [AclFileGuard(), ReferenceMonitor(policy, audit)]
    if telemetry is not None:
        interceptors.insert(0, TracingInterceptor(telemetry))
    return Pipeline(
        registry,
        interceptors=interceptors,
        audit=audit,
        health=health,
        telemetry=telemetry,
        denial_counter=denials,
        cache=cache,
        quota=quota,
    )
