"""The shared operation pipeline: one choke point for both entry surfaces.

Every guarded operation — a syscall trapped inside an identity box (§3,
Figure 4a) or a Chirp RPC from an authenticated principal (§4) — flows
through one :class:`Pipeline`: an ordered chain of interceptors ending at
the operation's registered handler.  The standard chain is

1. :class:`DenialCounter` — maps EACCES/EPERM into the surface's denial
   statistic (``Supervisor.denials``, ``ServerStats.denials``),
2. :class:`IdentityGate` — resolves *who* is acting (the box member's
   identity; the connection's principal, refusing unauthenticated calls),
3. :class:`AclFileGuard` — shields the per-directory ACL file, which is
   reachable only through getacl/setacl,
4. :class:`ReferenceMonitor` — the paper's ACL check, consulting the
   directory ACL for the letters each :class:`~repro.core.ops.PathArg`
   declares, with the mkdir/rmdir/hard-link special rules, feeding the
   audit log,
5. the handler, which only implements the action.

Cross-cutting features (caching, batching, tracing — see ROADMAP) insert
one interceptor here instead of patching ~40 handler methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..kernel.errno import Errno, KernelError, err
from ..kernel.timing import NS_PER_S
from ..kernel.vfs import basename
from .acl import ACL_FILE_NAME
from .aclfs import AclPolicy
from .audit import AuditLog
from .ops import (
    CHECK_ADMIN,
    CHECK_HARDLINK,
    CHECK_LETTERS,
    CHECK_MKDIR,
    CHECK_NONE,
    CHECK_RMDIR,
    GUARD_HIDE,
    GUARD_PROTECT,
    OpRegistry,
    OpSpec,
    PathArg,
    acl_dir_for,
)
from .telemetry import Telemetry, TracingInterceptor

#: Interceptor signature: ``(op, ctx, proceed) -> result``.  Call
#: ``proceed()`` to continue down the chain; raise to short-circuit.
Interceptor = Callable[["Operation", Any, Callable[[], Any]], Any]


@dataclass
class BoundPath:
    """One path argument after surface-specific resolution.

    ``full`` is the caller-visible absolute path (used for ACL-file
    guarding and messages); ``sub`` is the driver/policy-facing path
    (mount-relative for the supervisor, export-rooted for Chirp).
    """

    spec: PathArg
    raw: str
    full: str
    sub: str
    driver: Any = None
    check_acl: bool = True


@dataclass
class Operation:
    """One operation in flight, surface-agnostic."""

    name: str
    surface: str
    args: dict[str, Any] = field(default_factory=dict)
    identity: str | None = None
    cwd: str = "/"
    paths: list[BoundPath] = field(default_factory=list)
    scratch: dict[str, Any] = field(default_factory=dict)
    spec: OpSpec | None = None

    def path(self, index: int = 0) -> BoundPath:
        return self.paths[index]


class AuditSink:
    """Timestamped adapter from the pipeline to an :class:`AuditLog`.

    A ``None`` log makes every emit a no-op, so handlers and interceptors
    audit unconditionally.
    """

    def __init__(self, clock=None, log: AuditLog | None = None) -> None:
        self.clock = clock
        self.log = log

    def emit(
        self,
        identity: str | None,
        operation: str,
        target: str,
        allowed: bool,
        detail: str = "",
    ) -> None:
        if self.log is None:
            return
        self.log.record(
            self.clock.now_ns if self.clock is not None else 0,
            identity or "?",
            operation,
            target,
            allowed,
            detail,
        )


# ---------------------------------------------------------------------- #
# ACL-file shielding (the only module that knows how)
# ---------------------------------------------------------------------- #


def _protect_acl_file(full: str) -> None:
    """ACL files are only reachable through getacl/setacl."""
    if basename(full) == ACL_FILE_NAME:
        raise err(Errno.EACCES, "ACL files are managed via setacl")


def _hide_acl_file(full: str) -> None:
    """For read-only probes the ACL file simply does not exist."""
    if basename(full) == ACL_FILE_NAME:
        raise err(Errno.ENOENT, full)


# ---------------------------------------------------------------------- #
# the standard interceptors
# ---------------------------------------------------------------------- #


class DenialCounter:
    """Outermost: turn policy refusals into the surface's denial stat.

    Also keeps a per-errno breakdown (EACCES vs EPERM) so the denial
    statistic is inspectable without re-deriving it from telemetry;
    surfaced through :meth:`Pipeline.stats` and ``repro metrics``.
    """

    def __init__(self, on_denial: Callable[["Operation"], None] | None) -> None:
        self.on_denial = on_denial
        self.errnos: dict[str, int] = {}

    def snapshot(self) -> dict[str, int]:
        """A detached copy of the per-errno denial counts."""
        return dict(self.errnos)

    def __call__(self, op: Operation, ctx: Any, proceed: Callable[[], Any]) -> Any:
        try:
            return proceed()
        except KernelError as exc:
            if exc.errno in (Errno.EACCES, Errno.EPERM):
                name = exc.errno.name
                self.errnos[name] = self.errnos.get(name, 0) + 1
                if self.on_denial:
                    self.on_denial(op)
            raise


class IdentityGate:
    """Resolve the acting identity before any policy decision."""

    def __init__(
        self, resolve: Callable[["Operation", Any], str | None] | None
    ) -> None:
        self.resolve = resolve

    def __call__(self, op: Operation, ctx: Any, proceed: Callable[[], Any]) -> Any:
        if op.identity is None and self.resolve is not None:
            op.identity = self.resolve(op, ctx)
        return proceed()


@dataclass
class HealthStats:
    """Counters the circuit breaker surfaces in pipeline stats."""

    successes: int = 0
    failures: int = 0
    trips: int = 0
    rejected: int = 0


class CircuitBreaker:
    """Per-identity consecutive-failure circuit breaker.

    Grimlock-style graceful degradation: an identity whose operations
    fail ``threshold`` times in a row stops being serviced for
    ``cooldown_ns`` of simulated time — its calls are rejected with
    EAGAIN at the pipeline mouth, shielding the handlers (and the
    machine behind them) from a client stuck in a failure loop.  After
    the cooldown the circuit half-opens: the next operation runs, and
    its outcome closes or re-trips the breaker.
    """

    def __init__(
        self,
        clock=None,
        threshold: int = 8,
        cooldown_ns: int = NS_PER_S,
    ) -> None:
        self.clock = clock
        self.threshold = threshold
        self.cooldown_ns = cooldown_ns
        self.stats = HealthStats()
        self._consecutive: dict[str, int] = {}
        self._open_until: dict[str, int] = {}

    def _now(self) -> int:
        return self.clock.now_ns if self.clock is not None else 0

    def is_open(self, identity: str) -> bool:
        until = self._open_until.get(identity)
        return until is not None and self._now() < until

    def failure_count(self, identity: str) -> int:
        return self._consecutive.get(identity, 0)

    def snapshot(self) -> dict[str, Any]:
        """A detached copy: callers may mutate it without corrupting the breaker."""
        return {
            "successes": self.stats.successes,
            "failures": self.stats.failures,
            "trips": self.stats.trips,
            "rejected": self.stats.rejected,
            "open": sorted(i for i in self._open_until if self.is_open(i)),
        }

    def __call__(self, op: Operation, ctx: Any, proceed: Callable[[], Any]) -> Any:
        identity = op.identity or "<anonymous>"
        now = self._now()
        until = self._open_until.get(identity)
        if until is not None:
            if now < until:
                self.stats.rejected += 1
                raise err(
                    Errno.EAGAIN, f"circuit open for {identity}; degraded service"
                )
            # cooldown over: half-open, let this operation probe
            del self._open_until[identity]
            self._consecutive[identity] = 0
        try:
            result = proceed()
        except KernelError:
            self.stats.failures += 1
            count = self._consecutive.get(identity, 0) + 1
            self._consecutive[identity] = count
            if count >= self.threshold:
                self._open_until[identity] = now + self.cooldown_ns
                self._consecutive[identity] = 0
                self.stats.trips += 1
            raise
        self._consecutive[identity] = 0
        self.stats.successes += 1
        return result


class AclFileGuard:
    """Apply each path's declared ACL-file shielding mode."""

    def __call__(self, op: Operation, ctx: Any, proceed: Callable[[], Any]) -> Any:
        for bound in op.paths:
            if bound.spec.guard == GUARD_PROTECT:
                _protect_acl_file(bound.full)
            elif bound.spec.guard == GUARD_HIDE:
                _hide_acl_file(bound.full)
        return proceed()


class ReferenceMonitor:
    """The paper's ACL reference monitor, shared by both surfaces.

    Runs the check each :class:`PathArg` declares, audits the decision,
    and raises EACCES on refusal — the handler below never runs.  Paths
    whose driver enforces ACLs server-side (``check_acl`` false) are
    skipped, as are cross-driver pairs after the EXDEV refusal.
    """

    def __init__(self, policy: AclPolicy, audit: AuditSink) -> None:
        self.policy = policy
        self.audit = audit

    def __call__(self, op: Operation, ctx: Any, proceed: Callable[[], Any]) -> Any:
        if len(op.paths) == 2:
            first, second = op.paths
            if (
                first.driver is not None
                and second.driver is not None
                and first.driver is not second.driver
            ):
                raise err(Errno.EXDEV, f"{first.full} -> {second.full}")
        for bound in op.paths:
            if not bound.check_acl or bound.spec.check == CHECK_NONE:
                continue
            self._check_path(op, bound)
        return proceed()

    def _check_path(self, op: Operation, bound: BoundPath) -> None:
        spec = bound.spec
        if spec.check == CHECK_LETTERS:
            if spec.require_exists:
                # errno precedence matches the kernel: trouble resolving
                # the object (ENOENT, ENOTDIR, ELOOP) reports before ACLs
                self.policy.require_exists(bound.sub, cwd=op.cwd, follow=spec.follow)
            letters = spec.letters
            if callable(letters):
                letters = letters(op, bound, self.policy)
            if not letters:
                return
            decision = self.policy.check(
                op.identity,
                bound.sub,
                letters,
                cwd=op.cwd,
                follow=spec.follow,
                scope=spec.scope,
            )
            self.audit.emit(
                op.identity,
                f"check:{letters}",
                bound.sub,
                decision.allowed,
                decision.reason,
            )
            if not decision.allowed:
                raise err(
                    Errno.EACCES, f"{op.identity} lacks {letters!r} on {bound.sub}"
                )
        elif spec.check == CHECK_MKDIR:
            _res, new_acl = self.policy.plan_mkdir(op.identity, bound.sub, cwd=op.cwd)
            op.scratch["mkdir_acl"] = new_acl
        elif spec.check == CHECK_RMDIR:
            decision = self.policy.check_remove_dir(op.identity, bound.sub, cwd=op.cwd)
            self.audit.emit(
                op.identity, "check:rmdir", bound.sub, decision.allowed, decision.reason
            )
            if not decision.allowed:
                raise err(Errno.EACCES, f"{op.identity} may not rmdir {bound.sub}")
        elif spec.check == CHECK_HARDLINK:
            other = op.path(1)
            self.policy.check_hard_link(op.identity, bound.sub, other.sub, cwd=op.cwd)
            self.audit.emit(
                op.identity,
                "link",
                f"{bound.full} -> {other.full}",
                True,
                "hard-link-vetted",
            )
        elif spec.check == CHECK_ADMIN:
            acl_dir = acl_dir_for(bound.driver, bound.sub)
            self.policy.require_admin(op.identity, acl_dir)
            op.scratch["acl_dir"] = acl_dir
        else:  # pragma: no cover - registration-time programming error
            raise err(Errno.EINVAL, f"unknown check mode {spec.check!r}")


# ---------------------------------------------------------------------- #
# the pipeline proper
# ---------------------------------------------------------------------- #


class Pipeline:
    """An ordered interceptor chain in front of an operation registry."""

    def __init__(
        self,
        registry: OpRegistry,
        interceptors: list[Interceptor] | None = None,
        audit: AuditSink | None = None,
        health: CircuitBreaker | None = None,
        telemetry: Telemetry | None = None,
        denial_counter: DenialCounter | None = None,
    ) -> None:
        self.registry = registry
        self.interceptors: list[Interceptor] = list(interceptors or [])
        self.audit = audit or AuditSink()
        self.health = health
        self.telemetry = telemetry
        self.denial_counter = denial_counter

    def stats(self) -> dict[str, Any]:
        """Cross-cutting pipeline state: breaker health, denials, telemetry.

        Every value is a detached copy — callers may mutate the result
        (sort it, annotate it, json-dump it destructively) without
        corrupting the live breaker or the live histograms.
        """
        out: dict[str, Any] = {}
        if self.health is not None:
            out["health"] = self.health.snapshot()
        if self.denial_counter is not None:
            out["denials"] = self.denial_counter.snapshot()
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry.snapshot()
        return out

    def add_interceptor(self, interceptor: Interceptor, index: int | None = None) -> None:
        """Insert an interceptor (outermost by default, i.e. index 0)."""
        if index is None:
            index = 0
        self.interceptors.insert(index, interceptor)

    def run(self, op: Operation, ctx: Any) -> Any:
        """Send ``op`` down the chain to its handler; returns its result."""
        spec = self.registry.get(op.name)
        op.spec = spec
        chain = self.interceptors

        def call(depth: int) -> Any:
            if depth == len(chain):
                return spec.handler(op, ctx)
            return chain[depth](op, ctx, lambda: call(depth + 1))

        return call(0)


def build_pipeline(
    registry: OpRegistry,
    *,
    policy: AclPolicy,
    clock=None,
    audit_log: AuditLog | None = None,
    resolve_identity: Callable[[Operation, Any], str | None] | None = None,
    on_denial: Callable[[Operation], None] | None = None,
    health: CircuitBreaker | None = None,
    telemetry: Telemetry | None = None,
) -> Pipeline:
    """Compose the standard enforcement chain over ``registry``.

    A :class:`CircuitBreaker` passed as ``health`` slots in right after
    identity resolution, so it can meter per-identity failures before
    any policy work is done for a tripped identity.  A
    :class:`Telemetry` goes outermost: its span and latency histogram
    bracket the entire chain, rejections and denials included.
    """
    audit = AuditSink(clock, audit_log)
    denials = DenialCounter(on_denial)
    interceptors: list[Interceptor] = [
        denials,
        IdentityGate(resolve_identity),
    ]
    if health is not None:
        interceptors.append(health)
    interceptors += [AclFileGuard(), ReferenceMonitor(policy, audit)]
    if telemetry is not None:
        interceptors.insert(0, TracingInterceptor(telemetry))
    return Pipeline(
        registry,
        interceptors=interceptors,
        audit=audit,
        health=health,
        telemetry=telemetry,
        denial_counter=denials,
    )
