"""Access control lists: per-directory subject/rights tables.

An ACL is an ordered list of ``(subject, rights)`` entries stored in a file
named ``.__acl`` inside the directory it governs (§3; the paper prints the
name as ". acl").  Subjects are identity strings, possibly with wildcards::

    /O=UnivNowhere/CN=Fred  rwlax
    /O=UnivNowhere/*        rl

An identity's effective rights are the union over all matching entries —
Fred above holds ``rwlax`` (both lines match him).  The rights of an
identity nobody listed is empty, which is what denies the visiting user
access to the supervising user's files in Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .identity import identity_matches, validate_identity
from .rights import Rights, RightsError

#: Name of the per-directory ACL file.
ACL_FILE_NAME = ".__acl"


class AclError(ValueError):
    """An ACL file or entry is malformed."""


@dataclass(frozen=True)
class AclEntry:
    """One line of an ACL: a subject pattern and its rights."""

    subject: str
    rights: Rights

    def __post_init__(self) -> None:
        # Wildcard characters are legal in subjects; whitespace is not.
        if not self.subject or any(c.isspace() for c in self.subject):
            raise AclError(f"bad ACL subject {self.subject!r}")

    def matches(self, identity: str) -> bool:
        return identity_matches(self.subject, identity)

    def render(self) -> str:
        return f"{self.subject} {self.rights}"


@dataclass
class Acl:
    """An ordered collection of ACL entries."""

    entries: list[AclEntry] = field(default_factory=list)

    # -- evaluation ------------------------------------------------------ #

    def rights_for(self, identity: str) -> Rights:
        """Effective rights of ``identity``: union of matching entries."""
        validate_identity(identity)
        effective = Rights.none()
        for entry in self.entries:
            if entry.matches(identity):
                effective = effective | entry.rights
        return effective

    def allows(self, identity: str, letters: str) -> bool:
        """Does ``identity`` hold every right in ``letters`` here?"""
        return self.rights_for(identity).has_all(letters)

    def subjects(self) -> list[str]:
        return [entry.subject for entry in self.entries]

    # -- mutation ------------------------------------------------------ #

    def set_entry(self, subject: str, rights: Rights) -> None:
        """Add or replace the entry for ``subject``.

        Empty rights remove the entry — mirroring the Chirp ``setacl``
        convention where granting ``-`` deletes a subject.
        """
        self.entries = [e for e in self.entries if e.subject != subject]
        if not rights.is_empty:
            self.entries.append(AclEntry(subject=subject, rights=rights))

    def remove_entry(self, subject: str) -> None:
        self.set_entry(subject, Rights.none())

    # -- serialization ------------------------------------------------------ #

    def render(self) -> str:
        """Serialize to ``.__acl`` file text (one entry per line)."""
        return "".join(entry.render() + "\n" for entry in self.entries)

    @classmethod
    def parse(cls, text: str) -> "Acl":
        """Parse ``.__acl`` file text.

        Blank lines and ``#`` comments are tolerated (real config files
        accumulate them); a malformed line raises :class:`AclError` rather
        than being skipped — silently dropping an ACL line could widen or
        narrow access.
        """
        entries: list[AclEntry] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise AclError(f"line {lineno}: expected 'subject rights', got {raw!r}")
            subject, rights_text = parts
            try:
                rights = Rights.parse(rights_text)
            except RightsError as exc:
                raise AclError(f"line {lineno}: {exc}") from exc
            entries.append(AclEntry(subject=subject, rights=rights))
        return cls(entries=entries)

    @classmethod
    def for_owner(cls, identity: str) -> "Acl":
        """The fresh-home-directory ACL: full rights for one identity."""
        return cls(entries=[AclEntry(subject=identity, rights=Rights.full())])

    def copy(self) -> "Acl":
        """Independent copy (inheritance must not alias the parent's list)."""
        return Acl(entries=list(self.entries))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)
