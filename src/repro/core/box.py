"""The identity box: the paper's primary contribution, as a public API.

An identity box is "a secure execution space in which all processes and
resources are associated with an external identity that need not have any
relationship to the set of local accounts" (§3).  This module offers the
equivalent of the paper's ``parrot_identity_box <identity> <command>``:

    >>> box = IdentityBox(machine, owner_cred, "Freddy")
    >>> proc = box.spawn(my_program)
    >>> machine.run()

On creation the box arranges, exactly as §3 describes:

* a fresh home directory for the visitor, with an ACL granting the
  visiting identity ``rwlax`` there and nothing anywhere else,
* a private ``/etc/passwd`` copy whose top entry maps the supervising
  user's uid to the visiting identity (so ``whoami`` answers sensibly),
* supervision of the process and all its descendants under the
  interposition agent, which enforces ACLs, signal containment, and the
  ``get_user_name`` syscall.

Any user may create a box — no root, no account database, no
administrator.  The supervising user "is root with respect to users in
the identity box"; several boxes with different identities can share one
supervisor, which is how a server would host many visitors at once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..interpose.supervisor import Supervisor
from ..kernel.errno import Errno, KernelError
from ..kernel.vfs import join
from .acl import Acl
from .audit import AuditLog
from .identity import mangle_for_path, validate_identity
from .passwd import create_private_passwd

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.machine import Machine
    from ..kernel.process import Process, ProgramFactory
    from ..kernel.users import Credentials

#: Default parent directory for visitor home directories.
DEFAULT_BOXES_ROOT = "/tmp/boxes"


class IdentityBox:
    """One visiting identity hosted by one supervising user."""

    def __init__(
        self,
        machine: "Machine",
        owner_cred: "Credentials",
        identity: str,
        *,
        supervisor: Supervisor | None = None,
        boxes_root: str = DEFAULT_BOXES_ROOT,
        audit: AuditLog | None = None,
        make_home: bool = True,
    ) -> None:
        self.machine = machine
        self.identity = validate_identity(identity)
        self.supervisor = supervisor or Supervisor(
            machine, owner_cred, audit=audit
        )
        self.owner_task = self.supervisor.task
        self.home = ""
        self.passwd_path = ""
        self._boxes_root = boxes_root
        self._made_home = make_home
        if make_home:
            self._setup_home(boxes_root)

    def fork(self, machine: "Machine") -> "IdentityBox":
        """Re-host this box on a forked world.

        The forked world's filesystem already carries the home directory,
        ACL, and private passwd copy if they existed when the snapshot was
        taken, so re-running setup is cheap (``mkdir`` returns ``EEXIST``
        and the ACL is only rewritten for a genuinely new home).  The
        supervisor is forked alongside — fresh process table, counters,
        and trace lineage bound to the child world's epoch.
        """
        return IdentityBox(
            machine,
            machine.users.credentials_for(self.supervisor.owner_cred.username),
            self.identity,
            supervisor=self.supervisor.fork(machine),
            boxes_root=self._boxes_root,
            make_home=self._made_home,
        )

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #

    def _setup_home(self, boxes_root: str) -> None:
        """Fresh home directory + ACL + private passwd copy (§3)."""
        self._ensure_dir(boxes_root)
        self.home = join(boxes_root, mangle_for_path(self.identity))
        created = self._ensure_dir(self.home)
        if created:
            self.supervisor.policy.write_acl(self.home, Acl.for_owner(self.identity))
        self.passwd_path = join(self.home, ".passwd")
        create_private_passwd(
            self.machine, self.owner_task, self.identity, self.home, self.passwd_path
        )

    def _ensure_dir(self, path: str) -> bool:
        """mkdir -p one level; returns True if newly created."""
        try:
            self.machine.kcall_x(self.owner_task, "mkdir", path, 0o755)
            return True
        except KernelError as exc:
            if exc.errno is Errno.EEXIST:
                return False
            raise

    # ------------------------------------------------------------------ #
    # running programs inside the box
    # ------------------------------------------------------------------ #

    def spawn(
        self,
        program: "ProgramFactory | str",
        args: list[str] | None = None,
        *,
        cwd: str | None = None,
        comm: str | None = None,
    ) -> "Process":
        """Start a program inside the box (supervised, identity attached).

        ``program`` is either a program factory (a Python callable) or the
        path of an executable file, which the *supervising user* chooses to
        run — like the command argument of ``parrot_identity_box``.  The
        process and all processes it spawns carry :attr:`identity`.
        """
        if isinstance(program, str):
            content = self.machine.read_file(self.owner_task, program)
            factory = self.machine.parse_executable(content, program)
            label = program
        else:
            factory = program
            label = comm or getattr(program, "__name__", "boxed")
        proc = self.machine.spawn(
            factory,
            args or [],
            cred=self.supervisor.owner_cred,
            cwd=cwd or self.home or "/",
            tracer=self.supervisor,
            comm=comm or label,
        )
        self.supervisor.adopt(
            proc,
            identity=self.identity,
            home=self.home,
            passwd_redirect=self.passwd_path,
        )
        return proc

    def run(self, program: "ProgramFactory | str", args: list[str] | None = None) -> "Process":
        """Spawn and drive the machine until everything runnable finishes."""
        proc = self.spawn(program, args)
        self.machine.run()
        return proc

    # ------------------------------------------------------------------ #
    # convenience accessors
    # ------------------------------------------------------------------ #

    @property
    def policy(self):
        return self.supervisor.policy

    @property
    def audit(self) -> AuditLog | None:
        return self.supervisor.audit

    def grant(self, path: str, subject: str, rights_text: str) -> None:
        """Owner-level ACL edit (the supervising user needs no ``a`` right)."""
        from .rights import Rights

        acl = self.policy.acl_of(path)
        if acl is None:
            acl = Acl()
        acl.set_entry(subject, Rights.parse(rights_text))
        self.policy.write_acl(path, acl)


def identity_box_run(
    machine: "Machine",
    owner_cred: "Credentials",
    identity: str,
    program: "ProgramFactory | str",
    args: list[str] | None = None,
    *,
    audit: AuditLog | None = None,
) -> "Process":
    """One-shot equivalent of ``parrot_identity_box <identity> <command>``."""
    box = IdentityBox(machine, owner_cred, identity, audit=audit)
    return box.run(program, args)
