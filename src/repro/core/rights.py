"""Rights: the verbs of the paper's access-control lists.

An ACL entry grants a set of single-letter rights:

====  =========  ==================================================
 r    read       open a file for reading
 w    write      create, modify, or remove entries / file contents
 l    list       enumerate a directory, stat its entries
 x    execute    run a program (the Chirp ``exec`` check, §4)
 a    admin      modify the directory's ACL itself
 v    reserve    may ``mkdir`` here; the new directory receives a
                 *fresh* ACL granting the creator the parenthesized
                 rights — ``v(rwlax)`` — a variation on amplification
                 (§4, citing Jones & Wulf)
====  =========  ==================================================

Rights strings compose letters with at most one ``v(...)`` group, e.g.
``rl``, ``rwlax``, ``rlx v(rwlax)`` (the space form appears in the paper;
we accept both ``rlxv(rwlax)`` and the spaced variant when parsing a whole
ACL line).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Order in which rights letters are rendered.
RIGHT_LETTERS = "rwlxa"

READ, WRITE, LIST, EXECUTE, ADMIN, RESERVE = "r", "w", "l", "x", "a", "v"

_RIGHTS_RE = re.compile(r"^([rwlxa]*)(?:v\(([rwlxa]+)\))?([rwlxa]*)$")


class RightsError(ValueError):
    """A rights string is malformed."""


@dataclass(frozen=True)
class Rights:
    """An immutable set of rights, possibly including a reserve grant.

    ``flags`` holds the plain letters; ``reserve`` is ``None`` when the
    subject has no reserve right, else the letters the reserve grants to a
    freshly created directory (may be empty — ``v()`` is not allowed, but
    programmatic construction permits an empty grant set).
    """

    flags: frozenset[str] = frozenset()
    reserve: frozenset[str] | None = None

    def __post_init__(self) -> None:
        bad = set(self.flags) - set(RIGHT_LETTERS)
        if bad:
            raise RightsError(f"unknown rights letters: {sorted(bad)}")
        if self.reserve is not None:
            bad = set(self.reserve) - set(RIGHT_LETTERS)
            if bad:
                raise RightsError(f"unknown reserve letters: {sorted(bad)}")

    # -- construction ---------------------------------------------------- #

    @classmethod
    def parse(cls, text: str) -> "Rights":
        """Parse a rights token like ``rwlax`` or ``rlxv(rwlax)``.

        A bare ``-`` denotes no rights (handy for explicit deny-by-absence
        entries in examples).
        """
        token = text.strip().replace(" ", "")
        if token in ("", "-"):
            return cls()
        match = _RIGHTS_RE.match(token)
        if match is None:
            raise RightsError(f"bad rights string {text!r}")
        before, reserve, after = match.groups()
        flags = frozenset(before + after)
        return cls(
            flags=flags,
            reserve=frozenset(reserve) if reserve is not None else None,
        )

    @classmethod
    def of(cls, letters: str, reserve: str | None = None) -> "Rights":
        """Programmatic constructor: ``Rights.of("rwl", reserve="rwlax")``."""
        return cls(
            flags=frozenset(letters),
            reserve=frozenset(reserve) if reserve is not None else None,
        )

    #: The full non-reserve grant the paper gives a directory's owner.
    @classmethod
    def full(cls) -> "Rights":
        return cls.of(RIGHT_LETTERS)

    @classmethod
    def none(cls) -> "Rights":
        return cls()

    # -- queries ----------------------------------------------------------- #

    def has(self, letter: str) -> bool:
        """Does this set include right ``letter``? (``v`` checks reserve.)"""
        if letter == RESERVE:
            return self.reserve is not None
        if letter not in RIGHT_LETTERS:
            raise RightsError(f"unknown right {letter!r}")
        return letter in self.flags

    def has_all(self, letters: str) -> bool:
        return all(self.has(letter) for letter in letters)

    @property
    def is_empty(self) -> bool:
        return not self.flags and self.reserve is None

    def reserve_rights(self) -> "Rights":
        """The Rights a reserve-created directory grants its creator."""
        if self.reserve is None:
            raise RightsError("no reserve right held")
        return Rights(flags=self.reserve)

    # -- algebra ----------------------------------------------------------- #

    def union(self, other: "Rights") -> "Rights":
        """Combine two grants (multiple matching ACL entries accumulate).

        Reserve sets union as well; holding ``v(rl)`` from one entry and
        ``v(w)`` from another yields ``v(rlw)``.
        """
        if self.reserve is None and other.reserve is None:
            reserve = None
        else:
            reserve = (self.reserve or frozenset()) | (other.reserve or frozenset())
        return Rights(flags=self.flags | other.flags, reserve=reserve)

    def __or__(self, other: "Rights") -> "Rights":
        return self.union(other)

    # -- rendering ----------------------------------------------------------- #

    def __str__(self) -> str:
        letters = "".join(ch for ch in RIGHT_LETTERS if ch in self.flags)
        if self.reserve is not None:
            inner = "".join(ch for ch in RIGHT_LETTERS if ch in self.reserve)
            letters += f"v({inner})"
        return letters or "-"
