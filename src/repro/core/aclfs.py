"""ACL enforcement over the simulated filesystem.

This is the reference monitor an identity box consults before delegating
any filesystem action (§3).  The rules, straight from the paper:

* Access to an object is governed by the ``.__acl`` file of the directory
  *containing* it.
* If the object is a symbolic link, the ACL of the **target's** directory
  is examined instead ("Overlooking indirect paths", §6).
* Hard links cannot be permission-checked that way (no unique containing
  directory), so creating a hard link to a file the visitor cannot read is
  refused outright.
* A directory with no ACL falls back to Unix permissions **as the user
  nobody** — protecting the supervising user's pre-existing files.
* ``mkdir`` in a directory where the visitor holds ``w`` inherits the
  parent ACL; in a directory where the visitor holds only the reserve
  right ``v(...)``, the new directory receives a fresh ACL granting the
  parenthesized rights to the creator alone (§4).
* Changing an ACL requires the ``a`` right.

The policy object performs its reads and writes **as the supervising
user** through kernel calls, so every ACL consultation is charged to the
simulated clock like any other file access; a small cache keeps repeated
checks of hot directories from dominating (disable it to measure the
difference — ``bench_ablation_acl``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..kernel.errno import Errno, KernelError, err
from ..kernel.inode import access_allowed
from ..kernel.users import NOBODY_UID
from ..kernel.vfs import Resolution, join, normalize
from .acl import ACL_FILE_NAME, Acl, AclError
from .rights import Rights

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.machine import Machine
    from ..kernel.process import Task


@dataclass
class AccessDecision:
    """Outcome of one policy check (kept for audit records)."""

    allowed: bool
    identity: str
    path: str
    letters: str
    reason: str


class AclPolicy:
    """The identity box's reference monitor for one supervising user."""

    def __init__(
        self,
        machine: "Machine",
        owner_task: "Task",
        *,
        cache_enabled: bool = True,
    ) -> None:
        self.machine = machine
        self.owner_task = owner_task
        self.cache_enabled = cache_enabled
        self._cache: dict[str, Acl | None] = {}

    # ------------------------------------------------------------------ #
    # ACL file access (as the supervising user, charged to the clock)
    # ------------------------------------------------------------------ #

    def acl_of(self, dir_path: str) -> Acl | None:
        """The ACL governing ``dir_path``, or None if the directory has none.

        A *corrupt* ACL file fails closed: it parses to an empty ACL that
        denies everyone, rather than crashing the supervisor or — worse —
        falling back to the more permissive nobody check.
        """
        dir_path = normalize(dir_path)
        if self.cache_enabled and dir_path in self._cache:
            return self._cache[dir_path]
        acl: Acl | None
        try:
            text = self.machine.read_file(
                self.owner_task, join(dir_path, ACL_FILE_NAME)
            ).decode("utf-8", errors="replace")
            acl = Acl.parse(text)
        except KernelError as exc:
            if exc.errno is not Errno.ENOENT:
                raise
            acl = None
        except AclError:
            acl = Acl()  # present but malformed: deny-all
        if self.cache_enabled:
            self._cache[dir_path] = acl
        return acl

    def write_acl(self, dir_path: str, acl: Acl) -> None:
        """Store ``acl`` as the directory's ``.__acl`` file (owner-privileged)."""
        dir_path = normalize(dir_path)
        self.machine.write_file(
            self.owner_task, join(dir_path, ACL_FILE_NAME), acl.render().encode()
        )
        self.invalidate(dir_path)

    def invalidate(self, dir_path: str) -> None:
        self._cache.pop(normalize(dir_path), None)

    def invalidate_all(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------ #
    # rights evaluation
    # ------------------------------------------------------------------ #

    def exists(self, path: str, *, cwd: str = "/", follow: bool = True) -> bool:
        """Whether ``path`` resolves to an existing object (owner's view)."""
        try:
            return self._resolve(path, cwd, follow).exists
        except KernelError:
            return False

    def require_exists(
        self, path: str, *, cwd: str = "/", follow: bool = True
    ) -> Resolution:
        """Resolve ``path`` with kernel errno semantics: intermediate
        failures (ENOTDIR, ELOOP, missing directories) propagate as
        themselves; only a missing final component is ENOENT."""
        res = self._resolve(path, cwd, follow)
        res.require()
        return res

    def rights_in(self, identity: str, dir_path: str) -> Rights:
        """Visitor's rights within ``dir_path`` per its ACL (no fallback)."""
        acl = self.acl_of(dir_path)
        if acl is None:
            return Rights.none()
        return acl.rights_for(identity)

    def _resolve(self, path: str, cwd: str, follow: bool) -> Resolution:
        """Resolve as the supervising user (who implements every action)."""
        res = self.machine.vfs.resolve(
            path, self.owner_task.cred, cwd=cwd, follow=follow
        )
        self.machine.clock.advance(
            self.machine.costs.path_component_ns
            * (res.stats.components + res.stats.symlinks),
            "vfs",
        )
        return res

    def _unix_fallback(
        self,
        res: Resolution,
        letters: str,
        own_scope: bool,
        entry_mutation: bool = False,
    ) -> bool:
        """No ACL present: check Unix bits as the user ``nobody`` (§3).

        ``own_scope`` mirrors :meth:`_governing_dir`: when true the object
        being governed is the resolved directory itself, so its own mode
        bits are consulted; otherwise the containing directory's are.

        ``entry_mutation`` marks unlink/rmdir/rename of an *existing*
        entry.  Those get sticky-bit semantics: nobody may not remove or
        rename entries it does not own, even in a world-writable directory
        — otherwise a visitor could drag foreign directories (other boxes'
        homes!) into its own namespace through ``/tmp``.
        """
        if entry_mutation and "w" in letters:
            # nobody owns no inodes, so this denies every entry mutation in
            # un-ACL'd space, exactly like files in a real sticky /tmp
            return res.exists and res.inode.uid == NOBODY_UID
        want_on_target = 0  # bits checked on the resolved object
        want_on_parent = 0  # bits checked on the containing directory
        for letter in letters:
            if letter == "r":
                want_on_target |= 4
            elif letter == "x":
                want_on_target |= 1
            elif letter == "w":
                if own_scope:
                    want_on_target |= 2  # write *in* the target directory
                elif res.exists and res.inode.is_file:
                    want_on_target |= 2
                else:
                    want_on_parent |= 2  # create/remove an entry
            elif letter == "l":
                if own_scope:
                    want_on_target |= 4  # list the target directory itself
                else:
                    want_on_parent |= 4
            elif letter in ("a", "v"):
                return False  # nobody never administers or reserves
        if want_on_target:
            if not res.exists:
                return False
            if not access_allowed(res.inode, NOBODY_UID, NOBODY_UID, want_on_target):
                return False
        if want_on_parent:
            if not access_allowed(res.parent, NOBODY_UID, NOBODY_UID, want_on_parent):
                return False
        return True

    def check(
        self,
        identity: str,
        path: str,
        letters: str,
        *,
        cwd: str = "/",
        follow: bool = True,
        scope: str = "auto",
    ) -> AccessDecision:
        """Decide whether ``identity`` may perform ``letters`` on ``path``.

        The governing ACL is the one in the directory *containing* the
        object (§3); when the object is itself a directory and ``scope``
        is ``"auto"``, its own ACL governs (listing it, working in it).
        ``scope="parent"`` forces the containing directory even for
        directories — the right rule for unlink/rmdir/rename, which
        mutate the parent's namespace.

        Never raises on a policy denial; returns a decision the caller can
        turn into EACCES (and feed to the audit log).  Kernel-level
        resolution errors (ENOENT on an intermediate directory, ELOOP)
        propagate as :class:`KernelError` since the underlying syscall
        would fail anyway.
        """
        res = self._resolve(path, cwd, follow)
        governing = self._governing_dir(res, scope)
        own_scope = scope == "auto" and res.exists and res.inode.is_dir
        entry_mutation = scope == "parent" and res.exists
        acl = self.acl_of(governing)
        if acl is None:
            ok = self._unix_fallback(res, letters, own_scope, entry_mutation)
            return AccessDecision(
                allowed=ok,
                identity=identity,
                path=path,
                letters=letters,
                reason="unix-fallback-as-nobody",
            )
        rights = acl.rights_for(identity)
        ok = rights.has_all(letters)
        return AccessDecision(
            allowed=ok,
            identity=identity,
            path=path,
            letters=letters,
            reason=f"acl({governing})={rights}",
        )

    def check_remove_dir(
        self, identity: str, path: str, *, cwd: str = "/"
    ) -> AccessDecision:
        """Authorize ``rmdir``: write in the parent, *or* write in the
        directory's own ACL.

        The second arm covers the Figure-3 cleanup: a visitor who created
        a directory through the reserve right holds full rights inside it
        but nothing in the parent, yet must be able to remove what they
        created.
        """
        parent_decision = self.check(
            identity, path, "w", cwd=cwd, follow=False, scope="parent"
        )
        if parent_decision.allowed:
            return parent_decision
        own_decision = self.check(identity, path, "w", cwd=cwd, scope="auto")
        return own_decision if own_decision.allowed else parent_decision

    @staticmethod
    def _governing_dir(res: Resolution, scope: str) -> str:
        """Directory whose ACL governs this resolution (see :meth:`check`)."""
        if scope == "auto" and res.exists and res.inode.is_dir:
            if not res.name:
                return "/"
            return normalize(join(res.dir_path, res.name))
        return res.dir_path

    def require(
        self,
        identity: str,
        path: str,
        letters: str,
        *,
        cwd: str = "/",
        follow: bool = True,
        scope: str = "auto",
    ) -> AccessDecision:
        """Like :meth:`check` but raises EACCES when denied."""
        decision = self.check(
            identity, path, letters, cwd=cwd, follow=follow, scope=scope
        )
        if not decision.allowed:
            raise err(Errno.EACCES, f"{identity} lacks {letters!r} on {path}")
        return decision

    # ------------------------------------------------------------------ #
    # mkdir: inheritance and the reserve right
    # ------------------------------------------------------------------ #

    def plan_mkdir(
        self, identity: str, path: str, *, cwd: str = "/"
    ) -> tuple[Resolution, Acl]:
        """Authorize a mkdir and compute the new directory's ACL.

        Returns the resolution of the new path plus the ACL to install:
        a copy of the parent's ACL when the visitor holds ``w``, or a fresh
        reserve-amplified ACL when the visitor holds only ``v`` (§4).
        """
        res = self._resolve(path, cwd, follow=True)
        if res.exists:
            raise err(Errno.EEXIST, path)
        acl = self.acl_of(res.dir_path)
        if acl is None:
            if self._unix_fallback(res, "w", own_scope=False):
                # un-ACL'd world-writable directory (e.g. /tmp): the new
                # directory starts a fresh ACL domain owned by the creator
                return res, Acl.for_owner(identity)
            raise err(Errno.EACCES, f"{identity} cannot mkdir in {res.dir_path}")
        rights = acl.rights_for(identity)
        if rights.has("w"):
            return res, acl.copy()
        if rights.has("v"):
            return res, self._reserve_acl(identity, rights)
        raise err(Errno.EACCES, f"{identity} holds neither w nor v in {res.dir_path}")

    @staticmethod
    def _reserve_acl(identity: str, rights: Rights) -> Acl:
        fresh = Acl()
        fresh.set_entry(identity, rights.reserve_rights())
        return fresh

    def apply_mkdir(self, new_dir_path: str, acl: Acl) -> None:
        """Install the planned ACL after the directory has been created."""
        self.write_acl(new_dir_path, acl)

    # ------------------------------------------------------------------ #
    # ACL administration and hard links
    # ------------------------------------------------------------------ #

    def require_admin(self, identity: str, dir_path: str) -> None:
        """The ``a`` right gates ACL modification (§3)."""
        acl = self.acl_of(dir_path)
        if acl is None or not acl.rights_for(identity).has("a"):
            raise err(Errno.EACCES, f"{identity} lacks 'a' on {dir_path}")

    def check_hard_link(
        self, identity: str, oldpath: str, newpath: str, *, cwd: str = "/"
    ) -> None:
        """Refuse hard links the visitor could use to dodge ACL checks.

        A hard link is an alias governed by its *own* directory's ACL, so
        linking a file into a directory where the visitor holds broad
        rights would amplify whatever the visitor held on the target
        (read-only would become writable).  Safe rule: the visitor must
        already hold read *and write* on the target — aliasing then grants
        nothing they could not do by copying — plus write in the
        destination directory.
        """
        self.require(identity, oldpath, "rw", cwd=cwd, follow=False)
        dst = self._resolve(newpath, cwd, follow=False)
        if dst.exists:
            raise err(Errno.EEXIST, newpath)
        dst_acl = self.acl_of(dst.dir_path)
        if dst_acl is None:
            if not self._unix_fallback(dst, "w", own_scope=False):
                raise err(Errno.EACCES, f"{identity} cannot link into {dst.dir_path}")
            return
        if not dst_acl.rights_for(identity).has("w"):
            raise err(Errno.EACCES, f"{identity} lacks 'w' in {dst.dir_path}")
