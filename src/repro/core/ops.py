"""Declarative operation specifications shared by every entry surface.

The paper enforces *one* reference monitor across two front doors — trapped
syscalls inside an identity box (§3, Figure 4a) and Chirp RPCs named by the
authenticated principal (§4).  This module is the declarative half of that
unification: each operation is described once — its name, its handler, and
a :class:`PathArg` spec per path argument saying which rights letters it
needs, how symlinks and scope behave, and how the per-directory ACL file is
shielded.  The interceptor chain in :mod:`repro.core.pipeline` reads these
specs; neither surface re-implements a check.

``OP_PATH_SPECS`` is the single source of truth for per-operation policy:
the supervisor's syscall registry and the Chirp server's RPC registry both
draw their :class:`PathArg` tuples from it, so "open needs ``r`` or ``w``",
"unlink is a parent-scope write", "hard links are vetted, never merely
checked" are stated exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from ..kernel.errno import Errno, KernelError, err
from ..kernel.fdtable import OpenFlags
from ..kernel.syscalls import R_OK, W_OK, X_OK
from ..kernel.vfs import join
from .acl import ACL_FILE_NAME
from .rights import Rights, RightsError

if TYPE_CHECKING:  # pragma: no cover
    from .aclfs import AclPolicy
    from .pipeline import BoundPath, Operation


class _Required:
    """Sentinel marking an argument with no default."""

    def __repr__(self) -> str:  # pragma: no cover
        return "REQUIRED"


REQUIRED = _Required()

#: ACL-file guard modes (see :class:`repro.core.pipeline.AclFileGuard`).
GUARD_NONE = "none"
GUARD_PROTECT = "protect"  # mutating ops: EACCES, "managed via setacl"
GUARD_HIDE = "hide"  # read-only probes: the ACL file does not exist

#: Reference-monitor check modes (see ``ReferenceMonitor``).
CHECK_LETTERS = "letters"
CHECK_MKDIR = "mkdir"
CHECK_RMDIR = "rmdir"
CHECK_HARDLINK = "hardlink"
CHECK_ADMIN = "admin"
CHECK_NONE = "none"

#: Dynamic rights resolver: ``(op, path, policy) -> letters``.
LettersFn = Callable[["Operation", "BoundPath", "AclPolicy"], str]


@dataclass(frozen=True)
class PathArg:
    """Policy for one path-valued argument of an operation."""

    field: str
    letters: str | LettersFn | None = None
    follow: bool = True
    scope: str = "auto"
    guard: str = GUARD_NONE
    check: str = CHECK_LETTERS
    require_exists: bool = False
    passwd_redirect: bool = False
    default: str | None = None


@dataclass(frozen=True)
class OpSpec:
    """One registered operation: a handler plus its path policy."""

    name: str
    handler: Callable[["Operation", Any], Any]
    paths: tuple[PathArg, ...] = ()
    pre_auth: bool = False


class OpRegistry:
    """Name -> :class:`OpSpec`; registration is explicit and collision-free."""

    def __init__(self) -> None:
        self._ops: dict[str, OpSpec] = {}

    def register(self, spec: OpSpec) -> None:
        if spec.name in self._ops:
            raise ValueError(f"duplicate op {spec.name!r}")
        self._ops[spec.name] = spec

    def get(self, name: str) -> OpSpec:
        return self._ops[name]

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def names(self) -> list[str]:
        return sorted(self._ops)


# ---------------------------------------------------------------------- #
# dynamic rights resolvers
# ---------------------------------------------------------------------- #


def open_letters(op: "Operation", path: "BoundPath", policy: "AclPolicy") -> str:
    """``open`` needs r/w per the flags; creating needs write-in-directory."""
    flags = OpenFlags(int(op.args.get("flags", 0)))
    letters = ("r" if flags.readable else "") + ("w" if flags.writable else "")
    if flags & OpenFlags.O_CREAT and not policy.exists(path.sub):
        # creating: the governing check is write in the directory;
        # read-on-missing-file is meaningless
        letters = "w"
    return letters or "r"


def access_letters(op: "Operation", path: "BoundPath", policy: "AclPolicy") -> str:
    """``access`` maps a Unix mode mask (syscall surface) or an explicit
    letters string (Chirp surface) onto rights; F_OK needs no rights at
    all, only the existence probe the handler performs."""
    if "mode" in op.args:
        mode = int(op.args["mode"])
        letters = ""
        if mode & R_OK:
            letters += "r"
        if mode & W_OK:
            letters += "w"
        if mode & X_OK:
            letters += "x"
        return letters
    return str(op.args.get("letters", "l")) or "l"


# ---------------------------------------------------------------------- #
# fast-lane op classification (see repro.core.pipeline.ReadCache)
# ---------------------------------------------------------------------- #

#: Read-only operations whose results the fast lane may memoize.  The
#: contract is strict: the handler must be a pure function of (identity,
#: op, paths, args) and world state — true of the Chirp handlers for
#: these ops, which return plain payload dicts.  Syscall-surface handlers
#: deliver results by mutating child process state, so the supervisor
#: never installs the cache even though the interceptor is shared.
CACHEABLE_OPS = frozenset(
    {"stat", "lstat", "access", "getacl", "aclcheck", "readlink"}
)

#: Operations that (may) change namespace, content, or policy state.
#: Flowing through the pipeline, each one invalidates fast-lane cache
#: entries for the paths it touches (``open`` only when its flags can
#: create, truncate, or write).  ``pwrite``/``ftruncate`` act through a
#: descriptor: the surface stashes the descriptor's path in
#: ``op.scratch["fastlane_paths"]``, and a missing hint falls back to a
#: full flush.  ``exec`` runs arbitrary code as the caller, so it always
#: flushes everything.
MUTATING_OPS = frozenset(
    {
        "open",
        "pwrite",
        "ftruncate",
        "truncate",
        "mkdir",
        "rmdir",
        "unlink",
        "rename",
        "symlink",
        "link",
        "setacl",
        "exec",
        "spawn",
        "write",
    }
)


def open_mutates(op: "Operation") -> bool:
    """Does this ``open`` have any way to change state?  Read-only opens
    (no write mode, no O_CREAT, no O_TRUNC) leave the world untouched."""
    flags = OpenFlags(int(op.args.get("flags", 0)))
    return bool(
        flags.writable or flags & OpenFlags.O_CREAT or flags & OpenFlags.O_TRUNC
    )


# ---------------------------------------------------------------------- #
# the shared per-operation path policy (both surfaces draw from this)
# ---------------------------------------------------------------------- #

OP_PATH_SPECS: dict[str, tuple[PathArg, ...]] = {
    "open": (
        PathArg(
            "path", letters=open_letters, guard=GUARD_PROTECT, passwd_redirect=True
        ),
    ),
    "stat": (PathArg("path", "l", guard=GUARD_HIDE, passwd_redirect=True),),
    "lstat": (
        PathArg("path", "l", follow=False, guard=GUARD_HIDE, passwd_redirect=True),
    ),
    "access": (
        PathArg(
            "path", letters=access_letters, guard=GUARD_HIDE, passwd_redirect=True
        ),
    ),
    "readlink": (PathArg("path", "l", follow=False, guard=GUARD_HIDE),),
    "readdir": (PathArg("path", "l"),),
    "chdir": (PathArg("path", "l"),),
    "truncate": (PathArg("path", "w", guard=GUARD_PROTECT),),
    "mkdir": (PathArg("path", check=CHECK_MKDIR),),
    "rmdir": (PathArg("path", check=CHECK_RMDIR),),
    "unlink": (PathArg("path", "w", follow=False, scope="parent", guard=GUARD_PROTECT),),
    "rename": (
        PathArg(
            "oldpath",
            "w",
            follow=False,
            scope="parent",
            guard=GUARD_PROTECT,
            require_exists=True,
        ),
        PathArg("newpath", "w", follow=False, scope="parent", guard=GUARD_PROTECT),
    ),
    # Creating the link needs only write-in-directory; any later access
    # *through* it is checked against the target directory's ACL.
    "symlink": (PathArg("linkpath", "w", follow=False, guard=GUARD_PROTECT),),
    "link": (
        PathArg("oldpath", check=CHECK_HARDLINK, guard=GUARD_PROTECT),
        PathArg("newpath", check=CHECK_NONE, guard=GUARD_PROTECT),
    ),
    "getacl": (PathArg("path", "l"),),
    "setacl": (PathArg("path", check=CHECK_ADMIN),),
    "aclcheck": (PathArg("path", check=CHECK_NONE),),
    "spawn": (PathArg("path", "x"),),
    "exec": (PathArg("path", "x"), PathArg("cwd", "l", default="/")),
}


# ---------------------------------------------------------------------- #
# shared operation helpers (used by handlers on both surfaces)
# ---------------------------------------------------------------------- #


def acl_dir_for(fs, path: str) -> str:
    """The directory whose ACL governs ``path``: itself if a directory,
    else its parent."""
    st = fs.stat(path)
    if st.is_dir:
        return path
    head, _, _tail = path.rpartition("/")
    return head or "/"


def rmdir_clearing_acl(fs, path: str) -> None:
    """Remove a directory, clearing the ACL file the box itself planted.

    Attempt first so errno semantics (ENOTDIR, ENOENT, ...) match the
    kernel's exactly; the directory's own ACL file is the one obstacle the
    enforcement layer created, so it alone may be swept before retrying.
    """
    try:
        fs.rmdir(path)
    except KernelError as exc:
        if exc.errno is not Errno.ENOTEMPTY:
            raise
        if fs.readdir(path) != [ACL_FILE_NAME]:
            raise
        fs.unlink(join(path, ACL_FILE_NAME))
        fs.rmdir(path)


def rename_clearing_acl(fs, oldpath: str, newpath: str) -> None:
    """Rename, sweeping the ACL file out of a to-be-replaced directory.

    Outside a box, renaming a directory over an empty directory succeeds;
    inside one, every directory holds the ACL file the enforcement layer
    planted, so the kernel reports ENOTEMPTY.  As with
    :func:`rmdir_clearing_acl`, that one obstacle may be cleared before
    retrying; any other content keeps the kernel's refusal.
    """
    try:
        fs.rename(oldpath, newpath)
    except KernelError as exc:
        if exc.errno is not Errno.ENOTEMPTY:
            raise
        if fs.readdir(newpath) != [ACL_FILE_NAME]:
            raise
        fs.unlink(join(newpath, ACL_FILE_NAME))
        fs.rename(oldpath, newpath)


def apply_setacl(
    policy: "AclPolicy", acl_dir: str, subject: str, rights_text: str
) -> Rights:
    """Parse and install one ACL entry; the admin check already ran."""
    try:
        rights = Rights.parse(rights_text)
    except RightsError as exc:
        raise err(Errno.EINVAL, str(exc)) from exc
    acl = policy.acl_of(acl_dir)
    if acl is None:
        raise err(Errno.EACCES, f"{acl_dir} has no ACL to administer")
    acl.set_entry(subject, rights)
    policy.write_acl(acl_dir, acl)
    return rights
