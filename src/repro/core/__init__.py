"""The paper's contribution: identities, rights, ACLs, and the identity box."""

from .acl import ACL_FILE_NAME, Acl, AclEntry, AclError
from .aclfs import AccessDecision, AclPolicy
from .audit import AuditLog, AuditRecord
from .box import DEFAULT_BOXES_ROOT, IdentityBox, identity_box_run
from .identity import (
    IdentityError,
    KNOWN_METHODS,
    Principal,
    identity_matches,
    is_pattern,
    mangle_for_path,
    validate_identity,
)
from .ops import OP_PATH_SPECS, OpRegistry, OpSpec, PathArg
from .pipeline import (
    AclFileGuard,
    AuditSink,
    BoundPath,
    CircuitBreaker,
    DenialCounter,
    HealthStats,
    IdentityGate,
    Operation,
    Pipeline,
    ReferenceMonitor,
    build_pipeline,
)
from .passwd import (
    create_private_passwd,
    lookup_name_by_uid,
    passwd_entry_for,
    passwd_name_for,
)
from .rights import RIGHT_LETTERS, Rights, RightsError
from .telemetry import (
    Histogram,
    LatencyStats,
    Span,
    Telemetry,
    TracingInterceptor,
    format_trace_parent,
    instrument,
    parse_trace_parent,
)

__all__ = [
    "ACL_FILE_NAME",
    "AccessDecision",
    "Acl",
    "AclEntry",
    "AclError",
    "AclFileGuard",
    "AclPolicy",
    "AuditLog",
    "AuditRecord",
    "AuditSink",
    "BoundPath",
    "CircuitBreaker",
    "DEFAULT_BOXES_ROOT",
    "DenialCounter",
    "HealthStats",
    "Histogram",
    "IdentityBox",
    "IdentityError",
    "IdentityGate",
    "KNOWN_METHODS",
    "LatencyStats",
    "OP_PATH_SPECS",
    "OpRegistry",
    "OpSpec",
    "Operation",
    "PathArg",
    "Pipeline",
    "Principal",
    "RIGHT_LETTERS",
    "ReferenceMonitor",
    "Rights",
    "RightsError",
    "Span",
    "Telemetry",
    "TracingInterceptor",
    "build_pipeline",
    "create_private_passwd",
    "format_trace_parent",
    "identity_box_run",
    "identity_matches",
    "instrument",
    "is_pattern",
    "lookup_name_by_uid",
    "mangle_for_path",
    "parse_trace_parent",
    "passwd_entry_for",
    "passwd_name_for",
    "validate_identity",
]
