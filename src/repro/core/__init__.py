"""The paper's contribution: identities, rights, ACLs, and the identity box."""

from .acl import ACL_FILE_NAME, Acl, AclEntry, AclError
from .aclfs import AccessDecision, AclPolicy
from .audit import AuditLog, AuditRecord
from .box import DEFAULT_BOXES_ROOT, IdentityBox, identity_box_run
from .identity import (
    IdentityError,
    KNOWN_METHODS,
    Principal,
    identity_matches,
    is_pattern,
    mangle_for_path,
    validate_identity,
)
from .passwd import (
    create_private_passwd,
    lookup_name_by_uid,
    passwd_entry_for,
    passwd_name_for,
)
from .rights import RIGHT_LETTERS, Rights, RightsError

__all__ = [
    "ACL_FILE_NAME",
    "AccessDecision",
    "Acl",
    "AclEntry",
    "AclError",
    "AclPolicy",
    "AuditLog",
    "AuditRecord",
    "DEFAULT_BOXES_ROOT",
    "IdentityBox",
    "IdentityError",
    "KNOWN_METHODS",
    "Principal",
    "RIGHT_LETTERS",
    "Rights",
    "RightsError",
    "create_private_passwd",
    "identity_box_run",
    "identity_matches",
    "is_pattern",
    "lookup_name_by_uid",
    "mangle_for_path",
    "passwd_entry_for",
    "passwd_name_for",
    "validate_identity",
]
