"""Forensic audit log for identity boxes.

The paper's conclusion suggests the box "could be used for forensic
purposes, recording the objects accessed and the activities taken by the
untrusted user" (§9).  The supervisor feeds every policy decision and
privileged event through an :class:`AuditLog`; the
``examples/untrusted_program.py`` example shows the resulting record.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AuditRecord:
    """One audited event."""

    time_ns: int
    identity: str
    operation: str
    target: str
    allowed: bool
    detail: str = ""

    def render(self) -> str:
        verdict = "ALLOW" if self.allowed else "DENY "
        stamp = self.time_ns / 1_000_000_000
        return (
            f"[{stamp:12.6f}s] {verdict} {self.identity} "
            f"{self.operation}({self.target})"
            + (f" — {self.detail}" if self.detail else "")
        )


@dataclass
class AuditLog:
    """An append-only record of what each boxed identity did."""

    records: list[AuditRecord] = field(default_factory=list)
    enabled: bool = True

    def record(
        self,
        time_ns: int,
        identity: str,
        operation: str,
        target: str,
        allowed: bool,
        detail: str = "",
    ) -> None:
        if not self.enabled:
            return
        self.records.append(
            AuditRecord(
                time_ns=time_ns,
                identity=identity,
                operation=operation,
                target=target,
                allowed=allowed,
                detail=detail,
            )
        )

    # -- queries --------------------------------------------------------- #

    def for_identity(self, identity: str) -> list[AuditRecord]:
        return [r for r in self.records if r.identity == identity]

    def denials(self) -> list[AuditRecord]:
        return [r for r in self.records if not r.allowed]

    def objects_accessed(self, identity: str) -> list[str]:
        """Distinct targets an identity touched, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.for_identity(identity):
            if record.allowed:
                seen.setdefault(record.target)
        return list(seen)

    def render(self) -> str:
        return "\n".join(record.render() for record in self.records)

    def __len__(self) -> int:
        return len(self.records)
