"""Private /etc/passwd copies for identity boxes.

Figure 2 of the paper shows ``whoami`` inside a box reporting the visiting
identity.  The mechanism: the supervisor creates "a private copy of the
/etc/passwd file, adding an entry at the top corresponding to the visiting
identity, and then redirecting all accesses to /etc/passwd to that copy"
(§3).  The top entry carries the *supervising user's* uid, so uid-to-name
lookups made by tools running under that uid resolve to the visitor's
name.  Neither the real database nor the copy plays any role in access
control — this is "merely a convenience".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.machine import Machine
    from ..kernel.process import Task


def passwd_name_for(identity: str) -> str:
    """The identity as it appears in the passwd name field.

    passwd lines are colon-delimited, so colons in principal names
    (``globus:/O=...``) are replaced; the untouched identity is preserved
    in the GECOS field.
    """
    return identity.replace(":", "_")


def passwd_entry_for(identity: str, uid: int, gid: int, home: str) -> str:
    """Render the visiting identity's passwd line."""
    gecos = f"identity box for {identity.replace(':', ';')}"
    return f"{passwd_name_for(identity)}:x:{uid}:{gid}:{gecos}:{home}:/bin/sh"


def create_private_passwd(
    machine: "Machine",
    owner_task: "Task",
    identity: str,
    home: str,
    path: str,
) -> str:
    """Write the private passwd copy at ``path`` and return that path.

    The visitor's entry goes *at the top*, shadowing the supervising
    user's own entry for uid lookups (first match wins, as in glibc).
    """
    entry = passwd_entry_for(
        identity, owner_task.cred.uid, owner_task.cred.gid, home
    )
    base = machine.read_file(owner_task, "/etc/passwd").decode("utf-8")
    machine.write_file(owner_task, path, (entry + "\n" + base).encode("utf-8"))
    return path


def lookup_name_by_uid(passwd_text: str, uid: int) -> str | None:
    """First-match uid-to-name lookup over passwd text (what whoami does)."""
    for line in passwd_text.splitlines():
        parts = line.split(":")
        if len(parts) >= 3 and parts[2].isdigit() and int(parts[2]) == uid:
            return parts[0]
    return None
