"""The fuzzer's input: one scenario, and the mutations that explore it.

A :class:`Scenario` is everything that varies between two runs against
the same warm world template: the surface it drives (trapped syscalls or
Chirp RPCs), the visiting identity, an op script, extra ACL grants the
supervising owner applies before the run, and — on the Chirp surface — a
seeded :class:`~repro.net.faults.FaultPlan` schedule.

Scenarios are plain JSON values end to end.  That is what makes a
reproducer an artifact instead of a pickle: ``Scenario.from_json`` of a
scenario's ``to_json`` replays the identical run, and the canonical
encoding gives every scenario a stable content key.

The mutation kernel is a flat menu of small, composable edits.  The
engine applies one to three of them per child; depth comes from the
corpus (a retained parent already carries its history of edits), which
is exactly the advantage coverage guidance has over unguided sampling.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any

#: Paths a hostile boxed program might aim at: inside the box home,
#: outside it, traversal escapes, the ACL file, and symlink-loop bait.
SYSCALL_PATHS = [
    "mine.txt",
    "sub",
    "sub/deeper.txt",
    "../../../home/alice/secret",
    "/home/alice/secret",
    "/home/alice/public",
    "/home/alice",
    "/home/alice/shared",
    "/home/alice/shared/drop.txt",
    "/etc/passwd",
    "/etc",
    ".__acl",
    "/home/alice/.__acl",
    "/tmp/scratch",
    "loop-a",
    "loop-b",
    "/",
    "..",
]

#: Export-relative paths for the Chirp surface, same idea.
CHIRP_PATHS = [
    "/",
    "/data",
    "/data/a.txt",
    "/b.txt",
    "/.__acl",
    "/data/.__acl",
    "/../../../etc/passwd",
    "/deep",
    "/deep/nest",
    "/deep/nest/c.txt",
    "/nope/d.txt",
    "/sim.exe",
]

#: Identity strings to visit as.  All pass ``validate_identity`` (the
#: free-form rule: printable, non-empty, no whitespace) but stress the
#: mangling, ACL matching, and wildcard machinery in different ways.
SYSCALL_IDENTITIES = [
    "Fuzzer",
    "Anonymous429",
    "globus:/O=UnivNowhere/CN=Fred",
    "kerberos:fred@nowhere.edu",
    "hostname:laptop.cs.nowhere.edu",
    "Mr.Star*",
    "Quest?on",
    "Ünïcôdé-visitor",
    "dot.",
    "a" * 120,
    "with/slashes/inside",
    "%2e%2e",
]

#: Distinguished names for the Chirp surface (the globus method).
CHIRP_IDENTITIES = [
    "/O=UnivNowhere/CN=Fred",
    "/O=UnivNowhere/CN=Wilma",
    "/O=NotreDame/CN=Heidi",
    "/O=Evil/CN=Mallory",
    "/O=UnivNowhere/OU=*/CN=Any",
]

#: ACL subjects the owner might grant to (wildcards included).
ACL_SUBJECTS = [
    "Fuzzer",
    "*",
    "Fuzz*",
    "?uzzer",
    "globus:/O=UnivNowhere/*",
    "hostname:*.nowhere.edu",
    "nobody-in-particular",
]

#: Rights strings for those grants.
ACL_RIGHTS = ["r", "rl", "rwl", "rwla", "rwlax", "lx", "a"]

#: Fault rates a mutation may dial a kind to (0.0 removes the kind).
FAULT_RATES = [0.0, 0.1, 0.3, 0.6]
FAULT_KINDS = ["refuse", "drop", "drop_after", "spike", "truncate", "corrupt"]

#: Blackout windows (on the plan's op counter) a mutation may toggle:
#: the whole Chirp endpoint goes dark for the window, the scheduled-
#: shard-death fault the replication layer is built to survive.
BLACKOUT_WINDOWS = [[0, 6], [2, 8], [4, 12], [8, 20]]

#: Op menus per surface: (name, argument kinds).  ``path`` draws from the
#: surface's path pool, ``int:N`` draws 0..N-1, ``subject``/``rights``
#: draw from the ACL pools.
SYSCALL_OP_MENU: list[tuple[str, tuple[str, ...]]] = [
    ("open_write", ("path",)),
    ("open_read", ("path",)),
    ("unlink", ("path",)),
    ("mkdir", ("path",)),
    ("rmdir", ("path",)),
    ("rename", ("path", "path")),
    ("symlink", ("path", "path")),
    ("link", ("path", "path")),
    ("chmod", ("path",)),
    ("truncate", ("path",)),
    ("setacl", ("path",)),
    ("chdir", ("path",)),
    ("stat", ("path",)),
    ("readdir", ("path",)),
    ("kill", ("int:200",)),
    ("pipe", ()),
    ("thread", ()),
    ("dup_guess", ("int:1005",)),
    ("close_guess", ("int:1005",)),
    ("whoami", ()),
]

CHIRP_OP_MENU: list[tuple[str, tuple[str, ...]]] = [
    ("mkdir", ("path",)),
    ("put", ("path",)),
    ("get", ("path",)),
    ("open_read", ("path",)),
    ("stat", ("path",)),
    ("access", ("path",)),
    ("readdir", ("path",)),
    ("unlink", ("path",)),
    ("rename", ("path", "path")),
    ("symlink", ("path", "path")),
    ("truncate", ("path", "int:64")),
    ("setacl", ("path", "subject", "rights")),
    ("getacl", ("path",)),
    ("whoami", ()),
    ("put_exe", ("path",)),
    ("exec", ("path",)),
]


@dataclass
class Scenario:
    """One fuzzing input; plain data, canonically JSON-serializable."""

    surface: str = "syscall"
    identity: str = "Fuzzer"
    ops: list[list[Any]] = field(default_factory=list)
    #: extra ACL grants the *owner* applies before the run:
    #: ``[subject, rights]`` pairs on the surface's granted zone.
    grants: list[list[str]] = field(default_factory=list)
    #: Chirp-surface fault schedule: ``{"seed": int, "rates": {kind: rate},
    #: "restart_at_ops": [int, ...], "blackout_windows": [[start, end], ...]}``;
    #: empty means a perfect network.
    fault: dict[str, Any] = field(default_factory=dict)
    #: Chirp-surface fast-lane read cache: when true the server runs with
    #: a :class:`~repro.core.pipeline.ReadCache` installed, so mutations
    #: racing memoized reads become part of the searched space.
    cache: bool = False

    def to_json(self) -> dict[str, Any]:
        return {
            "surface": self.surface,
            "identity": self.identity,
            "ops": [list(op) for op in self.ops],
            "grants": [list(g) for g in self.grants],
            "fault": dict(self.fault),
            "cache": bool(self.cache),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "Scenario":
        return cls(
            surface=data["surface"],
            identity=data["identity"],
            ops=[list(op) for op in data.get("ops", [])],
            grants=[list(g) for g in data.get("grants", [])],
            fault=dict(data.get("fault", {})),
            cache=bool(data.get("cache", False)),
        )

    def clone(self) -> "Scenario":
        return Scenario.from_json(self.to_json())

    def key(self) -> str:
        """Stable content hash of the canonical encoding."""
        blob = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _pools(surface: str) -> tuple[list[str], list[str]]:
    if surface == "chirp":
        return CHIRP_PATHS, CHIRP_IDENTITIES
    return SYSCALL_PATHS, SYSCALL_IDENTITIES


def _menu(surface: str) -> list[tuple[str, tuple[str, ...]]]:
    return CHIRP_OP_MENU if surface == "chirp" else SYSCALL_OP_MENU


def _draw_arg(kind: str, surface: str, rng: random.Random) -> Any:
    paths, _identities = _pools(surface)
    if kind == "path":
        return rng.choice(paths)
    if kind == "subject":
        return rng.choice(ACL_SUBJECTS)
    if kind == "rights":
        return rng.choice(ACL_RIGHTS)
    if kind.startswith("int:"):
        return rng.randrange(int(kind.split(":", 1)[1]))
    raise ValueError(f"unknown arg kind {kind!r}")


def random_op(surface: str, rng: random.Random) -> list[Any]:
    name, arg_kinds = rng.choice(_menu(surface))
    return [name, *(_draw_arg(kind, surface, rng) for kind in arg_kinds)]


def seed_scenario(surface: str) -> Scenario:
    """The minimal starting point mutation grows from."""
    if surface == "chirp":
        return Scenario(
            surface="chirp",
            identity=CHIRP_IDENTITIES[0],
            ops=[["mkdir", "/data"], ["put", "/data/a.txt"]],
        )
    return Scenario(
        surface="syscall",
        identity=SYSCALL_IDENTITIES[0],
        ops=[["open_read", "/home/alice/secret"], ["open_write", "mine.txt"]],
    )


def _fault_with(scenario: Scenario, **overrides: Any) -> dict[str, Any]:
    """The canonical fault dict with one field replaced (others kept)."""
    fault = {
        "seed": scenario.fault.get("seed", 1),
        "rates": scenario.fault.get("rates", {}),
        "restart_at_ops": scenario.fault.get("restart_at_ops", []),
        "blackout_windows": scenario.fault.get("blackout_windows", []),
    }
    fault.update(overrides)
    return fault


def mutate_scenario(
    scenario: Scenario, rng: random.Random, *, max_ops: int = 12
) -> Scenario:
    """One random structural edit, in place; returns the scenario."""
    surface = scenario.surface
    paths, identities = _pools(surface)
    moves = ["append", "append", "append", "append", "remove", "duplicate",
             "swap", "tweak_arg", "tweak_arg", "identity", "grant", "ungrant"]
    if surface == "chirp":
        moves += ["fault_rate", "fault_seed", "fault_restart", "fault_blackout",
                  "toggle_cache"]
    move = rng.choice(moves)
    ops = scenario.ops
    if move == "append" and len(ops) < max_ops:
        ops.insert(rng.randrange(len(ops) + 1), random_op(surface, rng))
    elif move == "remove" and len(ops) > 1:
        ops.pop(rng.randrange(len(ops)))
    elif move == "duplicate" and ops and len(ops) < max_ops:
        index = rng.randrange(len(ops))
        ops.insert(index, list(ops[index]))
    elif move == "swap" and len(ops) >= 2:
        a, b = rng.randrange(len(ops)), rng.randrange(len(ops))
        ops[a], ops[b] = ops[b], ops[a]
    elif move == "tweak_arg" and ops:
        op = ops[rng.randrange(len(ops))]
        menu = dict(_menu(surface))
        kinds = menu.get(op[0], ())
        if kinds:
            slot = rng.randrange(len(kinds))
            op[1 + slot] = _draw_arg(kinds[slot], surface, rng)
    elif move == "identity":
        scenario.identity = rng.choice(identities)
    elif move == "grant" and len(scenario.grants) < 3:
        scenario.grants.append(
            [rng.choice(ACL_SUBJECTS), rng.choice(ACL_RIGHTS)]
        )
    elif move == "ungrant" and scenario.grants:
        scenario.grants.pop(rng.randrange(len(scenario.grants)))
    elif move == "fault_rate":
        rates = dict(scenario.fault.get("rates", {}))
        rates[rng.choice(FAULT_KINDS)] = rng.choice(FAULT_RATES)
        scenario.fault = _fault_with(
            scenario, rates={k: v for k, v in sorted(rates.items()) if v > 0}
        )
    elif move == "fault_seed":
        scenario.fault = _fault_with(scenario, seed=rng.randrange(64))
    elif move == "fault_restart":
        restarts = set(scenario.fault.get("restart_at_ops", []))
        point = 1 + rng.randrange(8)
        if point in restarts:
            restarts.discard(point)
        else:
            restarts.add(point)
        scenario.fault = _fault_with(scenario, restart_at_ops=sorted(restarts))
    elif move == "fault_blackout":
        windows = [list(w) for w in scenario.fault.get("blackout_windows", [])]
        window = list(rng.choice(BLACKOUT_WINDOWS))
        if window in windows:
            windows.remove(window)
        else:
            windows.append(window)
        scenario.fault = _fault_with(scenario, blackout_windows=sorted(windows))
    elif move == "toggle_cache":
        scenario.cache = not scenario.cache
    return scenario


def splice_scenarios(
    first: Scenario, second: Scenario, rng: random.Random, *, max_ops: int = 12
) -> Scenario:
    """Crossover: a prefix of one parent's script + a suffix of the other's."""
    child = first.clone()
    cut_a = rng.randrange(len(first.ops) + 1)
    cut_b = rng.randrange(len(second.ops) + 1)
    child.ops = [list(op) for op in first.ops[:cut_a]]
    child.ops += [list(op) for op in second.ops[cut_b:]]
    del child.ops[max_ops:]
    if not child.ops:
        child.ops = [list(op) for op in (first.ops or second.ops)[:1]]
    return child
