"""One fuzzing exec: fork a variant world, run a scenario, audit it.

Both executors follow the same shape.  A *template* world is cold-built
once and frozen with :meth:`~repro.kernel.machine.Machine.snapshot`;
every exec then boots ``Machine(snapshot=template)`` — an
O(size-of-diff) fork — attaches a fresh
:class:`~repro.core.telemetry.Telemetry`, runs the scenario, and reads
coverage off the counters.

The per-exec containment oracle is O(size-of-diff) too, and the CoW
substrate is what makes it sound: any inode a run modified *must* sit in
the forked map's top layer (:meth:`~repro.kernel.cow.CowMap.diff_keys`),
so auditing exactly those inodes against the template's recorded fields
inspects everything the run touched and nothing it didn't.  Fields
compared are the property-test set — type, mode, owner, link count,
content/symlink target, directory entries — with access times excluded
(world-readable files may legitimately be read).

Survivors (inputs the engine retains for new coverage) get the full
treatment via :meth:`check_survivor`: structural filesystem invariants,
the identity oracle (``whoami`` inside the box answers the visiting
identity), the rights oracle (the owner's private file stays unreadable),
and the transparency/determinism oracle (re-executing the scenario from
a fresh fork reproduces the transcript and coverage byte-identically).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.acl import Acl
from ..core.box import IdentityBox
from ..core.identity import IdentityError
from ..core.rights import Rights
from ..core.telemetry import Telemetry
from ..kernel.errno import KernelError
from ..kernel.fdtable import OpenFlags
from ..kernel.machine import Machine, WorldSnapshot
from ..kernel.signals import Signal
from .coverage import coverage_edges

#: The one directory scenario grants apply to on the syscall surface: a
#: zone the owner may legitimately open up, excluded from containment.
SHARED_DIR = "/home/alice/shared"

#: Extra accounts populating the syscall template: a realistically
#: multi-user host.  Cold boot pays to build them; a warm fork shares them.
WORLD_USERS = 16

SERVER_HOST = "server1.nowhere.edu"
CLIENT_HOST = "laptop.cs.nowhere.edu"


@dataclass
class ExecResult:
    """What one exec produced: feedback, evidence, and a verdict."""

    coverage: set[str] = field(default_factory=set)
    transcript: list[Any] = field(default_factory=list)
    verdict: str = "ok"
    #: inodes the run touched (the CoW diff size) — corpus bookkeeping
    touched: int = 0

    def transcript_sha(self) -> str:
        blob = json.dumps(self.transcript, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _normalize(value: Any) -> Any:
    """Make one op result JSON-able and stable across runs."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return value
    if isinstance(value, (bytes, bytearray)):
        return ["bytes", len(value), hashlib.sha256(bytes(value)).hexdigest()[:12]]
    if isinstance(value, (tuple, list)):
        return [_normalize(item) for item in value]
    return repr(value)


def _inode_fields(node) -> tuple:
    """The containment-relevant fields of one inode (atime excluded)."""
    return (
        node.ftype.value,
        node.mode,
        node.uid,
        node.nlink,
        bytes(node.data) if node.is_file else node.symlink_target,
        tuple(sorted(node.entries.items())) if node.is_dir else None,
    )


def _walk_base_fields(machine: Machine, excluded_prefixes: tuple[str, ...]) -> dict:
    """ino -> fields for every template inode *outside* the writable zone."""
    fs = machine.fs
    base: dict[int, tuple] = {}

    def walk(node, path):
        if any(
            path == prefix or path.startswith(prefix + "/")
            for prefix in excluded_prefixes
        ):
            return
        base[node.ino] = _inode_fields(node)
        if node.is_dir:
            for name in sorted(node.entries):
                child = fs.inode(node.entries[name])
                walk(child, f"{path.rstrip('/')}/{name}")

    walk(fs.root, "/")
    return base


class _TemplateExecutor:
    """Shared template/fork/oracle machinery for both surfaces."""

    surface = "?"
    #: subtrees a scenario may legitimately modify
    writable_zone: tuple[str, ...] = ("/tmp",)

    def __init__(self) -> None:
        self._snapshot: WorldSnapshot | None = None
        self._base_fields: dict[int, tuple] | None = None
        self._snapshot_id: str | None = None

    # -- template ------------------------------------------------------ #

    def _build_world(self) -> Machine:  # pragma: no cover - overridden
        raise NotImplementedError

    def template_snapshot(self) -> WorldSnapshot:
        if self._snapshot is None:
            machine = self._build_world()
            self._snapshot = machine.snapshot()
            self._base_fields = _walk_base_fields(machine, self.writable_zone)
            blob = json.dumps(
                [
                    [ino, repr(fields)]
                    for ino, fields in sorted(self._base_fields.items())
                ],
                sort_keys=True,
            )
            digest = hashlib.sha256(blob.encode()).hexdigest()[:16]
            self._snapshot_id = f"{self.surface}:{digest}"
        return self._snapshot

    @property
    def snapshot_id(self) -> str:
        """Content hash of the template world the corpus replays against."""
        self.template_snapshot()
        return self._snapshot_id or ""

    def fork_world(self, *, warm: bool = True) -> tuple[Machine, Telemetry]:
        """A variant world plus its private telemetry sink.

        ``warm=False`` cold-builds the template world from scratch instead
        of forking it — the baseline arm of the throughput benchmark.
        """
        snap = self.template_snapshot()
        telemetry = Telemetry(None)
        if warm:
            machine = Machine(snapshot=snap, telemetry=telemetry)
        else:
            machine = self._build_world()
            machine.telemetry = telemetry
        telemetry.clock = machine.clock
        return machine, telemetry

    # -- the O(diff) containment oracle -------------------------------- #

    def containment_verdict(self, machine: Machine) -> str:
        """'' when contained; otherwise what leaked, as a message."""
        assert self._base_fields is not None
        inodes = machine.fs._inodes
        for ino in sorted(inodes.diff_keys()):
            base = self._base_fields.get(ino)
            if base is None:
                # born after the fork, or inside the writable zone
                continue
            node = inodes.get(ino)
            if node is None:
                return f"protected inode {ino} was deleted"
            if _inode_fields(node) != base:
                return f"protected inode {ino} was modified"
        return ""

    def touched_count(self, machine: Machine) -> int:
        return len(machine.fs._inodes.diff_keys())


class SyscallExecutor(_TemplateExecutor):
    """Drive hostile op scripts through a boxed process (the §3 surface)."""

    surface = "syscall"
    writable_zone = ("/tmp", SHARED_DIR)

    def __init__(self, *, world_users: int = WORLD_USERS) -> None:
        super().__init__()
        self.world_users = world_users

    def _build_world(self) -> Machine:
        machine = Machine(hostname="fuzzhost")
        alice = machine.add_user("alice")
        task = machine.host_task(alice)
        machine.write_file(task, "/home/alice/secret", b"secret", mode=0o600)
        machine.write_file(task, "/home/alice/public", b"public", mode=0o644)
        machine.kcall_x(task, "mkdir", "/home/alice/keep", 0o755)
        machine.write_file(task, "/home/alice/keep/data", b"kept", mode=0o644)
        machine.kcall_x(task, "mkdir", SHARED_DIR, 0o755)
        for index in range(self.world_users):
            cred = machine.add_user(f"user{index:02d}")
            utask = machine.host_task(cred)
            home = machine.users.by_uid(cred.uid).home
            for j in range(3):
                machine.write_file(
                    utask, f"{home}/file{j}.dat", bytes([j]) * 64, mode=0o644
                )
        # pre-warm the visitor box homes: every identity the mutation pool
        # can visit as gets its home, ACL, and passwd copy created *once*,
        # in the template — per-exec box setup then reduces to the EEXIST
        # path.  (All under /tmp, the writable zone, so runs that mutate
        # them stay within containment.)
        from .scenario import SYSCALL_IDENTITIES

        for identity in SYSCALL_IDENTITIES:
            IdentityBox(machine, alice, identity)
        return machine

    def execute(self, scenario, *, warm: bool = True) -> ExecResult:
        machine, telemetry = self.fork_world(warm=warm)
        result = ExecResult()
        alice = machine.users.credentials_for("alice")
        try:
            box = IdentityBox(machine, alice, scenario.identity)
        except IdentityError as exc:
            # the front door rejected the identity string itself
            result.transcript.append(["identity-rejected", str(exc)])
            result.coverage = {"syscall|gate|identity|rejected"}
            return result
        for subject, rights in scenario.grants:
            try:
                box.grant(SHARED_DIR, subject, rights)
                result.transcript.append(["grant", subject, rights])
            except (ValueError, KernelError) as exc:
                result.transcript.append(["grant-rejected", subject, repr(exc)])
        box.spawn(
            self._script_body(scenario, result.transcript), comm="fuzz-scenario"
        )
        machine.run(max_steps=500_000)
        result.coverage = coverage_edges(telemetry)
        result.touched = self.touched_count(machine)
        leak = self.containment_verdict(machine)
        if leak:
            result.verdict = f"violation:containment:{leak}"
        return result

    def _script_body(self, scenario, transcript: list) -> Callable:
        script = [list(op) for op in scenario.ops]
        identity = scenario.identity

        def body(proc, args):
            fds: list[int] = []
            for step in script:
                op, rest = step[0], step[1:]
                if op == "open_write":
                    fd = yield proc.sys.open(
                        rest[0], OpenFlags.O_WRONLY | OpenFlags.O_CREAT
                    )
                    out = fd
                    if isinstance(fd, int) and fd >= 0:
                        addr = proc.alloc_bytes(b"overwrite!")
                        out = yield proc.sys.write(fd, addr, 10)
                        fds.append(fd)
                elif op == "open_read":
                    fd = yield proc.sys.open(rest[0], OpenFlags.O_RDONLY)
                    out = fd
                    if isinstance(fd, int) and fd >= 0:
                        buf = proc.alloc(64)
                        out = yield proc.sys.read(fd, buf, 64)
                        fds.append(fd)
                elif op == "rename":
                    out = yield proc.sys.rename(rest[0], rest[1])
                elif op == "symlink":
                    out = yield proc.sys.symlink(rest[0], rest[1])
                elif op == "link":
                    out = yield proc.sys.link(rest[0], rest[1])
                elif op == "chmod":
                    out = yield proc.sys.chmod(rest[0], 0o777)
                elif op == "truncate":
                    out = yield proc.sys.truncate(rest[0], 0)
                elif op == "setacl":
                    out = yield proc.sys.setacl(rest[0], identity, "rwlxa")
                elif op == "kill":
                    out = yield proc.sys.kill(rest[0], int(Signal.SIGKILL))
                elif op == "pipe":
                    out = yield proc.sys.pipe()
                    if isinstance(out, tuple):
                        rfd, wfd = out
                        addr = proc.alloc_bytes(b"pp")
                        yield proc.sys.write(wfd, addr, 2)
                        buf = proc.alloc(4)
                        yield proc.sys.read(rfd, buf, 4)
                        fds.extend((rfd, wfd))
                elif op == "thread":
                    def benign(tproc, targs):
                        yield tproc.compute(us=1)
                        return 0

                    out = yield proc.sys.thread(benign)
                    if isinstance(out, int) and out > 0:
                        yield proc.sys.waitpid()
                elif op == "dup_guess":
                    out = yield proc.sys.dup(rest[0])
                elif op == "close_guess":
                    out = yield proc.sys.close(rest[0])
                elif op == "whoami":
                    out = yield proc.sys.get_user_name()
                else:  # unary path ops: unlink/mkdir/rmdir/chdir/stat/readdir
                    out = yield getattr(proc.sys, op)(rest[0])
                transcript.append([op, _normalize(out)])
            for fd in fds:
                yield proc.sys.close(fd)
            return 0

        return body

    # -- survivor-grade oracles ---------------------------------------- #

    def check_survivor(self, scenario, result: ExecResult) -> str:
        """Full oracle pass over a retained input; '' when clean."""
        machine, _telemetry = self.fork_world()
        alice = machine.users.credentials_for("alice")
        try:
            box = IdentityBox(machine, alice, scenario.identity)
        except IdentityError:
            return ""
        probe: list[Any] = []

        def probe_body(proc, args):
            name = yield proc.sys.get_user_name()
            probe.append(name)
            denied = yield proc.sys.open("/home/alice/secret", OpenFlags.O_RDONLY)
            probe.append(denied)
            return 0

        box.spawn(probe_body, comm="oracle-probe")
        machine.run(max_steps=100_000)
        machine.fs.check_invariants()
        if probe[0] != scenario.identity:
            return f"violation:identity:whoami answered {probe[0]!r}"
        if not (isinstance(probe[1], int) and probe[1] < 0):
            return "violation:rights:owner's private file became readable"
        replay = self.execute(scenario)
        if replay.transcript != result.transcript:
            return "violation:transparency:replay transcript diverged"
        if replay.coverage != result.coverage:
            return "violation:transparency:replay coverage diverged"
        return ""


class ChirpExecutor(_TemplateExecutor):
    """Drive RPC scripts at a Chirp server under a fault schedule (§4)."""

    surface = "chirp"

    def __init__(self) -> None:
        super().__init__()
        from ..gsi import CertificateAuthority, CredentialStore

        self.ca = CertificateAuthority("Fuzz CA")
        self.trust = CredentialStore()
        self.trust.trust(self.ca)
        self._wallets: dict[str, Any] = {}
        self._export_root = ""

    def _wallet(self, dn: str):
        wallet = self._wallets.get(dn)
        if wallet is None:
            from ..gsi import provision_user

            wallet = provision_user(self.ca, self.trust, dn)
            self._wallets[dn] = wallet
        return wallet

    def _build_world(self) -> Machine:
        machine = Machine(hostname=SERVER_HOST)
        owner = machine.add_user("dthain")
        task = machine.host_task(owner)
        export = machine.users.by_uid(owner.uid).home + "/chirp"
        machine.kcall_x(task, "mkdir", export, 0o755)
        self._export_root = export
        self.writable_zone = ("/tmp", export)

        def sim(proc, _args):
            fd = yield proc.sys.open(
                "out.dat", OpenFlags.O_WRONLY | OpenFlags.O_CREAT
            )
            if isinstance(fd, int) and fd >= 0:
                addr = proc.alloc_bytes(b"simulated\n")
                yield proc.sys.write(fd, addr, 10)
                yield proc.sys.close(fd)
            return 0

        machine.register_program("sim", sim)
        return machine

    def execute(self, scenario, *, warm: bool = True) -> ExecResult:
        from ..chirp import (
            CHIRP_PORT,
            ChirpClient,
            ChirpError,
            ChirpServer,
            GlobusAuthenticator,
            RetryPolicy,
            ServerAuth,
        )
        from ..net import Blackout, FaultPlan
        from ..net.network import Network

        machine, telemetry = self.fork_world(warm=warm)
        result = ExecResult()
        owner = machine.users.credentials_for("dthain")
        network = Network(clock=machine.clock, costs=machine.costs)
        network.add_host(SERVER_HOST)
        network.add_host(CLIENT_HOST)
        read_cache = None
        if getattr(scenario, "cache", False):
            from ..core.pipeline import ReadCache

            read_cache = ReadCache()
        server = ChirpServer(
            machine,
            owner,
            network=network,
            auth=ServerAuth(credential_store=self.trust),
            read_cache=read_cache,
        )
        acl = Acl()
        acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("v(rwlax)"))
        acl.set_entry("globus:/O=NotreDame/*", Rights.parse("rl"))
        for subject, rights in scenario.grants:
            try:
                acl.set_entry(subject, Rights.parse(rights))
                result.transcript.append(["grant", subject, rights])
            except (ValueError, IdentityError) as exc:
                result.transcript.append(["grant-rejected", subject, repr(exc)])
        server.set_root_acl(acl)
        server.serve()

        fault = scenario.fault or {}
        rates = fault.get("rates", {})
        windows = fault.get("blackout_windows", [])
        plan = None
        if rates or fault.get("restart_at_ops") or windows:
            plan = FaultPlan(
                seed=int(fault.get("seed", 1)),
                refuse_rate=float(rates.get("refuse", 0.0)),
                drop_rate=float(rates.get("drop", 0.0)),
                drop_after_rate=float(rates.get("drop_after", 0.0)),
                spike_rate=float(rates.get("spike", 0.0)),
                truncate_rate=float(rates.get("truncate", 0.0)),
                corrupt_rate=float(rates.get("corrupt", 0.0)),
                restart_at_ops=tuple(fault.get("restart_at_ops", [])),
                blackouts=tuple(
                    Blackout(CHIRP_PORT, int(start), int(end))
                    for start, end in windows
                ),
                ports=(CHIRP_PORT,),
            ).bind_telemetry(telemetry)
            network.install_faults(plan)
        retry = RetryPolicy(
            max_attempts=10, seed=int(fault.get("seed", 1))
        ) if plan is not None else None

        try:
            client = ChirpClient.connect(
                network, CLIENT_HOST, SERVER_HOST, retry=retry
            )
            principal = client.authenticate(
                [GlobusAuthenticator(self._wallet(scenario.identity))]
            )
            result.transcript.append(["authenticated", principal])
        except (ChirpError, KernelError) as exc:
            result.transcript.append(["connect-failed", repr(exc)])
            result.coverage = coverage_edges(telemetry)
            result.touched = self.touched_count(machine)
            return result

        for step in scenario.ops:
            op, rest = step[0], step[1:]
            try:
                out = self._rpc(client, op, rest)
            except ChirpError as exc:
                out = ["chirp-error", exc.errno.name]
            except KernelError as exc:
                out = ["net-error", exc.errno.name]
            result.transcript.append([op, _normalize(out)])
        result.coverage = coverage_edges(telemetry)
        result.touched = self.touched_count(machine)
        leak = self.containment_verdict(machine)
        if leak:
            result.verdict = f"violation:containment:{leak}"
        return result

    def _rpc(self, client, op: str, rest: list) -> Any:
        if op == "put":
            return client.put(b"payload-bytes\n", rest[0])
        if op == "put_exe":
            return client.put(b"#!repro:sim\n", rest[0], mode=0o755)
        if op == "exec":
            return client.exec(rest[0], cwd="/")
        if op == "get":
            return client.get(rest[0])
        if op == "open_read":
            fd = client.open(rest[0], 0)
            client.close_fd(fd)
            return fd
        if op == "truncate":
            return client.truncate(rest[0], rest[1])
        if op == "setacl":
            return client.setacl(rest[0], rest[1], rest[2])
        if op == "rename":
            return client.rename(rest[0], rest[1])
        if op == "symlink":
            return client.symlink(rest[0], rest[1])
        if op == "whoami":
            return client.whoami()
        # unary ops: mkdir/stat/access/readdir/unlink/getacl
        return getattr(client, op)(rest[0])

    # -- survivor-grade oracles ---------------------------------------- #

    def check_survivor(self, scenario, result: ExecResult) -> str:
        machine, _telemetry = self.fork_world()
        machine.fs.check_invariants()
        replay = self.execute(scenario)
        if replay.transcript != result.transcript:
            return "violation:transparency:replay transcript diverged"
        if replay.coverage != result.coverage:
            return "violation:transparency:replay coverage diverged"
        return ""
