"""Coverage-guided scenario fuzzing of the identity-boxing boundary.

The paper's claim is *containment*: every syscall a boxed visitor issues
and every Chirp RPC an authenticated principal sends must land inside the
ACL/reserve-right rules, whatever the op sequence, identity string, or
failure schedule.  The property tests in ``tests/properties/`` sample
that boundary; this package *searches* it.

The pieces, each its own module:

* :mod:`~repro.fuzz.scenario` — the mutable input: an op script, an
  identity, ACL grants, and (for the Chirp surface) a fault schedule;
  JSON-serializable, canonical, hashable.
* :mod:`~repro.fuzz.coverage` — the feedback signal, read *off existing
  telemetry* with zero new hot-path instrumentation: the set of
  (surface × interceptor-stage × op × errno) edges a run touched, plus
  log-bucketed ``fault.<kind>`` counts.
* :mod:`~repro.fuzz.executor` — one exec: fork a variant world from a
  warm :meth:`~repro.kernel.machine.Machine.snapshot`, run the scenario
  against it, extract coverage, and audit containment in O(size-of-diff)
  using the CoW top layer as the list of touched inodes.
* :mod:`~repro.fuzz.engine` — the feedback loop: mutate retained corpus
  inputs, keep whatever reaches new coverage, re-check survivors against
  the full oracles, and shrink any violation to a minimal reproducer
  that replays byte-identically from ``(seed, snapshot id)``.

Everything is deterministic by construction: one seeded RNG drives the
engine, the simulated clock drives the worlds, and fault schedules carry
their own seeds — the same seed produces byte-identical corpus, coverage
map, and reproducers on every run.
"""

from .coverage import coverage_edges, stage_for_status
from .engine import FuzzConfig, FuzzEngine, replay_reproducer
from .executor import ChirpExecutor, ExecResult, SyscallExecutor
from .scenario import Scenario, mutate_scenario, seed_scenario, splice_scenarios

__all__ = [
    "ChirpExecutor",
    "ExecResult",
    "FuzzConfig",
    "FuzzEngine",
    "Scenario",
    "SyscallExecutor",
    "coverage_edges",
    "mutate_scenario",
    "replay_reproducer",
    "seed_scenario",
    "splice_scenarios",
    "stage_for_status",
]
