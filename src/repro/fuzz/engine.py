"""The feedback loop: mutate, execute, keep what reaches new coverage.

The engine is a classic coverage-guided loop specialized to world
forking.  Every execution forks a fresh variant world from the surface's
warm template snapshot, so inputs never interfere and a crashy scenario
costs nothing to the next one.  Retention is the whole trick: a child
that touches a new (stage × op × errno) edge joins the corpus, and
future children mutate *it* — depth compounds, which is exactly what the
unguided baseline (independent shallow samples, no retention) lacks.

Inputs that earn retention get the expensive oracles
(:meth:`~repro.fuzz.executor.SyscallExecutor.check_survivor`): structural
invariants, identity/rights probes, and byte-identical replay.  Any
violation — from the per-exec containment audit or the survivor pass —
is shrunk greedily (drop ops from the tail, drop grants, calm the fault
schedule) to a minimal scenario that still trips the same oracle, then
emitted as a machine-readable reproducer.  A reproducer carries the
engine seed, the template's content-addressed ``snapshot_id``, and the
scenario JSON; :func:`replay_reproducer` re-executes it and asserts the
same verdict, so a filed bug is a command, not a story.

Everything downstream of ``FuzzConfig.seed`` is deterministic: one
``random.Random`` drives mutation and scheduling, worlds run on the
simulated clock, and reports serialize with sorted keys — the same seed
yields byte-identical corpus, coverage map, and reproducers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .coverage import merge_edges
from .executor import ChirpExecutor, ExecResult, SyscallExecutor
from .scenario import (
    Scenario,
    mutate_scenario,
    seed_scenario,
    splice_scenarios,
)

#: Fraction of guided children bred by splicing two corpus parents.
SPLICE_RATE = 0.4

#: Guided parents come from the newest FRONTIER corpus entries: recent
#: retentions sit deepest in the explored space, so breeding from them
#: compounds depth instead of re-walking old shallow lineages.  Splice
#: partners may come from anywhere — a junction between two *distant*
#: lineages manufactures sequence windows neither lineage had.
FRONTIER = 8


@dataclass
class FuzzConfig:
    """Knobs for one fuzzing campaign."""

    seed: int = 0
    #: total executions across all surfaces
    budget: int = 500
    surfaces: tuple[str, ...] = ("syscall",)
    #: False runs the unguided baseline: independent shallow samples,
    #: no corpus, no splicing — the control arm for the coverage claim
    guided: bool = True
    max_ops: int = 32
    #: extra executions the shrinker may spend per violation
    shrink_budget: int = 48


@dataclass
class CorpusEntry:
    """One retained input and the evidence that earned its keep."""

    scenario: Scenario
    #: edges this input was first to reach
    new_edges: set[str]
    transcript_sha: str
    exec_index: int

    def to_json(self) -> dict:
        return {
            "key": self.scenario.key(),
            "scenario": self.scenario.to_json(),
            "new_edges": sorted(self.new_edges),
            "transcript_sha": self.transcript_sha,
            "exec_index": self.exec_index,
        }


def _make_executor(surface: str):
    if surface == "chirp":
        return ChirpExecutor()
    if surface == "syscall":
        return SyscallExecutor()
    raise ValueError(f"unknown fuzzing surface {surface!r}")


def _violation_class(verdict: str) -> str:
    """'violation:containment:<detail>' -> 'violation:containment'."""
    return ":".join(verdict.split(":")[:2])


@dataclass
class FuzzEngine:
    """One seeded campaign over one or more surfaces."""

    config: FuzzConfig
    executors: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.config.seed)
        for surface in self.config.surfaces:
            self.executors.setdefault(surface, _make_executor(surface))
        #: edge -> exec index that first reached it
        self.coverage: dict[str, int] = {}
        self.corpus: dict[str, list[CorpusEntry]] = {
            surface: [] for surface in self.config.surfaces
        }
        self.reproducers: list[dict] = []
        self.executions = 0

    # -- breeding ------------------------------------------------------ #

    def _next_scenario(self, surface: str) -> Scenario:
        entries = self.corpus[surface]
        if not self.config.guided or not entries:
            # unguided baseline (and the guided loop's bootstrap): a
            # shallow independent sample near the seed scenario
            child = seed_scenario(surface)
            for _ in range(1 + self.rng.randrange(3)):
                mutate_scenario(child, self.rng, max_ops=self.config.max_ops)
            return child
        frontier = entries[-FRONTIER:]
        if len(entries) >= 2 and self.rng.random() < SPLICE_RATE:
            first = self.rng.choice(frontier)
            second = self.rng.choice(entries)
            child = splice_scenarios(
                first.scenario,
                second.scenario,
                self.rng,
                max_ops=self.config.max_ops,
            )
        else:
            child = self.rng.choice(frontier).scenario.clone()
        for _ in range(1 + self.rng.randrange(3)):
            mutate_scenario(child, self.rng, max_ops=self.config.max_ops)
        return child

    # -- the loop ------------------------------------------------------ #

    def run(self) -> dict:
        surfaces = self.config.surfaces
        # bootstrap: the seed scenario itself is execution zero per surface
        pending: list[tuple[str, Scenario]] = [
            (surface, seed_scenario(surface)) for surface in surfaces
        ]
        while self.executions < self.config.budget:
            if pending:
                surface, scenario = pending.pop(0)
            else:
                surface = surfaces[self.executions % len(surfaces)]
                scenario = self._next_scenario(surface)
            self._execute_one(surface, scenario)
        return self.report()

    def _execute_one(self, surface: str, scenario: Scenario) -> ExecResult:
        executor = self.executors[surface]
        exec_index = self.executions
        self.executions += 1
        result = executor.execute(scenario)
        fresh = merge_edges(set(self.coverage), result.coverage)
        for edge in fresh:
            self.coverage[edge] = exec_index
        verdict = result.verdict
        if verdict == "ok" and self.config.guided and fresh:
            # retention earns the full oracle pass
            verdict = executor.check_survivor(scenario, result) or "ok"
            if verdict == "ok":
                self.corpus[surface].append(
                    CorpusEntry(
                        scenario=scenario,
                        new_edges=fresh,
                        transcript_sha=result.transcript_sha(),
                        exec_index=exec_index,
                    )
                )
        if verdict != "ok":
            self._file_violation(surface, scenario, verdict)
        return result

    # -- violations ---------------------------------------------------- #

    def _verdict_of(self, surface: str, scenario: Scenario) -> str:
        """Full-oracle verdict of one scenario (containment + survivor)."""
        executor = self.executors[surface]
        result = executor.execute(scenario)
        if result.verdict != "ok":
            return result.verdict
        return executor.check_survivor(scenario, result) or "ok"

    def _file_violation(
        self, surface: str, scenario: Scenario, verdict: str
    ) -> None:
        minimal, final_verdict = self._shrink(surface, scenario, verdict)
        executor = self.executors[surface]
        result = executor.execute(minimal)
        self.reproducers.append(
            {
                "seed": self.config.seed,
                "surface": surface,
                "snapshot_id": executor.snapshot_id,
                "scenario": minimal.to_json(),
                "verdict": final_verdict,
                "transcript_sha": result.transcript_sha(),
                "edges": sorted(result.coverage),
            }
        )

    def _shrink(
        self, surface: str, scenario: Scenario, verdict: str
    ) -> tuple[Scenario, str]:
        """Greedy minimization that preserves the violation class."""
        target = _violation_class(verdict)
        best = scenario.clone()
        trials = 0

        def still_fails(candidate: Scenario) -> str:
            nonlocal trials
            trials += 1
            got = self._verdict_of(surface, candidate)
            return got if _violation_class(got) == target else ""

        # ops, highest index first, so earlier removals don't shift later ones
        index = len(best.ops) - 1
        while index >= 0 and trials < self.config.shrink_budget:
            if len(best.ops) <= 1:
                break
            candidate = best.clone()
            candidate.ops.pop(index)
            got = still_fails(candidate)
            if got:
                best, verdict = candidate, got
            index -= 1
        # grants
        index = len(best.grants) - 1
        while index >= 0 and trials < self.config.shrink_budget:
            candidate = best.clone()
            candidate.grants.pop(index)
            got = still_fails(candidate)
            if got:
                best, verdict = candidate, got
            index -= 1
        # fault schedule: try a perfect network
        if best.fault and trials < self.config.shrink_budget:
            candidate = best.clone()
            candidate.fault = {}
            got = still_fails(candidate)
            if got:
                best, verdict = candidate, got
        return best, verdict

    # -- reporting ----------------------------------------------------- #

    def report(self) -> dict:
        return {
            "seed": self.config.seed,
            "budget": self.config.budget,
            "guided": self.config.guided,
            "surfaces": list(self.config.surfaces),
            "executions": self.executions,
            "snapshot_ids": {
                surface: self.executors[surface].snapshot_id
                for surface in self.config.surfaces
            },
            "edge_count": len(self.coverage),
            "coverage": {
                edge: self.coverage[edge] for edge in sorted(self.coverage)
            },
            "corpus": [
                entry.to_json()
                for surface in self.config.surfaces
                for entry in self.corpus[surface]
            ],
            "violations": len(self.reproducers),
            "reproducers": self.reproducers,
        }


def replay_reproducer(reproducer: dict, executor=None) -> dict:
    """Re-execute a reproducer; report whether the verdict still holds.

    The executor is rebuilt from scratch by default, so a replay checks
    the whole chain: template construction (pinned by ``snapshot_id``),
    scenario execution, and oracle verdict.
    """
    surface = reproducer["surface"]
    if executor is None:
        executor = _make_executor(surface)
    scenario = Scenario.from_json(reproducer["scenario"])
    snapshot_matches = executor.snapshot_id == reproducer["snapshot_id"]
    result = executor.execute(scenario)
    verdict = result.verdict
    if verdict == "ok":
        verdict = executor.check_survivor(scenario, result) or "ok"
    return {
        "snapshot_matches": snapshot_matches,
        "verdict": verdict,
        "verdict_matches": _violation_class(verdict)
        == _violation_class(reproducer["verdict"]),
        "transcript_sha": result.transcript_sha(),
        "transcript_matches": result.transcript_sha()
        == reproducer["transcript_sha"],
    }
