"""The coverage signal: behavioral edges read off existing telemetry.

No new instrumentation sits on the hot path.  The pipeline's
:class:`~repro.core.telemetry.TracingInterceptor` already counts every
operation's outcome as a ``pipeline.outcomes{surface,op,status}``
counter, and the fault layer mirrors every injected fault into a
``fault.<kind>`` counter (:meth:`~repro.net.faults.FaultPlan.bind_telemetry`).
This module just projects those counters into a set of *edge strings*:

* ``<surface>|<stage>|<op>|<status>|x<bucket>`` — which interceptor
  stage resolved which op with which errno, and *how hard* the run
  leaned on it (count, log2-bucketed).  The stage is recovered from the
  status post-hoc: the interceptor chain is fixed (identity gate →
  breaker → ACL guard → reference monitor → handler) and each stage owns
  its errnos, so no per-stage counters are needed.  The bucket makes
  repetition a behavior in its own right — one denied unlink and a
  hammering loop of them stress different machinery (caches, fd tables,
  the breaker) — without making every raw count a new edge.
* ``fault|<kind>|x<bucket>`` — a fault kind fired, count bucketed the
  same way: "one drop" and "a storm of drops" are different weathers.
* ``seq|…`` — consecutive pairs and triples in the span record
  (:attr:`Telemetry.spans` keeps every finished operation span in
  completion order).  Sequencing is where the stateful bugs live — an
  unlink *after* a successful open exercises different code than the
  same two ops reversed — and the n-gram spaces are quadratic/cubic in
  the op menu, so they stay long-tailed instead of saturating: reaching
  deep windows requires long, structured runs, which is precisely what
  corpus retention compounds and independent shallow sampling cannot.

Edges deliberately exclude the acting identity: identity strings are a
*mutation* dimension, and folding them into edges would reward the
fuzzer for trivially renaming itself instead of reaching new machinery.
"""

from __future__ import annotations

from typing import Iterable

#: Errnos owned by each fixed pipeline stage (everything else reaches the
#: handler).  EACCES/EPERM are the reference monitor's refusals (the ACL
#: file guard shares EACCES — same enforcement layer), EAGAIN is the
#: circuit breaker shedding, ENOSYS is the registry missing an op.
_STAGE_BY_STATUS = {
    "ok": "handler",
    "EACCES": "monitor",
    "EPERM": "monitor",
    "EAGAIN": "breaker",
    "ENOSYS": "registry",
}


def stage_for_status(status: str) -> str:
    """Which interceptor stage produced this outcome status."""
    return _STAGE_BY_STATUS.get(status, "handler")


def _log_bucket(count: int) -> int:
    """1,2 → 1; 3-4 → 2; 5-8 → 3 ... (log2 of the count, rounded up)."""
    return max(1, (count - 1).bit_length())


def coverage_edges(telemetry) -> set[str]:
    """Project one run's telemetry counters into its coverage-edge set."""
    edges: set[str] = set()
    for (name, label_key), count in telemetry.counters.items():
        if count <= 0:
            continue
        if name == "pipeline.outcomes":
            labels = dict(label_key)
            status = str(labels.get("status", "ok"))
            edges.add(
                "|".join(
                    (
                        str(labels.get("surface", "?")),
                        stage_for_status(status),
                        str(labels.get("op", "?")),
                        status,
                        f"x{_log_bucket(count)}",
                    )
                )
            )
        elif name.startswith("fault."):
            edges.add(f"fault|{name[len('fault.'):]}|x{_log_bucket(count)}")
        elif name.startswith("fastlane."):
            # the fast lane's cache hits/invalidations/flushes are genuine
            # behavioral states (a hit is a *skipped* monitor walk), so a
            # scenario that exercises them differently is new coverage
            edges.add(f"fastlane|{name[len('fastlane.'):]}|x{_log_bucket(count)}")
    steps = [
        f"{span.name}:{span.status}"
        for span in getattr(telemetry, "spans", ())
    ]
    for left, right in zip(steps, steps[1:]):
        edges.add(f"seq|{left}>{right}")
    for a, b, c in zip(steps, steps[1:], steps[2:]):
        edges.add(f"seq|{a}>{b}>{c}")
    return edges


def merge_edges(into: set[str], new: Iterable[str]) -> set[str]:
    """The genuinely new edges; ``into`` is updated in place."""
    fresh = {edge for edge in new if edge not in into}
    into.update(fresh)
    return fresh
