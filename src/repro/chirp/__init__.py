"""The Chirp distributed storage system with identity boxing (§4)."""

from .auth import (
    AuthenticationFailed,
    ClientAuthenticator,
    GlobusAuthenticator,
    HostnameAuthenticator,
    KerberosAuthenticator,
    ServerAuth,
    UnixAuthenticator,
)
from .catalog import (
    CATALOG_PORT,
    CatalogRecord,
    CatalogServer,
    DEFAULT_TTL_S,
    advertise,
    list_servers,
)
from .client import CHUNK, ChirpClient, ChirpSession
from .driver import ChirpDriver, ChirpHandle
from .protocol import CHIRP_PORT, ChirpError, StatPayload
from .server import ChirpServer, DEFAULT_EXPORT_ROOT, ServerStats

__all__ = [
    "AuthenticationFailed",
    "CATALOG_PORT",
    "CHIRP_PORT",
    "CHUNK",
    "CatalogRecord",
    "CatalogServer",
    "ChirpClient",
    "ChirpDriver",
    "ChirpError",
    "ChirpHandle",
    "ChirpServer",
    "ChirpSession",
    "ClientAuthenticator",
    "DEFAULT_EXPORT_ROOT",
    "DEFAULT_TTL_S",
    "GlobusAuthenticator",
    "HostnameAuthenticator",
    "KerberosAuthenticator",
    "ServerAuth",
    "ServerStats",
    "StatPayload",
    "UnixAuthenticator",
    "advertise",
    "list_servers",
]
