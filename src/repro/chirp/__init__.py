"""The Chirp distributed storage system with identity boxing (§4)."""

from .auth import (
    AuthenticationFailed,
    ClientAuthenticator,
    GlobusAuthenticator,
    HostnameAuthenticator,
    KerberosAuthenticator,
    ServerAuth,
    UnixAuthenticator,
)
from .catalog import (
    CATALOG_PORT,
    CatalogRecord,
    CatalogServer,
    DEFAULT_TTL_S,
    advertise,
    federation_members,
    list_servers,
    remove_server,
)
from .client import CHUNK, ChirpClient, ChirpSession, ClientStats
from .driver import ChirpDriver, ChirpHandle
from .federation import (
    DEFAULT_VNODES,
    FED_XFER_SUFFIX,
    FederatedClient,
    Federation,
    FederationStats,
    ShardInfo,
    ShardMap,
    deploy_federation,
    path_prefix,
    ring_hash,
)
from .protocol import CHIRP_PORT, ChirpError, StatPayload
from .retry import IDEMPOTENCY_KEYED_OPS, RetryPolicy, TRANSIENT_ERRNOS, is_transient
from .server import (
    ChirpServer,
    DEFAULT_EXPORT_ROOT,
    OverloadPolicy,
    ServerStats,
)

__all__ = [
    "AuthenticationFailed",
    "CATALOG_PORT",
    "CHIRP_PORT",
    "CHUNK",
    "CatalogRecord",
    "CatalogServer",
    "ChirpClient",
    "ChirpDriver",
    "ChirpError",
    "ChirpHandle",
    "ChirpServer",
    "ChirpSession",
    "ClientAuthenticator",
    "ClientStats",
    "DEFAULT_EXPORT_ROOT",
    "DEFAULT_TTL_S",
    "DEFAULT_VNODES",
    "FED_XFER_SUFFIX",
    "FederatedClient",
    "Federation",
    "FederationStats",
    "GlobusAuthenticator",
    "HostnameAuthenticator",
    "IDEMPOTENCY_KEYED_OPS",
    "KerberosAuthenticator",
    "OverloadPolicy",
    "RetryPolicy",
    "ServerAuth",
    "ServerStats",
    "ShardInfo",
    "ShardMap",
    "StatPayload",
    "TRANSIENT_ERRNOS",
    "UnixAuthenticator",
    "advertise",
    "deploy_federation",
    "federation_members",
    "is_transient",
    "list_servers",
    "path_prefix",
    "remove_server",
    "ring_hash",
]
