"""The Chirp distributed storage system with identity boxing (§4)."""

from .auth import (
    AuthenticationFailed,
    ClientAuthenticator,
    GlobusAuthenticator,
    HostnameAuthenticator,
    KerberosAuthenticator,
    ServerAuth,
    UnixAuthenticator,
)
from .catalog import (
    CATALOG_PORT,
    CatalogRecord,
    CatalogServer,
    DEFAULT_TTL_S,
    advertise,
    list_servers,
)
from .client import CHUNK, ChirpClient, ChirpSession, ClientStats
from .driver import ChirpDriver, ChirpHandle
from .protocol import CHIRP_PORT, ChirpError, StatPayload
from .retry import IDEMPOTENCY_KEYED_OPS, RetryPolicy, TRANSIENT_ERRNOS, is_transient
from .server import (
    ChirpServer,
    DEFAULT_EXPORT_ROOT,
    OverloadPolicy,
    ServerStats,
)

__all__ = [
    "AuthenticationFailed",
    "CATALOG_PORT",
    "CHIRP_PORT",
    "CHUNK",
    "CatalogRecord",
    "CatalogServer",
    "ChirpClient",
    "ChirpDriver",
    "ChirpError",
    "ChirpHandle",
    "ChirpServer",
    "ChirpSession",
    "ClientAuthenticator",
    "ClientStats",
    "DEFAULT_EXPORT_ROOT",
    "DEFAULT_TTL_S",
    "GlobusAuthenticator",
    "HostnameAuthenticator",
    "IDEMPOTENCY_KEYED_OPS",
    "KerberosAuthenticator",
    "OverloadPolicy",
    "RetryPolicy",
    "ServerAuth",
    "ServerStats",
    "StatPayload",
    "TRANSIENT_ERRNOS",
    "UnixAuthenticator",
    "advertise",
    "is_transient",
    "list_servers",
]
