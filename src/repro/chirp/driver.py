"""The Parrot driver for Chirp: ``/chirp/<server>/<path>`` (§4).

"Using Parrot, files on a Chirp server appear as ordinary files in the
path /chirp/server/path."  The supervisor mounts one of these at
``/chirp``; a boxed application's ``open("/chirp/server1/data")`` becomes
protocol traffic to ``server1``, authenticated as the *user's* grid
credentials.  ACLs are enforced server-side, so the driver sets
``requires_local_acl = False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..interpose.drivers import Driver
from ..kernel.errno import Errno, KernelError, err
from ..kernel.fdtable import OpenFlags
from ..kernel.inode import StatResult
from ..kernel.syscalls import SEEK_CUR, SEEK_END, SEEK_SET
from .client import ChirpClient
from .protocol import CHIRP_PORT, ChirpError, StatPayload

if TYPE_CHECKING:  # pragma: no cover
    from ..net.network import Network
    from .auth import ClientAuthenticator
    from .federation import FederatedClient
    from .retry import RetryPolicy


def _stat_result(payload: StatPayload) -> StatResult:
    """Adapt a wire stat to the kernel's StatResult shape.

    Remote inodes, uids, and modes are server-private (the virtual user
    space hides them); the fields applications actually consult — size,
    type, link count, mtime — are faithful.
    """
    import stat as stat_mod

    if payload.is_dir:
        mode = stat_mod.S_IFDIR | 0o755
    elif payload.is_symlink:
        mode = stat_mod.S_IFLNK | 0o777
    else:
        mode = stat_mod.S_IFREG | 0o644
    return StatResult(
        st_ino=0,
        st_mode=mode,
        st_nlink=payload.nlink,
        st_uid=0,
        st_gid=0,
        st_size=payload.size,
        st_atime_ns=payload.mtime_ns,
        st_mtime_ns=payload.mtime_ns,
        st_ctime_ns=payload.mtime_ns,
    )


def _wrap(call):
    """Translate ChirpError into the kernel's error convention."""

    def wrapped(*args, **kwargs):
        try:
            return call(*args, **kwargs)
        except ChirpError as exc:
            raise KernelError(exc.errno, str(exc)) from exc

    return wrapped


@dataclass
class ChirpHandle:
    """Driver-private open-file state (remote fd + local offset mirror).

    The handle remembers how it was opened: a remote descriptor dies with
    its connection, so after a transparent reconnect the driver reopens
    the same path (never re-truncating) and carries on at the same
    offset.
    """

    client: ChirpClient
    fd: int
    path: str = ""
    flags: int = 0
    mode: int = 0o644
    epoch: int = 0
    offset: int = 0


#: Flags that must not replay when a handle is re-established: reopening
#: after a reconnect must find the file as the application left it.
_REOPEN_CLEAR = OpenFlags.O_CREAT | OpenFlags.O_TRUNC | OpenFlags.O_EXCL


class ChirpDriver(Driver):
    """Routes ``/<server>/<path>`` to per-server authenticated clients."""

    requires_local_acl = False  # ACLs are enforced by the remote server
    name = "chirp"

    def __init__(
        self,
        network: "Network",
        client_host: str,
        authenticators: "list[ClientAuthenticator]",
        port: int = CHIRP_PORT,
        retry: "RetryPolicy | None" = None,
        federations: "dict[str, FederatedClient] | None" = None,
    ) -> None:
        self.network = network
        self.client_host = client_host
        self.authenticators = authenticators
        self.port = port
        self.retry = retry
        self._clients: dict[str, ChirpClient] = {}
        #: mounted federations: ``/chirp/<name>/path`` routes through the
        #: federation's shard map instead of naming one server
        self.federations: "dict[str, FederatedClient]" = dict(federations or {})

    # ------------------------------------------------------------------ #

    def mount_federation(self, name: str, federation: "FederatedClient") -> None:
        """Expose a sharded namespace as ``/chirp/<name>/...``."""
        self.federations[name] = federation

    def _split(self, sub: str) -> tuple[ChirpClient, str]:
        parts = [p for p in sub.split("/") if p]
        if not parts:
            raise err(Errno.ENOENT, "no server named in /chirp path")
        host, rest = parts[0], "/" + "/".join(parts[1:])
        federation = self.federations.get(host)
        if federation is not None:
            client, _shard = _wrap(federation.client_for)(rest)
            return client, rest
        return self._client(host), rest

    def _federated(self, path: str) -> "tuple[FederatedClient, str] | None":
        """The (federation, subpath) a /chirp path routes through, if any."""
        parts = [p for p in path.split("/") if p]
        if not parts:
            return None
        federation = self.federations.get(parts[0])
        if federation is None:
            return None
        return federation, "/" + "/".join(parts[1:])

    def _client(self, host: str) -> ChirpClient:
        client = self._clients.get(host)
        if client is None:
            client = ChirpClient.connect(
                self.network, self.client_host, host, self.port, retry=self.retry
            )
            _wrap(client.authenticate)(self.authenticators)
            self._clients[host] = client
        return client

    def disconnect_all(self) -> None:
        for client in self._clients.values():
            client.close()
        self._clients.clear()
        for federation in self.federations.values():
            federation.close()

    # ------------------------------------------------------------------ #
    # descriptor ops
    # ------------------------------------------------------------------ #

    def open(self, path: str, flags: int, mode: int) -> ChirpHandle:
        client, vpath = self._split(path)
        fd = _wrap(client.open)(vpath, flags, mode)
        return ChirpHandle(
            client=client,
            fd=fd,
            path=vpath,
            flags=int(flags),
            mode=mode,
            epoch=client.epoch,
        )

    def _stale(self, handle: ChirpHandle, exc: KernelError) -> bool:
        """Did this descriptor die with its connection (vs a real EBADF)?"""
        return (
            handle.client.retry is not None
            and exc.errno is Errno.EBADF
            and handle.client.epoch != handle.epoch
        )

    def _fd_call(self, handle: ChirpHandle, method: str, *args):
        """A descriptor op that survives reconnects by reopening."""
        try:
            return _wrap(getattr(handle.client, method))(handle.fd, *args)
        except KernelError as exc:
            if not self._stale(handle, exc):
                raise
            handle.fd = _wrap(handle.client.open)(
                handle.path, handle.flags & ~int(_REOPEN_CLEAR), handle.mode
            )
            handle.epoch = handle.client.epoch
            return _wrap(getattr(handle.client, method))(handle.fd, *args)

    def close(self, handle: ChirpHandle) -> None:
        try:
            _wrap(handle.client.close_fd)(handle.fd)
        except KernelError as exc:
            if not self._stale(handle, exc):
                raise  # the connection already reaped a stale descriptor

    def read(self, handle: ChirpHandle, length: int) -> bytes:
        data = self._fd_call(handle, "pread", length, handle.offset)
        handle.offset += len(data)
        return data

    def write(self, handle: ChirpHandle, data: bytes) -> int:
        n = self._fd_call(handle, "pwrite", data, handle.offset)
        handle.offset += n
        return n

    def pread(self, handle: ChirpHandle, length: int, offset: int) -> bytes:
        return self._fd_call(handle, "pread", length, offset)

    def pwrite(self, handle: ChirpHandle, data: bytes, offset: int) -> int:
        return self._fd_call(handle, "pwrite", data, offset)

    def lseek(self, handle: ChirpHandle, offset: int, whence: int) -> int:
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = handle.offset + offset
        elif whence == SEEK_END:
            new = self._fd_call(handle, "fstat").size + offset
        else:
            raise err(Errno.EINVAL, f"whence {whence}")
        if new < 0:
            raise err(Errno.EINVAL, "negative offset")
        handle.offset = new
        return new

    def ftruncate(self, handle: ChirpHandle, length: int) -> None:
        self._fd_call(handle, "ftruncate", length)

    def fstat(self, handle: ChirpHandle) -> StatResult:
        return _stat_result(self._fd_call(handle, "fstat"))

    # ------------------------------------------------------------------ #
    # path ops
    # ------------------------------------------------------------------ #

    def stat(self, path: str) -> StatResult:
        client, vpath = self._split(path)
        return _stat_result(_wrap(client.stat)(vpath))

    def lstat(self, path: str) -> StatResult:
        client, vpath = self._split(path)
        return _stat_result(_wrap(client.lstat)(vpath))

    def readlink(self, path: str) -> str:
        client, vpath = self._split(path)
        return _wrap(client.readlink)(vpath)

    def readdir(self, path: str) -> list[str]:
        routed = self._federated(path)
        if routed is not None:
            federation, vpath = routed
            # the federation unions the root listing across shards
            return _wrap(federation.readdir)(vpath)
        client, vpath = self._split(path)
        return _wrap(client.readdir)(vpath)

    def mkdir(self, path: str, mode: int) -> None:
        client, vpath = self._split(path)
        _wrap(client.mkdir)(vpath, mode)

    def rmdir(self, path: str) -> None:
        client, vpath = self._split(path)
        _wrap(client.rmdir)(vpath)

    def unlink(self, path: str) -> None:
        client, vpath = self._split(path)
        _wrap(client.unlink)(vpath)

    def rename(self, oldpath: str, newpath: str) -> None:
        routed_old = self._federated(oldpath)
        routed_new = self._federated(newpath)
        if routed_old is not None and routed_new is not None:
            fed_old, old_v = routed_old
            fed_new, new_v = routed_new
            if fed_old is not fed_new:
                raise err(Errno.EXDEV, "rename across federations")
            # same-shard renames delegate; cross-shard renames become the
            # federation's idempotent two-phase transfer
            _wrap(fed_old.rename)(old_v, new_v)
            return
        client, old_v = self._split(oldpath)
        client2, new_v = self._split(newpath)
        if client is not client2:
            raise err(Errno.EXDEV, "rename across Chirp servers")
        _wrap(client.rename)(old_v, new_v)

    def symlink(self, target: str, linkpath: str) -> None:
        client, link_v = self._split(linkpath)
        _wrap(client.symlink)(target, link_v)

    def link(self, oldpath: str, newpath: str) -> None:
        routed_old = self._federated(oldpath)
        routed_new = self._federated(newpath)
        if routed_old is not None and routed_new is not None:
            fed_old, old_v = routed_old
            fed_new, new_v = routed_new
            if fed_old is not fed_new:
                raise err(Errno.EXDEV, "link across federations")
            _wrap(fed_old.link)(old_v, new_v)
            return
        client, old_v = self._split(oldpath)
        client2, new_v = self._split(newpath)
        if client is not client2:
            raise err(Errno.EXDEV, "link across Chirp servers")
        _wrap(client.link)(old_v, new_v)

    def truncate(self, path: str, length: int) -> None:
        client, vpath = self._split(path)
        _wrap(client.truncate)(vpath, length)

    def getacl(self, path: str) -> str:
        client, vpath = self._split(path)
        return _wrap(client.getacl)(vpath)

    def setacl(self, path: str, subject: str, rights: str) -> None:
        client, vpath = self._split(path)
        _wrap(client.setacl)(vpath, subject, rights)

    def fetch_executable(self, path: str) -> bytes:
        """Pull a remote program for local execution (needs remote ``x``)."""
        client, vpath = self._split(path)
        if not _wrap(client.aclcheck)(vpath, "x"):
            raise err(Errno.EACCES, f"no execute right on {path}")
        return _wrap(client.get)(vpath)
