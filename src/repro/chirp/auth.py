"""Chirp authentication: method negotiation and principal construction.

"A Chirp server supports a variety of authentication methods, including
Globus GSI, Kerberos, ordinary Unix names, and a simple hostname scheme.
Upon connecting, the client and server negotiate an acceptable
authentication method... the server then knows the client by a principal
name constructed from the authentication method and the proven identity"
(§4):

    globus:/O=UnivNowhere/CN=Fred
    kerberos:fred@nowhere.edu
    hostname:laptop.cs.nowhere.edu
    unix:fred

The client offers its methods in preference order; the server accepts the
first it can verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.identity import Principal
from ..gsi.ca import Certificate, CertificateError
from ..gsi.credentials import CredentialStore, ProxyCredential, UserCredentials
from ..gsi.kerberos import KerberosError, KeyDistributionCenter, Ticket
from ..net.network import Peer


class AuthenticationFailed(Exception):
    """The offered credential did not verify."""


# --------------------------------------------------------------------- #
# server side
# --------------------------------------------------------------------- #


@dataclass
class ServerAuth:
    """Server-side verifier for the four methods."""

    #: methods the server accepts, in its own preference order
    methods: list[str] = field(default_factory=lambda: ["globus", "kerberos", "hostname", "unix"])
    #: GSI trust anchors (None disables the globus method)
    credential_store: CredentialStore | None = None
    #: realm -> KDC (empty disables kerberos)
    kdcs: dict[str, KeyDistributionCenter] = field(default_factory=dict)
    #: this server's kerberos service principal (e.g. "chirp/server1")
    service_principal: str = "chirp/server"
    #: hostname of the serving machine (for the unix same-host rule)
    server_hostname: str = "localhost"

    def verify(self, method: str, payload: dict[str, Any], peer: Peer) -> Principal:
        """Verify one offer; returns the proven principal or raises."""
        if method not in self.methods:
            raise AuthenticationFailed(f"method {method!r} not offered by server")
        if method == "globus":
            return self._verify_globus(payload)
        if method == "kerberos":
            return self._verify_kerberos(payload)
        if method == "hostname":
            # the network's reverse lookup is the proof
            return Principal("hostname", peer.hostname)
        if method == "unix":
            return self._verify_unix(payload, peer)
        raise AuthenticationFailed(f"unknown method {method!r}")

    def _verify_globus(self, payload: dict[str, Any]) -> Principal:
        if self.credential_store is None:
            raise AuthenticationFailed("server has no GSI trust store")
        try:
            proxy = ProxyCredential(
                certificate=Certificate(
                    subject=str(payload["subject"]),
                    issuer=str(payload["issuer"]),
                    serial=int(payload["serial"]),
                    signature=str(payload["cert_signature"]),
                ),
                depth=int(payload["depth"]),
                signature=str(payload["proxy_signature"]),
            )
            subject = self.credential_store.verify_proxy(proxy)
        except (KeyError, ValueError, CertificateError) as exc:
            raise AuthenticationFailed(f"globus: {exc}") from exc
        return Principal("globus", subject)

    def _verify_kerberos(self, payload: dict[str, Any]) -> Principal:
        try:
            ticket = Ticket(
                client=str(payload["client"]),
                service=str(payload["service"]),
                realm=str(payload["realm"]),
                seal=str(payload["seal"]),
            )
            kdc = self.kdcs.get(ticket.realm)
            if kdc is None:
                raise AuthenticationFailed(f"untrusted realm {ticket.realm!r}")
            client = kdc.verify_ticket(ticket, self.service_principal)
        except (KeyError, KerberosError) as exc:
            raise AuthenticationFailed(f"kerberos: {exc}") from exc
        return Principal("kerberos", client)

    def _verify_unix(self, payload: dict[str, Any], peer: Peer) -> Principal:
        # The real scheme proves identity with a filesystem challenge that
        # only works locally; the simulation keeps the same-host constraint.
        if peer.hostname != self.server_hostname:
            raise AuthenticationFailed("unix auth only works on the same host")
        username = str(payload.get("username", ""))
        if not username:
            raise AuthenticationFailed("unix: no username offered")
        return Principal("unix", username)


# --------------------------------------------------------------------- #
# client side
# --------------------------------------------------------------------- #


class ClientAuthenticator:
    """One credential the client can offer."""

    method = "?"

    def payload(self) -> dict[str, Any]:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class GlobusAuthenticator(ClientAuthenticator):
    """Offer a GSI proxy derived from the user's wallet."""

    wallet: UserCredentials
    method: str = field(default="globus", init=False)

    def payload(self) -> dict[str, Any]:
        proxy = self.wallet.make_proxy()
        cert = proxy.certificate
        return {
            "subject": cert.subject,
            "issuer": cert.issuer,
            "serial": cert.serial,
            "cert_signature": cert.signature,
            "depth": proxy.depth,
            "proxy_signature": proxy.signature,
        }


@dataclass
class KerberosAuthenticator(ClientAuthenticator):
    """Offer a ticket freshly fetched from the client's KDC."""

    kdc: KeyDistributionCenter
    client_principal: str
    service_principal: str
    method: str = field(default="kerberos", init=False)

    def payload(self) -> dict[str, Any]:
        ticket = self.kdc.issue_ticket(self.client_principal, self.service_principal)
        return {
            "client": ticket.client,
            "service": ticket.service,
            "realm": ticket.realm,
            "seal": ticket.seal,
        }


@dataclass
class HostnameAuthenticator(ClientAuthenticator):
    """Offer nothing: the server's reverse lookup is the identity."""

    method: str = field(default="hostname", init=False)

    def payload(self) -> dict[str, Any]:
        return {}


@dataclass
class UnixAuthenticator(ClientAuthenticator):
    """Offer a local account name (verifiable only on the same host)."""

    username: str
    method: str = field(default="unix", init=False)

    def payload(self) -> dict[str, Any]:
        return {"username": self.username}
