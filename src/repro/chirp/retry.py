"""Retry policy, backoff, and failure classification for Chirp clients.

Wide-area Chirp traffic fails in two very different ways.  *Transient*
failures — a refused connect, a dropped connection, a truncated frame, a
shed under overload — say nothing about the operation itself and are
worth retrying after a backoff.  *Definite* failures — EACCES, ENOENT,
EBADF — are the server's answer and must surface immediately.

Retrying a mutating operation blindly can apply it twice: the classic
case is a ``rename`` whose response was lost after the server renamed.
Non-idempotent *path* operations therefore carry an idempotency key (see
:data:`IDEMPOTENCY_KEYED_OPS`); the server caches the response frame per
key and replays it instead of re-executing.  Descriptor operations
(``open``/``pwrite``/``close``…) do not carry keys: a descriptor dies
with its connection, so a retried descriptor op after a reconnect fails
with EBADF and the client revives the descriptor — ``put``/``get`` reopen
the path and resume at the absolute offset already transferred — which
is idempotent at the file level because every chunk I/O is positioned.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..kernel.errno import Errno, KernelError
from ..kernel.timing import NS_PER_MS, NS_PER_S
from ..net.rpc import ProtocolError
from .protocol import ChirpError

#: Errnos that indicate transport/overload trouble rather than a verdict.
TRANSIENT_ERRNOS = frozenset(
    {
        Errno.EPIPE,
        Errno.ECONNRESET,
        Errno.ECONNREFUSED,
        Errno.ETIMEDOUT,
        Errno.EAGAIN,
        Errno.EBADMSG,
    }
)

#: Errnos that, after the retry budget is exhausted, mean the *replica* is
#: unreachable — dead, dark, or partitioned — rather than answering at all.
#: The replicated routing layer fails over (reads) or logs a missed write
#: (quorum writes) on these; everything else is the server's answer.
UNAVAILABLE_ERRNOS = frozenset(
    {
        Errno.EPIPE,
        Errno.ECONNRESET,
        Errno.ECONNREFUSED,
        Errno.ETIMEDOUT,
    }
)

#: Mutating path operations that must never be silently replayed: each
#: request carries an idempotency key the server deduplicates on.
IDEMPOTENCY_KEYED_OPS = frozenset(
    {
        "mkdir",
        "rmdir",
        "unlink",
        "rename",
        "symlink",
        "link",
        "truncate",
        "setacl",
        "exec",
        # the coalescing envelope: its frames are positioned I/O (already
        # idempotent), but keying the whole envelope lets the server
        # replay the stored response instead of re-running every slot
        "batch",
    }
)


def is_unavailable(exc: BaseException) -> bool:
    """Is this failure the replica being unreachable (vs an answer)?"""
    if isinstance(exc, (KernelError, ChirpError)):
        return exc.errno in UNAVAILABLE_ERRNOS
    return False


def quorum(replicas: int) -> int:
    """Write quorum for a replica set: a strict majority, ⌈(k+1)/2⌉."""
    return replicas // 2 + 1


def is_transient(exc: BaseException) -> bool:
    """Would a retry plausibly succeed?"""
    if isinstance(exc, ProtocolError):
        return True  # garbled frame: connection state is unknowable
    if isinstance(exc, (KernelError, ChirpError)):
        return exc.errno in TRANSIENT_ERRNOS
    return False


def breaks_connection(exc: BaseException) -> bool:
    """Does this failure leave the connection unusable?

    An EAGAIN shed arrives on a healthy connection; everything else
    transient either broke the transport or lost framing sync.
    """
    if isinstance(exc, ProtocolError):
        return True
    if isinstance(exc, KernelError) and not isinstance(exc, ChirpError):
        return True
    if isinstance(exc, ChirpError):
        return exc.errno in (
            Errno.EPIPE,
            Errno.ECONNRESET,
            Errno.ETIMEDOUT,
            Errno.EBADMSG,
        )
    return False


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a client tries before giving up.

    All times are simulated nanoseconds; the backoff *advances the
    simulated clock*, which is what lets a retried call find an overload
    token bucket refilled or a circuit cooldown expired.  Jitter is drawn
    from an RNG seeded per (policy seed, attempt, salt) so the same
    workload backs off identically on every run.
    """

    max_attempts: int = 5
    #: per-call deadline; a response landing after it counts as a timeout
    call_timeout_ns: int = 2 * NS_PER_S
    backoff_base_ns: int = 5 * NS_PER_MS
    backoff_multiplier: float = 2.0
    backoff_max_ns: int = 400 * NS_PER_MS
    jitter: float = 0.1
    seed: int = 0

    def backoff_ns(self, attempt: int, salt: int = 0) -> int:
        """Exponential backoff with deterministic jitter for retry N."""
        base = self.backoff_base_ns * (self.backoff_multiplier ** attempt)
        base = min(base, float(self.backoff_max_ns))
        if self.jitter:
            rng = random.Random(f"{self.seed}:{attempt}:{salt}")
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0, int(base))


def as_chirp_error(exc: BaseException) -> ChirpError:
    """Normalize any transport-layer failure into a clean ChirpError."""
    if isinstance(exc, ChirpError):
        return exc
    if isinstance(exc, KernelError):
        return ChirpError(exc.errno, str(exc))
    if isinstance(exc, ProtocolError):
        return ChirpError(Errno.EBADMSG, str(exc))
    raise exc  # pragma: no cover - programming error, not a wire failure
