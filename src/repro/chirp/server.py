"""The Chirp server: a personal file server with a fully virtual user space.

"A Chirp server is a personal file server for grid computing.  It can be
deployed by an ordinary user anywhere there is space available in a file
system" (§4).  Everything below runs as the unprivileged owner:

* the export root is a directory the owner can write,
* every stored object is physically owned by the owner's uid — "the space
  of local users is completely hidden from external users.  All data is
  stored and referenced by external identities" via per-directory ACLs,
* remote ``exec`` runs the named program in an identity box whose identity
  is the connection's authenticated principal, under the server's shared
  supervisor.

Every RPC dispatches through the same operation pipeline the supervisor
uses for trapped syscalls (:mod:`repro.core.pipeline`): the connection's
principal is resolved by the identity gate, ACL-file shielding and the
reference monitor run from the shared per-op specs, and only then does a
``c_<op>`` handler below perform the action as the owner.  Per-connection
state is a :class:`_Connection`: the negotiated principal plus a table
mapping protocol descriptors to the owner's real descriptors.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..core.acl import ACL_FILE_NAME, Acl
from ..core.aclfs import AclPolicy
from ..core.audit import AuditLog
from ..core.box import IdentityBox
from ..core.identity import Principal
from ..core.ops import (
    OP_PATH_SPECS,
    OpRegistry,
    OpSpec,
    acl_dir_for,
    apply_setacl,
    rename_clearing_acl,
    rmdir_clearing_acl,
)
from ..core.pipeline import (
    BoundPath,
    CircuitBreaker,
    IdentityQuota,
    Operation,
    Pipeline,
    ReadCache,
    build_pipeline,
)
from .. import config as repro_config
from ..gsi.cas import AdmissionPolicy, OpenPolicy
from ..interpose.drivers import LocalDriver
from ..interpose.supervisor import Supervisor
from ..kernel.errno import Errno, KernelError, err
from ..kernel.fdtable import OpenFlags
from ..kernel.vfs import join, normalize
from ..net.network import Network, Peer
from ..net.rpc import ProtocolError
from .auth import AuthenticationFailed, ServerAuth
from .protocol import (
    BATCH_LIMIT,
    BATCH_OP,
    BATCHABLE_OPS,
    CHIRP_PORT,
    FED_XFER_SUFFIX,
    StatPayload,
    UnknownOpError,
    error_response,
    ok_response,
    parse_request,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.machine import Machine
    from ..kernel.users import Credentials

#: Default export root, relative to the owner's home — "anywhere there is
#: space available in a file system" that an ordinary user can write.
DEFAULT_EXPORT_SUBDIR = "chirp"
DEFAULT_EXPORT_ROOT = ""  # sentinel: derive from the owner's home


@dataclass
class ServerStats:
    connections: int = 0
    auth_failures: int = 0
    ops: int = 0
    execs: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    denials: int = 0
    #: malformed/truncated frames that poisoned their connection
    protocol_errors: int = 0
    #: requests shed with EAGAIN by the overload guard
    sheds: int = 0
    #: idempotency-key cache hits (a retry that would have re-applied)
    replays: int = 0
    #: fast-lane batch envelopes unpacked (each counts its inner
    #: requests into ``ops``, so ``ops`` stays comparable either way)
    batches: int = 0
    #: inner requests that arrived coalesced inside a batch envelope
    coalesced: int = 0


@dataclass
class OverloadPolicy:
    """Token-bucket admission against the simulated clock.

    A real server queues requests; a queue with no bound melts down under
    heavy traffic.  This guard sheds excess load with EAGAIN instead —
    the client's backoff advances the shared simulated clock, which
    refills the bucket, so a shed-then-retry actually succeeds.
    """

    rate_per_s: float
    burst: int = 32
    _tokens: float = field(init=False)
    _last_ns: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._tokens = float(self.burst)

    def admit(self, now_ns: int) -> bool:
        elapsed = max(0, now_ns - self._last_ns)
        self._last_ns = now_ns
        self._tokens = min(
            float(self.burst), self._tokens + elapsed * self.rate_per_s / 1e9
        )
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


#: Bound on the idempotency replay cache (responses, not payload data).
IDEM_CACHE_LIMIT = 1024


# ---------------------------------------------------------------------- #
# RPC handlers (run after the pipeline's identity/guard/monitor stages)
# ---------------------------------------------------------------------- #


def c_auth(op: Operation, conn: "_Connection") -> dict[str, Any]:
    server = conn.server
    method = str(op.args.get("method", ""))
    payload = op.args.get("payload") or {}
    try:
        principal = server.auth.verify(method, payload, conn.peer)
    except AuthenticationFailed as exc:
        server.stats.auth_failures += 1
        raise err(Errno.EACCES, str(exc)) from exc
    if not server.admission.admits(str(principal)):
        server.stats.auth_failures += 1
        raise err(Errno.EACCES, f"{principal} is not admitted by site policy")
    conn.principal = principal
    return {"principal": str(principal)}


def c_whoami(op: Operation, conn: "_Connection") -> dict[str, Any]:
    return {"principal": op.identity}


def c_open(op: Operation, conn: "_Connection") -> dict[str, Any]:
    path = op.path()
    flags = OpenFlags(int(op.args.get("flags", 0)))
    mode = int(op.args.get("mode", 0o644))
    sup_fd = path.driver.open(path.sub, int(flags), mode)
    return {"fd": conn.install_fd(sup_fd, path.sub)}


def c_close(op: Operation, conn: "_Connection") -> dict[str, Any]:
    conn.server.fs.close(conn.pop_fd(int(op.args["fd"])))
    return {}


def c_pread(op: Operation, conn: "_Connection") -> dict[str, Any]:
    data = conn.server.fs.pread(
        conn.sup_fd(int(op.args["fd"])),
        int(op.args["length"]),
        int(op.args["offset"]),
    )
    conn.server.stats.bytes_read += len(data)
    return {"data": data}


def c_pwrite(op: Operation, conn: "_Connection") -> dict[str, Any]:
    data = op.args["data"]
    if not isinstance(data, bytes):
        raise err(Errno.EINVAL, "pwrite data must be bytes")
    n = conn.server.fs.pwrite(
        conn.sup_fd(int(op.args["fd"])), data, int(op.args["offset"])
    )
    conn.server.stats.bytes_written += n
    return {"count": n}


def c_fstat(op: Operation, conn: "_Connection") -> dict[str, Any]:
    st = conn.server.fs.fstat(conn.sup_fd(int(op.args["fd"])))
    return StatPayload.from_stat(st).to_fields()


def c_ftruncate(op: Operation, conn: "_Connection") -> dict[str, Any]:
    conn.server.fs.ftruncate(conn.sup_fd(int(op.args["fd"])), int(op.args["length"]))
    return {}


def c_stat(op: Operation, conn: "_Connection") -> dict[str, Any]:
    path = op.path()
    return StatPayload.from_stat(path.driver.stat(path.sub)).to_fields()


def c_lstat(op: Operation, conn: "_Connection") -> dict[str, Any]:
    path = op.path()
    return StatPayload.from_stat(path.driver.lstat(path.sub)).to_fields()


def c_access(op: Operation, conn: "_Connection") -> dict[str, Any]:
    path = op.path()
    path.driver.stat(path.sub)  # existence probe after the rights check
    return {}


def c_readdir(op: Operation, conn: "_Connection") -> dict[str, Any]:
    path = op.path()
    names = [n for n in path.driver.readdir(path.sub) if n != ACL_FILE_NAME]
    return {"names": names}


def c_readlink(op: Operation, conn: "_Connection") -> dict[str, Any]:
    path = op.path()
    return {"target": path.driver.readlink(path.sub)}


def c_mkdir(op: Operation, conn: "_Connection") -> dict[str, Any]:
    path = op.path()
    path.driver.mkdir(path.sub, int(op.args.get("mode", 0o755)))
    conn.server.policy.apply_mkdir(path.sub, op.scratch["mkdir_acl"])
    conn.server.pipeline.audit.emit(
        op.identity, "mkdir", path.sub, True, "acl-installed"
    )
    return {}


def c_rmdir(op: Operation, conn: "_Connection") -> dict[str, Any]:
    path = op.path()
    rmdir_clearing_acl(path.driver, path.sub)
    conn.server.policy.invalidate(path.sub)
    return {}


def c_unlink(op: Operation, conn: "_Connection") -> dict[str, Any]:
    path = op.path()
    path.driver.unlink(path.sub)
    return {}


def c_rename(op: Operation, conn: "_Connection") -> dict[str, Any]:
    old, new = op.path(0), op.path(1)
    rename_clearing_acl(old.driver, old.sub, new.sub)
    conn.server.policy.invalidate_all()
    return {}


def c_symlink(op: Operation, conn: "_Connection") -> dict[str, Any]:
    link = op.path()
    # store the target as a *protocol* path translated to a real one,
    # so the link resolves inside the export namespace
    target_real = conn.server.real_path(str(op.args["target"]))
    link.driver.symlink(target_real, link.sub)
    return {}


def c_link(op: Operation, conn: "_Connection") -> dict[str, Any]:
    old, new = op.path(0), op.path(1)
    old.driver.link(old.sub, new.sub)
    return {}


def c_truncate(op: Operation, conn: "_Connection") -> dict[str, Any]:
    path = op.path()
    path.driver.truncate(path.sub, int(op.args["length"]))
    return {}


def c_getacl(op: Operation, conn: "_Connection") -> dict[str, Any]:
    path = op.path()
    acl = conn.server.policy.acl_of(acl_dir_for(path.driver, path.sub))
    return {"acl": acl.render() if acl is not None else ""}


def c_setacl(op: Operation, conn: "_Connection") -> dict[str, Any]:
    acl_dir = op.scratch["acl_dir"]  # stashed by the monitor's admin check
    rights = apply_setacl(
        conn.server.policy,
        acl_dir,
        str(op.args["subject"]),
        str(op.args["rights"]),
    )
    conn.server.pipeline.audit.emit(
        op.identity, "setacl", acl_dir, True, f"{op.args['subject']} {rights}"
    )
    return {}


def c_aclcheck(op: Operation, conn: "_Connection") -> dict[str, Any]:
    path = op.path()
    decision = conn.server.policy.check(
        op.identity, path.sub, str(op.args["letters"])
    )
    return {"allowed": decision.allowed}


def c_exec(op: Operation, conn: "_Connection") -> dict[str, Any]:
    """Remote execution in an identity box (the paper's protocol extension)."""
    server = conn.server
    exe, cwd = op.path(0), op.path(1)
    args = [str(a) for a in op.args.get("args", [])]
    box = IdentityBox(
        server.machine,
        server.owner_cred,
        op.identity,
        supervisor=server.supervisor,
        make_home=False,
    )
    proc = box.spawn(exe.sub, args, cwd=cwd.sub, comm=f"exec:{exe.raw}")
    server.machine.run()
    server.stats.execs += 1
    return {"pid": proc.pid, "status": proc.exit_status or 0}


def build_chirp_registry() -> OpRegistry:
    """Every protocol op, wired to the shared per-op path policy."""
    registry = OpRegistry()
    registry.register(OpSpec("auth", c_auth, pre_auth=True))
    for name, handler in [
        ("whoami", c_whoami),
        ("open", c_open),
        ("close", c_close),
        ("pread", c_pread),
        ("pwrite", c_pwrite),
        ("fstat", c_fstat),
        ("ftruncate", c_ftruncate),
        ("stat", c_stat),
        ("lstat", c_lstat),
        ("access", c_access),
        ("readdir", c_readdir),
        ("readlink", c_readlink),
        ("mkdir", c_mkdir),
        ("rmdir", c_rmdir),
        ("unlink", c_unlink),
        ("rename", c_rename),
        ("symlink", c_symlink),
        ("link", c_link),
        ("truncate", c_truncate),
        ("getacl", c_getacl),
        ("setacl", c_setacl),
        ("aclcheck", c_aclcheck),
        ("exec", c_exec),
    ]:
        registry.register(OpSpec(name, handler, paths=OP_PATH_SPECS.get(name, ())))
    return registry


class ChirpServer:
    """One Chirp server instance on one simulated machine."""

    def __init__(
        self,
        machine: "Machine",
        owner_cred: "Credentials",
        *,
        network: Network,
        export_root: str = DEFAULT_EXPORT_ROOT,
        port: int = CHIRP_PORT,
        auth: ServerAuth | None = None,
        admission: AdmissionPolicy | None = None,
        audit: AuditLog | None = None,
        overload: OverloadPolicy | None = None,
        health: CircuitBreaker | None = None,
        telemetry=None,
        read_cache: ReadCache | None = None,
        quota: IdentityQuota | None = None,
    ) -> None:
        self.machine = machine
        self.owner_cred = owner_cred
        self.network = network
        self.hostname = machine.hostname
        self.port = port
        if not export_root:
            export_root = join(
                machine.users.by_uid(owner_cred.uid).home, DEFAULT_EXPORT_SUBDIR
            )
        self.export_root = normalize(export_root)
        self.auth = auth or ServerAuth(server_hostname=self.hostname)
        self.auth.server_hostname = self.hostname
        self.admission = admission or OpenPolicy()
        self.owner_task = machine.host_task(owner_cred)
        self.policy = AclPolicy(machine, self.owner_task)
        #: shared with the supervisor below, so a remote exec's boxed
        #: syscall spans nest under the RPC span that spawned them
        self.telemetry = (
            telemetry if telemetry is not None else getattr(machine, "telemetry", None)
        )
        self.supervisor = Supervisor(
            machine,
            owner_cred,
            policy=self.policy,
            audit=audit,
            telemetry=self.telemetry,
        )
        self.fs = LocalDriver(machine, self.owner_task)
        self.stats = ServerStats()
        self.overload = overload
        self._idem_cache: OrderedDict[str, bytes] = OrderedDict()
        self.registry = build_chirp_registry()
        # the fast lane: explicit instances win; otherwise the REPRO_CACHE
        # / REPRO_QUOTA knobs decide, so the CI fastlane leg turns the
        # cache on for every server the suite builds.  The cache watches
        # the machine's world epoch: a restore() flushes it wholesale —
        # entries must never outlive the world they were read from.
        if read_cache is None and repro_config.read_cache_enabled():
            read_cache = ReadCache()
        if read_cache is not None and read_cache.epoch_source is None:
            read_cache.epoch_source = lambda: machine.epoch
            read_cache._epoch = machine.epoch
        if quota is None:
            quota_spec = repro_config.quota_spec()
            if quota_spec is not None:
                quota = IdentityQuota(quota_spec[0], quota_spec[1])
        self.read_cache = read_cache
        self.quota = quota
        self.pipeline: Pipeline = build_pipeline(
            self.registry,
            policy=self.policy,
            clock=machine.clock,
            audit_log=audit,
            resolve_identity=self._resolve_identity,
            on_denial=self._count_denial,
            health=health,
            telemetry=self.telemetry,
            cache=read_cache,
            quota=quota,
        )
        self._ensure_export_root()

    def _resolve_identity(self, op: Operation, conn: "_Connection") -> str | None:
        if op.spec is not None and op.spec.pre_auth:
            return None
        if conn.principal is None:
            raise err(Errno.EACCES, "authenticate first")
        return str(conn.principal)

    def _count_denial(self, op: Operation) -> None:
        self.stats.denials += 1

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #

    def _ensure_export_root(self) -> None:
        parts = [p for p in self.export_root.split("/") if p]
        path = ""
        for part in parts:
            path += "/" + part
            try:
                self.machine.kcall_x(self.owner_task, "mkdir", path, 0o755)
            except KernelError as exc:
                if exc.errno is not Errno.EEXIST:
                    raise

    def set_root_acl(self, acl: Acl) -> None:
        """The owner declares who may do what at the export root."""
        self.policy.write_acl(self.export_root, acl)

    def serve(self) -> None:
        """Start accepting connections."""
        self.network.listen(self.hostname, self.port, self._connect)

    def shutdown(self) -> None:
        self.network.unlisten(self.hostname, self.port)

    def _connect(self, peer: Peer) -> "_Connection":
        self.stats.connections += 1
        return _Connection(server=self, peer=peer)

    # ------------------------------------------------------------------ #
    # path translation (the protocol namespace is rooted at export_root)
    # ------------------------------------------------------------------ #

    def real_path(self, vpath: str) -> str:
        """Translate a protocol path to a machine path, escape-proof.

        ``normalize`` resolves ``..`` lexically *before* prefixing, so a
        hostile ``/../../etc/passwd`` lands back inside the export root.
        """
        norm = normalize(vpath if vpath.startswith("/") else "/" + vpath)
        return self.export_root if norm == "/" else self.export_root + norm

    def virtual_path(self, real: str) -> str:
        """The inverse of :meth:`real_path`, for export-relative state
        (symlink targets are stored as machine paths; replication must
        compare and copy them export-relative, since every shard's
        export root is a different owner's home)."""
        if real == self.export_root:
            return "/"
        if real.startswith(self.export_root + "/"):
            return real[len(self.export_root):]
        return real

    # ------------------------------------------------------------------ #
    # anti-entropy support: a content manifest of the whole export
    # ------------------------------------------------------------------ #

    def export_manifest(self) -> dict[str, tuple]:
        """Walk the export namespace into ``vpath → entry`` form.

        Entries are ``("dir", mode)``, ``("file", mode, size, digest)``
        or ``("link", target_vpath)`` — exactly the comparison a replica
        peer needs to decide what a rejoining shard missed.  ACL files
        are included (policy must converge too); in-flight transfer
        staging names are excluded (they are not namespace state).
        """
        manifest: dict[str, tuple] = {}
        self._manifest_walk("/", manifest)
        return manifest

    def _manifest_walk(self, vdir: str, manifest: dict[str, tuple]) -> None:
        for name in sorted(self.fs.readdir(self.real_path(vdir))):
            if name.endswith(FED_XFER_SUFFIX):
                continue
            vpath = ("" if vdir == "/" else vdir) + "/" + name
            st = self.fs.lstat(self.real_path(vpath))
            if st.is_symlink:
                target = self.fs.readlink(self.real_path(vpath))
                manifest[vpath] = ("link", self.virtual_path(target))
            elif st.is_dir:
                manifest[vpath] = ("dir", st.st_mode & 0o7777)
                self._manifest_walk(vpath, manifest)
            else:
                manifest[vpath] = (
                    "file",
                    st.st_mode & 0o7777,
                    st.st_size,
                    hashlib.blake2b(
                        self.read_export_file(vpath), digest_size=16
                    ).hexdigest(),
                )

    def read_export_file(self, vpath: str) -> bytes:
        """Read one exported file's bytes as the owner (repair donor side)."""
        fd = self.fs.open(self.real_path(vpath), int(OpenFlags.O_RDONLY), 0)
        try:
            out = bytearray()
            while True:
                chunk = self.fs.pread(fd, 64 * 1024, len(out))
                if not chunk:
                    return bytes(out)
                out.extend(chunk)
        finally:
            self.fs.close(fd)


@dataclass
class _Connection:
    """Server-side state for one client connection."""

    server: ChirpServer
    peer: Peer
    principal: Principal | None = None
    _fds: dict[int, int] = field(default_factory=dict)
    #: protocol fd → the opened path, so descriptor writes can invalidate
    #: the fast-lane read cache narrowly instead of flushing it
    _fd_paths: dict[int, str] = field(default_factory=dict)
    _next_fd: int = 3
    _poisoned: bool = False
    _released: bool = False

    # ------------------------------------------------------------------ #
    # framing
    # ------------------------------------------------------------------ #

    def handle(self, frame: bytes) -> bytes:
        server = self.server
        if self._poisoned:
            return error_response(Errno.EPIPE, "connection poisoned by bad frame")
        try:
            message = parse_request(frame)
        except UnknownOpError as exc:
            # well-framed but meaningless: the stream is still in sync,
            # answer and carry on
            return error_response(Errno.EINVAL, str(exc))
        except ProtocolError as exc:
            # graceful degradation: a malformed or truncated frame kills
            # only this connection — its identity state is released right
            # away — and never the accept loop
            server.stats.protocol_errors += 1
            if server.telemetry is not None:
                server.telemetry.counter_inc("chirp.protocol_errors")
            self._poison()
            return error_response(Errno.EBADMSG, f"unparseable frame: {exc}")
        op_name = message["op"]
        if op_name == BATCH_OP:
            # the coalescing envelope is framing, not an operation: it
            # carries its own idem/overload handling and unpacks each
            # inner request through the pipeline
            return self._handle_batch(message)
        server.stats.ops += 1
        # envelope fields ride alongside the op's own arguments and are
        # stripped before binding: the idempotency key and the caller's
        # trace parent (``trace_id/span_id``, minted once per logical
        # call, so every retry of one call lands in one trace)
        idem = message.pop("idem", None)
        trace = message.pop("trace", None)
        telemetry = server.telemetry
        if idem is not None:
            cached = server._idem_cache.get(str(idem))
            if cached is not None:
                server.stats.replays += 1
                if telemetry is not None:
                    telemetry.counter_inc("chirp.replays", op=op_name)
                return cached
        if server.overload is not None and not server.overload.admit(
            server.machine.clock.now_ns
        ):
            # overload shed: EAGAIN now beats queueing unboundedly;
            # deliberately not cached so the retry is re-admitted
            server.stats.sheds += 1
            if telemetry is not None:
                telemetry.counter_inc("chirp.sheds", op=op_name)
            return error_response(Errno.EAGAIN, "server overloaded; retry later")
        try:
            op = self._bind(op_name, message)
            if trace is not None:
                op.scratch["trace_parent"] = str(trace)
            payload = self.server.pipeline.run(op, self)
            response = ok_response(**(payload or {}))
        except KernelError as exc:
            response = error_response(exc.errno, str(exc))
        except ProtocolError as exc:
            response = error_response(Errno.EINVAL, str(exc))
        except (KeyError, TypeError, ValueError) as exc:
            response = error_response(
                Errno.EINVAL, f"malformed {op_name!r} request: {exc}"
            )
        if idem is not None:
            self._remember(str(idem), response)
        return response

    def _handle_batch(self, message: dict[str, Any]) -> bytes:
        """Unpack a coalescing envelope: one wire frame, many pipeline ops.

        The whole batch pays one admission token (it is one arrival; the
        per-identity quota still meters every inner op), resolves its
        identity once, and isolates failures per slot — a refused frame
        yields an error *result* in its position and the rest still run,
        exactly as the same requests sent singly would behave.
        """
        server = self.server
        telemetry = server.telemetry
        idem = message.pop("idem", None)
        trace = message.pop("trace", None)
        if idem is not None:
            cached = server._idem_cache.get(str(idem))
            if cached is not None:
                server.stats.replays += 1
                if telemetry is not None:
                    telemetry.counter_inc("chirp.replays", op=BATCH_OP)
                return cached
        if server.overload is not None and not server.overload.admit(
            server.machine.clock.now_ns
        ):
            server.stats.sheds += 1
            if telemetry is not None:
                telemetry.counter_inc("chirp.sheds", op=BATCH_OP)
            return error_response(Errno.EAGAIN, "server overloaded; retry later")
        frames = message.get("frames")
        if (
            not isinstance(frames, list)
            or not frames
            or len(frames) > BATCH_LIMIT
        ):
            return error_response(
                Errno.EINVAL, f"batch carries 1..{BATCH_LIMIT} frames"
            )
        if self.principal is None:
            # resolved once for the whole envelope — the amortization the
            # fast lane exists for; inner frames inherit the answer
            return error_response(Errno.EACCES, "authenticate first")
        identity = str(self.principal)
        server.stats.batches += 1
        server.stats.coalesced += len(frames)
        if telemetry is not None:
            telemetry.counter_inc("fastlane.batches")
            telemetry.counter_inc(
                "fastlane.coalesced_frames", value=len(frames)
            )
        results = [self._run_frame(sub, identity, trace) for sub in frames]
        response = ok_response(results=results)
        if idem is not None:
            self._remember(str(idem), response)
        return response

    def _run_frame(
        self, sub: Any, identity: str, trace: Any
    ) -> dict[str, Any]:
        """One inner request of a batch; failures stay in this slot."""
        server = self.server
        if not isinstance(sub, dict) or sub.get("op") not in BATCHABLE_OPS:
            return {
                "ok": False,
                "errno": int(Errno.EINVAL),
                "error": "frame cannot be coalesced",
            }
        sub = dict(sub)
        sub.pop("idem", None)  # envelope-level concerns only
        sub.pop("trace", None)
        op_name = str(sub["op"])
        server.stats.ops += 1
        try:
            op = self._bind(op_name, sub)
            op.identity = identity
            if trace is not None:
                op.scratch["trace_parent"] = str(trace)
            payload = server.pipeline.run(op, self) or {}
            return {"ok": True, **payload}
        except KernelError as exc:
            return {"ok": False, "errno": int(exc.errno), "error": str(exc)}
        except ProtocolError as exc:
            return {"ok": False, "errno": int(Errno.EINVAL), "error": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return {
                "ok": False,
                "errno": int(Errno.EINVAL),
                "error": f"malformed {op_name!r} request: {exc}",
            }

    def _remember(self, idem: str, response: bytes) -> None:
        cache = self.server._idem_cache
        cache[idem] = response
        while len(cache) > IDEM_CACHE_LIMIT:
            cache.popitem(last=False)

    def _poison(self) -> None:
        self._poisoned = True
        self.on_close()

    def on_close(self) -> None:
        """Release per-connection identity state; safe to call twice.

        Both poisoning and the network's teardown path invoke this, so it
        guards itself to keep the release exactly-once.
        """
        if self._released:
            return
        self._released = True
        for sup_fd in self._fds.values():
            self.server.machine.kcall(self.server.owner_task, "close", sup_fd)
        self._fds.clear()
        self._fd_paths.clear()

    def _bind(self, op_name: str, message: dict[str, Any]) -> Operation:
        """Bind a decoded request into a pipeline operation.

        The protocol namespace is rooted at the export root: ``full`` is
        the client-visible absolute path (ACL-file shielding works on
        basenames either way), ``sub`` the translated machine path the
        policy and driver see.
        """
        spec = self.server.registry.get(op_name)
        args = {k: v for k, v in message.items() if k != "op"}
        op = Operation(name=op_name, surface="chirp", args=args)
        for path_spec in spec.paths:
            if path_spec.field in args:
                raw = str(args[path_spec.field])
            elif path_spec.default is not None:
                raw = path_spec.default
            else:
                raise KeyError(path_spec.field)
            op.paths.append(
                BoundPath(
                    spec=path_spec,
                    raw=raw,
                    full=normalize(raw if raw.startswith("/") else "/" + raw),
                    sub=self.server.real_path(raw),
                    driver=self.server.fs,
                )
            )
        if (
            self.server.read_cache is not None
            and op_name in ("pwrite", "ftruncate")
            and "fd" in args
        ):
            # descriptor-addressed mutations carry no path for the fast
            # lane to invalidate by; hint it with the path the fd was
            # opened on (an unknown fd degrades to a full flush)
            op.scratch["fastlane_paths"] = [self._fd_paths.get(int(args["fd"]))]
        return op

    # ------------------------------------------------------------------ #
    # protocol descriptor table
    # ------------------------------------------------------------------ #

    def install_fd(self, sup_fd: int, path: str | None = None) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = sup_fd
        if path is not None:
            self._fd_paths[fd] = path
        return fd

    def sup_fd(self, fd: int) -> int:
        if fd not in self._fds:
            raise err(Errno.EBADF, f"chirp fd {fd}")
        return self._fds[fd]

    def pop_fd(self, fd: int) -> int:
        sup_fd = self._fds.pop(fd, None)
        if sup_fd is None:
            raise err(Errno.EBADF, f"chirp fd {fd}")
        self._fd_paths.pop(fd, None)
        return sup_fd
