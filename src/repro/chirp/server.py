"""The Chirp server: a personal file server with a fully virtual user space.

"A Chirp server is a personal file server for grid computing.  It can be
deployed by an ordinary user anywhere there is space available in a file
system" (§4).  Everything below runs as the unprivileged owner:

* the export root is a directory the owner can write,
* every stored object is physically owned by the owner's uid — "the space
  of local users is completely hidden from external users.  All data is
  stored and referenced by external identities" via per-directory ACLs,
* remote ``exec`` runs the named program in an identity box whose identity
  is the connection's authenticated principal, under the server's shared
  supervisor.

Per-connection state is a :class:`_Connection`: the negotiated principal
plus a table mapping protocol descriptors to the owner's real descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..core.acl import ACL_FILE_NAME, Acl
from ..core.aclfs import AclPolicy
from ..core.audit import AuditLog
from ..core.box import IdentityBox
from ..core.identity import Principal
from ..core.rights import Rights, RightsError
from ..gsi.cas import AdmissionPolicy, OpenPolicy
from ..interpose.supervisor import Supervisor
from ..kernel.errno import Errno, KernelError, err
from ..kernel.fdtable import OpenFlags
from ..kernel.vfs import join, normalize
from ..net.network import Network, Peer
from ..net.rpc import ProtocolError
from .auth import AuthenticationFailed, ServerAuth
from .protocol import (
    CHIRP_PORT,
    StatPayload,
    error_response,
    ok_response,
    parse_request,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.machine import Machine
    from ..kernel.users import Credentials

#: Default export root, relative to the owner's home — "anywhere there is
#: space available in a file system" that an ordinary user can write.
DEFAULT_EXPORT_SUBDIR = "chirp"
DEFAULT_EXPORT_ROOT = ""  # sentinel: derive from the owner's home


@dataclass
class ServerStats:
    connections: int = 0
    auth_failures: int = 0
    ops: int = 0
    execs: int = 0
    bytes_read: int = 0
    bytes_written: int = 0


class ChirpServer:
    """One Chirp server instance on one simulated machine."""

    def __init__(
        self,
        machine: "Machine",
        owner_cred: "Credentials",
        *,
        network: Network,
        export_root: str = DEFAULT_EXPORT_ROOT,
        port: int = CHIRP_PORT,
        auth: ServerAuth | None = None,
        admission: AdmissionPolicy | None = None,
        audit: AuditLog | None = None,
    ) -> None:
        self.machine = machine
        self.owner_cred = owner_cred
        self.network = network
        self.hostname = machine.hostname
        self.port = port
        if not export_root:
            export_root = join(
                machine.users.by_uid(owner_cred.uid).home, DEFAULT_EXPORT_SUBDIR
            )
        self.export_root = normalize(export_root)
        self.auth = auth or ServerAuth(server_hostname=self.hostname)
        self.auth.server_hostname = self.hostname
        self.admission = admission or OpenPolicy()
        self.owner_task = machine.host_task(owner_cred)
        self.policy = AclPolicy(machine, self.owner_task)
        self.supervisor = Supervisor(
            machine, owner_cred, policy=self.policy, audit=audit
        )
        self.stats = ServerStats()
        self._ensure_export_root()

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #

    def _ensure_export_root(self) -> None:
        parts = [p for p in self.export_root.split("/") if p]
        path = ""
        for part in parts:
            path += "/" + part
            try:
                self.machine.kcall_x(self.owner_task, "mkdir", path, 0o755)
            except KernelError as exc:
                if exc.errno is not Errno.EEXIST:
                    raise

    def set_root_acl(self, acl: Acl) -> None:
        """The owner declares who may do what at the export root."""
        self.policy.write_acl(self.export_root, acl)

    def serve(self) -> None:
        """Start accepting connections."""
        self.network.listen(self.hostname, self.port, self._connect)

    def shutdown(self) -> None:
        self.network.unlisten(self.hostname, self.port)

    def _connect(self, peer: Peer) -> "_Connection":
        self.stats.connections += 1
        return _Connection(server=self, peer=peer)

    # ------------------------------------------------------------------ #
    # path translation (the protocol namespace is rooted at export_root)
    # ------------------------------------------------------------------ #

    def real_path(self, vpath: str) -> str:
        """Translate a protocol path to a machine path, escape-proof.

        ``normalize`` resolves ``..`` lexically *before* prefixing, so a
        hostile ``/../../etc/passwd`` lands back inside the export root.
        """
        norm = normalize(vpath if vpath.startswith("/") else "/" + vpath)
        return self.export_root if norm == "/" else self.export_root + norm


@dataclass
class _Connection:
    """Server-side state for one client connection."""

    server: ChirpServer
    peer: Peer
    principal: Principal | None = None
    _fds: dict[int, int] = field(default_factory=dict)
    _next_fd: int = 3

    # ------------------------------------------------------------------ #
    # framing
    # ------------------------------------------------------------------ #

    def handle(self, frame: bytes) -> bytes:
        try:
            message = parse_request(frame)
        except ProtocolError as exc:
            return error_response(Errno.EINVAL, str(exc))
        op = message["op"]
        self.server.stats.ops += 1
        try:
            if op == "auth":
                return self._op_auth(message)
            if self.principal is None:
                return error_response(Errno.EACCES, "authenticate first")
            handler = getattr(self, f"_op_{op}")
            return handler(message)
        except KernelError as exc:
            return error_response(exc.errno, str(exc))
        except ProtocolError as exc:
            return error_response(Errno.EINVAL, str(exc))
        except (KeyError, TypeError, ValueError) as exc:
            return error_response(Errno.EINVAL, f"malformed {op!r} request: {exc}")

    def on_close(self) -> None:
        for sup_fd in self._fds.values():
            self.server.machine.kcall(self.server.owner_task, "close", sup_fd)
        self._fds.clear()

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    @property
    def _who(self) -> str:
        assert self.principal is not None
        return str(self.principal)

    def _kcall(self, name: str, *args: Any) -> Any:
        return self.server.machine.kcall_x(self.server.owner_task, name, *args)

    def _require(self, vpath: str, letters: str, **kwargs: Any) -> str:
        real = self.server.real_path(vpath)
        self.server.policy.require(self._who, real, letters, **kwargs)
        return real

    def _protect_acl_file(self, vpath: str) -> None:
        if vpath.rstrip("/").rsplit("/", 1)[-1] == ACL_FILE_NAME:
            raise err(Errno.EACCES, "ACL files are managed via setacl")

    # ------------------------------------------------------------------ #
    # authentication
    # ------------------------------------------------------------------ #

    def _op_auth(self, message: dict[str, Any]) -> bytes:
        method = str(message.get("method", ""))
        payload = message.get("payload") or {}
        try:
            principal = self.server.auth.verify(method, payload, self.peer)
        except AuthenticationFailed as exc:
            self.server.stats.auth_failures += 1
            return error_response(Errno.EACCES, str(exc))
        if not self.server.admission.admits(str(principal)):
            self.server.stats.auth_failures += 1
            return error_response(
                Errno.EACCES, f"{principal} is not admitted by site policy"
            )
        self.principal = principal
        return ok_response(principal=str(principal))

    def _op_whoami(self, message: dict[str, Any]) -> bytes:
        return ok_response(principal=self._who)

    # ------------------------------------------------------------------ #
    # descriptor ops
    # ------------------------------------------------------------------ #

    def _op_open(self, message: dict[str, Any]) -> bytes:
        vpath = str(message["path"])
        flags = OpenFlags(int(message.get("flags", 0)))
        mode = int(message.get("mode", 0o644))
        self._protect_acl_file(vpath)
        real = self.server.real_path(vpath)
        letters = ("r" if flags.readable else "") + ("w" if flags.writable else "")
        if flags & OpenFlags.O_CREAT and not self.server.policy.exists(real):
            letters = "w"
        self.server.policy.require(self._who, real, letters or "r")
        sup_fd = self._kcall("open", real, int(flags), mode)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = sup_fd
        return ok_response(fd=fd)

    def _sup_fd(self, fd: int) -> int:
        if fd not in self._fds:
            raise err(Errno.EBADF, f"chirp fd {fd}")
        return self._fds[fd]

    def _op_close(self, message: dict[str, Any]) -> bytes:
        fd = int(message["fd"])
        sup_fd = self._fds.pop(fd, None)
        if sup_fd is None:
            raise err(Errno.EBADF, f"chirp fd {fd}")
        self._kcall("close", sup_fd)
        return ok_response()

    def _op_pread(self, message: dict[str, Any]) -> bytes:
        data = self._kcall(
            "pread_bytes",
            self._sup_fd(int(message["fd"])),
            int(message["length"]),
            int(message["offset"]),
        )
        self.server.stats.bytes_read += len(data)
        return ok_response(data=data)

    def _op_pwrite(self, message: dict[str, Any]) -> bytes:
        data = message["data"]
        if not isinstance(data, bytes):
            raise err(Errno.EINVAL, "pwrite data must be bytes")
        n = self._kcall(
            "pwrite_bytes",
            self._sup_fd(int(message["fd"])),
            data,
            int(message["offset"]),
        )
        self.server.stats.bytes_written += n
        return ok_response(count=n)

    def _op_fstat(self, message: dict[str, Any]) -> bytes:
        st = self._kcall("fstat", self._sup_fd(int(message["fd"])))
        return ok_response(**StatPayload.from_stat(st).to_fields())

    def _op_ftruncate(self, message: dict[str, Any]) -> bytes:
        self._kcall("ftruncate", self._sup_fd(int(message["fd"])), int(message["length"]))
        return ok_response()

    # ------------------------------------------------------------------ #
    # path metadata ops
    # ------------------------------------------------------------------ #

    def _op_stat(self, message: dict[str, Any]) -> bytes:
        real = self._require(str(message["path"]), "l")
        st = self._kcall("stat", real)
        return ok_response(**StatPayload.from_stat(st).to_fields())

    def _op_lstat(self, message: dict[str, Any]) -> bytes:
        real = self._require(str(message["path"]), "l", follow=False)
        st = self._kcall("lstat", real)
        return ok_response(**StatPayload.from_stat(st).to_fields())

    def _op_access(self, message: dict[str, Any]) -> bytes:
        letters = str(message.get("letters", "l")) or "l"
        real = self._require(str(message["path"]), letters)
        self._kcall("stat", real)
        return ok_response()

    def _op_readdir(self, message: dict[str, Any]) -> bytes:
        real = self._require(str(message["path"]), "l")
        names = [n for n in self._kcall("readdir", real) if n != ACL_FILE_NAME]
        return ok_response(names=names)

    def _op_readlink(self, message: dict[str, Any]) -> bytes:
        real = self._require(str(message["path"]), "l", follow=False)
        return ok_response(target=self._kcall("readlink", real))

    # ------------------------------------------------------------------ #
    # namespace ops (same rules as the identity-box handlers)
    # ------------------------------------------------------------------ #

    def _op_mkdir(self, message: dict[str, Any]) -> bytes:
        real = self.server.real_path(str(message["path"]))
        _res, new_acl = self.server.policy.plan_mkdir(self._who, real)
        self._kcall("mkdir", real, int(message.get("mode", 0o755)))
        self.server.policy.apply_mkdir(real, new_acl)
        return ok_response()

    def _op_rmdir(self, message: dict[str, Any]) -> bytes:
        real = self.server.real_path(str(message["path"]))
        decision = self.server.policy.check_remove_dir(self._who, real)
        if not decision.allowed:
            raise err(Errno.EACCES, f"{self._who} may not rmdir {real}")
        # attempt first so errno semantics match the kernel's; the ACL file
        # is the one obstacle the server itself planted
        try:
            self._kcall("rmdir", real)
        except KernelError as exc:
            if exc.errno is not Errno.ENOTEMPTY:
                raise
            if self._kcall("readdir", real) != [ACL_FILE_NAME]:
                raise
            self._kcall("unlink", join(real, ACL_FILE_NAME))
            self._kcall("rmdir", real)
        self.server.policy.invalidate(real)
        return ok_response()

    def _op_unlink(self, message: dict[str, Any]) -> bytes:
        vpath = str(message["path"])
        self._protect_acl_file(vpath)
        real = self._require(vpath, "w", follow=False, scope="parent")
        self._kcall("unlink", real)
        return ok_response()

    def _op_rename(self, message: dict[str, Any]) -> bytes:
        old_v, new_v = str(message["oldpath"]), str(message["newpath"])
        self._protect_acl_file(old_v)
        self._protect_acl_file(new_v)
        old = self._require(old_v, "w", follow=False, scope="parent")
        new = self._require(new_v, "w", follow=False, scope="parent")
        self._kcall("rename", old, new)
        self.server.policy.invalidate_all()
        return ok_response()

    def _op_symlink(self, message: dict[str, Any]) -> bytes:
        link_v = str(message["linkpath"])
        self._protect_acl_file(link_v)
        real = self._require(link_v, "w", follow=False)
        # store the target as a *protocol* path translated to a real one,
        # so the link resolves inside the export namespace
        target_real = self.server.real_path(str(message["target"]))
        self._kcall("symlink", target_real, real)
        return ok_response()

    def _op_link(self, message: dict[str, Any]) -> bytes:
        old_v, new_v = str(message["oldpath"]), str(message["newpath"])
        self._protect_acl_file(old_v)
        self._protect_acl_file(new_v)
        old = self.server.real_path(old_v)
        new = self.server.real_path(new_v)
        self.server.policy.check_hard_link(self._who, old, new)
        self._kcall("link", old, new)
        return ok_response()

    def _op_truncate(self, message: dict[str, Any]) -> bytes:
        vpath = str(message["path"])
        self._protect_acl_file(vpath)
        real = self._require(vpath, "w")
        self._kcall("truncate", real, int(message["length"]))
        return ok_response()

    # ------------------------------------------------------------------ #
    # ACL administration
    # ------------------------------------------------------------------ #

    def _acl_dir_for(self, real: str) -> str:
        st = self._kcall("stat", real)
        if st.is_dir:
            return real
        head, _, _ = real.rpartition("/")
        return head or "/"

    def _op_getacl(self, message: dict[str, Any]) -> bytes:
        real = self._require(str(message["path"]), "l")
        acl = self.server.policy.acl_of(self._acl_dir_for(real))
        return ok_response(acl=acl.render() if acl is not None else "")

    def _op_setacl(self, message: dict[str, Any]) -> bytes:
        real = self.server.real_path(str(message["path"]))
        acl_dir = self._acl_dir_for(real)
        self.server.policy.require_admin(self._who, acl_dir)
        try:
            rights = Rights.parse(str(message["rights"]))
        except RightsError as exc:
            raise err(Errno.EINVAL, str(exc)) from exc
        acl = self.server.policy.acl_of(acl_dir)
        if acl is None:
            raise err(Errno.EACCES, f"{acl_dir} has no ACL to administer")
        acl.set_entry(str(message["subject"]), rights)
        self.server.policy.write_acl(acl_dir, acl)
        return ok_response()

    def _op_aclcheck(self, message: dict[str, Any]) -> bytes:
        decision = self.server.policy.check(
            self._who, self.server.real_path(str(message["path"])), str(message["letters"])
        )
        return ok_response(allowed=decision.allowed)

    # ------------------------------------------------------------------ #
    # remote execution in an identity box (the paper's protocol extension)
    # ------------------------------------------------------------------ #

    def _op_exec(self, message: dict[str, Any]) -> bytes:
        vpath = str(message["path"])
        args = [str(a) for a in message.get("args", [])]
        vcwd = str(message.get("cwd", "/"))
        real_exe = self._require(vpath, "x")
        real_cwd = self._require(vcwd, "l")
        box = IdentityBox(
            self.server.machine,
            self.server.owner_cred,
            self._who,
            supervisor=self.server.supervisor,
            make_home=False,
        )
        proc = box.spawn(real_exe, args, cwd=real_cwd, comm=f"exec:{vpath}")
        self.server.machine.run()
        self.server.stats.execs += 1
        return ok_response(pid=proc.pid, status=proc.exit_status or 0)
