"""Federated Chirp: one export namespace sharded across many servers.

One Chirp server is a hard ceiling on namespace size and ops/sec; the
paper's identity model is what makes going multi-server safe.  This
module partitions the export namespace across N simulated servers by
**directory-prefix consistent hashing**: the first component of every
path is hashed onto a token ring built from the shard set, so one
top-level directory lives wholly on one shard, balance comes from many
prefixes, and adding a shard moves only the prefixes whose ring range
the newcomer claims.

The three pieces:

* :class:`ShardMap` — the versioned routing table.  Built from the
  catalog's federation view (:func:`repro.chirp.catalog.federation_members`);
  the catalog bumps the version whenever membership changes, so clients
  can cache the map and cheaply detect staleness on refresh.
* :class:`FederatedClient` — the routing layer.  Holds one
  authenticated :class:`~repro.chirp.client.ChirpClient` per shard
  (lazily connected, all with the *same* credentials — the identity-
  consistency invariant below), resolves each path to its owning shard,
  and exposes the familiar path-level API.  Cross-shard ``rename`` is an
  idempotent two-phase transfer: stage the bytes to a hidden staging
  name on the destination shard (resumable positioned writes), commit
  with an idempotency-keyed single-shard ``rename``, then clean up with
  an idempotency-keyed ``unlink`` of the source — every step individually
  safe to retry under the fault layer, so the whole protocol is.
* :func:`deploy_federation` — the server-side harness: N machines, N
  servers (each telemetry-instrumented), one catalog, every shard
  registered with its federation name and ring weight.

**Identity-consistency invariant.**  A federation never mints per-shard
identities: every shard authenticates the same GSI credential to the
same principal string, every ACL names that same string, and therefore
an ACL check is byte-identical no matter which shard serves the path.
The routing layer authenticates each per-shard session with one
authenticator list, and root-ACL administration fans out to every shard
so the policy surface cannot drift.

Telemetry: every routed call runs under a ``fed:<op>`` span carrying a
``shard`` attribute; the per-shard clients share the federation's
:class:`~repro.core.telemetry.Telemetry`, so their ``rpc:*`` spans nest
under the federation span and ride the wire into each shard server —
one trace follows a cross-shard rename from the client through both
shards.  ``fed.ops{op=,shard=}`` counters give per-shard op counts.

**Replication.**  With ``ShardMap.replicas = k > 1`` every directory
prefix is owned by the first *k* distinct shards clockwise from its ring
point (successor placement): adding or losing a shard still only shifts
ring ranges, and ``k = 1`` is exactly the old single-owner federation.
Writes are **quorum writes** — applied to every replica in placement
order, succeeding once a strict majority answered definitely; each
per-shard session mints its own idempotency keys, so retried writes ride
the existing replay caches.  A replica that was unreachable gets the
write appended to a client-side *missed-write log*.  Reads are
**failover reads** — primary first, replica peers on unavailability,
with catalog-suspected shards demoted to last — and any replica with
logged missed writes replays them *before* serving (read repair), so a
failover can never surface a stale read.  Server-side,
:meth:`Federation.repair_shard` is the anti-entropy path: a rejoining
shard pulls what it missed from its replica peers by manifest diff,
through the same two-phase staging protocol cross-shard renames use,
before it re-advertises.  ``repl.*`` counters account for all of it.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..core.acl import ACL_FILE_NAME
from ..core.telemetry import Telemetry, instrument
from ..kernel.errno import Errno, KernelError
from ..kernel.fdtable import OpenFlags
from ..kernel.vfs import normalize
from ..net.network import Network
from .catalog import (
    CATALOG_PORT,
    CatalogRecord,
    CatalogServer,
    advertise,
    federation_members,
)
from .client import ChirpClient
from .protocol import CHIRP_PORT, FED_XFER_SUFFIX, ChirpError, StatPayload
from .retry import as_chirp_error, is_unavailable, quorum
from .server import ChirpServer

if TYPE_CHECKING:  # pragma: no cover
    from ..core.acl import Acl
    from ..net.cluster import Cluster
    from .auth import ClientAuthenticator, ServerAuth
    from .retry import RetryPolicy

#: Virtual nodes per unit of ring weight: enough for good balance at a
#: handful of shards without making map construction noticeable.
DEFAULT_VNODES = 64


def ring_hash(key: str) -> int:
    """A stable 64-bit hash (never the builtin ``hash``: routing must be
    identical across processes and PYTHONHASHSEED values)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


def path_prefix(path: str) -> str:
    """The routing key: the first component of the normalized path
    ("" for the root itself)."""
    norm = normalize(path if path.startswith("/") else "/" + path)
    if norm == "/":
        return ""
    return norm.split("/", 2)[1]


@dataclass(frozen=True)
class ShardInfo:
    """One member of a federation, as routing sees it."""

    name: str  #: catalog name (hostname:port)
    hostname: str
    port: int = CHIRP_PORT
    weight: int = 1
    #: the catalog's failure detector flagged this shard (missed
    #: heartbeats): still placed on the ring, demoted in routing order
    suspect: bool = False

    @classmethod
    def from_record(cls, record: CatalogRecord) -> "ShardInfo":
        return cls(
            name=record.name,
            hostname=record.hostname,
            port=record.port,
            weight=max(1, record.weight),
            suspect=record.suspect,
        )


def route_order(replicas: tuple[ShardInfo, ...]) -> tuple[ShardInfo, ...]:
    """Attempt order over a replica set: placement order, but shards the
    catalog suspects are demoted to last (stable within each class) —
    clients route around a likely-dead shard without moving any data."""
    return tuple(s for s in replicas if not s.suspect) + tuple(
        s for s in replicas if s.suspect
    )


@dataclass(frozen=True)
class ShardMap:
    """The versioned routing table: prefixes → shards, via a token ring.

    Deterministic by construction: tokens are stable hashes of
    ``"<shard name>#<i>"``, lookups are stable hashes of the path's
    first component, so every client (and every run) routes a given
    path to the same shard for a given membership.
    """

    federation: str
    version: int
    shards: tuple[ShardInfo, ...]
    vnodes: int = DEFAULT_VNODES
    #: owners per prefix (successor placement); 1 = single-owner routing
    replicas: int = 1

    @classmethod
    def from_records(
        cls,
        federation: str,
        version: int,
        records: list[CatalogRecord],
        vnodes: int = DEFAULT_VNODES,
        replicas: int = 1,
    ) -> "ShardMap":
        shards = tuple(
            sorted((ShardInfo.from_record(r) for r in records), key=lambda s: s.name)
        )
        return cls(
            federation=federation,
            version=version,
            shards=shards,
            vnodes=vnodes,
            replicas=replicas,
        )

    @cached_property
    def _ring(self) -> tuple[tuple[int, ...], tuple[ShardInfo, ...]]:
        tokens: list[tuple[int, str, ShardInfo]] = []
        for shard in self.shards:
            for i in range(self.vnodes * shard.weight):
                tokens.append((ring_hash(f"{shard.name}#{i}"), shard.name, shard))
        tokens.sort()
        return (
            tuple(t[0] for t in tokens),
            tuple(t[2] for t in tokens),
        )

    def replicas_for_prefix(self, prefix: str) -> tuple[ShardInfo, ...]:
        """The ordered replica set owning one prefix: the first
        ``replicas`` *distinct* shards clockwise from the prefix's ring
        point (successor placement).  The first entry is the primary —
        identical to the single owner a ``replicas=1`` map names."""
        if not self.shards:
            raise ChirpError(Errno.ENOENT, f"federation {self.federation!r} is empty")
        hashes, owners = self._ring
        want = min(max(1, self.replicas), len(self.shards))
        index = bisect_right(hashes, ring_hash(prefix)) % len(hashes)
        chosen: list[ShardInfo] = []
        seen: set[str] = set()
        for step in range(len(hashes)):
            owner = owners[(index + step) % len(hashes)]
            if owner.name in seen:
                continue
            seen.add(owner.name)
            chosen.append(owner)
            if len(chosen) == want:
                break
        return tuple(chosen)

    def replicas_for(self, path: str) -> tuple[ShardInfo, ...]:
        """The replica set owning ``path`` (its whole top-level directory)."""
        return self.replicas_for_prefix(path_prefix(path))

    def shard_for_prefix(self, prefix: str) -> ShardInfo:
        return self.replicas_for_prefix(prefix)[0]

    def shard_for(self, path: str) -> ShardInfo:
        """The primary shard owning ``path``."""
        return self.shard_for_prefix(path_prefix(path))

    def names(self) -> list[str]:
        return [s.name for s in self.shards]

    def describe(self) -> str:
        """A one-line-per-shard rendering for examples and debugging."""
        lines = [f"federation {self.federation!r} v{self.version}: "
                 f"{len(self.shards)} shard(s), {self.vnodes} vnodes/weight, "
                 f"{self.replicas} replica(s)/prefix"]
        for shard in self.shards:
            lines.append(
                f"  {shard.name}  host={shard.hostname}:{shard.port}  "
                f"weight={shard.weight}"
                + ("  SUSPECT" if shard.suspect else "")
            )
        return "\n".join(lines)


@dataclass
class FederationStats:
    """Routing-layer accounting for one federated client."""

    routed: dict[str, int] = field(default_factory=dict)
    map_refreshes: int = 0
    map_rebuilds: int = 0
    transfers: int = 0
    transfer_bytes: int = 0
    #: replication accounting (all zero on a replicas=1 map)
    quorum_writes: int = 0
    quorum_failures: int = 0
    failover_reads: int = 0
    read_repairs: int = 0
    missed_writes: int = 0

    def count(self, shard_name: str) -> None:
        self.routed[shard_name] = self.routed.get(shard_name, 0) + 1


class FederatedClient:
    """Path-level Chirp API over a sharded namespace.

    Every public operation resolves its path through the cached
    :class:`ShardMap` and delegates to that shard's authenticated
    client.  Operations on the root ("/") that are namespace-wide —
    ``readdir`` and ``setacl`` — fan out across every shard (listing is
    the union; policy administration applies everywhere, preserving the
    identity-consistency invariant).
    """

    def __init__(
        self,
        network: Network,
        client_host: str,
        shard_map: ShardMap,
        authenticators: "list[ClientAuthenticator]",
        *,
        retry: "RetryPolicy | None" = None,
        telemetry: Telemetry | None = None,
        catalog_host: str = "",
        catalog_port: int = CATALOG_PORT,
    ) -> None:
        self.network = network
        self.client_host = client_host
        self.shard_map = shard_map
        self.authenticators = list(authenticators)
        self.retry = retry
        self.telemetry = telemetry
        self.catalog_host = catalog_host
        self.catalog_port = catalog_port
        self.stats = FederationStats()
        self._clients: dict[str, ChirpClient] = {}
        #: per-replica missed-write log: writes a replica was unreachable
        #: for, replayed (in order) before that replica next serves
        self._missed: dict[str, list[tuple[str, Callable[[ChirpClient], Any]]]] = {}

    # ------------------------------------------------------------------ #
    # construction and the shard-map cache
    # ------------------------------------------------------------------ #

    @classmethod
    def connect(
        cls,
        network: Network,
        client_host: str,
        federation: str,
        catalog_host: str,
        authenticators: "list[ClientAuthenticator]",
        *,
        catalog_port: int = CATALOG_PORT,
        retry: "RetryPolicy | None" = None,
        telemetry: Telemetry | None = None,
        vnodes: int = DEFAULT_VNODES,
        replicas: int = 1,
    ) -> "FederatedClient":
        """Fetch the shard map from the catalog and build the client."""
        version, records = federation_members(
            network, client_host, federation, catalog_host, catalog_port
        )
        shard_map = ShardMap.from_records(
            federation, version, records, vnodes, replicas=replicas
        )
        return cls(
            network,
            client_host,
            shard_map,
            authenticators,
            retry=retry,
            telemetry=telemetry,
            catalog_host=catalog_host,
            catalog_port=catalog_port,
        )

    def refresh_map(self) -> bool:
        """Re-fetch the federation view; rebuild the map if the catalog's
        membership version moved.  Returns whether the map changed.

        This is the cache-invalidation path: sessions to shards that are
        still members are kept (their descriptors and replay state
        survive), sessions to departed shards are closed.
        """
        if not self.catalog_host:
            raise ChirpError(Errno.EINVAL, "federated client has no catalog")
        self.stats.map_refreshes += 1
        version, records = federation_members(
            self.network,
            self.client_host,
            self.shard_map.federation,
            self.catalog_host,
            self.catalog_port,
        )
        if version == self.shard_map.version:
            return False
        self.shard_map = ShardMap.from_records(
            self.shard_map.federation,
            version,
            records,
            self.shard_map.vnodes,
            replicas=self.shard_map.replicas,
        )
        self.stats.map_rebuilds += 1
        keep = set(self.shard_map.names())
        for name in [n for n in self._clients if n not in keep]:
            self._clients.pop(name).close()
        for name in [n for n in self._missed if n not in keep]:
            del self._missed[name]  # a departed shard's log is moot
        if self.telemetry is not None:
            self.telemetry.counter_inc("fed.map_rebuilds")
        return True

    def close(self) -> None:
        """Tear down every per-shard session; never raises.

        Some sessions may be to shards that died or blacked out mid-run
        (their transport is already broken); a failed goodbye on one must
        not leave the remaining sessions dangling."""
        for client in self._clients.values():
            try:
                client.close()
            except Exception:  # noqa: BLE001 - dead session, nothing to save
                pass
        self._clients.clear()
        self._missed.clear()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def shard_of(self, path: str) -> str:
        return self.shard_map.shard_for(path).name

    def replica_names(self, path: str) -> tuple[str, ...]:
        """The ordered replica set (by name) owning ``path``'s prefix."""
        return tuple(s.name for s in self.shard_map.replicas_for(path))

    def client_for(self, path: str) -> tuple[ChirpClient, str]:
        """The authenticated per-shard client owning ``path``."""
        shard = self.shard_map.shard_for(path)
        return self._client(shard), shard.name

    def _client(self, shard: ShardInfo) -> ChirpClient:
        client = self._clients.get(shard.name)
        if client is None:
            client = ChirpClient.connect(
                self.network,
                self.client_host,
                shard.hostname,
                shard.port,
                retry=self.retry,
                telemetry=self.telemetry,
                label=shard.name,
            )
            client.authenticate(self.authenticators)
            self._clients[shard.name] = client
        return client

    def _count(self, op: str, shard: ShardInfo) -> None:
        self.stats.count(shard.name)
        if self.telemetry is not None:
            self.telemetry.counter_inc("fed.ops", op=op, shard=shard.name)

    def _span(self, op: str, **attrs: Any):
        t = self.telemetry
        if t is None or not t.enabled:
            return None
        return t.start_span(f"fed:{op}", surface="chirp-fed", **attrs)

    def _end(self, span, status: str = "ok") -> None:
        if self.telemetry is not None:
            self.telemetry.end_span(span, status=status)

    # ------------------------------------------------------------------ #
    # replicated delegation: failover reads, quorum writes, read repair
    # ------------------------------------------------------------------ #

    def _attempt(
        self,
        op: str,
        shard: ShardInfo,
        call: Callable[[ChirpClient], Any],
        count: bool = True,
    ) -> Any:
        """One replica attempt: count it, connect, replay what the
        replica missed while dark, then run the operation."""
        if count:
            self._count(op, shard)
        client = self._client(shard)
        self._replay_missed(shard, client)
        return call(client)

    def _failover(
        self,
        op: str,
        ordered: tuple[ShardInfo, ...],
        call: Callable[[ChirpClient], Any],
        count: bool = True,
    ) -> Any:
        """A read: first replica to answer definitely wins; an
        unreachable replica is skipped (failover) as long as peers
        remain.  With one replica this is the old single-owner call."""
        last: ChirpError | None = None
        for index, shard in enumerate(ordered):
            try:
                return self._attempt(op, shard, call, count=count)
            except (ChirpError, KernelError) as exc:
                error = as_chirp_error(exc)
                if is_unavailable(error) and index + 1 < len(ordered):
                    last = error
                    self.stats.failover_reads += 1
                    if self.telemetry is not None:
                        self.telemetry.counter_inc(
                            "repl.failover_reads", op=op, shard=shard.name
                        )
                    continue
                raise error from exc
        raise last  # pragma: no cover - loop always raises or returns

    def _quorum(
        self,
        op: str,
        ordered: tuple[ShardInfo, ...],
        call: Callable[[ChirpClient], Any],
        count: bool = True,
    ) -> Any:
        """A write: apply to every replica, demand a strict majority of
        definite answers, and log the write for replicas that were
        unreachable so they converge later.  The verdict — result or
        error — is the first definite outcome in attempt order (replicas
        are deterministic, so definite outcomes agree)."""
        need = quorum(len(ordered))
        definite: list[tuple[ChirpError | None, Any]] = []
        downs: list[tuple[ShardInfo, ChirpError]] = []
        for shard in ordered:
            try:
                definite.append((None, self._attempt(op, shard, call, count=count)))
            except (ChirpError, KernelError) as exc:
                error = as_chirp_error(exc)
                if is_unavailable(error):
                    downs.append((shard, error))
                else:
                    definite.append((error, None))
        for shard, _error in downs:
            self._log_missed(shard, op, call)
        if len(definite) < need:
            if not definite:
                raise downs[0][1]  # replicas=1: surface the original error
            self.stats.quorum_failures += 1
            if self.telemetry is not None:
                self.telemetry.counter_inc("repl.quorum_failures", op=op)
            raise ChirpError(
                Errno.EAGAIN,
                f"{op}: only {len(definite)} of the {need} replica answers"
                " a write quorum needs",
            )
        if len(ordered) > 1:
            self.stats.quorum_writes += 1
            if self.telemetry is not None:
                self.telemetry.counter_inc("repl.quorum_writes", op=op)
        error, result = definite[0]
        if error is not None:
            raise error
        return result

    def _replay_missed(self, shard: ShardInfo, client: ChirpClient) -> None:
        """Read repair: re-apply, in order, every write this replica
        missed while unreachable.  Unavailability propagates (the
        replica is still dark; the caller fails over); a definite error
        means the state is already there — typically because anti-entropy
        repair ran first — and counts as converged."""
        entries = self._missed.get(shard.name)
        if not entries:
            return
        while entries:
            _op, apply = entries[0]
            try:
                apply(client)
            except (ChirpError, KernelError) as exc:
                error = as_chirp_error(exc)
                if is_unavailable(error):
                    raise error from exc
            entries.pop(0)
        del self._missed[shard.name]
        self.stats.read_repairs += 1
        if self.telemetry is not None:
            self.telemetry.counter_inc("repl.read_repairs", shard=shard.name)

    def _log_missed(
        self, shard: ShardInfo, op: str, apply: Callable[[ChirpClient], Any]
    ) -> None:
        self._missed.setdefault(shard.name, []).append((op, apply))
        self.stats.missed_writes += 1
        if self.telemetry is not None:
            self.telemetry.counter_inc("repl.missed_writes", op=op, shard=shard.name)

    def _delegated(self, op: str, path: str, call: Callable[[ChirpClient], Any]) -> Any:
        """Route a read: primary first, replica peers on unavailability."""
        ordered = route_order(self.shard_map.replicas_for(path))
        span = self._span(op, shard=ordered[0].name, path=path)
        status = "ok"
        try:
            return self._failover(op, ordered, call)
        except ChirpError as exc:
            status = exc.errno.name
            raise
        finally:
            self._end(span, status=status)

    def _mutating(self, op: str, path: str, call: Callable[[ChirpClient], Any]) -> Any:
        """Route a write: quorum across the path's replica set."""
        ordered = route_order(self.shard_map.replicas_for(path))
        span = self._span(op, shard=ordered[0].name, path=path)
        status = "ok"
        try:
            return self._quorum(op, ordered, call)
        except ChirpError as exc:
            status = exc.errno.name
            raise
        finally:
            self._end(span, status=status)

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #

    def whoami(self) -> str:
        return self._delegated("whoami", "/", lambda c: c.whoami())

    def whoami_all(self) -> dict[str, str]:
        """The authenticated principal at *every* shard — the identity-
        consistency invariant, observable."""
        return {
            shard.name: self._client(shard).whoami() for shard in self.shard_map.shards
        }

    def assert_identity_consistent(self) -> str:
        """Every shard must agree on who this client is; returns the
        (single) principal or raises."""
        principals = set(self.whoami_all().values())
        if len(principals) != 1:
            raise ChirpError(
                Errno.EACCES,
                f"identity diverged across shards: {sorted(principals)}",
            )
        return principals.pop()

    # ------------------------------------------------------------------ #
    # path-level API (same verbs as ChirpClient)
    # ------------------------------------------------------------------ #

    def stat(self, path: str) -> StatPayload:
        return self._delegated("stat", path, lambda c: c.stat(path))

    def lstat(self, path: str) -> StatPayload:
        return self._delegated("lstat", path, lambda c: c.lstat(path))

    def access(self, path: str, letters: str = "l") -> bool:
        return self._delegated("access", path, lambda c: c.access(path, letters))

    def readlink(self, path: str) -> str:
        return self._delegated("readlink", path, lambda c: c.readlink(path))

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._mutating("mkdir", path, lambda c: c.mkdir(path, mode))

    def rmdir(self, path: str) -> None:
        self._mutating("rmdir", path, lambda c: c.rmdir(path))

    def unlink(self, path: str) -> None:
        self._mutating("unlink", path, lambda c: c.unlink(path))

    def truncate(self, path: str, length: int) -> None:
        self._mutating("truncate", path, lambda c: c.truncate(path, length))

    def put(self, data: bytes, path: str, mode: int = 0o644) -> int:
        return self._mutating("put", path, lambda c: c.put(data, path, mode))

    def get(self, path: str) -> bytes:
        return self._delegated("get", path, lambda c: c.get(path))

    def getacl(self, path: str) -> str:
        return self._delegated("getacl", path, lambda c: c.getacl(path))

    def aclcheck(self, path: str, letters: str) -> bool:
        return self._delegated("aclcheck", path, lambda c: c.aclcheck(path, letters))

    def getacl_all(self, path: str = "/") -> dict[str, str]:
        """One path's ACL as every shard renders it (for invariance checks)."""
        return {
            shard.name: self._client(shard).getacl(path)
            for shard in self.shard_map.shards
        }

    def setacl(self, path: str, subject: str, rights: str) -> None:
        """Set an ACL entry; on the root this fans out to every shard so
        the namespace-wide policy surface cannot drift apart.  On a
        replicated map an unreachable shard gets the root entry logged
        as a missed write rather than failing the whole fan-out."""
        if path_prefix(path) == "":
            span = self._span("setacl", path=path, fanout=len(self.shard_map.shards))
            try:
                for shard in self.shard_map.shards:
                    self._count("setacl", shard)
                    try:
                        client = self._client(shard)
                        self._replay_missed(shard, client)
                        client.setacl(path, subject, rights)
                    except (ChirpError, KernelError) as exc:
                        if self.shard_map.replicas > 1 and is_unavailable(
                            as_chirp_error(exc)
                        ):
                            self._log_missed(
                                shard,
                                "setacl",
                                lambda c: c.setacl(path, subject, rights),
                            )
                            continue
                        raise as_chirp_error(exc) from exc
            finally:
                self._end(span)
            return
        self._mutating("setacl", path, lambda c: c.setacl(path, subject, rights))

    def readdir(self, path: str) -> list[str]:
        """List a directory; the root is the union across every shard.

        In-flight transfer staging names are shielded the way ACL files
        are: a half-finished migration is never visible to listings.  On
        a replicated map a dark shard is skipped — every prefix it owns
        is still listed by its replica peers.
        """
        if path_prefix(path) == "":
            span = self._span("readdir", path=path, fanout=len(self.shard_map.shards))
            try:
                names: set[str] = set()
                for shard in self.shard_map.shards:
                    self._count("readdir", shard)
                    try:
                        client = self._client(shard)
                        self._replay_missed(shard, client)
                        names.update(client.readdir(path))
                    except (ChirpError, KernelError) as exc:
                        if self.shard_map.replicas > 1 and is_unavailable(
                            as_chirp_error(exc)
                        ):
                            self.stats.failover_reads += 1
                            if self.telemetry is not None:
                                self.telemetry.counter_inc(
                                    "repl.failover_reads",
                                    op="readdir",
                                    shard=shard.name,
                                )
                            continue
                        raise as_chirp_error(exc) from exc
            finally:
                self._end(span)
        else:
            names = set(self._delegated("readdir", path, lambda c: c.readdir(path)))
        return sorted(n for n in names if not n.endswith(FED_XFER_SUFFIX))

    def symlink(self, target: str, linkpath: str) -> None:
        if self.replica_names(target) != self.replica_names(linkpath):
            raise ChirpError(
                Errno.EXDEV, "symlink target on a different shard would dangle"
            )
        self._mutating("symlink", linkpath, lambda c: c.symlink(target, linkpath))

    def link(self, oldpath: str, newpath: str) -> None:
        if self.replica_names(oldpath) != self.replica_names(newpath):
            raise ChirpError(Errno.EXDEV, "hard link across federation shards")
        self._mutating("link", oldpath, lambda c: c.link(oldpath, newpath))

    def exec(self, path: str, args: list[str] | None = None, cwd: str = "/") -> int:
        if path_prefix(cwd) != "" and self.replica_names(cwd) != self.replica_names(
            path
        ):
            raise ChirpError(
                Errno.EXDEV, "exec cwd and program live on different shards"
            )
        # exec mutates server-side state (the program's output files), so
        # it is quorum-written like any other write: every replica runs
        # the (deterministic) program, keeping their exports convergent
        return self._mutating("exec", path, lambda c: c.exec(path, args, cwd))

    # ------------------------------------------------------------------ #
    # rename: same-shard delegation or idempotent two-phase transfer
    # ------------------------------------------------------------------ #

    def rename(self, oldpath: str, newpath: str) -> None:
        src = self.shard_map.replicas_for(oldpath)
        dst = self.shard_map.replicas_for(newpath)
        if tuple(s.name for s in src) == tuple(d.name for d in dst):
            self._mutating("rename", oldpath, lambda c: c.rename(oldpath, newpath))
            return
        self._transfer_rename(oldpath, newpath, src, dst)

    def _transfer_rename(
        self,
        oldpath: str,
        newpath: str,
        src: tuple[ShardInfo, ...],
        dst: tuple[ShardInfo, ...],
    ) -> None:
        """Move one file between shard (replica set)s, safely under retries.

        Phase 1 (stage): read the source — a failover read, any live
        source replica serves — and write it to a hidden staging name on
        the destination; both are resumable positioned transfers, so a
        connection death or shard restart mid-stream picks up at the
        byte where it stopped.  Phase 2 (commit): a single-shard
        ``rename`` of staging → destination, carrying an idempotency
        key, makes the new name appear exactly once; the keyed ``unlink``
        of the source then retires the old name.  A retry of any step
        replays from the shard's idempotency cache rather than
        re-applying, so the transfer can neither lose the file nor
        duplicate it.  On replicated maps the staging, commit, and
        cleanup steps are quorum writes over their replica sets.
        """
        for shard in (*src, *dst):
            self._count("rename", shard)
        span = self._span(
            "rename", shard=dst[0].name, from_shard=src[0].name,
            to_shard=dst[0].name, path=oldpath,
        )
        try:
            src_order = route_order(src)
            dst_order = route_order(dst)
            mode = (
                self._failover(
                    "rename", src_order, lambda c: c.stat(oldpath), count=False
                ).mode
                or 0o644
            )
            data = self._failover(
                "rename", src_order, lambda c: c.get(oldpath), count=False
            )
            staging = newpath + FED_XFER_SUFFIX
            self._quorum(
                "rename",
                dst_order,
                lambda c: c.put(data, staging, mode=mode),
                count=False,
            )
            self._quorum(  # keyed commit
                "rename",
                dst_order,
                lambda c: c.rename(staging, newpath),
                count=False,
            )
            self._quorum(  # keyed cleanup
                "rename", src_order, lambda c: c.unlink(oldpath), count=False
            )
            self.stats.transfers += 1
            self.stats.transfer_bytes += len(data)
            if self.telemetry is not None:
                self.telemetry.counter_inc("fed.transfers")
                self.telemetry.counter_inc("fed.transfer_bytes", value=len(data))
        except ChirpError as exc:
            self._end(span, status=exc.errno.name)
            span = None
            raise
        finally:
            if span is not None:
                self._end(span)

    # ------------------------------------------------------------------ #
    # observability conveniences
    # ------------------------------------------------------------------ #

    def per_shard_ops(self) -> dict[str, int]:
        """Client-side routed-op counts per shard (from local stats)."""
        return dict(sorted(self.stats.routed.items()))


# --------------------------------------------------------------------- #
# server-side deployment harness
# --------------------------------------------------------------------- #


@dataclass
class ShardDeployment:
    """One deployed shard: its server plus its machine's telemetry."""

    server: ChirpServer
    telemetry: Telemetry
    weight: int = 1

    @property
    def name(self) -> str:
        return f"{self.server.hostname}:{self.server.port}"

    def busy_ns(self) -> int:
        """Total server-side processing time (the parallel-wall-clock
        model's per-shard load): the sum over this shard's pipeline
        latency histograms."""
        return sum(
            hist.sum
            for _key, hist in self.telemetry.histograms_named("pipeline.latency_ns")
        )

    def ops_served(self) -> int:
        return self.telemetry.counter_total("pipeline.ops")


@dataclass
class Federation:
    """A deployed federation: catalog + shards, with ops helpers."""

    name: str
    cluster: "Cluster"
    catalog: CatalogServer
    catalog_host: str
    shards: dict[str, ShardDeployment]
    #: owners per directory prefix (what clients should route with)
    replicas: int = 1

    def servers(self) -> Iterator[ChirpServer]:
        for deployment in self.shards.values():
            yield deployment.server

    def register_program(self, program_name: str, body) -> None:
        """Install a named program on every shard machine (for ``exec``)."""
        for deployment in self.shards.values():
            deployment.server.machine.register_program(program_name, body)

    def per_shard_op_counts(self) -> dict[str, int]:
        """Server-side pipeline op counts per shard, from telemetry."""
        return {name: d.ops_served() for name, d in sorted(self.shards.items())}

    def per_shard_busy_ns(self) -> dict[str, int]:
        return {name: d.busy_ns() for name, d in sorted(self.shards.items())}

    def advertise_all(self, from_host: str | None = None) -> None:
        """One heartbeat round: every shard re-reports to the catalog."""
        for deployment in self.shards.values():
            server = deployment.server
            advertise(
                self.cluster.network,
                from_host or server.hostname,
                server,
                self.catalog_host,
                catalog_port=self.catalog.port,
                federation=self.name,
                weight=deployment.weight,
            )

    def restart_shard(self, shard_name: str) -> None:
        """Crash one shard's service and bring it straight back: live
        connections break, the port keeps listening again, and the shard
        re-registers with the catalog (the re-registration path a
        restarted server must have)."""
        deployment = self.shards[shard_name]
        server = deployment.server
        self.cluster.crash_server(server.hostname, server.port)
        server.serve()
        advertise(
            self.cluster.network,
            server.hostname,
            server,
            self.catalog_host,
            catalog_port=self.catalog.port,
            federation=self.name,
            weight=deployment.weight,
        )

    # ------------------------------------------------------------------ #
    # replication ops: blackout drills and anti-entropy repair
    # ------------------------------------------------------------------ #

    def placement(self) -> ShardMap:
        """The deterministic replica placement over the *deployed* shard
        set.  Deliberately catalog-independent: repair must reason about
        a shard even while the catalog holds it suspect or evicted."""
        records = [
            CatalogRecord(
                name=d.name,
                hostname=d.server.hostname,
                port=d.server.port,
                owner="",
                federation=self.name,
                weight=d.weight,
            )
            for d in self.shards.values()
        ]
        return ShardMap.from_records(self.name, 0, records, replicas=self.replicas)

    def blackout_shard(self, shard_name: str, start_op: int, end_op: int):
        """Schedule one shard's whole-endpoint outage window (the
        kill-mid-run drill): while the installed fault plan's op counter
        is inside ``[start_op, end_op)`` the shard refuses everything."""
        server = self.shards[shard_name].server
        return self.cluster.schedule_blackout(
            server.port, start_op, end_op, host=server.hostname
        )

    def repair_shard(self, shard_name: str) -> dict[str, int]:
        """Anti-entropy: converge a rejoining shard's export with its
        replica peers.

        For every top-level prefix the shard replicates, the first
        *other* replica in placement order is the donor; the donor's
        export manifest is authoritative.  Files that differ (by mode,
        size, or content digest) are staged under the hidden transfer
        suffix and committed with a rename — the same two-phase protocol
        cross-shard renames use, so a crash mid-repair is invisible —
        and entries the donor no longer has are removed (a missed
        ``unlink``/``rename`` shows up as surplus).  The shared root ACL
        file converges from the first live peer.
        """
        placement = self.placement()
        target = self.shards[shard_name]
        totals = {"prefixes": 0, "copied": 0, "bytes": 0, "removed": 0}
        peers = [n for n in sorted(self.shards) if n != shard_name]
        if not peers:
            return totals
        manifests = {shard_name: target.server.export_manifest()}

        def manifest_of(name: str) -> dict[str, tuple]:
            if name not in manifests:
                manifests[name] = self.shards[name].server.export_manifest()
            return manifests[name]

        # the shared root ACL: every shard carries it, any live peer is
        # an authoritative donor
        self._sync_subtree(
            peers[0], shard_name, "/" + ACL_FILE_NAME, manifest_of, totals
        )
        prefixes: set[str] = set()
        for peer in peers:
            for path in manifest_of(peer):
                prefix = path.split("/", 2)[1]
                if prefix != ACL_FILE_NAME:
                    prefixes.add(prefix)
        for prefix in sorted(prefixes):
            owners = [s.name for s in placement.replicas_for_prefix(prefix)]
            if shard_name not in owners:
                continue
            donors = [n for n in owners if n != shard_name]
            if not donors:
                continue
            totals["prefixes"] += 1
            self._sync_subtree(donors[0], shard_name, "/" + prefix, manifest_of, totals)
        target.server.policy.invalidate_all()  # repaired ACL bytes win
        if target.server.read_cache is not None:
            # repair wrote through target.fs, below the pipeline: the
            # fast lane never saw those mutations, so memoized verdicts
            # on this replica may now be stale — flush them wholesale
            target.server.read_cache.invalidate_all()
            target.telemetry.counter_inc("fastlane.cache.cross_shard_flushes")
        telemetry = target.telemetry
        telemetry.counter_inc("repl.repairs")
        telemetry.counter_inc("repl.repair_files", value=totals["copied"])
        telemetry.counter_inc("repl.repair_bytes", value=totals["bytes"])
        telemetry.counter_inc("repl.repair_removed", value=totals["removed"])
        return totals

    def _sync_subtree(
        self,
        donor_name: str,
        target_name: str,
        vroot: str,
        manifest_of,
        totals: dict[str, int],
    ) -> None:
        """Mirror one subtree of the donor's export onto the target."""
        donor = self.shards[donor_name].server
        target = self.shards[target_name].server
        in_tree = lambda p: p == vroot or p.startswith(vroot + "/")  # noqa: E731
        want = {p: e for p, e in manifest_of(donor_name).items() if in_tree(p)}
        have = {p: e for p, e in manifest_of(target_name).items() if in_tree(p)}
        # surplus first, children before parents, so rmdir finds empties
        for path in sorted(set(have) - set(want), reverse=True):
            if have[path][0] == "dir":
                target.fs.rmdir(target.real_path(path))
            else:
                target.fs.unlink(target.real_path(path))
            totals["removed"] += 1
        # then the donor's tree, parents before children
        for path in sorted(want):
            entry = want[path]
            current = have.get(path)
            if entry == current:
                continue
            real = target.real_path(path)
            if entry[0] == "dir":
                if current is None:
                    target.fs.mkdir(real, entry[1])
                continue
            if current is not None and current[0] == "dir":
                target.fs.rmdir(real)
                current = None
            if entry[0] == "link":
                if current is not None:
                    target.fs.unlink(real)
                target.fs.symlink(target.real_path(entry[1]), real)
                continue
            data = donor.read_export_file(path)
            staging = real + FED_XFER_SUFFIX
            fd = target.fs.open(
                staging,
                int(OpenFlags.O_WRONLY | OpenFlags.O_CREAT | OpenFlags.O_TRUNC),
                entry[1],
            )
            try:
                offset = 0
                while offset < len(data):
                    offset += target.fs.pwrite(fd, data[offset : offset + 65536], offset)
            finally:
                target.fs.close(fd)
            target.fs.rename(staging, real)  # two-phase commit
            totals["copied"] += 1
            totals["bytes"] += len(data)

    def rejoin_shard(self, shard_name: str) -> dict[str, int]:
        """A dark shard coming back: pull missed state from replica
        peers *first*, then re-advertise — clients never get routed to
        an unrepaired replica."""
        totals = self.repair_shard(shard_name)
        deployment = self.shards[shard_name]
        advertise(
            self.cluster.network,
            deployment.server.hostname,
            deployment.server,
            self.catalog_host,
            catalog_port=self.catalog.port,
            federation=self.name,
            weight=deployment.weight,
        )
        return totals


def deploy_federation(
    cluster: "Cluster",
    name: str,
    n_shards: int,
    *,
    make_auth: "Callable[[], ServerAuth]",
    root_acl: "Acl",
    catalog: CatalogServer | None = None,
    catalog_host: str = "",
    port: int = CHIRP_PORT,
    owner_basename: str = "keeper",
    weights: "tuple[int, ...] | None" = None,
    host_pattern: str = "shard{i}.{name}",
    replicas: int = 1,
) -> Federation:
    """Stand up a sharded control plane on a cluster.

    Provisions one machine per shard (``shard<i>.<name>``), runs a
    telemetry-instrumented :class:`ChirpServer` on each under its own
    unprivileged operator, applies the *same* root ACL everywhere (the
    identity-consistency invariant starts here), and registers every
    shard in the catalog under the federation's name.
    """
    if n_shards < 1:
        raise ValueError("a federation needs at least one shard")
    if catalog is None:
        catalog_host = catalog_host or f"catalog.{name}"
        cluster.add_machine(catalog_host)
        catalog = CatalogServer(cluster.network, catalog_host)
        catalog.serve()
    elif not catalog_host:
        catalog_host = catalog.hostname
    shards: dict[str, ShardDeployment] = {}
    for i in range(n_shards):
        hostname = host_pattern.format(i=i, name=name)
        machine = cluster.add_machine(hostname)
        telemetry = instrument(machine)
        owner = machine.add_user(f"{owner_basename}{i}")
        server = ChirpServer(
            machine,
            owner,
            network=cluster.network,
            port=port,
            auth=make_auth(),
            telemetry=telemetry,
        )
        server.set_root_acl(root_acl)
        server.serve()
        weight = weights[i] if weights is not None else 1
        advertise(
            cluster.network,
            hostname,
            server,
            catalog_host,
            catalog_port=catalog.port,
            federation=name,
            weight=weight,
        )
        shards[f"{hostname}:{port}"] = ShardDeployment(
            server=server, telemetry=telemetry, weight=weight
        )
    return Federation(
        name=name,
        cluster=cluster,
        catalog=catalog,
        catalog_host=catalog_host,
        shards=shards,
        replicas=max(1, replicas),
    )
