"""Federated Chirp: one export namespace sharded across many servers.

One Chirp server is a hard ceiling on namespace size and ops/sec; the
paper's identity model is what makes going multi-server safe.  This
module partitions the export namespace across N simulated servers by
**directory-prefix consistent hashing**: the first component of every
path is hashed onto a token ring built from the shard set, so one
top-level directory lives wholly on one shard, balance comes from many
prefixes, and adding a shard moves only the prefixes whose ring range
the newcomer claims.

The three pieces:

* :class:`ShardMap` — the versioned routing table.  Built from the
  catalog's federation view (:func:`repro.chirp.catalog.federation_members`);
  the catalog bumps the version whenever membership changes, so clients
  can cache the map and cheaply detect staleness on refresh.
* :class:`FederatedClient` — the routing layer.  Holds one
  authenticated :class:`~repro.chirp.client.ChirpClient` per shard
  (lazily connected, all with the *same* credentials — the identity-
  consistency invariant below), resolves each path to its owning shard,
  and exposes the familiar path-level API.  Cross-shard ``rename`` is an
  idempotent two-phase transfer: stage the bytes to a hidden staging
  name on the destination shard (resumable positioned writes), commit
  with an idempotency-keyed single-shard ``rename``, then clean up with
  an idempotency-keyed ``unlink`` of the source — every step individually
  safe to retry under the fault layer, so the whole protocol is.
* :func:`deploy_federation` — the server-side harness: N machines, N
  servers (each telemetry-instrumented), one catalog, every shard
  registered with its federation name and ring weight.

**Identity-consistency invariant.**  A federation never mints per-shard
identities: every shard authenticates the same GSI credential to the
same principal string, every ACL names that same string, and therefore
an ACL check is byte-identical no matter which shard serves the path.
The routing layer authenticates each per-shard session with one
authenticator list, and root-ACL administration fans out to every shard
so the policy surface cannot drift.

Telemetry: every routed call runs under a ``fed:<op>`` span carrying a
``shard`` attribute; the per-shard clients share the federation's
:class:`~repro.core.telemetry.Telemetry`, so their ``rpc:*`` spans nest
under the federation span and ride the wire into each shard server —
one trace follows a cross-shard rename from the client through both
shards.  ``fed.ops{op=,shard=}`` counters give per-shard op counts.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..core.telemetry import Telemetry, instrument
from ..kernel.errno import Errno
from ..kernel.vfs import normalize
from ..net.network import Network
from .catalog import (
    CATALOG_PORT,
    CatalogRecord,
    CatalogServer,
    advertise,
    federation_members,
)
from .client import ChirpClient
from .protocol import CHIRP_PORT, ChirpError, StatPayload
from .server import ChirpServer

if TYPE_CHECKING:  # pragma: no cover
    from ..core.acl import Acl
    from ..net.cluster import Cluster
    from .auth import ClientAuthenticator, ServerAuth
    from .retry import RetryPolicy

#: Virtual nodes per unit of ring weight: enough for good balance at a
#: handful of shards without making map construction noticeable.
DEFAULT_VNODES = 64

#: Hidden staging suffix for in-flight cross-shard transfers; shielded
#: from directory listings so a mid-crash transfer is never visible.
FED_XFER_SUFFIX = ".__fedxfer__"


def ring_hash(key: str) -> int:
    """A stable 64-bit hash (never the builtin ``hash``: routing must be
    identical across processes and PYTHONHASHSEED values)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


def path_prefix(path: str) -> str:
    """The routing key: the first component of the normalized path
    ("" for the root itself)."""
    norm = normalize(path if path.startswith("/") else "/" + path)
    if norm == "/":
        return ""
    return norm.split("/", 2)[1]


@dataclass(frozen=True)
class ShardInfo:
    """One member of a federation, as routing sees it."""

    name: str  #: catalog name (hostname:port)
    hostname: str
    port: int = CHIRP_PORT
    weight: int = 1

    @classmethod
    def from_record(cls, record: CatalogRecord) -> "ShardInfo":
        return cls(
            name=record.name,
            hostname=record.hostname,
            port=record.port,
            weight=max(1, record.weight),
        )


@dataclass(frozen=True)
class ShardMap:
    """The versioned routing table: prefixes → shards, via a token ring.

    Deterministic by construction: tokens are stable hashes of
    ``"<shard name>#<i>"``, lookups are stable hashes of the path's
    first component, so every client (and every run) routes a given
    path to the same shard for a given membership.
    """

    federation: str
    version: int
    shards: tuple[ShardInfo, ...]
    vnodes: int = DEFAULT_VNODES

    @classmethod
    def from_records(
        cls,
        federation: str,
        version: int,
        records: list[CatalogRecord],
        vnodes: int = DEFAULT_VNODES,
    ) -> "ShardMap":
        shards = tuple(
            sorted((ShardInfo.from_record(r) for r in records), key=lambda s: s.name)
        )
        return cls(federation=federation, version=version, shards=shards, vnodes=vnodes)

    @cached_property
    def _ring(self) -> tuple[tuple[int, ...], tuple[ShardInfo, ...]]:
        tokens: list[tuple[int, str, ShardInfo]] = []
        for shard in self.shards:
            for i in range(self.vnodes * shard.weight):
                tokens.append((ring_hash(f"{shard.name}#{i}"), shard.name, shard))
        tokens.sort()
        return (
            tuple(t[0] for t in tokens),
            tuple(t[2] for t in tokens),
        )

    def shard_for_prefix(self, prefix: str) -> ShardInfo:
        if not self.shards:
            raise ChirpError(Errno.ENOENT, f"federation {self.federation!r} is empty")
        hashes, owners = self._ring
        index = bisect_right(hashes, ring_hash(prefix)) % len(hashes)
        return owners[index]

    def shard_for(self, path: str) -> ShardInfo:
        """The shard owning ``path`` (its whole top-level directory)."""
        return self.shard_for_prefix(path_prefix(path))

    def names(self) -> list[str]:
        return [s.name for s in self.shards]

    def describe(self) -> str:
        """A one-line-per-shard rendering for examples and debugging."""
        lines = [f"federation {self.federation!r} v{self.version}: "
                 f"{len(self.shards)} shard(s), {self.vnodes} vnodes/weight"]
        for shard in self.shards:
            lines.append(
                f"  {shard.name}  host={shard.hostname}:{shard.port}  "
                f"weight={shard.weight}"
            )
        return "\n".join(lines)


@dataclass
class FederationStats:
    """Routing-layer accounting for one federated client."""

    routed: dict[str, int] = field(default_factory=dict)
    map_refreshes: int = 0
    map_rebuilds: int = 0
    transfers: int = 0
    transfer_bytes: int = 0

    def count(self, shard_name: str) -> None:
        self.routed[shard_name] = self.routed.get(shard_name, 0) + 1


class FederatedClient:
    """Path-level Chirp API over a sharded namespace.

    Every public operation resolves its path through the cached
    :class:`ShardMap` and delegates to that shard's authenticated
    client.  Operations on the root ("/") that are namespace-wide —
    ``readdir`` and ``setacl`` — fan out across every shard (listing is
    the union; policy administration applies everywhere, preserving the
    identity-consistency invariant).
    """

    def __init__(
        self,
        network: Network,
        client_host: str,
        shard_map: ShardMap,
        authenticators: "list[ClientAuthenticator]",
        *,
        retry: "RetryPolicy | None" = None,
        telemetry: Telemetry | None = None,
        catalog_host: str = "",
        catalog_port: int = CATALOG_PORT,
    ) -> None:
        self.network = network
        self.client_host = client_host
        self.shard_map = shard_map
        self.authenticators = list(authenticators)
        self.retry = retry
        self.telemetry = telemetry
        self.catalog_host = catalog_host
        self.catalog_port = catalog_port
        self.stats = FederationStats()
        self._clients: dict[str, ChirpClient] = {}

    # ------------------------------------------------------------------ #
    # construction and the shard-map cache
    # ------------------------------------------------------------------ #

    @classmethod
    def connect(
        cls,
        network: Network,
        client_host: str,
        federation: str,
        catalog_host: str,
        authenticators: "list[ClientAuthenticator]",
        *,
        catalog_port: int = CATALOG_PORT,
        retry: "RetryPolicy | None" = None,
        telemetry: Telemetry | None = None,
        vnodes: int = DEFAULT_VNODES,
    ) -> "FederatedClient":
        """Fetch the shard map from the catalog and build the client."""
        version, records = federation_members(
            network, client_host, federation, catalog_host, catalog_port
        )
        shard_map = ShardMap.from_records(federation, version, records, vnodes)
        return cls(
            network,
            client_host,
            shard_map,
            authenticators,
            retry=retry,
            telemetry=telemetry,
            catalog_host=catalog_host,
            catalog_port=catalog_port,
        )

    def refresh_map(self) -> bool:
        """Re-fetch the federation view; rebuild the map if the catalog's
        membership version moved.  Returns whether the map changed.

        This is the cache-invalidation path: sessions to shards that are
        still members are kept (their descriptors and replay state
        survive), sessions to departed shards are closed.
        """
        if not self.catalog_host:
            raise ChirpError(Errno.EINVAL, "federated client has no catalog")
        self.stats.map_refreshes += 1
        version, records = federation_members(
            self.network,
            self.client_host,
            self.shard_map.federation,
            self.catalog_host,
            self.catalog_port,
        )
        if version == self.shard_map.version:
            return False
        self.shard_map = ShardMap.from_records(
            self.shard_map.federation, version, records, self.shard_map.vnodes
        )
        self.stats.map_rebuilds += 1
        keep = set(self.shard_map.names())
        for name in [n for n in self._clients if n not in keep]:
            self._clients.pop(name).close()
        if self.telemetry is not None:
            self.telemetry.counter_inc("fed.map_rebuilds")
        return True

    def close(self) -> None:
        for client in self._clients.values():
            client.close()
        self._clients.clear()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def shard_of(self, path: str) -> str:
        return self.shard_map.shard_for(path).name

    def client_for(self, path: str) -> tuple[ChirpClient, str]:
        """The authenticated per-shard client owning ``path``."""
        shard = self.shard_map.shard_for(path)
        return self._client(shard), shard.name

    def _client(self, shard: ShardInfo) -> ChirpClient:
        client = self._clients.get(shard.name)
        if client is None:
            client = ChirpClient.connect(
                self.network,
                self.client_host,
                shard.hostname,
                shard.port,
                retry=self.retry,
                telemetry=self.telemetry,
                label=shard.name,
            )
            client.authenticate(self.authenticators)
            self._clients[shard.name] = client
        return client

    def _route(self, op: str, path: str) -> ChirpClient:
        shard = self.shard_map.shard_for(path)
        self.stats.count(shard.name)
        if self.telemetry is not None:
            self.telemetry.counter_inc("fed.ops", op=op, shard=shard.name)
        return self._client(shard)

    def _span(self, op: str, **attrs: Any):
        t = self.telemetry
        if t is None or not t.enabled:
            return None
        return t.start_span(f"fed:{op}", surface="chirp-fed", **attrs)

    def _end(self, span, status: str = "ok") -> None:
        if self.telemetry is not None:
            self.telemetry.end_span(span, status=status)

    def _delegated(self, op: str, path: str, call: Callable[[ChirpClient], Any]) -> Any:
        client = self._route(op, path)
        span = self._span(op, shard=client.label, path=path)
        try:
            return call(client)
        except (ChirpError,) as exc:
            self._end(span, status=exc.errno.name)
            span = None
            raise
        finally:
            if span is not None:
                self._end(span)

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #

    def whoami(self) -> str:
        return self._delegated("whoami", "/", lambda c: c.whoami())

    def whoami_all(self) -> dict[str, str]:
        """The authenticated principal at *every* shard — the identity-
        consistency invariant, observable."""
        return {
            shard.name: self._client(shard).whoami() for shard in self.shard_map.shards
        }

    def assert_identity_consistent(self) -> str:
        """Every shard must agree on who this client is; returns the
        (single) principal or raises."""
        principals = set(self.whoami_all().values())
        if len(principals) != 1:
            raise ChirpError(
                Errno.EACCES,
                f"identity diverged across shards: {sorted(principals)}",
            )
        return principals.pop()

    # ------------------------------------------------------------------ #
    # path-level API (same verbs as ChirpClient)
    # ------------------------------------------------------------------ #

    def stat(self, path: str) -> StatPayload:
        return self._delegated("stat", path, lambda c: c.stat(path))

    def lstat(self, path: str) -> StatPayload:
        return self._delegated("lstat", path, lambda c: c.lstat(path))

    def access(self, path: str, letters: str = "l") -> bool:
        return self._delegated("access", path, lambda c: c.access(path, letters))

    def readlink(self, path: str) -> str:
        return self._delegated("readlink", path, lambda c: c.readlink(path))

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._delegated("mkdir", path, lambda c: c.mkdir(path, mode))

    def rmdir(self, path: str) -> None:
        self._delegated("rmdir", path, lambda c: c.rmdir(path))

    def unlink(self, path: str) -> None:
        self._delegated("unlink", path, lambda c: c.unlink(path))

    def truncate(self, path: str, length: int) -> None:
        self._delegated("truncate", path, lambda c: c.truncate(path, length))

    def put(self, data: bytes, path: str, mode: int = 0o644) -> int:
        return self._delegated("put", path, lambda c: c.put(data, path, mode))

    def get(self, path: str) -> bytes:
        return self._delegated("get", path, lambda c: c.get(path))

    def getacl(self, path: str) -> str:
        return self._delegated("getacl", path, lambda c: c.getacl(path))

    def aclcheck(self, path: str, letters: str) -> bool:
        return self._delegated("aclcheck", path, lambda c: c.aclcheck(path, letters))

    def getacl_all(self, path: str = "/") -> dict[str, str]:
        """One path's ACL as every shard renders it (for invariance checks)."""
        return {
            shard.name: self._client(shard).getacl(path)
            for shard in self.shard_map.shards
        }

    def setacl(self, path: str, subject: str, rights: str) -> None:
        """Set an ACL entry; on the root this fans out to every shard so
        the namespace-wide policy surface cannot drift apart."""
        if path_prefix(path) == "":
            span = self._span("setacl", path=path, fanout=len(self.shard_map.shards))
            try:
                for shard in self.shard_map.shards:
                    self.stats.count(shard.name)
                    if self.telemetry is not None:
                        self.telemetry.counter_inc("fed.ops", op="setacl", shard=shard.name)
                    self._client(shard).setacl(path, subject, rights)
            finally:
                self._end(span)
            return
        self._delegated("setacl", path, lambda c: c.setacl(path, subject, rights))

    def readdir(self, path: str) -> list[str]:
        """List a directory; the root is the union across every shard.

        In-flight transfer staging names are shielded the way ACL files
        are: a half-finished migration is never visible to listings.
        """
        if path_prefix(path) == "":
            span = self._span("readdir", path=path, fanout=len(self.shard_map.shards))
            try:
                names: set[str] = set()
                for shard in self.shard_map.shards:
                    self.stats.count(shard.name)
                    if self.telemetry is not None:
                        self.telemetry.counter_inc("fed.ops", op="readdir", shard=shard.name)
                    names.update(self._client(shard).readdir(path))
            finally:
                self._end(span)
        else:
            names = set(self._delegated("readdir", path, lambda c: c.readdir(path)))
        return sorted(n for n in names if not n.endswith(FED_XFER_SUFFIX))

    def symlink(self, target: str, linkpath: str) -> None:
        if self.shard_of(target) != self.shard_of(linkpath):
            raise ChirpError(
                Errno.EXDEV, "symlink target on a different shard would dangle"
            )
        self._delegated("symlink", linkpath, lambda c: c.symlink(target, linkpath))

    def link(self, oldpath: str, newpath: str) -> None:
        if self.shard_of(oldpath) != self.shard_of(newpath):
            raise ChirpError(Errno.EXDEV, "hard link across federation shards")
        self._delegated("link", oldpath, lambda c: c.link(oldpath, newpath))

    def exec(self, path: str, args: list[str] | None = None, cwd: str = "/") -> int:
        if path_prefix(cwd) != "" and self.shard_of(cwd) != self.shard_of(path):
            raise ChirpError(
                Errno.EXDEV, "exec cwd and program live on different shards"
            )
        return self._delegated("exec", path, lambda c: c.exec(path, args, cwd))

    # ------------------------------------------------------------------ #
    # rename: same-shard delegation or idempotent two-phase transfer
    # ------------------------------------------------------------------ #

    def rename(self, oldpath: str, newpath: str) -> None:
        src = self.shard_map.shard_for(oldpath)
        dst = self.shard_map.shard_for(newpath)
        if src.name == dst.name:
            self._delegated("rename", oldpath, lambda c: c.rename(oldpath, newpath))
            return
        self._transfer_rename(oldpath, newpath, src, dst)

    def _transfer_rename(
        self, oldpath: str, newpath: str, src: ShardInfo, dst: ShardInfo
    ) -> None:
        """Move one file between shards, safely under retries.

        Phase 1 (stage): read the source and write it to a hidden
        staging name on the destination — both are resumable positioned
        transfers, so a connection death or shard restart mid-stream
        picks up at the byte where it stopped.  Phase 2 (commit): a
        single-shard ``rename`` of staging → destination, carrying an
        idempotency key, makes the new name appear exactly once; the
        keyed ``unlink`` of the source then retires the old name.  A
        retry of any step replays from the shard's idempotency cache
        rather than re-applying, so the transfer can neither lose the
        file nor duplicate it.
        """
        for shard in (src, dst):
            self.stats.count(shard.name)
            if self.telemetry is not None:
                self.telemetry.counter_inc("fed.ops", op="rename", shard=shard.name)
        span = self._span(
            "rename", shard=dst.name, from_shard=src.name, to_shard=dst.name,
            path=oldpath,
        )
        try:
            source = self._client(src)
            destination = self._client(dst)
            mode = source.stat(oldpath).mode or 0o644
            data = source.get(oldpath)
            staging = newpath + FED_XFER_SUFFIX
            destination.put(data, staging, mode=mode)
            destination.rename(staging, newpath)  # keyed commit
            source.unlink(oldpath)  # keyed cleanup
            self.stats.transfers += 1
            self.stats.transfer_bytes += len(data)
            if self.telemetry is not None:
                self.telemetry.counter_inc("fed.transfers")
                self.telemetry.counter_inc("fed.transfer_bytes", value=len(data))
        except ChirpError as exc:
            self._end(span, status=exc.errno.name)
            span = None
            raise
        finally:
            if span is not None:
                self._end(span)

    # ------------------------------------------------------------------ #
    # observability conveniences
    # ------------------------------------------------------------------ #

    def per_shard_ops(self) -> dict[str, int]:
        """Client-side routed-op counts per shard (from local stats)."""
        return dict(sorted(self.stats.routed.items()))


# --------------------------------------------------------------------- #
# server-side deployment harness
# --------------------------------------------------------------------- #


@dataclass
class ShardDeployment:
    """One deployed shard: its server plus its machine's telemetry."""

    server: ChirpServer
    telemetry: Telemetry
    weight: int = 1

    @property
    def name(self) -> str:
        return f"{self.server.hostname}:{self.server.port}"

    def busy_ns(self) -> int:
        """Total server-side processing time (the parallel-wall-clock
        model's per-shard load): the sum over this shard's pipeline
        latency histograms."""
        return sum(
            hist.sum
            for _key, hist in self.telemetry.histograms_named("pipeline.latency_ns")
        )

    def ops_served(self) -> int:
        return self.telemetry.counter_total("pipeline.ops")


@dataclass
class Federation:
    """A deployed federation: catalog + shards, with ops helpers."""

    name: str
    cluster: "Cluster"
    catalog: CatalogServer
    catalog_host: str
    shards: dict[str, ShardDeployment]

    def servers(self) -> Iterator[ChirpServer]:
        for deployment in self.shards.values():
            yield deployment.server

    def register_program(self, program_name: str, body) -> None:
        """Install a named program on every shard machine (for ``exec``)."""
        for deployment in self.shards.values():
            deployment.server.machine.register_program(program_name, body)

    def per_shard_op_counts(self) -> dict[str, int]:
        """Server-side pipeline op counts per shard, from telemetry."""
        return {name: d.ops_served() for name, d in sorted(self.shards.items())}

    def per_shard_busy_ns(self) -> dict[str, int]:
        return {name: d.busy_ns() for name, d in sorted(self.shards.items())}

    def advertise_all(self, from_host: str | None = None) -> None:
        """One heartbeat round: every shard re-reports to the catalog."""
        for deployment in self.shards.values():
            server = deployment.server
            advertise(
                self.cluster.network,
                from_host or server.hostname,
                server,
                self.catalog_host,
                catalog_port=self.catalog.port,
                federation=self.name,
                weight=deployment.weight,
            )

    def restart_shard(self, shard_name: str) -> None:
        """Crash one shard's service and bring it straight back: live
        connections break, the port keeps listening again, and the shard
        re-registers with the catalog (the re-registration path a
        restarted server must have)."""
        deployment = self.shards[shard_name]
        server = deployment.server
        self.cluster.crash_server(server.hostname, server.port)
        server.serve()
        advertise(
            self.cluster.network,
            server.hostname,
            server,
            self.catalog_host,
            catalog_port=self.catalog.port,
            federation=self.name,
            weight=deployment.weight,
        )


def deploy_federation(
    cluster: "Cluster",
    name: str,
    n_shards: int,
    *,
    make_auth: "Callable[[], ServerAuth]",
    root_acl: "Acl",
    catalog: CatalogServer | None = None,
    catalog_host: str = "",
    port: int = CHIRP_PORT,
    owner_basename: str = "keeper",
    weights: "tuple[int, ...] | None" = None,
    host_pattern: str = "shard{i}.{name}",
) -> Federation:
    """Stand up a sharded control plane on a cluster.

    Provisions one machine per shard (``shard<i>.<name>``), runs a
    telemetry-instrumented :class:`ChirpServer` on each under its own
    unprivileged operator, applies the *same* root ACL everywhere (the
    identity-consistency invariant starts here), and registers every
    shard in the catalog under the federation's name.
    """
    if n_shards < 1:
        raise ValueError("a federation needs at least one shard")
    if catalog is None:
        catalog_host = catalog_host or f"catalog.{name}"
        cluster.add_machine(catalog_host)
        catalog = CatalogServer(cluster.network, catalog_host)
        catalog.serve()
    elif not catalog_host:
        catalog_host = catalog.hostname
    shards: dict[str, ShardDeployment] = {}
    for i in range(n_shards):
        hostname = host_pattern.format(i=i, name=name)
        machine = cluster.add_machine(hostname)
        telemetry = instrument(machine)
        owner = machine.add_user(f"{owner_basename}{i}")
        server = ChirpServer(
            machine,
            owner,
            network=cluster.network,
            port=port,
            auth=make_auth(),
            telemetry=telemetry,
        )
        server.set_root_acl(root_acl)
        server.serve()
        weight = weights[i] if weights is not None else 1
        advertise(
            cluster.network,
            hostname,
            server,
            catalog_host,
            catalog_port=catalog.port,
            federation=name,
            weight=weight,
        )
        shards[f"{hostname}:{port}"] = ShardDeployment(
            server=server, telemetry=telemetry, weight=weight
        )
    return Federation(
        name=name,
        cluster=cluster,
        catalog=catalog,
        catalog_host=catalog_host,
        shards=shards,
    )
