"""Chirp client library.

Wraps a network connection in the Unix-like protocol: negotiate an
authentication method, then open/read/write/stat files, manage ACLs, and
invoke the remote ``exec``.  ``put``/``get`` are the staging conveniences
Figure 3's workflow uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..kernel.errno import Errno
from ..kernel.fdtable import OpenFlags
from ..net.network import Connection, Network
from .auth import ClientAuthenticator
from .protocol import (
    CHIRP_PORT,
    ChirpError,
    StatPayload,
    parse_response,
    request,
)

#: Transfer chunk size for put/get.
CHUNK = 64 * 1024


@dataclass
class ChirpClient:
    """One authenticated session with one Chirp server."""

    connection: Connection
    principal: str = ""
    _closed: bool = False

    # ------------------------------------------------------------------ #
    # session setup
    # ------------------------------------------------------------------ #

    @classmethod
    def connect(
        cls,
        network: Network,
        client_host: str,
        server_host: str,
        port: int = CHIRP_PORT,
    ) -> "ChirpClient":
        return cls(connection=network.connect(client_host, server_host, port))

    def authenticate(self, authenticators: list[ClientAuthenticator]) -> str:
        """Negotiate: offer each method in order; first success wins (§4)."""
        last_error: ChirpError | None = None
        for authenticator in authenticators:
            try:
                reply = self._call(
                    "auth",
                    method=authenticator.method,
                    payload=authenticator.payload(),
                )
            except ChirpError as exc:
                last_error = exc
                continue
            self.principal = str(reply["principal"])
            return self.principal
        raise last_error or ChirpError(Errno.EACCES, "no authenticators offered")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.connection.close()

    def _call(self, op: str, **fields: Any) -> dict[str, Any]:
        return parse_response(self.connection.call(request(op, **fields)))

    # ------------------------------------------------------------------ #
    # Unix-like interface
    # ------------------------------------------------------------------ #

    def whoami(self) -> str:
        return str(self._call("whoami")["principal"])

    def open(self, path: str, flags: int = 0, mode: int = 0o644) -> int:
        return int(self._call("open", path=path, flags=int(flags), mode=mode)["fd"])

    def close_fd(self, fd: int) -> None:
        self._call("close", fd=fd)

    def pread(self, fd: int, length: int, offset: int) -> bytes:
        return self._call("pread", fd=fd, length=length, offset=offset)["data"]

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        return int(self._call("pwrite", fd=fd, data=data, offset=offset)["count"])

    def fstat(self, fd: int) -> StatPayload:
        return StatPayload.from_fields(self._call("fstat", fd=fd))

    def ftruncate(self, fd: int, length: int) -> None:
        self._call("ftruncate", fd=fd, length=length)

    def stat(self, path: str) -> StatPayload:
        return StatPayload.from_fields(self._call("stat", path=path))

    def lstat(self, path: str) -> StatPayload:
        return StatPayload.from_fields(self._call("lstat", path=path))

    def access(self, path: str, letters: str = "l") -> bool:
        try:
            self._call("access", path=path, letters=letters)
            return True
        except ChirpError as exc:
            if exc.errno in (Errno.EACCES, Errno.EPERM):
                return False
            raise

    def readdir(self, path: str) -> list[str]:
        return [str(n) for n in self._call("readdir", path=path)["names"]]

    def readlink(self, path: str) -> str:
        return str(self._call("readlink", path=path)["target"])

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._call("mkdir", path=path, mode=mode)

    def rmdir(self, path: str) -> None:
        self._call("rmdir", path=path)

    def unlink(self, path: str) -> None:
        self._call("unlink", path=path)

    def rename(self, oldpath: str, newpath: str) -> None:
        self._call("rename", oldpath=oldpath, newpath=newpath)

    def symlink(self, target: str, linkpath: str) -> None:
        self._call("symlink", target=target, linkpath=linkpath)

    def link(self, oldpath: str, newpath: str) -> None:
        self._call("link", oldpath=oldpath, newpath=newpath)

    def truncate(self, path: str, length: int) -> None:
        self._call("truncate", path=path, length=length)

    # ------------------------------------------------------------------ #
    # ACL administration
    # ------------------------------------------------------------------ #

    def getacl(self, path: str) -> str:
        return str(self._call("getacl", path=path)["acl"])

    def setacl(self, path: str, subject: str, rights: str) -> None:
        self._call("setacl", path=path, subject=subject, rights=rights)

    def aclcheck(self, path: str, letters: str) -> bool:
        return bool(self._call("aclcheck", path=path, letters=letters)["allowed"])

    # ------------------------------------------------------------------ #
    # staging conveniences and remote exec (Figure 3's verbs)
    # ------------------------------------------------------------------ #

    def put(self, data: bytes, path: str, mode: int = 0o644) -> int:
        """Stage data onto the server, chunked."""
        fd = self.open(
            path,
            OpenFlags.O_WRONLY | OpenFlags.O_CREAT | OpenFlags.O_TRUNC,
            mode,
        )
        try:
            written = 0
            for off in range(0, len(data), CHUNK):
                written += self.pwrite(fd, data[off : off + CHUNK], off)
            return written
        finally:
            self.close_fd(fd)

    def get(self, path: str) -> bytes:
        """Retrieve a whole remote file, chunked."""
        fd = self.open(path, OpenFlags.O_RDONLY)
        try:
            out = bytearray()
            offset = 0
            while True:
                chunk = self.pread(fd, CHUNK, offset)
                if not chunk:
                    return bytes(out)
                out.extend(chunk)
                offset += len(chunk)
        finally:
            self.close_fd(fd)

    def exec(self, path: str, args: list[str] | None = None, cwd: str = "/") -> int:
        """Run a remote program inside an identity box named by this
        connection's principal; returns its exit status."""
        reply = self._call("exec", path=path, args=args or [], cwd=cwd)
        return int(reply["status"])


@dataclass
class ChirpSession:
    """Context-manager sugar: connect + authenticate + close."""

    network: Network
    client_host: str
    server_host: str
    authenticators: list[ClientAuthenticator] = field(default_factory=list)
    port: int = CHIRP_PORT
    client: ChirpClient | None = None

    def __enter__(self) -> ChirpClient:
        self.client = ChirpClient.connect(
            self.network, self.client_host, self.server_host, self.port
        )
        self.client.authenticate(self.authenticators)
        return self.client

    def __exit__(self, *exc_info) -> None:
        if self.client is not None:
            self.client.close()
