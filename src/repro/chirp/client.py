"""Chirp client library.

Wraps a network connection in the Unix-like protocol: negotiate an
authentication method, then open/read/write/stat files, manage ACLs, and
invoke the remote ``exec``.  ``put``/``get`` are the staging conveniences
Figure 3's workflow uses.

With a :class:`~repro.chirp.retry.RetryPolicy` attached, the client
survives an unreliable network: every call gets a deadline on the
simulated clock, transient failures back off exponentially (with seeded
jitter) and retry, a dead connection is transparently re-established and
re-authenticated with the original credentials, and mutating path
operations carry idempotency keys so a retry can never silently apply an
operation twice.  Without a policy the client is the thin single-shot
wrapper it always was, except that transport failures surface as clean
:class:`ChirpError`\\ s rather than leaking kernel-level exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .. import config as repro_config
from ..core.telemetry import Telemetry, format_trace_parent
from ..kernel.errno import Errno, KernelError
from ..kernel.fdtable import OpenFlags
from ..net.network import Connection, Network
from ..net.rpc import ProtocolError
from .auth import ClientAuthenticator
from .protocol import (
    BATCH_LIMIT,
    CHIRP_PORT,
    ChirpError,
    StatPayload,
    parse_response,
    request,
)
from .retry import (
    IDEMPOTENCY_KEYED_OPS,
    RetryPolicy,
    as_chirp_error,
    breaks_connection,
    is_transient,
)

#: Transfer chunk size for put/get.
CHUNK = 64 * 1024


@dataclass
class ClientStats:
    """Resilience accounting for one client session."""

    calls: int = 0
    retries: int = 0
    reconnects: int = 0
    reauths: int = 0
    timeouts: int = 0
    transfer_restarts: int = 0
    backoff_ns: int = 0


@dataclass
class ChirpClient:
    """One authenticated session with one Chirp server."""

    connection: Connection
    principal: str = ""
    retry: RetryPolicy | None = None
    stats: ClientStats = field(default_factory=ClientStats)
    #: optional display/routing label (a federation stamps the shard
    #: name here so spans and counters attribute work per shard)
    label: str = ""
    #: optional metrics sink: one ``rpc:<op>`` span per *logical* call
    #: (its trace id rides the wire and is reused verbatim by retries)
    telemetry: Telemetry | None = None
    _closed: bool = False
    _authenticators: list[ClientAuthenticator] = field(default_factory=list)
    #: bumped on every reconnect; fds minted before a bump are dead
    _epoch: int = 0
    _idem_seq: int = 0
    _session_id: str = ""

    # ------------------------------------------------------------------ #
    # session setup
    # ------------------------------------------------------------------ #

    @classmethod
    def connect(
        cls,
        network: Network,
        client_host: str,
        server_host: str,
        port: int = CHIRP_PORT,
        retry: RetryPolicy | None = None,
        telemetry: Telemetry | None = None,
        label: str = "",
    ) -> "ChirpClient":
        attempts = retry.max_attempts if retry is not None else 1
        last: KernelError | None = None
        for attempt in range(attempts):
            if attempt:
                network.clock.advance(
                    retry.backoff_ns(attempt - 1, salt=attempt), "backoff"
                )
            try:
                connection = network.connect(client_host, server_host, port)
            except KernelError as exc:
                # a refused connect is retried only under a policy; every
                # other failure (and the single-shot case) surfaces as-is
                if retry is None or exc.errno is not Errno.ECONNREFUSED:
                    raise
                last = exc
                continue
            client = cls(
                connection=connection, retry=retry, telemetry=telemetry, label=label
            )
            client._session_id = f"{client_host}#{connection.conn_id}"
            return client
        raise as_chirp_error(last)

    def authenticate(self, authenticators: list[ClientAuthenticator]) -> str:
        """Negotiate: offer each method in order; first success wins (§4).

        A transport fault mid-offer (the server dropping the connection
        during the ``auth`` RPC) is not a verdict on the credential; with
        a retry policy the client reconnects and falls back to the next
        authenticator, and when a whole round produced only transient
        failures — no method was actually *rejected* — the negotiation
        backs off and runs another round.  The stale principal is cleared
        up front so a failed (re-)negotiation can never leave one
        attached.
        """
        if self._closed:
            raise ChirpError(Errno.EPIPE, "client is closed")
        self._authenticators = list(authenticators)
        self.principal = ""
        rounds = self.retry.max_attempts if self.retry is not None else 1
        last_error: ChirpError | None = None
        for round_no in range(rounds):
            if round_no:
                self.stats.retries += 1
                pause = self.retry.backoff_ns(round_no - 1, salt=self.stats.calls)
                self.stats.backoff_ns += pause
                self.connection.network.clock.advance(pause, "backoff")
            saw_transient = False
            for authenticator in authenticators:
                try:
                    if self.connection.closed:
                        if self.retry is None:
                            raise ChirpError(
                                Errno.EPIPE, "connection lost during auth"
                            )
                        self._connect_again()
                    self.stats.calls += 1
                    reply = parse_response(
                        self.connection.call(
                            request(
                                "auth",
                                method=authenticator.method,
                                payload=authenticator.payload(),
                            )
                        )
                    )
                except ChirpError as exc:
                    last_error = exc
                    if is_transient(exc):
                        saw_transient = True
                        if breaks_connection(exc):
                            self.connection.close()
                    continue
                except (KernelError, ProtocolError) as exc:
                    last_error = as_chirp_error(exc)
                    if self.retry is None:
                        raise last_error from exc
                    # connection state is unknowable; start clean for
                    # the next offer
                    saw_transient = True
                    self.connection.close()
                    continue
                self.principal = str(reply["principal"])
                return self.principal
            if not saw_transient:
                break  # every method was genuinely rejected
        raise last_error or ChirpError(Errno.EACCES, "no authenticators offered")

    @property
    def epoch(self) -> int:
        """Bumped on every reconnect; fds minted earlier are dead."""
        return self._epoch

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.connection.close()

    # ------------------------------------------------------------------ #
    # the call path: single-shot or retrying
    # ------------------------------------------------------------------ #

    def _call(self, op: str, **fields: Any) -> dict[str, Any]:
        if self._closed:
            raise ChirpError(Errno.EPIPE, "client is closed")
        if self.retry is None:
            return self._call_once(op, fields)
        return self._call_retrying(op, fields)

    def _start_rpc_span(self, op: str, fields: dict[str, Any]):
        """Open the per-logical-call span and stamp its id on the wire.

        The ``trace`` envelope field is computed exactly once, *before*
        any attempt runs, so a retried frame carries the same trace id as
        the original — mirroring the idempotency key's once-per-call
        semantics.
        """
        t = self.telemetry
        if t is None or not t.enabled:
            return None, fields
        attrs = {"shard": self.label} if self.label else {}
        span = t.start_span(f"rpc:{op}", surface="chirp-client", **attrs)
        return span, {**fields, "trace": format_trace_parent(span)}

    def _end_rpc_span(self, span, op: str, error: BaseException | None) -> None:
        if span is None:
            return
        status = "ok"
        if isinstance(error, (ChirpError, KernelError)):
            status = error.errno.name
        elif error is not None:
            status = "error"
        t = self.telemetry
        t.end_span(span, status=status)
        t.observe("client.latency_ns", span.duration_ns, op=op)
        t.counter_inc("client.calls", op=op, status=status)

    def _call_once(self, op: str, fields: dict[str, Any]) -> dict[str, Any]:
        span, fields = self._start_rpc_span(op, fields)
        self.stats.calls += 1
        error: BaseException | None = None
        try:
            return parse_response(self.connection.call(request(op, **fields)))
        except (KernelError, ProtocolError) as exc:
            error = as_chirp_error(exc)
            raise error from exc
        finally:
            self._end_rpc_span(span, op, error)

    def _call_retrying(self, op: str, fields: dict[str, Any]) -> dict[str, Any]:
        policy = self.retry
        clock = self.connection.network.clock
        span, fields = self._start_rpc_span(op, fields)
        if op in IDEMPOTENCY_KEYED_OPS:
            self._idem_seq += 1
            fields = {**fields, "idem": f"{self._session_id}:{self._idem_seq}"}
        error: BaseException | None = None
        try:
            return self._attempt_loop(op, fields, policy, clock)
        except BaseException as exc:
            error = exc
            raise
        finally:
            self._end_rpc_span(span, op, error)

    def _attempt_loop(
        self, op: str, fields: dict[str, Any], policy: RetryPolicy, clock
    ) -> dict[str, Any]:
        last: BaseException | None = None
        for attempt in range(policy.max_attempts):
            if attempt:
                self.stats.retries += 1
                if self.telemetry is not None:
                    self.telemetry.counter_inc("client.retries", op=op)
                pause = policy.backoff_ns(attempt - 1, salt=self.stats.calls)
                self.stats.backoff_ns += pause
                clock.advance(pause, "backoff")
            try:
                if self.connection.closed:
                    self._reconnect()
                self.stats.calls += 1
                start_ns = clock.now_ns
                frame = self.connection.call(request(op, **fields))
                reply = parse_response(frame)
                if clock.now_ns - start_ns > policy.call_timeout_ns:
                    # the answer arrived after the caller gave up: the
                    # response is discarded and the connection (whose
                    # framing we just abandoned) is torn down
                    self.stats.timeouts += 1
                    raise ChirpError(
                        Errno.ETIMEDOUT, f"{op} response past deadline"
                    )
                return reply
            except (ChirpError, KernelError, ProtocolError) as exc:
                if breaks_connection(exc):
                    self.connection.close()
                if not is_transient(exc):
                    raise as_chirp_error(exc) from exc
                last = exc
        raise as_chirp_error(last)

    def _connect_again(self) -> None:
        """Re-establish the transport, retrying refused connects."""
        policy = self.retry
        old = self.connection
        network = old.network
        clock = network.clock
        last: KernelError | None = None
        for attempt in range(policy.max_attempts):
            if attempt:
                pause = policy.backoff_ns(attempt - 1, salt=self.stats.reconnects)
                self.stats.backoff_ns += pause
                clock.advance(pause, "backoff")
            try:
                self.connection = network.connect(
                    old.client_host, old.server_host, old.port
                )
            except KernelError as exc:
                if exc.errno is not Errno.ECONNREFUSED:
                    raise as_chirp_error(exc) from exc
                last = exc
                continue
            self._epoch += 1
            self.stats.reconnects += 1
            return
        raise as_chirp_error(last)

    def _reconnect(self) -> None:
        """New connection plus a fresh identity negotiation."""
        self._connect_again()
        if self._authenticators:
            self.stats.reauths += 1
            self.authenticate(self._authenticators)

    # ------------------------------------------------------------------ #
    # Unix-like interface
    # ------------------------------------------------------------------ #

    def whoami(self) -> str:
        return str(self._call("whoami")["principal"])

    def open(self, path: str, flags: int = 0, mode: int = 0o644) -> int:
        return int(self._call("open", path=path, flags=int(flags), mode=mode)["fd"])

    def close_fd(self, fd: int) -> None:
        self._call("close", fd=fd)

    def pread(self, fd: int, length: int, offset: int) -> bytes:
        return self._call("pread", fd=fd, length=length, offset=offset)["data"]

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        return int(self._call("pwrite", fd=fd, data=data, offset=offset)["count"])

    def fstat(self, fd: int) -> StatPayload:
        return StatPayload.from_fields(self._call("fstat", fd=fd))

    def ftruncate(self, fd: int, length: int) -> None:
        self._call("ftruncate", fd=fd, length=length)

    def stat(self, path: str) -> StatPayload:
        return StatPayload.from_fields(self._call("stat", path=path))

    def lstat(self, path: str) -> StatPayload:
        return StatPayload.from_fields(self._call("lstat", path=path))

    def access(self, path: str, letters: str = "l") -> bool:
        try:
            self._call("access", path=path, letters=letters)
            return True
        except ChirpError as exc:
            if exc.errno in (Errno.EACCES, Errno.EPERM):
                return False
            raise

    def readdir(self, path: str) -> list[str]:
        return [str(n) for n in self._call("readdir", path=path)["names"]]

    def readlink(self, path: str) -> str:
        return str(self._call("readlink", path=path)["target"])

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._call("mkdir", path=path, mode=mode)

    def rmdir(self, path: str) -> None:
        self._call("rmdir", path=path)

    def unlink(self, path: str) -> None:
        self._call("unlink", path=path)

    def rename(self, oldpath: str, newpath: str) -> None:
        self._call("rename", oldpath=oldpath, newpath=newpath)

    def symlink(self, target: str, linkpath: str) -> None:
        self._call("symlink", target=target, linkpath=linkpath)

    def link(self, oldpath: str, newpath: str) -> None:
        self._call("link", oldpath=oldpath, newpath=newpath)

    def truncate(self, path: str, length: int) -> None:
        self._call("truncate", path=path, length=length)

    # ------------------------------------------------------------------ #
    # ACL administration
    # ------------------------------------------------------------------ #

    def getacl(self, path: str) -> str:
        return str(self._call("getacl", path=path)["acl"])

    def setacl(self, path: str, subject: str, rights: str) -> None:
        self._call("setacl", path=path, subject=subject, rights=rights)

    def aclcheck(self, path: str, letters: str) -> bool:
        return bool(self._call("aclcheck", path=path, letters=letters)["allowed"])

    # ------------------------------------------------------------------ #
    # staging conveniences and remote exec (Figure 3's verbs)
    # ------------------------------------------------------------------ #

    def _fd_stale(self, exc: ChirpError, epoch: int) -> bool:
        """Did this descriptor die with its connection (vs a real EBADF)?

        Descriptors do not survive reconnects, so a retried descriptor op
        after a reconnect reports EBADF from the fresh connection.  That
        EBADF is transport weather, not a verdict: the caller reopens the
        path and resumes — ``pread``/``pwrite`` offsets are absolute, so
        a revived descriptor continues exactly where the old one died.
        """
        return (
            self.retry is not None
            and exc.errno is Errno.EBADF
            and self._epoch != epoch
        )

    def _close_fd_quietly(self, fd: int, epoch: int) -> None:
        try:
            self.close_fd(fd)
        except ChirpError as exc:
            # an fd minted before a reconnect died with its connection;
            # anything else is a real error
            if not self._fd_stale(exc, epoch):
                raise

    def put(self, data: bytes, path: str, mode: int = 0o644) -> int:
        """Stage data onto the server, chunked; survives reconnects.

        The transfer is resumable: if the descriptor dies with its
        connection mid-stream, the path is reopened *without* O_TRUNC —
        chunks already written stay written — and the stream picks up at
        the same absolute offset.  A stall budget (consecutive revivals
        with zero forward progress) bounds the worst case.

        Under ``REPRO_COALESCE`` adjacent chunks ride one batch envelope
        instead of one wire frame each; bytes on the server are
        identical either way.
        """
        if repro_config.coalesce_enabled():
            return self._put_coalesced(data, path, mode)
        fd = self.open(
            path, OpenFlags.O_WRONLY | OpenFlags.O_CREAT | OpenFlags.O_TRUNC, mode
        )
        epoch = self._epoch
        written = 0
        stalls = 0
        try:
            for off in range(0, len(data), CHUNK):
                while True:
                    try:
                        written += self.pwrite(fd, data[off : off + CHUNK], off)
                        stalls = 0
                        break
                    except ChirpError as exc:
                        if not self._fd_stale(exc, epoch) or (
                            self.retry is not None
                            and stalls + 1 >= self.retry.max_attempts
                        ):
                            raise
                        stalls += 1
                        self.stats.transfer_restarts += 1
                        fd = self.open(path, OpenFlags.O_WRONLY, mode)
                        epoch = self._epoch
            return written
        finally:
            self._close_fd_quietly(fd, epoch)

    def get(self, path: str) -> bytes:
        """Retrieve a whole remote file, chunked; survives reconnects.

        Resumable like :meth:`put`: a descriptor that died with its
        connection is revived by reopening the path, and reading resumes
        at the same absolute offset.
        """
        fd = self.open(path, OpenFlags.O_RDONLY)
        epoch = self._epoch
        out = bytearray()
        stalls = 0
        try:
            if repro_config.coalesce_enabled():
                # bulk phase in batch envelopes; the loop below reads
                # whatever is left and proves EOF with an empty pread
                fd, epoch = self._prefetch_coalesced(fd, epoch, path, out)
            while True:
                try:
                    chunk = self.pread(fd, CHUNK, len(out))
                    stalls = 0
                except ChirpError as exc:
                    if not self._fd_stale(exc, epoch) or (
                        self.retry is not None
                        and stalls + 1 >= self.retry.max_attempts
                    ):
                        raise
                    stalls += 1
                    self.stats.transfer_restarts += 1
                    fd = self.open(path, OpenFlags.O_RDONLY)
                    epoch = self._epoch
                    continue
                if not chunk:
                    return bytes(out)
                out.extend(chunk)
        finally:
            self._close_fd_quietly(fd, epoch)

    def batch(self, frames: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Send several requests in one coalescing envelope.

        Returns the per-slot results in order: ``{"ok": True, ...}`` with
        the op's payload, or ``{"ok": False, "errno": ..., "error": ...}``.
        A refused slot does not disturb its neighbours; envelope-level
        refusals (overload shed, unauthenticated connection, malformed
        envelope) raise :class:`ChirpError` as any single call would.
        """
        return list(self._call("batch", frames=list(frames))["results"])

    @staticmethod
    def _slot_error(slot: dict[str, Any]) -> ChirpError:
        return ChirpError(
            Errno(int(slot.get("errno", int(Errno.EIO)))),
            str(slot.get("error", "")),
        )

    def _put_coalesced(self, data: bytes, path: str, mode: int) -> int:
        """Coalescing bulk path of :meth:`put`: chunks ride in batch
        envelopes of up to ``BATCH_LIMIT`` pwrites each.  Offsets are
        absolute, so a replayed or revived envelope lands the same bytes
        in the same places — the transfer stays idempotent.
        """
        fd = self.open(
            path, OpenFlags.O_WRONLY | OpenFlags.O_CREAT | OpenFlags.O_TRUNC, mode
        )
        epoch = self._epoch
        written = 0
        stalls = 0
        pending = list(range(0, len(data), CHUNK))
        try:
            while pending:
                frames = [
                    {
                        "op": "pwrite",
                        "fd": fd,
                        "data": data[off : off + CHUNK],
                        "offset": off,
                    }
                    for off in pending[:BATCH_LIMIT]
                ]
                results = self._call("batch", frames=frames)["results"]
                done = 0
                stale: ChirpError | None = None
                for slot in results:
                    if slot.get("ok"):
                        written += int(slot["count"])
                        done += 1
                        continue
                    exc = self._slot_error(slot)
                    if self._fd_stale(exc, epoch):
                        stale = exc  # descriptor died with its connection
                        break
                    raise exc
                pending = pending[done:]
                if stale is None:
                    stalls = 0
                    continue
                stalls = stalls + 1 if done == 0 else 0
                if self.retry is not None and stalls >= self.retry.max_attempts:
                    raise stale
                self.stats.transfer_restarts += 1
                fd = self.open(path, OpenFlags.O_WRONLY, mode)
                epoch = self._epoch
            return written
        finally:
            self._close_fd_quietly(fd, epoch)

    def _prefetch_coalesced(
        self, fd: int, epoch: int, path: str, out: bytearray
    ) -> tuple[int, int]:
        """Coalescing bulk phase of :meth:`get`: read up to the last
        ``fstat`` size in batch envelopes.  The caller's single-frame
        loop still runs afterwards, so the tail — and any growth since
        the size was sampled — is read exactly as an uncoalesced
        transfer would read it.
        """
        stalls = 0
        size: int | None = None
        while True:
            try:
                if size is None:
                    size = self.fstat(fd).size
                if len(out) >= size:
                    return fd, epoch
                frames = [
                    {"op": "pread", "fd": fd, "length": CHUNK, "offset": off}
                    for off in range(len(out), size, CHUNK)[:BATCH_LIMIT]
                ]
                progressed = False
                for slot in self._call("batch", frames=frames)["results"]:
                    if not slot.get("ok"):
                        raise self._slot_error(slot)
                    chunk = slot["data"]
                    out.extend(chunk)
                    if chunk:
                        progressed = True
                    if len(chunk) < CHUNK:
                        break  # short read: recompute offsets from here
                if progressed:
                    stalls = 0
                else:
                    size = None  # file shrank underneath us; re-sample
            except ChirpError as exc:
                if not self._fd_stale(exc, epoch) or (
                    self.retry is not None
                    and stalls + 1 >= self.retry.max_attempts
                ):
                    raise
                stalls += 1
                self.stats.transfer_restarts += 1
                fd = self.open(path, OpenFlags.O_RDONLY)
                epoch = self._epoch
                size = None

    def exec(self, path: str, args: list[str] | None = None, cwd: str = "/") -> int:
        """Run a remote program inside an identity box named by this
        connection's principal; returns its exit status."""
        reply = self._call("exec", path=path, args=args or [], cwd=cwd)
        return int(reply["status"])


@dataclass
class ChirpSession:
    """Context-manager sugar: connect + authenticate + close."""

    network: Network
    client_host: str
    server_host: str
    authenticators: list[ClientAuthenticator] = field(default_factory=list)
    port: int = CHIRP_PORT
    retry: RetryPolicy | None = None
    telemetry: Telemetry | None = None
    client: ChirpClient | None = None

    def __enter__(self) -> ChirpClient:
        self.client = ChirpClient.connect(
            self.network,
            self.client_host,
            self.server_host,
            self.port,
            self.retry,
            telemetry=self.telemetry,
        )
        self.client.authenticate(self.authenticators)
        return self.client

    def __exit__(self, *exc_info) -> None:
        if self.client is not None:
            self.client.close()
