"""The Chirp wire protocol.

"A Chirp server exports the available file space using a protocol that
closely resembles the Unix I/O interface" (§4).  Requests are framed
messages with an ``op`` field; responses carry ``ok`` plus either a result
payload or an ``errno``.  The reproduction adds the paper's one protocol
extension — "we have added to the Chirp protocol a simple ``exec`` call
that invokes a remote process" — and an ``aclcheck`` probe used by the
Parrot driver before running remote executables locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..kernel.errno import Errno
from ..net.rpc import ProtocolError, decode_message, encode_message

#: Default TCP port of a Chirp server (as in the real implementation).
CHIRP_PORT = 9094

#: Hidden staging suffix for in-flight federation transfers (cross-shard
#: renames and anti-entropy repair); shielded from directory listings and
#: export manifests so half-finished copies are never visible.
FED_XFER_SUFFIX = ".__fedxfer__"

#: Operations a connection may issue before authenticating.
PRE_AUTH_OPS = frozenset({"auth"})

#: The fast-lane coalescing envelope: one wire frame carrying several
#: adjacent requests from one connection.  The envelope is framing, not
#: an operation — the server unpacks it and runs each inner request
#: through the pipeline — so it may not nest and may not carry ``auth``
#: (identity must be settled before frames can be coalesced under it).
BATCH_OP = "batch"

#: Bound on requests per batch frame; a client coalescing a long
#: transfer splits it into envelopes of at most this many chunks.
BATCH_LIMIT = 64

#: The Unix-like operation set.
FILE_OPS = frozenset(
    {
        "open",
        "close",
        "pread",
        "pwrite",
        "fstat",
        "ftruncate",
        "stat",
        "lstat",
        "access",
        "readdir",
        "mkdir",
        "rmdir",
        "unlink",
        "rename",
        "symlink",
        "readlink",
        "link",
        "truncate",
        "getacl",
        "setacl",
        "aclcheck",
        "whoami",
        "exec",
    }
)

ALL_OPS = PRE_AUTH_OPS | FILE_OPS | {BATCH_OP}

#: Requests that may ride inside a batch envelope.
BATCHABLE_OPS = FILE_OPS


def batch_request(frames: list[dict], **envelope: Any) -> bytes:
    """Encode a batch envelope around already-decoded request dicts."""
    for frame in frames:
        op = frame.get("op")
        if op not in BATCHABLE_OPS:
            raise ProtocolError(f"op {op!r} cannot be coalesced")
    return encode_message({"op": BATCH_OP, "frames": list(frames), **envelope})


class ChirpError(Exception):
    """Client-side exception carrying the server's errno."""

    def __init__(self, errno: Errno, message: str = "") -> None:
        self.errno = Errno(errno)
        super().__init__(f"{self.errno.name}" + (f": {message}" if message else ""))


def request(op: str, **fields: Any) -> bytes:
    """Encode a request frame."""
    if op not in ALL_OPS:
        raise ProtocolError(f"unknown op {op!r}")
    return encode_message({"op": op, **fields})


def ok_response(**fields: Any) -> bytes:
    return encode_message({"ok": True, **fields})


def error_response(errno: Errno, message: str = "") -> bytes:
    return encode_message({"ok": False, "errno": int(errno), "error": message})


class UnknownOpError(ProtocolError):
    """A well-framed request naming no known operation.

    Distinct from a framing failure: the byte stream is still in sync,
    so the server can answer EINVAL and keep the connection alive,
    whereas an undecodable frame poisons the whole connection.
    """


def parse_request(frame: bytes) -> dict[str, Any]:
    """Decode and validate a request frame (server side)."""
    message = decode_message(frame)
    op = message.get("op")
    if not isinstance(op, str) or op not in ALL_OPS:
        raise UnknownOpError(f"bad op {op!r}")
    return message


def parse_response(frame: bytes) -> dict[str, Any]:
    """Decode a response; raise :class:`ChirpError` if it reports failure."""
    message = decode_message(frame)
    if message.get("ok"):
        return message
    errno = Errno(message.get("errno", int(Errno.EIO)))
    raise ChirpError(errno, str(message.get("error", "")))


@dataclass(frozen=True)
class StatPayload:
    """Flattened stat result as carried on the wire."""

    size: int
    is_dir: bool
    is_file: bool
    is_symlink: bool
    nlink: int
    mtime_ns: int
    #: permission bits (no file-type bits); lets a cross-shard transfer
    #: re-create the file with the same mode (notably the exec bit)
    mode: int = 0o644

    @classmethod
    def from_stat(cls, st) -> "StatPayload":
        return cls(
            size=st.st_size,
            is_dir=st.is_dir,
            is_file=st.is_file,
            is_symlink=st.is_symlink,
            nlink=st.st_nlink,
            mtime_ns=st.st_mtime_ns,
            mode=st.st_mode & 0o7777,
        )

    def to_fields(self) -> dict[str, Any]:
        return {
            "size": self.size,
            "is_dir": self.is_dir,
            "is_file": self.is_file,
            "is_symlink": self.is_symlink,
            "nlink": self.nlink,
            "mtime_ns": self.mtime_ns,
            "mode": self.mode,
        }

    @classmethod
    def from_fields(cls, fields: dict[str, Any]) -> "StatPayload":
        return cls(
            size=int(fields["size"]),
            is_dir=bool(fields["is_dir"]),
            is_file=bool(fields["is_file"]),
            is_symlink=bool(fields["is_symlink"]),
            nlink=int(fields["nlink"]),
            mtime_ns=int(fields["mtime_ns"]),
            mode=int(fields.get("mode", 0o644)),
        )
