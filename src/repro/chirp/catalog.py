"""The catalog server: discovery for Chirp servers.

"A collection of Chirp servers report themselves to a catalog, which then
publishes the set of available servers to interested parties" (§4).
Servers push periodic updates; clients list what is fresh.  Staleness is
judged against the shared simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..kernel.errno import Errno
from ..kernel.timing import NS_PER_S
from ..net.network import Network, Peer
from ..net.rpc import ProtocolError, decode_message, encode_message
from .server import ChirpServer

#: Default catalog port (as in real Chirp deployments).
CATALOG_PORT = 9097

#: Records older than this are considered stale (15 minutes).
DEFAULT_TTL_S = 900


@dataclass(frozen=True)
class CatalogRecord:
    """What one server advertises about itself."""

    name: str  #: unique server name (usually hostname:port)
    hostname: str
    port: int
    owner: str  #: principal-ish description of the operator
    updated_ns: int = 0

    def to_fields(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "hostname": self.hostname,
            "port": self.port,
            "owner": self.owner,
            "updated_ns": self.updated_ns,
        }

    @classmethod
    def from_fields(cls, fields: dict[str, Any]) -> "CatalogRecord":
        return cls(
            name=str(fields["name"]),
            hostname=str(fields["hostname"]),
            port=int(fields["port"]),
            owner=str(fields["owner"]),
            updated_ns=int(fields.get("updated_ns", 0)),
        )


class CatalogServer:
    """The directory of available servers."""

    def __init__(
        self,
        network: Network,
        hostname: str,
        port: int = CATALOG_PORT,
        ttl_s: int = DEFAULT_TTL_S,
    ) -> None:
        self.network = network
        self.hostname = hostname
        self.port = port
        self.ttl_ns = ttl_s * NS_PER_S
        self._records: dict[str, CatalogRecord] = {}

    def serve(self) -> None:
        self.network.listen(self.hostname, self.port, self._connect)

    def _connect(self, peer: Peer) -> "_CatalogConnection":
        return _CatalogConnection(self)

    # -- handler-side logic ------------------------------------------------ #

    def update(self, record: CatalogRecord) -> None:
        stamped = CatalogRecord(
            name=record.name,
            hostname=record.hostname,
            port=record.port,
            owner=record.owner,
            updated_ns=self.network.clock.now_ns,
        )
        self._records[record.name] = stamped

    def fresh_records(self) -> list[CatalogRecord]:
        horizon = self.network.clock.now_ns - self.ttl_ns
        return sorted(
            (r for r in self._records.values() if r.updated_ns >= horizon),
            key=lambda r: r.name,
        )


@dataclass
class _CatalogConnection:
    catalog: CatalogServer

    def handle(self, frame: bytes) -> bytes:
        try:
            message = decode_message(frame)
            op = message.get("op")
            if op == "update":
                self.catalog.update(CatalogRecord.from_fields(message["record"]))
                return encode_message({"ok": True})
            if op == "list":
                return encode_message(
                    {
                        "ok": True,
                        "records": [r.to_fields() for r in self.catalog.fresh_records()],
                    }
                )
            return encode_message(
                {"ok": False, "errno": int(Errno.EINVAL), "error": f"bad op {op!r}"}
            )
        except (ProtocolError, KeyError, TypeError, ValueError) as exc:
            return encode_message(
                {"ok": False, "errno": int(Errno.EINVAL), "error": str(exc)}
            )

    def on_close(self) -> None:  # pragma: no cover - stateless
        pass


# --------------------------------------------------------------------- #
# client helpers
# --------------------------------------------------------------------- #


def advertise(
    network: Network,
    from_host: str,
    server: ChirpServer,
    catalog_host: str,
    catalog_port: int = CATALOG_PORT,
    owner: str = "",
) -> None:
    """One heartbeat: a server reports itself to the catalog."""
    record = CatalogRecord(
        name=f"{server.hostname}:{server.port}",
        hostname=server.hostname,
        port=server.port,
        owner=owner or server.owner_cred.username,
    )
    conn = network.connect(from_host, catalog_host, catalog_port)
    try:
        reply = decode_message(
            conn.call(encode_message({"op": "update", "record": record.to_fields()}))
        )
        if not reply.get("ok"):
            raise RuntimeError(f"catalog update failed: {reply}")
    finally:
        conn.close()


def list_servers(
    network: Network,
    from_host: str,
    catalog_host: str,
    catalog_port: int = CATALOG_PORT,
) -> list[CatalogRecord]:
    """Ask the catalog for the fresh server set."""
    conn = network.connect(from_host, catalog_host, catalog_port)
    try:
        reply = decode_message(conn.call(encode_message({"op": "list"})))
        if not reply.get("ok"):
            raise RuntimeError(f"catalog list failed: {reply}")
        return [CatalogRecord.from_fields(f) for f in reply["records"]]
    finally:
        conn.close()
