"""The catalog server: discovery and control plane for Chirp servers.

"A collection of Chirp servers report themselves to a catalog, which then
publishes the set of available servers to interested parties" (§4).
Servers push periodic updates; clients list what is fresh.  Staleness is
judged against the shared simulated clock, and expired records are
*evicted* — not merely filtered — so a server that died stays gone until
it re-registers, and a restarted server under a fault schedule never
leaves a ghost entry behind.

Beyond flat discovery the catalog is the federation control plane
(:mod:`repro.chirp.federation`): a record may carry a ``federation``
name plus a ring ``weight``, and the catalog maintains a monotonically
increasing *membership version* per federation — bumped whenever a shard
joins, changes address, is evicted, or is removed.  Clients cache the
shard map they derive from a federation view and use the version to know
when that cache is stale.

Failure detection sits between heartbeat and eviction: a record whose
heartbeats stop is marked **suspect** after ``suspect_after_s`` (long
before the eviction TTL), its federation's version bumps so cached shard
maps refresh, and federation views carry the flag — replicated clients
demote suspect replicas to last in the read/write order, routing around
the likely-dead shard without moving any data (the record stays on the
ring, so placement is stable).  A heartbeat from a suspect — or from a
shard that went silent past the horizon without a sweep noticing —
clears the suspicion with exactly one more version bump.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..kernel.errno import Errno
from ..kernel.timing import NS_PER_S
from ..net.network import Network, Peer
from ..net.rpc import ProtocolError, decode_message, encode_message
from .server import ChirpServer

#: Default catalog port (as in real Chirp deployments).
CATALOG_PORT = 9097

#: Records older than this are considered stale (15 minutes).
DEFAULT_TTL_S = 900

#: Records silent this long are *suspect* (missed-heartbeat horizon):
#: still members, still on the ring, but demoted by replicated routing.
DEFAULT_SUSPECT_S = 300


@dataclass(frozen=True)
class CatalogRecord:
    """What one server advertises about itself."""

    name: str  #: unique server name (usually hostname:port)
    hostname: str
    port: int
    owner: str  #: principal-ish description of the operator
    updated_ns: int = 0
    #: federation this server is a shard of ("" = standalone server)
    federation: str = ""
    #: relative share of the consistent-hash ring within the federation
    weight: int = 1
    #: stamped by the *catalog* when rendering views — a server never
    #: advertises itself suspect; missed heartbeats do
    suspect: bool = False

    def to_fields(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "hostname": self.hostname,
            "port": self.port,
            "owner": self.owner,
            "updated_ns": self.updated_ns,
            "federation": self.federation,
            "weight": self.weight,
            "suspect": self.suspect,
        }

    @classmethod
    def from_fields(cls, fields: dict[str, Any]) -> "CatalogRecord":
        return cls(
            name=str(fields["name"]),
            hostname=str(fields["hostname"]),
            port=int(fields["port"]),
            owner=str(fields["owner"]),
            updated_ns=int(fields.get("updated_ns", 0)),
            federation=str(fields.get("federation", "")),
            weight=int(fields.get("weight", 1)),
            suspect=bool(fields.get("suspect", False)),
        )

    def membership_key(self) -> tuple:
        """The fields whose change means the *membership* changed (a
        heartbeat that only refreshes ``updated_ns`` is not a change;
        suspicion is catalog-side state, versioned separately)."""
        return (self.name, self.hostname, self.port, self.federation, self.weight)


class CatalogServer:
    """The directory of available servers and federation memberships."""

    def __init__(
        self,
        network: Network,
        hostname: str,
        port: int = CATALOG_PORT,
        ttl_s: int = DEFAULT_TTL_S,
        suspect_after_s: int = DEFAULT_SUSPECT_S,
    ) -> None:
        self.network = network
        self.hostname = hostname
        self.port = port
        self.ttl_ns = ttl_s * NS_PER_S
        self.suspect_ns = min(suspect_after_s * NS_PER_S, self.ttl_ns)
        self._records: dict[str, CatalogRecord] = {}
        #: per-federation membership version; bumped on join/change/leave
        self._fed_versions: dict[str, int] = {}
        #: names whose heartbeats stopped (failure detector's verdict)
        self._suspects: set[str] = set()
        #: eviction accounting (ghost entries reaped by staleness)
        self.evictions: int = 0
        #: suspicion accounting (records demoted by missed heartbeats)
        self.suspicions: int = 0

    def serve(self) -> None:
        self.network.listen(self.hostname, self.port, self._connect)

    def _connect(self, peer: Peer) -> "_CatalogConnection":
        return _CatalogConnection(self)

    # -- handler-side logic ------------------------------------------------ #

    def _bump(self, federation: str) -> None:
        if federation:
            self._fed_versions[federation] = self._fed_versions.get(federation, 0) + 1

    def update(self, record: CatalogRecord) -> None:
        """Register or heartbeat one server.

        Registration after eviction/removal is just another update: the
        record reappears and, if it names a federation, that federation's
        membership version is bumped so cached shard maps refresh.  A
        pure heartbeat (same membership fields) bumps nothing — unless it
        *revives* a shard the failure detector had given up on: a record
        that was marked suspect, or went silent past the suspect horizon
        without a sweep noticing, re-registers with exactly one bump
        (whether or not the eviction sweep ran in between), so cached
        maps refresh once and route through the shard again.
        """
        now_ns = self.network.clock.now_ns
        stamped = CatalogRecord(
            name=record.name,
            hostname=record.hostname,
            port=record.port,
            owner=record.owner,
            updated_ns=now_ns,
            federation=record.federation,
            weight=record.weight,
        )
        previous = self._records.get(record.name)
        self._records[record.name] = stamped
        was_suspect = record.name in self._suspects
        self._suspects.discard(record.name)
        went_silent = (
            previous is not None and previous.updated_ns < now_ns - self.suspect_ns
        )
        if previous is None:
            self._bump(stamped.federation)
        elif previous.membership_key() != stamped.membership_key():
            self._bump(previous.federation)
            if stamped.federation != previous.federation:
                self._bump(stamped.federation)
        elif was_suspect or went_silent:
            self._bump(stamped.federation)

    def remove(self, name: str) -> bool:
        """Explicit deregistration (an operator retiring a server)."""
        record = self._records.pop(name, None)
        if record is None:
            return False
        self._suspects.discard(name)
        self._bump(record.federation)
        return True

    def sweep(self) -> list[str]:
        """Evict every expired record; returns the evicted names.

        Eviction is the staleness fix: a dead server's entry is *gone*
        (its federation's version bumps, shard maps rebuild without it)
        rather than lingering invisible-but-present.  A restarted server
        re-registers through :meth:`update` like any newcomer.

        The same pass runs the failure detector: a record silent past the
        (shorter) suspect horizon but not yet expired is marked suspect —
        one version bump per new verdict, so cached shard maps refresh
        and demote the replica without evicting it from the ring.
        """
        now_ns = self.network.clock.now_ns
        horizon = now_ns - self.ttl_ns
        expired = [n for n, r in self._records.items() if r.updated_ns < horizon]
        for name in expired:
            record = self._records.pop(name)
            self._suspects.discard(name)
            self.evictions += 1
            self._bump(record.federation)
        suspect_horizon = now_ns - self.suspect_ns
        for name, record in self._records.items():
            if record.updated_ns < suspect_horizon and name not in self._suspects:
                self._suspects.add(name)
                self.suspicions += 1
                self._bump(record.federation)
        return expired

    def fresh_records(self) -> list[CatalogRecord]:
        self.sweep()
        return sorted(
            (
                replace(r, suspect=True) if r.name in self._suspects else r
                for r in self._records.values()
            ),
            key=lambda r: r.name,
        )

    def federation_version(self, federation: str) -> int:
        self.sweep()
        return self._fed_versions.get(federation, 0)

    def federation_view(self, federation: str) -> tuple[int, list[CatalogRecord]]:
        """The live membership of one federation, with its version."""
        members = [r for r in self.fresh_records() if r.federation == federation]
        return self._fed_versions.get(federation, 0), members


@dataclass
class _CatalogConnection:
    catalog: CatalogServer

    def handle(self, frame: bytes) -> bytes:
        try:
            message = decode_message(frame)
            op = message.get("op")
            if op == "update":
                self.catalog.update(CatalogRecord.from_fields(message["record"]))
                return encode_message({"ok": True})
            if op == "remove":
                removed = self.catalog.remove(str(message["name"]))
                return encode_message({"ok": True, "removed": removed})
            if op == "list":
                return encode_message(
                    {
                        "ok": True,
                        "records": [r.to_fields() for r in self.catalog.fresh_records()],
                    }
                )
            if op == "federation":
                version, members = self.catalog.federation_view(
                    str(message["federation"])
                )
                return encode_message(
                    {
                        "ok": True,
                        "version": version,
                        "records": [r.to_fields() for r in members],
                    }
                )
            return encode_message(
                {"ok": False, "errno": int(Errno.EINVAL), "error": f"bad op {op!r}"}
            )
        except (ProtocolError, KeyError, TypeError, ValueError) as exc:
            return encode_message(
                {"ok": False, "errno": int(Errno.EINVAL), "error": str(exc)}
            )

    def on_close(self) -> None:  # pragma: no cover - stateless
        pass


# --------------------------------------------------------------------- #
# client helpers
# --------------------------------------------------------------------- #


def _catalog_call(
    network: Network,
    from_host: str,
    catalog_host: str,
    catalog_port: int,
    message: dict[str, Any],
) -> dict[str, Any]:
    conn = network.connect(from_host, catalog_host, catalog_port)
    try:
        reply = decode_message(conn.call(encode_message(message)))
        if not reply.get("ok"):
            raise RuntimeError(f"catalog {message.get('op')} failed: {reply}")
        return reply
    finally:
        conn.close()


def advertise(
    network: Network,
    from_host: str,
    server: ChirpServer,
    catalog_host: str,
    catalog_port: int = CATALOG_PORT,
    owner: str = "",
    federation: str = "",
    weight: int = 1,
) -> None:
    """One heartbeat: a server reports itself to the catalog."""
    record = CatalogRecord(
        name=f"{server.hostname}:{server.port}",
        hostname=server.hostname,
        port=server.port,
        owner=owner or server.owner_cred.username,
        federation=federation,
        weight=weight,
    )
    _catalog_call(
        network,
        from_host,
        catalog_host,
        catalog_port,
        {"op": "update", "record": record.to_fields()},
    )


def list_servers(
    network: Network,
    from_host: str,
    catalog_host: str,
    catalog_port: int = CATALOG_PORT,
) -> list[CatalogRecord]:
    """Ask the catalog for the fresh server set."""
    reply = _catalog_call(
        network, from_host, catalog_host, catalog_port, {"op": "list"}
    )
    return [CatalogRecord.from_fields(f) for f in reply["records"]]


def remove_server(
    network: Network,
    from_host: str,
    name: str,
    catalog_host: str,
    catalog_port: int = CATALOG_PORT,
) -> bool:
    """Explicitly deregister one server by its catalog name."""
    reply = _catalog_call(
        network, from_host, catalog_host, catalog_port, {"op": "remove", "name": name}
    )
    return bool(reply.get("removed"))


def federation_members(
    network: Network,
    from_host: str,
    federation: str,
    catalog_host: str,
    catalog_port: int = CATALOG_PORT,
) -> tuple[int, list[CatalogRecord]]:
    """One federation's live membership and its version, off the wire."""
    reply = _catalog_call(
        network,
        from_host,
        catalog_host,
        catalog_port,
        {"op": "federation", "federation": federation},
    )
    return int(reply["version"]), [
        CatalogRecord.from_fields(f) for f in reply["records"]
    ]
