"""Workload models and the measurement runner for the paper's evaluation."""

from .base import (
    AppProfile,
    BLOCK,
    INPUT_FILE,
    META_FILES,
    META_PREFIX,
    OUTPUT_FILE,
    TINY,
    app_body,
    child_body,
    workload_unit,
)
from .build import BUILD_APPS, MAKE
from .microbench import (
    BENCH_FILE,
    MICROBENCHES,
    MICROBENCH_BY_NAME,
    MicrobenchSpec,
)
from .runner import (
    AppResult,
    BOX_IDENTITY,
    MicrobenchResult,
    WORKDIR,
    measure_app,
    measure_microbench,
    profile_microbench,
    run_app,
    run_microbench,
)
from .science import AMANDA, BLAST, CMS, HF, IBIS, SCIENCE_APPS

ALL_APPS = SCIENCE_APPS + BUILD_APPS

__all__ = [
    "ALL_APPS",
    "AMANDA",
    "AppProfile",
    "AppResult",
    "BENCH_FILE",
    "BLAST",
    "BLOCK",
    "BOX_IDENTITY",
    "BUILD_APPS",
    "CMS",
    "HF",
    "IBIS",
    "INPUT_FILE",
    "MAKE",
    "META_FILES",
    "META_PREFIX",
    "MICROBENCHES",
    "MICROBENCH_BY_NAME",
    "MicrobenchResult",
    "MicrobenchSpec",
    "OUTPUT_FILE",
    "SCIENCE_APPS",
    "TINY",
    "WORKDIR",
    "app_body",
    "child_body",
    "measure_app",
    "measure_microbench",
    "profile_microbench",
    "run_app",
    "run_microbench",
    "workload_unit",
]
