"""Figure 5(a): per-syscall latency microbenchmarks.

"Each entry was measured by a benchmark C program which timed 1000 cycles
of 100,000 iterations of various system calls... Each system call was
performed on an existing file in an ext3 filesystem with the file wholly
in the system buffer cache" (§7).  The simulation is deterministic, so one
cycle of a few thousand iterations yields the exact per-call cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..kernel.fdtable import OpenFlags
from ..kernel.process import Body, ProcContext

BENCH_FILE = "bench.dat"
BLOCK = 8192


@dataclass(frozen=True)
class MicrobenchSpec:
    """One row of Figure 5(a)."""

    name: str
    #: body factory: (iterations) -> program factory
    make_factory: Callable[[int], object]
    #: the paper's approximate unmodified / boxed latencies (µs), read off
    #: Figure 5(a), for side-by-side reporting
    paper_unmodified_us: float
    paper_boxed_us: float
    #: the syscalls one loop iteration performs — the rows of the
    #: ``syscall.latency_ns`` histogram this benchmark is measured from
    #: (per-iteration cost = the sum of these ops' mean latencies)
    ops: tuple[str, ...] = ()


def _loop_factory(per_iter) -> Callable[[int], object]:
    """Wrap a per-iteration sub-generator into a program factory builder."""

    def build(iterations: int) -> object:
        def factory(proc: ProcContext, args: list[str]) -> Body:
            fd = yield proc.sys.open(BENCH_FILE, OpenFlags.O_RDWR)
            buf = proc.alloc(BLOCK)
            for _ in range(iterations):
                yield from per_iter(proc, fd, buf)
            yield proc.sys.close(fd)
            return 0

        return factory

    return build


def _getpid(proc, fd, buf):
    yield proc.sys.getpid()


def _stat(proc, fd, buf):
    yield proc.sys.stat(BENCH_FILE)


def _openclose(proc, fd, buf):
    fd2 = yield proc.sys.open(BENCH_FILE, OpenFlags.O_RDONLY)
    yield proc.sys.close(fd2)


def _read_1(proc, fd, buf):
    yield proc.sys.pread(fd, buf, 1, 0)


def _read_8k(proc, fd, buf):
    yield proc.sys.pread(fd, buf, BLOCK, 0)


def _write_1(proc, fd, buf):
    yield proc.sys.pwrite(fd, buf, 1, 0)


def _write_8k(proc, fd, buf):
    yield proc.sys.pwrite(fd, buf, BLOCK, 0)


#: The seven rows of Figure 5(a), with the paper's approximate values.
MICROBENCHES: tuple[MicrobenchSpec, ...] = (
    MicrobenchSpec("getpid", _loop_factory(_getpid), 0.4, 13.0, ops=("getpid",)),
    MicrobenchSpec("stat", _loop_factory(_stat), 2.2, 27.0, ops=("stat",)),
    MicrobenchSpec(
        "open-close", _loop_factory(_openclose), 4.4, 45.0, ops=("open", "close")
    ),
    MicrobenchSpec("read-1b", _loop_factory(_read_1), 1.0, 17.0, ops=("pread",)),
    MicrobenchSpec("read-8kb", _loop_factory(_read_8k), 4.9, 37.0, ops=("pread",)),
    MicrobenchSpec("write-1b", _loop_factory(_write_1), 1.2, 18.0, ops=("pwrite",)),
    MicrobenchSpec("write-8kb", _loop_factory(_write_8k), 5.4, 40.0, ops=("pwrite",)),
)

MICROBENCH_BY_NAME = {spec.name: spec for spec in MICROBENCHES}

#: How many loop iterations account for the open/close + alloc preamble.
PREAMBLE_CALLS = 2


def accounted_iterations(iterations: int) -> int:
    """Iterations to divide elapsed time by (preamble amortized away by
    using enough iterations; callers should use >= 1000)."""
    return iterations
