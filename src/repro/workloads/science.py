"""The five scientific applications of Figure 5(b).

"Five of these were scientific applications that are candidates for
execution on grid systems... Although they are more data intensive than
other grid applications, they perform primarily large-block I/O" (§7).
The applications are characterized in detail in the authors' earlier
workload study [Thain et al., HPDC 2003]; the profiles below encode that
published character — compute-dominant loops with 8 kB-block I/O, plus
light metadata traffic — with iteration counts and compute grains chosen
so the *unmodified* runtime and the boxed overhead land where Figure 5(b)
reports them on our calibrated cost model.

=======  =============================================  =========  ========
name     what the real code is                          runtime    overhead
=======  =============================================  =========  ========
amanda   gamma-ray telescope simulation                 ~170 s     +1.1 %
blast    genomic database search                        ~270 s     +5.2 %
cms      high-energy physics detector simulation        ~1100 s    +2.1 %
hf       nucleic/electronic interaction simulation      ~380 s     +6.5 %
ibis     climate simulation                             ~1060 s    +0.7 %
=======  =============================================  =========  ========
"""

from __future__ import annotations

from .base import AppProfile

AMANDA = AppProfile(
    name="amanda",
    description="AMANDA gamma-ray telescope simulation",
    paper_runtime_s=170.0,
    paper_overhead_pct=1.1,
    iters=46_200,
    compute_us=3_660,
    reads_8k=1,
    writes_8k=1,
)

BLAST = AppProfile(
    name="blast",
    description="BLAST genomic database search",
    paper_runtime_s=270.0,
    paper_overhead_pct=5.2,
    iters=145_000,
    compute_us=1_840,
    reads_8k=4,  # database scans: read-dominant
    stats=1,
)

CMS = AppProfile(
    name="cms",
    description="CMS high-energy physics apparatus simulation",
    paper_runtime_s=1100.0,
    paper_overhead_pct=2.1,
    iters=385_000,
    compute_us=2_840,
    reads_8k=2,
    writes_8k=1,
)

HF = AppProfile(
    name="hf",
    description="HF nucleic and electronic interaction simulation",
    paper_runtime_s=380.0,
    paper_overhead_pct=6.5,
    iters=223_300,
    compute_us=1_683,
    reads_8k=1,
    writes_8k=2,
    small_reads=2,  # checkpoint counters and progress markers
    stats=1,
)

IBIS = AppProfile(
    name="ibis",
    description="IBIS integrated biosphere/climate simulation",
    paper_runtime_s=1060.0,
    paper_overhead_pct=0.7,
    iters=184_200,
    compute_us=5_742,
    reads_8k=1,
    writes_8k=1,
)

SCIENCE_APPS: tuple[AppProfile, ...] = (AMANDA, BLAST, CMS, HF, IBIS)
