"""Workload modelling for the paper's evaluation (§7).

The authors ran five scientific applications (AMANDA, BLAST, CMS, HF,
IBIS) plus a ``make`` of Parrot itself.  The binaries and inputs are not
available, but their *syscall character* is what determines interposition
overhead, and that character is documented: the science codes "perform
primarily large-block I/O" while the build "makes extensive use of small
metadata operations such as stat".  An :class:`AppProfile` encodes that
character as a per-iteration syscall recipe; the runner replays it as a
real process (every syscall actually dispatched, traced or not).

Runtimes and the paper's measured overheads are carried along for the
Figure 5(b) report; scale factors shrink iteration counts for test speed
without changing the overhead ratio (each iteration is identical).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel.fdtable import OpenFlags
from ..kernel.process import Body, ProcContext

#: Large-block transfer size used throughout the evaluation (Fig. 5a).
BLOCK = 8192
#: "1 byte" row of Fig. 5a.
TINY = 1


@dataclass(frozen=True)
class AppProfile:
    """One application's workload character.

    ``iters`` is the number of work units at full scale; each unit burns
    ``compute_us`` of CPU and performs the listed syscalls.  ``spawns``
    child processes (compilation steps, for ``make``) are distributed
    evenly across the run; each child performs ``child_units`` work units
    itself using the metadata-heavy recipe.
    """

    name: str
    description: str
    #: unmodified runtime reported in Figure 5(b), seconds
    paper_runtime_s: float
    #: overhead the paper measured, percent (for side-by-side reporting)
    paper_overhead_pct: float
    iters: int
    compute_us: int
    reads_8k: int = 0
    writes_8k: int = 0
    stats: int = 0
    openclose: int = 0
    small_reads: int = 0
    small_writes: int = 0
    spawns: int = 0
    child_units: int = 0

    def scaled_iters(self, scale: float) -> int:
        return max(1, round(self.iters * scale))

    def scaled_spawns(self, scale: float) -> int:
        return 0 if self.spawns == 0 else max(1, round(self.spawns * scale))

    def syscalls_per_iter(self) -> int:
        return (
            self.reads_8k
            + self.writes_8k
            + self.stats
            + 2 * self.openclose
            + self.small_reads
            + self.small_writes
        )


#: File layout every workload run expects inside its working directory.
INPUT_FILE = "input.dat"
OUTPUT_FILE = "output.dat"
META_PREFIX = "meta"  #: meta0, meta1, ... files probed by stat loops
META_FILES = 16


def workload_unit(
    proc: ProcContext,
    profile: AppProfile,
    in_fd: int,
    out_fd: int,
    buf: int,
    unit_index: int,
) -> Body:
    """One work unit: the per-iteration syscall recipe.

    A sub-generator (used via ``yield from``) so both the top-level app
    body and spawned children can share it.
    """
    if profile.compute_us:
        yield proc.compute(us=profile.compute_us)
    for i in range(profile.reads_8k):
        yield proc.sys.pread(in_fd, buf, BLOCK, ((unit_index + i) * BLOCK) % (64 * BLOCK))
    for i in range(profile.writes_8k):
        yield proc.sys.pwrite(out_fd, buf, BLOCK, ((unit_index + i) * BLOCK) % (64 * BLOCK))
    for i in range(profile.stats):
        yield proc.sys.stat(f"{META_PREFIX}{(unit_index + i) % META_FILES}")
    for _ in range(profile.openclose):
        fd = yield proc.sys.open(INPUT_FILE, OpenFlags.O_RDONLY)
        yield proc.sys.close(fd)
    for _ in range(profile.small_reads):
        yield proc.sys.pread(in_fd, buf, TINY, 0)
    for _ in range(profile.small_writes):
        yield proc.sys.pwrite(out_fd, buf, TINY, 0)


def app_body(profile: AppProfile, scale: float, child_program: str = "") -> object:
    """Build the top-level program factory for an application run."""

    def factory(proc: ProcContext, args: list[str]) -> Body:
        in_fd = yield proc.sys.open(INPUT_FILE, OpenFlags.O_RDONLY)
        out_fd = yield proc.sys.open(
            OUTPUT_FILE, OpenFlags.O_WRONLY | OpenFlags.O_CREAT
        )
        buf = proc.alloc(BLOCK)
        iters = profile.scaled_iters(scale)
        spawns = profile.scaled_spawns(scale)
        spawn_every = iters // spawns if spawns else 0
        children: list[int] = []
        for unit in range(iters):
            yield from workload_unit(proc, profile, in_fd, out_fd, buf, unit)
            if spawn_every and (unit + 1) % spawn_every == 0 and len(children) < spawns:
                pid = yield proc.sys.spawn(child_program, ())
                if isinstance(pid, int) and pid > 0:
                    children.append(pid)
        for _ in children:
            yield proc.sys.waitpid()
        yield proc.sys.close(in_fd)
        yield proc.sys.close(out_fd)
        return 0

    factory.__name__ = f"app_{profile.name}"
    return factory


def child_body(profile: AppProfile) -> object:
    """Program factory for a spawned child (a compilation step)."""

    def factory(proc: ProcContext, args: list[str]) -> Body:
        in_fd = yield proc.sys.open(INPUT_FILE, OpenFlags.O_RDONLY)
        out_fd = yield proc.sys.open(
            OUTPUT_FILE + ".o", OpenFlags.O_WRONLY | OpenFlags.O_CREAT
        )
        buf = proc.alloc(BLOCK)
        for unit in range(profile.child_units):
            yield from workload_unit(proc, profile, in_fd, out_fd, buf, unit)
        yield proc.sys.close(in_fd)
        yield proc.sys.close(out_fd)
        return 0

    factory.__name__ = f"child_{profile.name}"
    return factory
