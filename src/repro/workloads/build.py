"""The ``make`` workload of Figure 5(b): a metadata-storm software build.

"An interactive application such as make is slowed down by 35 percent
because it makes extensive use of small metadata operations such as stat"
(§7).  The profile below models a build of Parrot itself: the top-level
``make`` stats dependency trees and spawns compiler children, each of
which opens sources, reads them, and writes objects — overwhelmingly
small, latency-bound calls that pay the full interposition toll on every
one.
"""

from __future__ import annotations

from .base import AppProfile

MAKE = AppProfile(
    name="make",
    description="software build (make of the Parrot source tree)",
    paper_runtime_s=120.0,
    paper_overhead_pct=35.0,
    iters=180_000,
    compute_us=565,  # short bursts between dependency checks
    stats=6,  # dependency timestamp storms
    openclose=2,  # probing headers and rule files
    small_reads=1,  # Makefile fragments
    small_writes=1,  # log/progress output
    spawns=240,  # compiler invocations
    child_units=25,  # each compiler's own metadata traffic
)

BUILD_APPS: tuple[AppProfile, ...] = (MAKE,)
