"""Run workloads unmodified vs. inside an identity box; measure sim time.

The measurement protocol mirrors §7: the same program is run twice on
identical fresh machines, once directly and once under the interposition
supervisor with an identity attached, and the ratio of simulated runtimes
is the overhead.  Microbenchmarks difference two iteration counts so
process-startup cost cancels exactly (the simulation is deterministic, so
two runs suffice where the paper needed 1000 cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.acl import Acl
from ..core.box import IdentityBox
from ..kernel.machine import Machine
from ..kernel.timing import CostModel, NS_PER_S, NS_PER_US
from ..kernel.vfs import join
from .base import (
    AppProfile,
    BLOCK,
    INPUT_FILE,
    META_FILES,
    META_PREFIX,
    OUTPUT_FILE,
    app_body,
    child_body,
)
from .microbench import BENCH_FILE, MicrobenchSpec

#: Identity attached to every boxed run.
BOX_IDENTITY = "globus:/O=UnivNowhere/CN=Fred"

WORKDIR = "/home/grid/work"

CHILD_EXE = "cc.exe"


@dataclass(frozen=True)
class AppResult:
    """Figure 5(b) datum for one application."""

    name: str
    base_s: float
    boxed_s: float
    base_syscalls: int
    boxed_syscalls: int

    @property
    def overhead_pct(self) -> float:
        return 100.0 * (self.boxed_s - self.base_s) / self.base_s


@dataclass(frozen=True)
class MicrobenchResult:
    """Figure 5(a) datum for one syscall."""

    name: str
    unmodified_us: float
    boxed_us: float

    @property
    def slowdown(self) -> float:
        return self.boxed_us / self.unmodified_us if self.unmodified_us else 0.0


# --------------------------------------------------------------------- #
# machine preparation
# --------------------------------------------------------------------- #


def _prepare(profile: AppProfile | None, costs: CostModel | None) -> tuple[Machine, object]:
    """Fresh machine with the workload's file layout in place."""
    machine = Machine(costs=costs)
    cred = machine.add_user("grid")
    task = machine.host_task(cred, cwd=WORKDIR)
    machine.kcall_x(task, "mkdir", WORKDIR, 0o755)
    block = bytes(range(256)) * (BLOCK // 256)
    machine.write_file(task, join(WORKDIR, INPUT_FILE), block * 64)
    machine.write_file(task, join(WORKDIR, OUTPUT_FILE), b"")
    machine.write_file(task, join(WORKDIR, BENCH_FILE), block)
    for i in range(META_FILES):
        machine.write_file(task, join(WORKDIR, f"{META_PREFIX}{i}"), b"meta")
    if profile is not None and profile.spawns:
        child_name = f"child_{profile.name}"
        machine.register_program(child_name, child_body(profile))
        machine.install_program(task, join(WORKDIR, CHILD_EXE), child_name)
    return machine, cred


def _run(
    machine: Machine,
    cred,
    factory,
    *,
    boxed: bool,
    comm: str,
) -> tuple[float, int]:
    """Execute one prepared run; returns (sim seconds, syscalls dispatched)."""
    if boxed:
        box = IdentityBox(machine, cred, BOX_IDENTITY, make_home=False)
        # the visiting identity owns the workload directory
        box.policy.write_acl(WORKDIR, Acl.for_owner(BOX_IDENTITY))
        start = machine.clock.now_ns
        box.spawn(factory, cwd=WORKDIR, comm=comm)
        machine.run_to_completion()
        elapsed = machine.clock.now_ns - start
        return elapsed / NS_PER_S, box.supervisor.syscalls_handled
    start = machine.clock.now_ns
    machine.spawn(factory, cred=cred, cwd=WORKDIR, comm=comm)
    machine.run_to_completion()
    elapsed = machine.clock.now_ns - start
    return elapsed / NS_PER_S, machine.proc_syscalls


# --------------------------------------------------------------------- #
# Figure 5(b): application overhead
# --------------------------------------------------------------------- #


def run_app(
    profile: AppProfile,
    *,
    boxed: bool,
    scale: float = 0.01,
    costs: CostModel | None = None,
) -> tuple[float, int]:
    """One application run; returns (sim seconds, syscalls)."""
    machine, cred = _prepare(profile, costs)
    factory = app_body(profile, scale, child_program=CHILD_EXE)
    return _run(machine, cred, factory, boxed=boxed, comm=profile.name)


def measure_app(
    profile: AppProfile,
    *,
    scale: float = 0.01,
    costs: CostModel | None = None,
) -> AppResult:
    """Unmodified vs. boxed, on identical fresh machines."""
    base_s, base_n = run_app(profile, boxed=False, scale=scale, costs=costs)
    boxed_s, boxed_n = run_app(profile, boxed=True, scale=scale, costs=costs)
    return AppResult(
        name=profile.name,
        base_s=base_s,
        boxed_s=boxed_s,
        base_syscalls=base_n,
        boxed_syscalls=boxed_n,
    )


# --------------------------------------------------------------------- #
# Figure 5(a): syscall latency
# --------------------------------------------------------------------- #


def _microbench_elapsed(
    spec: MicrobenchSpec, *, boxed: bool, iterations: int, costs: CostModel | None
) -> float:
    machine, cred = _prepare(None, costs)
    factory = spec.make_factory(iterations)
    seconds, _ = _run(machine, cred, factory, boxed=boxed, comm=f"bench:{spec.name}")
    return seconds


def run_microbench(
    spec: MicrobenchSpec,
    *,
    boxed: bool,
    iterations: int = 2000,
    costs: CostModel | None = None,
) -> float:
    """Per-call latency in microseconds.

    Two runs at N and 2N iterations; the difference cancels process
    startup, preamble, and teardown exactly (deterministic simulation).
    """
    t1 = _microbench_elapsed(spec, boxed=boxed, iterations=iterations, costs=costs)
    t2 = _microbench_elapsed(spec, boxed=boxed, iterations=2 * iterations, costs=costs)
    return (t2 - t1) * NS_PER_S / NS_PER_US / iterations


def measure_microbench(
    spec: MicrobenchSpec,
    *,
    iterations: int = 2000,
    costs: CostModel | None = None,
) -> MicrobenchResult:
    return MicrobenchResult(
        name=spec.name,
        unmodified_us=run_microbench(
            spec, boxed=False, iterations=iterations, costs=costs
        ),
        boxed_us=run_microbench(spec, boxed=True, iterations=iterations, costs=costs),
    )
