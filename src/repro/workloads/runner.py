"""Run workloads unmodified vs. inside an identity box; measure sim time.

The measurement protocol mirrors §7: the same program is run twice on
identical fresh machines, once directly and once under the interposition
supervisor with an identity attached, and the ratio of simulated runtimes
is the overhead.  Per-syscall latencies come straight from the telemetry
layer: every run is instrumented with a :class:`~repro.core.telemetry.
Telemetry`, and a microbenchmark's per-call figure is the mean of its
ops' ``syscall.latency_ns`` histograms — one run replaces the paper's
1000 cycles (and this module's former two-run differencing), because the
simulation prices every call deterministically.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass, field

from ..config import snapshot_fixtures_enabled
from ..core.acl import Acl
from ..core.box import IdentityBox
from ..core.telemetry import LatencyStats, Telemetry
from ..kernel.machine import Machine, WorldSnapshot
from ..kernel.timing import CostModel, NS_PER_S, NS_PER_US
from ..kernel.vfs import join
from .base import (
    AppProfile,
    BLOCK,
    INPUT_FILE,
    META_FILES,
    META_PREFIX,
    OUTPUT_FILE,
    app_body,
    child_body,
)
from .microbench import BENCH_FILE, MicrobenchSpec

#: Identity attached to every boxed run.
BOX_IDENTITY = "globus:/O=UnivNowhere/CN=Fred"

WORKDIR = "/home/grid/work"

CHILD_EXE = "cc.exe"


@dataclass(frozen=True)
class AppResult:
    """Figure 5(b) datum for one application."""

    name: str
    base_s: float
    boxed_s: float
    base_syscalls: int
    boxed_syscalls: int
    #: per-op latency summaries for the boxed run, from the machine-level
    #: ``syscall.latency_ns`` histograms (empty if run uninstrumented)
    boxed_stats: dict[str, LatencyStats] = field(default_factory=dict)

    @property
    def overhead_pct(self) -> float:
        return 100.0 * (self.boxed_s - self.base_s) / self.base_s

    @property
    def base_ops_per_sec(self) -> float:
        return self.base_syscalls / self.base_s if self.base_s else 0.0

    @property
    def boxed_ops_per_sec(self) -> float:
        return self.boxed_syscalls / self.boxed_s if self.boxed_s else 0.0


@dataclass(frozen=True)
class MicrobenchResult:
    """Figure 5(a) datum for one syscall.

    ``unmodified_us``/``boxed_us`` are per-*iteration* costs (the sum of
    the spec's ops' mean latencies — one op for every row but open-close,
    which sums both calls); the stats summarize individual calls.
    """

    name: str
    unmodified_us: float
    boxed_us: float
    unmodified_stats: LatencyStats = field(default_factory=LatencyStats)
    boxed_stats: LatencyStats = field(default_factory=LatencyStats)

    @property
    def slowdown(self) -> float:
        return self.boxed_us / self.unmodified_us if self.unmodified_us else 0.0


# --------------------------------------------------------------------- #
# machine preparation
# --------------------------------------------------------------------- #


#: Session-lifetime cache of prepared-world snapshots, one per distinct
#: (profile, cost-model) pair.  A template is built by cold-preparing a
#: machine once; every later run forks it in O(size-of-diff).
_TEMPLATES: dict[tuple, WorldSnapshot] = {}


def snapshot_templates_enabled() -> bool:
    """Whether runs fork prepared machines from warm templates.

    Read dynamically (not at import) so benchmarks and tests can flip
    the ``REPRO_SNAPSHOT_FIXTURES`` knob per call.
    """
    return snapshot_fixtures_enabled()


def _prepare_cold(
    profile: AppProfile | None, costs: CostModel | None
) -> tuple[Machine, object]:
    """Fresh machine with the workload's file layout in place."""
    machine = Machine(costs=costs)
    cred = machine.add_user("grid")
    task = machine.host_task(cred, cwd=WORKDIR)
    machine.kcall_x(task, "mkdir", WORKDIR, 0o755)
    block = bytes(range(256)) * (BLOCK // 256)
    machine.write_file(task, join(WORKDIR, INPUT_FILE), block * 64)
    machine.write_file(task, join(WORKDIR, OUTPUT_FILE), b"")
    machine.write_file(task, join(WORKDIR, BENCH_FILE), block)
    for i in range(META_FILES):
        machine.write_file(task, join(WORKDIR, f"{META_PREFIX}{i}"), b"meta")
    if profile is not None and profile.spawns:
        child_name = f"child_{profile.name}"
        machine.register_program(child_name, child_body(profile))
        machine.install_program(task, join(WORKDIR, CHILD_EXE), child_name)
    return machine, cred


def _prepare(
    profile: AppProfile | None,
    costs: CostModel | None,
    *,
    use_snapshots: bool | None = None,
) -> tuple[Machine, object]:
    """A machine prepared for one run — cold-booted or forked from a template.

    The measurement protocol requires *identical fresh machines* for the
    base and boxed runs; a fork of the same immutable template satisfies
    that by construction (and the equivalence is tested), while skipping
    the file-layout setup on every run after a configuration's first.
    """
    if use_snapshots is None:
        use_snapshots = snapshot_templates_enabled()
    if not use_snapshots:
        return _prepare_cold(profile, costs)
    key = (profile, astuple(costs or CostModel()))
    snap = _TEMPLATES.get(key)
    if snap is None:
        snap = _prepare_cold(profile, costs)[0].snapshot()
        _TEMPLATES[key] = snap
    machine = Machine(snapshot=snap)
    return machine, machine.users.credentials_for("grid")


def _run(
    machine: Machine,
    cred,
    factory,
    *,
    boxed: bool,
    comm: str,
) -> tuple[float, int]:
    """Execute one prepared run; returns (sim seconds, syscalls dispatched)."""
    if boxed:
        box = IdentityBox(machine, cred, BOX_IDENTITY, make_home=False)
        # the visiting identity owns the workload directory
        box.policy.write_acl(WORKDIR, Acl.for_owner(BOX_IDENTITY))
        start = machine.clock.now_ns
        box.spawn(factory, cwd=WORKDIR, comm=comm)
        machine.run_to_completion()
        elapsed = machine.clock.now_ns - start
        return elapsed / NS_PER_S, box.supervisor.syscalls_handled
    start = machine.clock.now_ns
    machine.spawn(factory, cred=cred, cwd=WORKDIR, comm=comm)
    machine.run_to_completion()
    elapsed = machine.clock.now_ns - start
    return elapsed / NS_PER_S, machine.proc_syscalls


# --------------------------------------------------------------------- #
# Figure 5(b): application overhead
# --------------------------------------------------------------------- #


def run_app(
    profile: AppProfile,
    *,
    boxed: bool,
    scale: float = 0.01,
    costs: CostModel | None = None,
    telemetry: Telemetry | None = None,
) -> tuple[float, int]:
    """One application run; returns (sim seconds, syscalls).

    A ``telemetry`` instance attached here rides the run's machine and
    fills with per-op latency histograms; recording is free in simulated
    time, so the returned seconds are identical either way.
    """
    machine, cred = _prepare(profile, costs)
    if telemetry is not None:
        telemetry.clock = machine.clock
        machine.telemetry = telemetry
    factory = app_body(profile, scale, child_program=CHILD_EXE)
    return _run(machine, cred, factory, boxed=boxed, comm=profile.name)


def measure_app(
    profile: AppProfile,
    *,
    scale: float = 0.01,
    costs: CostModel | None = None,
) -> AppResult:
    """Unmodified vs. boxed, on identical fresh machines."""
    base_s, base_n = run_app(profile, boxed=False, scale=scale, costs=costs)
    telemetry = Telemetry()
    boxed_s, boxed_n = run_app(
        profile, boxed=True, scale=scale, costs=costs, telemetry=telemetry
    )
    boxed_stats = {
        dict(key).get("op", "?"): LatencyStats.from_histograms(hist)
        for key, hist in telemetry.histograms_named("syscall.latency_ns")
    }
    return AppResult(
        name=profile.name,
        base_s=base_s,
        boxed_s=boxed_s,
        base_syscalls=base_n,
        boxed_syscalls=boxed_n,
        boxed_stats=boxed_stats,
    )


# --------------------------------------------------------------------- #
# Figure 5(a): syscall latency
# --------------------------------------------------------------------- #


def profile_microbench(
    spec: MicrobenchSpec,
    *,
    boxed: bool,
    iterations: int = 2000,
    costs: CostModel | None = None,
) -> tuple[float, LatencyStats]:
    """One instrumented run: (per-iteration µs, per-call stats).

    The per-iteration figure sums the mean latency of each op the spec's
    loop body performs, read off the machine-level ``syscall.latency_ns``
    histograms; the stats merge those ops' per-call distributions.  One
    run suffices where the old protocol differenced two iteration counts:
    the preamble's open/close are either different ops than the ones
    measured or identically priced, so the histograms are clean.
    """
    machine, cred = _prepare(None, costs)
    telemetry = Telemetry(machine.clock)
    machine.telemetry = telemetry
    factory = spec.make_factory(iterations)
    _run(machine, cred, factory, boxed=boxed, comm=f"bench:{spec.name}")
    mode = "traced" if boxed else "direct"
    hists = [
        telemetry.histogram("syscall.latency_ns", op=op, mode=mode)
        for op in spec.ops
    ]
    per_iter_us = sum(h.mean for h in hists) / NS_PER_US
    return per_iter_us, LatencyStats.from_histograms(*hists)


def run_microbench(
    spec: MicrobenchSpec,
    *,
    boxed: bool,
    iterations: int = 2000,
    costs: CostModel | None = None,
) -> float:
    """Per-iteration latency in microseconds (see :func:`profile_microbench`)."""
    per_iter_us, _stats = profile_microbench(
        spec, boxed=boxed, iterations=iterations, costs=costs
    )
    return per_iter_us


def measure_microbench(
    spec: MicrobenchSpec,
    *,
    iterations: int = 2000,
    costs: CostModel | None = None,
) -> MicrobenchResult:
    base_us, base_stats = profile_microbench(
        spec, boxed=False, iterations=iterations, costs=costs
    )
    boxed_us, boxed_stats = profile_microbench(
        spec, boxed=True, iterations=iterations, costs=costs
    )
    return MicrobenchResult(
        name=spec.name,
        unmodified_us=base_us,
        boxed_us=boxed_us,
        unmodified_stats=base_stats,
        boxed_stats=boxed_stats,
    )
