"""Replicated federation: quorum writes, shard failover, anti-entropy repair.

The acceptance bar (ISSUE 9): every workload profile is byte-identical at
``REPRO_REPLICAS=3`` vs one replica — *including* a run where one replica
is blacked out mid-flight and rejoins (repaired) before the end, under a
seeded 10% fault plan.  Around that sweep: placement unit-tests, failover
reads, missed-write replay (read repair), quorum arithmetic, tolerant
teardown, suspect demotion, and the server-side repair path.
"""

import pytest

from repro import config
from repro.chirp import (
    CHIRP_PORT,
    CatalogRecord,
    ChirpError,
    ShardInfo,
    ShardMap,
    advertise,
    quorum,
    route_order,
)
from repro.kernel.errno import Errno
from repro.net import FaultPlan
from repro.workloads import AMANDA, BLAST, CMS, HF, IBIS, MAKE
from tests.chirp.conftest import FAULT_RATE, FAULT_SEED
from tests.chirp.test_federation import (
    FED,
    MANY,
    RETRY,
    connect_fred,
    make_fed_world,
)
from tests.chirp.test_resilience import input_bytes, stage_and_run

#: Replicated worlds need room for k=3 plus at least one non-owner.
SHARDS = max(MANY, 4)
#: The fault rate the chaos sweep runs under: the CI knob when set, the
#: ISSUE's 10% bar otherwise — a clean-wires run still drills the blackout.
CHAOS_RATE = FAULT_RATE if FAULT_RATE > 0 else 0.10
#: Where the mid-run outage sits on the fault plan's op counter, unless
#: the chaos job pins it via REPRO_BLACKOUT=start:end.
DEFAULT_WINDOW = (20, 90)


def replicated_world(plan=None, replicas=3):
    return make_fed_world(SHARDS, plan, replicas=replicas)


def manifest_subtree(server, prefix):
    """One top-level prefix's slice of a shard's export manifest."""
    root = "/" + prefix
    return {
        path: entry
        for path, entry in server.export_manifest().items()
        if path == root or path.startswith(root + "/")
    }


def owners_of(federation, prefix):
    return [s.name for s in federation.placement().replicas_for_prefix(prefix)]


def lift_blackouts(cluster):
    cluster.network.faults.blackouts = ()


# ---------------------------------------------------------------------- #
# placement: successor sets on the same ring
# ---------------------------------------------------------------------- #


def _records(n):
    return [
        CatalogRecord(name=f"s{i}", hostname=f"s{i}", port=CHIRP_PORT, owner="k")
        for i in range(n)
    ]


def test_replica_sets_are_successor_placed_and_nested():
    single = ShardMap.from_records("pool", 1, _records(5), replicas=1)
    triple = ShardMap.from_records("pool", 1, _records(5), replicas=3)
    for prefix in [f"d{i}" for i in range(32)]:
        replicas = triple.replicas_for_prefix(prefix)
        names = [s.name for s in replicas]
        assert len(set(names)) == 3  # k distinct owners
        # the primary is exactly the single-owner map's choice: k=1 is a
        # special case of the placement, not a different algorithm
        assert names[0] == single.shard_for_prefix(prefix).name
        assert (single.replicas_for_prefix(prefix)[0].name,) == (names[0],)


def test_replica_count_clamps_to_the_shard_count():
    shard_map = ShardMap.from_records("pool", 1, _records(2), replicas=3)
    assert len(shard_map.replicas_for_prefix("d0")) == 2


def test_quorum_arithmetic_is_a_strict_majority():
    assert [quorum(k) for k in (1, 2, 3, 4, 5)] == [1, 2, 2, 3, 3]


def test_route_order_demotes_suspects_but_keeps_placement_order():
    a, b, c = (
        ShardInfo(name="a", hostname="a", suspect=True),
        ShardInfo(name="b", hostname="b"),
        ShardInfo(name="c", hostname="c"),
    )
    assert route_order((a, b, c)) == (b, c, a)
    assert route_order((b, a, c)) == (b, c, a)
    assert route_order((b, c, a)) == (b, c, a)


# ---------------------------------------------------------------------- #
# the acceptance sweep: k=3 vs k=1, with a replica dying mid-run
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "profile", [AMANDA, BLAST, CMS, HF, IBIS, MAKE], ids=lambda p: p.name
)
def test_every_workload_is_byte_identical_with_a_replica_dying_mid_run(profile):
    # the reference: one replica per prefix, perfect wires
    cluster, federation, wallet = replicated_world(replicas=1)
    client = connect_fred(cluster, federation, wallet)
    want = stage_and_run(client, profile)
    client.close()
    assert want["status"] == 0 and want["size"] == len(input_bytes(profile))

    # the drill: three replicas, a seeded fault plan, and the workload
    # prefix's *primary* blacked out for a mid-run op window
    plan = FaultPlan.uniform(seed=FAULT_SEED, rate=CHAOS_RATE, ports=(CHIRP_PORT,))
    cluster, federation, wallet = replicated_world(plan, replicas=3)
    client = connect_fred(cluster, federation, wallet, retry=RETRY)
    work = f"/{profile.name.lower().replace(' ', '-')}"
    victim = client.shard_of(work)
    start, end = config.blackout_window() or DEFAULT_WINDOW
    federation.blackout_shard(victim, start, end)

    got = stage_and_run(client, profile)
    client.close()

    assert plan.stats.injected.get("blackout", 0) > 0, "the outage never hit"
    assert got == want  # replication and the outage are both unobservable

    # the rejoin: anti-entropy pulls whatever the victim still misses
    # from its replica peers, after which its export is byte-identical
    federation.rejoin_shard(victim)
    prefix = work.lstrip("/")
    owners = owners_of(federation, prefix)
    assert victim == owners[0]
    donor = owners[1]
    assert manifest_subtree(
        federation.shards[victim].server, prefix
    ) == manifest_subtree(federation.shards[donor].server, prefix)


# ---------------------------------------------------------------------- #
# failover reads and read repair
# ---------------------------------------------------------------------- #


def test_failover_read_serves_from_a_replica_while_the_primary_is_dark():
    cluster, federation, wallet = replicated_world()
    client = connect_fred(cluster, federation, wallet)
    payload = input_bytes(AMANDA)[:512]
    client.mkdir("/d0")
    client.put(payload, "/d0/f")
    victim = client.shard_of("/d0")
    federation.blackout_shard(victim, 0, 10**9)

    assert client.get("/d0/f") == payload  # a peer answered
    assert client.readdir("/d0") == ["f"]
    assert client.stats.failover_reads >= 1
    assert client.stats.routed[victim] >= 1  # the primary was tried first


def test_a_dark_replica_misses_writes_and_replays_them_before_serving():
    cluster, federation, wallet = replicated_world()
    client = connect_fred(cluster, federation, wallet, retry=RETRY)
    client.mkdir("/d0")
    victim = client.shard_of("/d0")
    federation.blackout_shard(victim, 0, 10**9)
    payload = b"written while one replica was dark"
    client.put(payload, "/d0/f")  # quorum 2/3: succeeds, victim misses it
    assert client.stats.quorum_writes >= 1
    assert client.stats.missed_writes >= 1
    assert victim in client._missed

    lift_blackouts(cluster)
    # the next op that touches the victim replays its missed writes first
    assert client.get("/d0/f") == payload
    assert client.stats.read_repairs == 1
    assert victim not in client._missed
    # and the bytes really are on the victim now, not just its peers
    raw, shard = client.client_for("/d0")
    assert shard == victim
    assert raw.get("/d0/f") == payload


def test_missed_writes_replay_in_order_when_the_next_write_arrives():
    cluster, federation, wallet = replicated_world()
    client = connect_fred(cluster, federation, wallet, retry=RETRY)
    victim = client.shard_of("/d0")
    federation.blackout_shard(victim, 0, 10**9)
    client.mkdir("/d0")  # both missed: the put depends on the mkdir
    client.put(b"x", "/d0/f")
    lift_blackouts(cluster)

    client.put(b"y", "/d0/g")  # write path must replay before applying
    assert client.stats.read_repairs == 1
    raw, _shard = client.client_for("/d0")
    assert sorted(raw.readdir("/d0")) == ["f", "g"]


def test_quorum_write_fails_with_eagain_when_a_majority_is_dark():
    cluster, federation, wallet = replicated_world()
    client = connect_fred(cluster, federation, wallet)
    owners = client.replica_names("/q")
    assert len(owners) == 3
    for name in owners[1:]:
        federation.blackout_shard(name, 0, 10**9)
    with pytest.raises(ChirpError) as info:
        client.mkdir("/q")
    assert info.value.errno is Errno.EAGAIN
    assert client.stats.quorum_failures == 1
    assert client.stats.missed_writes == 2  # both dark peers owe the mkdir


def test_a_definite_error_outvotes_nothing_reads_stay_exact():
    # replicas are deterministic, so a definite error (ENOENT) from the
    # first live replica IS the answer — failover is only for silence
    cluster, federation, wallet = replicated_world()
    client = connect_fred(cluster, federation, wallet)
    with pytest.raises(ChirpError) as info:
        client.stat("/nowhere/nothing")
    assert info.value.errno is Errno.ENOENT
    assert client.stats.failover_reads == 0


def test_root_readdir_and_setacl_tolerate_one_dark_shard():
    cluster, federation, wallet = replicated_world()
    client = connect_fred(cluster, federation, wallet)
    for i in range(8):
        client.mkdir(f"/d{i}")
    victim = client.shard_of("/d0")
    federation.blackout_shard(victim, 0, 10**9)
    # the union listing still covers every prefix: replica peers list
    # everything the dark shard owns
    assert client.readdir("/") == sorted(f"d{i}" for i in range(8))
    # root policy administration logs the dark shard instead of failing
    client.setacl("/", "globus:/O=NotreDame/*", "rl")
    assert victim in client._missed


def test_close_with_dead_sessions_closes_the_rest_and_never_raises():
    cluster, federation, wallet = replicated_world()
    client = connect_fred(cluster, federation, wallet)
    for i in range(8):
        client.mkdir(f"/d{i}")
    assert len(client._clients) >= 2
    # kill one shard outright, and plant a session whose goodbye explodes
    name, deployment = sorted(federation.shards.items())[0]
    cluster.crash_server(deployment.server.hostname, deployment.server.port)

    class ExplodingSession:
        def close(self):
            raise ChirpError(Errno.EPIPE, "goodbye lost")

    client._clients["zz-exploding"] = ExplodingSession()
    client.close()  # must not raise
    assert client._clients == {} and client._missed == {}


# ---------------------------------------------------------------------- #
# suspect demotion: routing around a likely-dead shard for free
# ---------------------------------------------------------------------- #


def test_a_suspect_shard_is_demoted_so_reads_never_pay_a_failover():
    cluster, federation, wallet = replicated_world()
    client = connect_fred(cluster, federation, wallet)
    client.mkdir("/d0")
    client.put(b"demoted", "/d0/f")
    victim = client.shard_of("/d0")
    federation.blackout_shard(victim, 0, 10**9)
    # the victim misses its heartbeat; everyone else keeps reporting
    cluster.clock.advance(federation.catalog.suspect_ns + 1)
    for name, live in federation.shards.items():
        if name != victim:
            advertise(
                cluster.network, live.server.hostname, live.server,
                federation.catalog_host, federation=FED, weight=live.weight,
            )
    assert client.refresh_map() is True  # suspicion bumped the version
    flags = {s.name: s.suspect for s in client.shard_map.shards}
    assert flags[victim] is True
    before = client.stats.failover_reads
    assert client.get("/d0/f") == b"demoted"  # a peer is tried first now
    assert client.stats.failover_reads == before  # no failover was needed


# ---------------------------------------------------------------------- #
# anti-entropy repair: a rejoining shard converges server-side
# ---------------------------------------------------------------------- #


def test_rejoin_repairs_a_dark_shard_from_its_replica_peers():
    cluster, federation, wallet = replicated_world()
    client = connect_fred(cluster, federation, wallet)
    client.mkdir("/d0")
    client.put(b"old bytes", "/d0/keep")
    client.put(b"doomed", "/d0/tmp")
    victim = client.shard_of("/d0")
    federation.blackout_shard(victim, 0, 10**9)
    # mutations the victim sleeps through — then the client goes away,
    # taking its missed-write log with it: only server-side anti-entropy
    # can converge the victim now
    client.put(b"new bytes", "/d0/late")
    client.mkdir("/d0/sub")
    client.put(b"nested", "/d0/sub/deep")
    client.symlink("/d0/keep", "/d0/ln")
    client.unlink("/d0/tmp")
    client.setacl("/", "globus:/O=NotreDame/*", "rl")
    client.close()

    totals = federation.rejoin_shard(victim)
    assert totals["copied"] >= 3  # late, sub/deep, and the root ACL
    assert totals["removed"] >= 1  # the unlinked tmp
    donor = [n for n in owners_of(federation, "d0") if n != victim][0]
    assert manifest_subtree(
        federation.shards[victim].server, "d0"
    ) == manifest_subtree(federation.shards[donor].server, "d0")
    telemetry = federation.shards[victim].telemetry
    assert telemetry.counter_total("repl.repairs") == 1
    assert telemetry.counter_total("repl.repair_bytes") > 0

    # a fresh client reads the repaired replica directly: same bytes,
    # same policy surface
    lift_blackouts(cluster)
    fresh = connect_fred(cluster, federation, wallet)
    raw, shard = fresh.client_for("/d0")
    assert shard == victim
    assert raw.get("/d0/late") == b"new bytes"
    assert raw.get("/d0/sub/deep") == b"nested"
    assert raw.readlink("/d0/ln").endswith("/d0/keep")
    assert "globus:/O=NotreDame/*" in raw.getacl("/")
    with pytest.raises(ChirpError):
        raw.stat("/d0/tmp")


def test_repair_is_idempotent_and_scoped_to_owned_prefixes():
    cluster, federation, wallet = replicated_world()
    client = connect_fred(cluster, federation, wallet)
    for i in range(8):
        client.mkdir(f"/d{i}")
        client.put(bytes([i]) * 64, f"/d{i}/f")
    client.close()
    name = sorted(federation.shards)[0]
    first = federation.repair_shard(name)
    # every shard already converged (nothing was dark): repair copies 0
    assert first["copied"] == 0 and first["removed"] == 0
    # and only prefixes this shard replicates were even considered
    owned = {
        p for p in (f"d{i}" for i in range(8))
        if name in owners_of(federation, p)
    }
    assert first["prefixes"] == len(owned)
    assert federation.repair_shard(name) == first  # idempotent
