"""Federated Chirp: sharded namespace, routing, cross-shard rename, identity.

The acceptance bar (ROADMAP's federation item): every workload profile's
staging flow is byte-identical on one shard vs many — including under a
seeded fault plan — a cross-shard rename neither loses nor duplicates a
byte under drops and a mid-transfer shard restart, the same credential is
the same principal on every shard, and one trace follows a transfer
through both sides.
"""

import pytest

from repro.chirp import (
    CHIRP_PORT,
    ChirpError,
    ChirpServer,
    FED_XFER_SUFFIX,
    FederatedClient,
    GlobusAuthenticator,
    RetryPolicy,
    ServerAuth,
    advertise,
    deploy_federation,
    remove_server,
)
from repro.core import Acl, Rights
from repro.core.telemetry import instrument
from repro.gsi import CertificateAuthority, CredentialStore, provision_user
from repro.kernel.errno import Errno
from repro.kernel.fdtable import OpenFlags
from repro.kernel.timing import NS_PER_MS, NS_PER_S
from repro.net import Cluster, FaultPlan
from repro.workloads import AMANDA, BLAST, CMS, HF, IBIS, MAKE
from tests.chirp.conftest import (
    FAULT_RATE,
    FAULT_SEED,
    REPLICA_COUNT,
    SHARD_COUNT,
    requires_single_replica,
    requires_uncoalesced_wire,
)
from tests.chirp.test_resilience import input_bytes, stage_and_run

LAPTOP = "laptop.cs.nowhere.edu"
FRED_DN = "/O=UnivNowhere/CN=Fred"
FED = "pool"

#: How many shards "many" means: the CI federation job sets REPRO_SHARDS=8,
#: a plain run still exercises a real multi-shard map.
MANY = SHARD_COUNT if SHARD_COUNT > 1 else 4

RETRY = RetryPolicy(
    max_attempts=10,
    call_timeout_ns=5 * NS_PER_S,
    backoff_base_ns=5 * NS_PER_MS,
    seed=99,
)


def make_fed_world(n_shards, plan=None, replicas=REPLICA_COUNT):
    """A federation of ``n_shards`` GSI-authenticated servers + a laptop."""
    cluster = Cluster()
    cluster.add_machine(LAPTOP)
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    wallet = provision_user(ca, trust, FRED_DN)

    acl = Acl()
    acl.set_entry("hostname:*.nowhere.edu", Rights.parse("rlx"))
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlav(rwlax)"))
    federation = deploy_federation(
        cluster,
        FED,
        n_shards,
        make_auth=lambda: ServerAuth(credential_store=trust),
        root_acl=acl,
        replicas=replicas,
    )

    def sim(proc, args):
        yield proc.compute(ms=1)
        fd = yield proc.sys.open("out.dat", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        addr = proc.alloc_bytes(b"results\n" * 64)
        yield proc.sys.write(fd, addr, 8 * 64)
        yield proc.sys.close(fd)
        return 0

    federation.register_program("sim", sim)
    if plan is not None:
        cluster.install_faults(plan)
    return cluster, federation, wallet


def connect_fred(cluster, federation, wallet, retry=None, telemetry=None):
    return FederatedClient.connect(
        cluster.network,
        LAPTOP,
        FED,
        federation.catalog_host,
        [GlobusAuthenticator(wallet)],
        retry=retry,
        telemetry=telemetry,
        replicas=federation.replicas,
    )


def cross_shard_pair(client, limit=64):
    """Two top-level directories that route to different shards."""
    base = client.shard_of("/d0")
    for i in range(1, limit):
        if client.shard_of(f"/d{i}") != base:
            return "/d0", f"/d{i}"
    pytest.fail("no cross-shard prefix pair found (degenerate ring?)")


# ---------------------------------------------------------------------- #
# the acceptance sweep: 1 shard vs many, byte-identical results
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "profile", [AMANDA, BLAST, CMS, HF, IBIS, MAKE], ids=lambda p: p.name
)
def test_every_workload_is_byte_identical_on_one_vs_many_shards(profile):
    def run_on(n_shards):
        plan = None
        if FAULT_RATE > 0:
            plan = FaultPlan.uniform(
                seed=FAULT_SEED, rate=FAULT_RATE, ports=(CHIRP_PORT,)
            )
        cluster, federation, wallet = make_fed_world(n_shards, plan)
        client = connect_fred(
            cluster, federation, wallet, retry=RETRY if FAULT_RATE > 0 else None
        )
        result = stage_and_run(client, profile)
        client.close()
        return result

    want = run_on(1)
    got = run_on(MANY)
    assert want["status"] == 0 and want["size"] == len(input_bytes(profile))
    assert got == want  # sharding must not be observable in results


def test_routing_spreads_prefixes_and_serves_from_owners():
    cluster, federation, wallet = make_fed_world(MANY)
    client = connect_fred(cluster, federation, wallet)
    for i in range(16):
        client.mkdir(f"/d{i}")
        client.put(input_bytes(AMANDA)[:128], f"/d{i}/f")
    assert len(set(client.stats.routed)) > 1  # more than one shard did work
    served = federation.per_shard_op_counts()
    assert sum(1 for count in served.values() if count > 0) > 1
    # the union view: every top-level dir visible in one root listing
    assert client.readdir("/") == sorted(f"d{i}" for i in range(16))


# ---------------------------------------------------------------------- #
# cross-shard rename: the two-phase transfer
# ---------------------------------------------------------------------- #


def test_cross_shard_rename_moves_the_bytes_exactly_once():
    cluster, federation, wallet = make_fed_world(MANY)
    client = connect_fred(cluster, federation, wallet)
    src_dir, dst_dir = cross_shard_pair(client)
    client.mkdir(src_dir)
    client.mkdir(dst_dir)
    payload = input_bytes(BLAST)
    client.put(payload, f"{src_dir}/blob")

    client.rename(f"{src_dir}/blob", f"{dst_dir}/blob")

    assert client.get(f"{dst_dir}/blob") == payload
    with pytest.raises(ChirpError) as excinfo:
        client.stat(f"{src_dir}/blob")
    assert excinfo.value.errno is Errno.ENOENT
    assert client.stats.transfers == 1
    assert client.stats.transfer_bytes == len(payload)
    # no staging residue on the destination shard (raw, unfiltered view)
    raw, _shard = client.client_for(dst_dir)
    assert not [n for n in raw.readdir(dst_dir) if n.endswith(FED_XFER_SUFFIX)]


def test_cross_shard_rename_preserves_the_execute_bit():
    cluster, federation, wallet = make_fed_world(MANY)
    client = connect_fred(cluster, federation, wallet)
    src_dir, dst_dir = cross_shard_pair(client)
    client.mkdir(src_dir)
    client.mkdir(dst_dir)
    client.put(b"#!repro:sim\n", f"{src_dir}/sim.exe", mode=0o755)
    client.rename(f"{src_dir}/sim.exe", f"{dst_dir}/sim.exe")
    assert client.exec(f"{dst_dir}/sim.exe", cwd=dst_dir) == 0


def test_same_shard_rename_is_a_plain_rename():
    cluster, federation, wallet = make_fed_world(MANY)
    client = connect_fred(cluster, federation, wallet)
    client.mkdir("/d0")
    client.put(b"x", "/d0/a")
    client.rename("/d0/a", "/d0/b")
    assert client.stats.transfers == 0  # no bytes crossed the wire twice
    assert client.get("/d0/b") == b"x"


@requires_uncoalesced_wire
def test_cross_shard_rename_survives_drops_and_a_mid_transfer_restart():
    """The satellite's bar: seeded drops plus a shard restart landing in
    the middle of the transfer; afterwards exactly one copy exists, the
    staging name is gone, and retries were answered from replay caches."""
    # shard count, replica count, and seed pinned together: the fault
    # schedule is a draw sequence, so the world must be identical per run
    plan = FaultPlan.uniform(
        seed=20260802, rate=0.10, restart_at_ops=(12,), ports=(CHIRP_PORT,)
    )
    cluster, federation, wallet = make_fed_world(4, plan, replicas=1)
    client = connect_fred(cluster, federation, wallet, retry=RETRY)
    src_dir, dst_dir = cross_shard_pair(client)
    client.mkdir(src_dir)
    client.mkdir(dst_dir)
    payload = input_bytes(CMS)
    client.put(payload, f"{src_dir}/blob")
    replays_before = sum(s.stats.replays for s in federation.servers())

    client.rename(f"{src_dir}/blob", f"{dst_dir}/blob")

    assert plan.stats.total() > 0, "the plan never actually fired"
    assert client.get(f"{dst_dir}/blob") == payload  # no loss
    with pytest.raises(ChirpError):  # no duplication: the source is gone
        client.stat(f"{src_dir}/blob")
    raw, _shard = client.client_for(dst_dir)
    listing = raw.readdir(dst_dir)
    assert listing.count("blob") == 1
    assert not [n for n in listing if n.endswith(FED_XFER_SUFFIX)]
    retries = sum(c.stats.retries for c in client._clients.values())
    replays = sum(s.stats.replays for s in federation.servers())
    assert retries > 0
    # at least one retried transfer step was answered from a replay cache
    assert replays - replays_before >= 1


# ---------------------------------------------------------------------- #
# identity: one principal everywhere, one policy surface
# ---------------------------------------------------------------------- #


def test_same_credential_is_the_same_principal_on_every_shard():
    cluster, federation, wallet = make_fed_world(MANY)
    client = connect_fred(cluster, federation, wallet)
    principals = client.whoami_all()
    assert len(principals) == MANY
    assert set(principals.values()) == {"globus:/O=UnivNowhere/CN=Fred"}
    assert client.assert_identity_consistent() == "globus:/O=UnivNowhere/CN=Fred"


def test_acl_rendering_is_byte_identical_on_every_shard():
    cluster, federation, wallet = make_fed_world(MANY)
    client = connect_fred(cluster, federation, wallet)
    views = client.getacl_all("/")
    assert len(set(views.values())) == 1
    # root ACL administration fans out, so policy cannot drift per shard
    client.setacl("/", "globus:/O=NotreDame/*", "rl")
    views = client.getacl_all("/")
    assert len(set(views.values())) == 1
    assert "globus:/O=NotreDame/*" in next(iter(views.values()))


# ---------------------------------------------------------------------- #
# the shard-map cache: versioned, invalidated by membership changes
# ---------------------------------------------------------------------- #


def test_refresh_is_a_cheap_no_op_while_membership_is_stable():
    cluster, federation, wallet = make_fed_world(MANY)
    client = connect_fred(cluster, federation, wallet)
    before = client.shard_map
    federation.advertise_all()  # heartbeats are not membership changes
    assert client.refresh_map() is False
    assert client.shard_map is before
    assert client.stats.map_refreshes == 1
    assert client.stats.map_rebuilds == 0


def test_a_joining_shard_bumps_the_version_and_rebuilds_the_map():
    cluster, federation, wallet = make_fed_world(MANY)
    client = connect_fred(cluster, federation, wallet)
    # a new shard joins through the ordinary advertise path
    trust = CredentialStore()
    machine = cluster.add_machine("late.pool")
    owner = machine.add_user("keeper9")
    newcomer = ChirpServer(
        machine, owner, network=cluster.network,
        auth=ServerAuth(credential_store=trust),
    )
    newcomer.serve()
    advertise(
        cluster.network, "late.pool", newcomer, federation.catalog_host,
        federation=FED,
    )
    assert client.refresh_map() is True
    assert f"late.pool:{CHIRP_PORT}" in client.shard_map.names()
    assert len(client.shard_map.shards) == MANY + 1


def test_a_removed_shard_leaves_the_map_and_its_session_is_closed():
    cluster, federation, wallet = make_fed_world(MANY)
    client = connect_fred(cluster, federation, wallet)
    src_dir, dst_dir = cross_shard_pair(client)
    client.mkdir(src_dir)  # open a session to the shard we will retire
    victim = client.shard_of(src_dir)
    assert victim in client._clients
    assert remove_server(
        cluster.network, LAPTOP, victim, federation.catalog_host
    )
    assert client.refresh_map() is True
    assert victim not in client.shard_map.names()
    assert victim not in client._clients  # departed session torn down


def test_an_expired_shard_is_evicted_not_ghosted_and_can_reregister():
    """The staleness satellite, end to end: a dead shard's record is
    *evicted* (version bump, map rebuild), and restarting it re-registers
    cleanly — exactly one record, no ghost."""
    cluster, federation, wallet = make_fed_world(MANY)
    client = connect_fred(cluster, federation, wallet)
    dead = sorted(federation.shards)[0]
    deployment = federation.shards[dead]
    cluster.crash_server(deployment.server.hostname, deployment.server.port)
    # everyone else heartbeats past the TTL; the dead shard stays silent
    cluster.clock.advance(federation.catalog.ttl_ns + 1)
    for name, live in federation.shards.items():
        if name != dead:
            advertise(
                cluster.network, live.server.hostname, live.server,
                federation.catalog_host, federation=FED, weight=live.weight,
            )
    assert client.refresh_map() is True
    assert dead not in client.shard_map.names()
    assert federation.catalog.evictions >= 1
    # the restart path: serve again, re-advertise, rejoin the map
    federation.restart_shard(dead)
    assert client.refresh_map() is True
    assert client.shard_map.names().count(dead) == 1  # back, and only once


# ---------------------------------------------------------------------- #
# telemetry: one trace across shards, per-shard op counts
# ---------------------------------------------------------------------- #


def test_one_trace_follows_a_cross_shard_rename_through_both_shards():
    cluster, federation, wallet = make_fed_world(MANY)
    laptop_tel = instrument(cluster.machine(LAPTOP))
    client = connect_fred(cluster, federation, wallet, telemetry=laptop_tel)
    src_dir, dst_dir = cross_shard_pair(client)
    client.mkdir(src_dir)
    client.mkdir(dst_dir)
    client.put(b"traced", f"{src_dir}/blob")
    client.rename(f"{src_dir}/blob", f"{dst_dir}/blob")

    fed_span = laptop_tel.spans_named("fed:rename")[-1]
    assert fed_span.attrs["from_shard"] != fed_span.attrs["to_shard"]
    for shard_name in (fed_span.attrs["from_shard"], fed_span.attrs["to_shard"]):
        shard_tel = federation.shards[shard_name].telemetry
        remote = shard_tel.spans_in_trace(fed_span.trace_id)
        assert remote, f"no server-side spans on {shard_name} in the trace"


@requires_single_replica
def test_per_shard_op_counters_account_for_routed_work():
    cluster, federation, wallet = make_fed_world(MANY)
    laptop_tel = instrument(cluster.machine(LAPTOP))
    client = connect_fred(cluster, federation, wallet, telemetry=laptop_tel)
    for i in range(8):
        client.mkdir(f"/d{i}")
    routed = client.per_shard_ops()
    assert sum(routed.values()) == 8
    counted = {
        dict(labels)["shard"]
        for (name, labels), _count in laptop_tel.counters.items()
        if name == "fed.ops"
    }
    assert counted == set(routed)
