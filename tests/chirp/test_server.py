"""The Chirp server: file ops, ACL enforcement, reserve rights, exec."""

import pytest

from repro.chirp import ChirpError
from repro.core.acl import ACL_FILE_NAME
from repro.kernel import Errno, OpenFlags
from tests.chirp.conftest import (
    FRED_DN,
    HEIDI_DN,
    connect,
    requires_perfect_network,
)
from repro.chirp.auth import HostnameAuthenticator


# -- basic file I/O ------------------------------------------------------- #


def test_put_get_roundtrip(fred):
    data = b"x" * 200_000  # multiple chunks
    assert fred.put(data, "/work/big.dat") if False else True
    fred.mkdir("/work")
    fred.put(data, "/work/big.dat")
    assert fred.get("/work/big.dat") == data


@requires_perfect_network  # raw descriptors die with their connection
def test_open_pread_pwrite(fred):
    fred.mkdir("/w")
    fd = fred.open("/w/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT)
    assert fred.pwrite(fd, b"hello world", 0) == 11
    assert fred.pread(fd, 5, 6) == b"world"
    assert fred.fstat(fd).size == 11
    fred.ftruncate(fd, 5)
    assert fred.fstat(fd).size == 5
    fred.close_fd(fd)


def test_stat_and_readdir(fred):
    fred.mkdir("/w")
    fred.put(b"abc", "/w/f")
    st = fred.stat("/w/f")
    assert st.is_file and st.size == 3
    assert fred.stat("/w").is_dir
    assert fred.readdir("/w") == ["f"]


def test_acl_file_hidden_and_protected(fred):
    fred.mkdir("/w")
    assert ACL_FILE_NAME not in fred.readdir("/w")
    with pytest.raises(ChirpError):
        fred.put(b"Evil rwlxa", f"/w/{ACL_FILE_NAME}")
    with pytest.raises(ChirpError):
        fred.unlink(f"/w/{ACL_FILE_NAME}")


def test_rename_unlink(fred):
    fred.mkdir("/w")
    fred.put(b"1", "/w/a")
    fred.rename("/w/a", "/w/b")
    assert fred.get("/w/b") == b"1"
    fred.unlink("/w/b")
    with pytest.raises(ChirpError):
        fred.stat("/w/b")


def test_symlink_readlink(fred):
    fred.mkdir("/w")
    fred.put(b"t", "/w/target")
    fred.symlink("/w/target", "/w/link")
    assert fred.lstat("/w/link").is_symlink
    assert fred.get("/w/link") == b"t"


def test_bad_fd_is_ebadf(fred):
    with pytest.raises(ChirpError) as info:
        fred.pread(123, 1, 0)
    assert info.value.errno is Errno.EBADF


def test_path_escape_attempts_stay_jailed(fred, server):
    # the machine's real /etc/passwd exists, but the protocol path is
    # normalized back inside the export root, where no etc/ exists
    with pytest.raises(ChirpError) as info:
        fred.stat("/w/../../../../etc/passwd")
    assert info.value.errno is Errno.ENOENT
    # dot-dot within the export still works normally
    fred.mkdir("/w")
    fred.put(b"inside", "/w/../w/f")
    assert fred.get("/w/f") == b"inside"


# -- ACL semantics over the wire ---------------------------------------------- #


def test_reserve_right_mkdir(fred):
    fred.mkdir("/work")
    acl = fred.getacl("/work")
    assert acl.strip() == f"globus:{FRED_DN} rwlxa"


def test_visitor_without_rights_denied(heidi, fred):
    fred.mkdir("/work")
    with pytest.raises(ChirpError) as info:
        heidi.readdir("/work")
    assert info.value.errno is Errno.EACCES
    with pytest.raises(ChirpError):
        heidi.mkdir("/heidi-dir")  # NotreDame has only rl at the root


def test_grant_and_revoke_by_grid_identity(fred, heidi):
    fred.mkdir("/work")
    fred.put(b"shared", "/work/data")
    fred.setacl("/work", f"globus:{HEIDI_DN}", "rl")
    assert heidi.get("/work/data") == b"shared"
    fred.setacl("/work", f"globus:{HEIDI_DN}", "-")
    with pytest.raises(ChirpError):
        heidi.get("/work/data")


def test_setacl_requires_admin_right(fred, heidi):
    fred.mkdir("/work")
    fred.setacl("/work", f"globus:{HEIDI_DN}", "rl")  # no 'a' for heidi
    with pytest.raises(ChirpError) as info:
        heidi.setacl("/work", f"globus:{HEIDI_DN}", "rwlxa")
    assert info.value.errno is Errno.EACCES


def test_aclcheck_probe(fred, heidi):
    fred.mkdir("/work")
    assert fred.aclcheck("/work", "rwlxa")
    assert not heidi.aclcheck("/work", "r")


def test_access_reflects_rights(fred, heidi):
    fred.mkdir("/work")
    assert fred.access("/work", "rwl")
    assert not heidi.access("/work", "l")


def test_rmdir_own_directory_via_own_acl(fred):
    fred.mkdir("/work")
    fred.rmdir("/work")
    with pytest.raises(ChirpError):
        fred.stat("/work")


def test_rmdir_foreign_directory_denied(fred, heidi):
    fred.mkdir("/work")
    with pytest.raises(ChirpError):
        heidi.rmdir("/work")


def test_mkdir_inherits_when_writer(fred, heidi):
    fred.mkdir("/work")
    fred.setacl("/work", f"globus:{HEIDI_DN}", "rl")
    fred.mkdir("/work/sub")  # fred holds w in /work: inherit
    sub_acl = fred.getacl("/work/sub")
    assert f"globus:{HEIDI_DN} rl" in sub_acl


def test_wildcard_acl_on_wire(fred, heidi):
    fred.mkdir("/work")
    fred.put(b"d", "/work/f")
    fred.setacl("/work", "globus:/O=NotreDame/*", "rl")
    assert heidi.get("/work/f") == b"d"


def test_hard_link_rules_apply_remotely(fred, heidi):
    fred.mkdir("/work")
    fred.put(b"x", "/work/f")
    fred.link("/work/f", "/work/f2")
    assert fred.get("/work/f2") == b"x"
    heidi_denied = False
    try:
        heidi.link("/work/f", "/work/f3")
    except ChirpError:
        heidi_denied = True
    assert heidi_denied


# -- remote exec in an identity box ------------------------------------------- #


def register_writer(machine, marker=b"job output\n"):
    def job(proc, args):
        fd = yield proc.sys.open("result.dat", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        addr = proc.alloc_bytes(marker)
        yield proc.sys.write(fd, addr, len(marker))
        yield proc.sys.close(fd)
        return 0

    machine.register_program("job", job)


def test_exec_runs_in_identity_box(fred, server):
    register_writer(server.machine)
    fred.mkdir("/work")
    fred.put(b"#!repro:job\n", "/work/job.exe", mode=0o755)
    status = fred.exec("/work/job.exe", cwd="/work")
    assert status == 0
    assert fred.get("/work/result.dat") == b"job output\n"
    assert server.stats.execs == 1


def test_exec_identity_is_the_principal(fred, server):
    def whoami_job(proc, args):
        name = yield proc.sys.get_user_name()
        fd = yield proc.sys.open("who.txt", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        addr = proc.alloc_bytes(name.encode())
        yield proc.sys.write(fd, addr, len(name))
        yield proc.sys.close(fd)
        return 0

    server.machine.register_program("whoami", whoami_job)
    fred.mkdir("/work")
    fred.put(b"#!repro:whoami\n", "/work/w.exe", mode=0o755)
    fred.exec("/work/w.exe", cwd="/work")
    assert fred.get("/work/who.txt") == f"globus:{FRED_DN}".encode()


def test_exec_requires_x_right(fred, heidi, server):
    register_writer(server.machine)
    fred.mkdir("/work")
    fred.put(b"#!repro:job\n", "/work/job.exe", mode=0o755)
    fred.setacl("/work", f"globus:{HEIDI_DN}", "rl")  # read, no execute
    with pytest.raises(ChirpError) as info:
        heidi.exec("/work/job.exe", cwd="/work")
    assert info.value.errno is Errno.EACCES


def test_exec_job_confined_by_acls(fred, heidi, server):
    """A job exec'd by Heidi cannot write into Fred's directory."""

    def hostile(proc, args):
        result = yield proc.sys.open(
            "trespass", OpenFlags.O_WRONLY | OpenFlags.O_CREAT
        )
        return 0 if (isinstance(result, int) and result < 0) else 1

    server.machine.register_program("hostile", hostile)
    fred.mkdir("/work")
    fred.setacl("/work", f"globus:{HEIDI_DN}", "rlx")  # can run, not write
    fred.put(b"#!repro:hostile\n", "/work/h.exe", mode=0o755)
    status = heidi.exec("/work/h.exe", cwd="/work")
    assert status == 0  # 0 = the hostile open was denied
    assert "trespass" not in fred.readdir("/work")


def test_rx_rights_mean_run_existing_programs_only(fred, server, cluster):
    """The paper's example: rx lets you run what's there, not stage new code."""
    register_writer(server.machine)
    fred.mkdir("/work")
    fred.put(b"#!repro:job\n", "/work/job.exe", mode=0o755)
    fred.setacl("/work", "hostname:*.nowhere.edu", "rlx")
    visitor = connect(cluster)
    visitor.authenticate([HostnameAuthenticator()])
    assert visitor.exec("/work/job.exe", cwd="/work") == 0
    with pytest.raises(ChirpError):
        visitor.put(b"#!repro:job\n", "/work/mine.exe")


# -- connection hygiene ---------------------------------------------------- #


def test_connection_close_releases_fds(fred, server):
    fred.mkdir("/w")
    fred.open("/w/f", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
    open_before = len(server.owner_task.fdtable)
    fred.close()
    assert len(server.owner_task.fdtable) < open_before


def test_malformed_op_is_error(cluster, server, fred):
    reply = fred.connection.call(b"garbage{{{")
    from repro.net.rpc import decode_message

    decoded = decode_message(reply)
    assert decoded["ok"] is False


@requires_perfect_network  # asserts exact op/connection counters
def test_stats_accumulate(fred, server):
    fred.mkdir("/w")
    fred.put(b"123", "/w/f")
    fred.get("/w/f")
    assert server.stats.ops > 3
    assert server.stats.bytes_written == 3
    assert server.stats.bytes_read == 3
    assert server.stats.connections == 1
