"""The /chirp driver with several servers behind one mount."""

import pytest

from repro.chirp import (
    ChirpDriver,
    ChirpServer,
    GlobusAuthenticator,
    ServerAuth,
)
from repro.core import Acl, IdentityBox, Rights
from repro.gsi import CertificateAuthority, CredentialStore, provision_user
from repro.kernel import Errno
from repro.net import Cluster
from tests.helpers import boxed_read_file, boxed_write_file, run_calls

HOST_A = "a.example.edu"
HOST_B = "b.example.edu"
LAPTOP = "laptop.example.edu"
FRED_DN = "/O=Example/CN=Fred"


@pytest.fixture
def world():
    cluster = Cluster()
    for host in (HOST_A, HOST_B, LAPTOP):
        cluster.add_machine(host)
    ca = CertificateAuthority("Example CA")
    trust = CredentialStore()
    trust.trust(ca)
    wallet = provision_user(ca, trust, FRED_DN)
    for host in (HOST_A, HOST_B):
        machine = cluster.machine(host)
        owner = machine.add_user("op")
        server = ChirpServer(
            machine, owner, network=cluster.network,
            auth=ServerAuth(credential_store=trust),
        )
        acl = Acl()
        acl.set_entry("globus:/O=Example/*", Rights.parse("rwlxa"))
        server.set_root_acl(acl)
        server.serve()
    laptop = cluster.machine(LAPTOP)
    user = laptop.add_user("fred")
    box = IdentityBox(laptop, user, f"globus:{FRED_DN}")
    box.supervisor.mount(
        "/chirp", ChirpDriver(cluster.network, LAPTOP, [GlobusAuthenticator(wallet)])
    )
    return cluster, box


def test_one_mount_reaches_both_servers(world):
    _cluster, box = world
    assert boxed_write_file(box, f"/chirp/{HOST_A}/fa", b"on A") == 4
    assert boxed_write_file(box, f"/chirp/{HOST_B}/fb", b"on B") == 4
    assert boxed_read_file(box, f"/chirp/{HOST_A}/fa") == b"on A"
    assert boxed_read_file(box, f"/chirp/{HOST_B}/fb") == b"on B"


def test_rename_across_servers_is_exdev(world):
    _cluster, box = world
    boxed_write_file(box, f"/chirp/{HOST_A}/f", b"x")
    results = run_calls(
        [("rename", f"/chirp/{HOST_A}/f", f"/chirp/{HOST_B}/f")],
        machine=box.machine,
        box=box,
    )
    assert results == [-Errno.EXDEV]


def test_link_across_servers_is_exdev(world):
    _cluster, box = world
    boxed_write_file(box, f"/chirp/{HOST_A}/f", b"x")
    results = run_calls(
        [("link", f"/chirp/{HOST_A}/f", f"/chirp/{HOST_B}/f2")],
        machine=box.machine,
        box=box,
    )
    assert results == [-Errno.EXDEV]


def test_rename_within_one_server_works(world):
    _cluster, box = world
    boxed_write_file(box, f"/chirp/{HOST_A}/old", b"x")
    results = run_calls(
        [("rename", f"/chirp/{HOST_A}/old", f"/chirp/{HOST_A}/new")],
        machine=box.machine,
        box=box,
    )
    assert results == [0]
    assert boxed_read_file(box, f"/chirp/{HOST_A}/new") == b"x"


def test_local_paths_untouched_by_chirp_mount(world):
    _cluster, box = world
    assert boxed_write_file(box, "local.txt", b"home sweet home") == 15
    assert boxed_read_file(box, "local.txt") == b"home sweet home"


def test_unknown_server_refuses_connection(world):
    _cluster, box = world
    results = run_calls(
        [("stat", "/chirp/no-such-host.example/f")], machine=box.machine, box=box
    )
    assert results == [-Errno.ECONNREFUSED]
