"""The /chirp Parrot driver: boxed processes reaching remote storage."""

import pytest

from repro.chirp import ChirpDriver
from repro.chirp.auth import GlobusAuthenticator
from repro.core.box import IdentityBox
from repro.kernel import Errno, OpenFlags
from tests.chirp.conftest import (
    CLIENT_HOST,
    DEFAULT_RETRY,
    SERVER_HOST,
    requires_perfect_network,
)
from tests.helpers import boxed_read_file, boxed_write_file, run_calls


@pytest.fixture
def client_box(cluster, server, fred_wallet):
    """An identity box on the client machine with /chirp mounted."""
    machine = cluster.machine(CLIENT_HOST)
    user = machine.add_user("fred")
    box = IdentityBox(machine, user, "globus:/O=UnivNowhere/CN=Fred")
    driver = ChirpDriver(
        cluster.network,
        CLIENT_HOST,
        [GlobusAuthenticator(fred_wallet)],
        retry=DEFAULT_RETRY,
    )
    box.supervisor.mount("/chirp", driver)
    return box


def chirp_path(sub: str) -> str:
    return f"/chirp/{SERVER_HOST}{sub}"


def test_boxed_process_reads_remote_file(cluster, client_box, fred):
    fred.mkdir("/data")
    fred.put(b"remote content", "/data/f.txt")
    fred.setacl("/data", "globus:/O=UnivNowhere/*", "rl")
    assert boxed_read_file(client_box, chirp_path("/data/f.txt")) == b"remote content"


def test_boxed_process_writes_remote_file(cluster, client_box, fred):
    data = b"R" * 50_000  # big enough for chunked channel transfers
    # create the directory first (reserve right), then write
    results = run_calls(
        [("mkdir", chirp_path("/work2"))], machine=client_box.machine, box=client_box
    )
    assert results == [0]
    assert boxed_write_file(client_box, chirp_path("/work2/out.dat"), data) == len(data)
    assert fred.get("/work2/out.dat") == data


def test_boxed_metadata_ops_on_remote(cluster, client_box, fred):
    fred.mkdir("/meta")
    fred.put(b"abc", "/meta/f")
    results = run_calls(
        [
            ("stat", chirp_path("/meta/f")),
            ("readdir", chirp_path("/meta")),
            ("getacl", chirp_path("/meta")),
        ],
        machine=client_box.machine,
        box=client_box,
    )
    assert results[0].st_size == 3
    assert results[1] == ["f"]
    assert "globus:/O=UnivNowhere/CN=Fred rwlxa" in results[2]


def test_server_side_acls_enforced_for_boxed_client(cluster, client_box, heidi, fred):
    fred.mkdir("/private")
    fred.put(b"secret", "/private/s")
    fred.setacl("/private", "globus:/O=UnivNowhere/CN=Fred", "-")  # even fred out
    assert boxed_read_file(client_box, chirp_path("/private/s")) == -Errno.EACCES


def test_chdir_into_remote_directory(cluster, client_box, fred):
    fred.mkdir("/wd")
    fred.put(b"here", "/wd/file")
    fred.setacl("/wd", "globus:/O=UnivNowhere/*", "rwl")
    results = run_calls(
        [("chdir", chirp_path("/wd")), ("getcwd",)],
        machine=client_box.machine,
        box=client_box,
    )
    assert results[0] == 0
    assert results[1] == chirp_path("/wd")


def test_remote_executable_fetched_and_run_locally(cluster, client_box, fred, server):
    def tool(proc, args):
        name = yield proc.sys.get_user_name()
        proc.scratch["identity"] = name
        return 0

    # the program must be registered on the *client* machine, where it runs
    client_box.machine.register_program("tool", tool)
    fred.mkdir("/bin")
    fred.put(b"#!repro:tool\n", "/bin/tool.exe", mode=0o755)

    def body(proc, args):
        pid = yield proc.sys.spawn(chirp_path("/bin/tool.exe"), ())
        proc.scratch["pid"] = pid
        yield proc.sys.waitpid()
        return 0

    proc = client_box.spawn(body)
    client_box.machine.run_to_completion()
    pid = proc.context.scratch["pid"]
    assert pid > 0
    child = client_box.machine.process(pid)
    assert child.context.scratch["identity"] == "globus:/O=UnivNowhere/CN=Fred"


def test_remote_exec_right_required_for_local_run(cluster, client_box, fred):
    fred.mkdir("/noexec")
    fred.put(b"#!repro:tool\n", "/noexec/t.exe")
    fred.setacl("/noexec", "globus:/O=UnivNowhere/CN=Fred", "rwl")  # drop x
    results = run_calls(
        [("spawn", chirp_path("/noexec/t.exe"), ())],
        machine=client_box.machine,
        box=client_box,
    )
    assert results == [-Errno.EACCES]


def test_unknown_server_component(cluster, client_box):
    results = run_calls(
        [("stat", "/chirp")], machine=client_box.machine, box=client_box
    )
    assert results == [-Errno.ENOENT]


@requires_perfect_network  # asserts an exact connection count
def test_connections_cached_per_server(cluster, client_box, fred, server):
    fred.mkdir("/c")
    fred.setacl("/c", "globus:/O=UnivNowhere/*", "rwl")
    before = server.stats.connections
    for name in ("a", "b", "c"):
        boxed_write_file(client_box, chirp_path(f"/c/{name}"), b"1")
    assert server.stats.connections == before + 1  # one cached connection
