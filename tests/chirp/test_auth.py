"""Authentication negotiation: all four methods, fallbacks, admission."""

import pytest

from repro.chirp import ChirpError
from repro.chirp.auth import (
    GlobusAuthenticator,
    HostnameAuthenticator,
    KerberosAuthenticator,
    UnixAuthenticator,
)
from repro.gsi import CertificateAuthority, UserCredentials
from tests.chirp.conftest import (
    CLIENT_HOST,
    FRED_DN,
    OUTSIDE_HOST,
    SERVER_HOST,
    SERVICE_PRINCIPAL,
    connect,
)


def test_globus_auth_builds_principal(cluster, server, fred_wallet):
    client = connect(cluster)
    principal = client.authenticate([GlobusAuthenticator(fred_wallet)])
    assert principal == f"globus:{FRED_DN}"
    assert client.whoami() == principal


def test_kerberos_auth(cluster, server, kdc):
    client = connect(cluster)
    principal = client.authenticate(
        [KerberosAuthenticator(kdc, "fred@nowhere.edu", SERVICE_PRINCIPAL)]
    )
    assert principal == "kerberos:fred@nowhere.edu"


def test_hostname_auth_uses_reverse_lookup(cluster, server):
    client = connect(cluster)
    principal = client.authenticate([HostnameAuthenticator()])
    assert principal == f"hostname:{CLIENT_HOST}"


def test_unix_auth_same_host_only(cluster, server):
    # from the server machine itself
    local = connect(cluster, host=SERVER_HOST)
    assert local.authenticate([UnixAuthenticator("dthain")]) == "unix:dthain"
    # from a remote machine: refused
    remote = connect(cluster)
    with pytest.raises(ChirpError):
        remote.authenticate([UnixAuthenticator("dthain")])


def test_negotiation_falls_back_in_client_order(cluster, server):
    # an invalid globus offer followed by hostname: hostname wins
    bogus_ca = CertificateAuthority("Bogus CA")
    bogus = UserCredentials(certificate=bogus_ca.issue("/O=Bogus/CN=Nobody"))
    client = connect(cluster)
    principal = client.authenticate(
        [GlobusAuthenticator(bogus), HostnameAuthenticator()]
    )
    assert principal.startswith("hostname:")


def test_all_offers_failing_raises_last_error(cluster, server):
    bogus_ca = CertificateAuthority("Bogus CA")
    bogus = UserCredentials(certificate=bogus_ca.issue("/O=Bogus/CN=Nobody"))
    client = connect(cluster)
    with pytest.raises(ChirpError):
        client.authenticate([GlobusAuthenticator(bogus)])


def test_no_authenticators_raises(cluster, server):
    client = connect(cluster)
    with pytest.raises(ChirpError):
        client.authenticate([])


def test_operations_require_authentication(cluster, server):
    client = connect(cluster)
    with pytest.raises(ChirpError) as info:
        client.stat("/")
    assert "authenticate" in str(info.value)


def test_forged_proxy_rejected(cluster, server, fred_wallet):
    import dataclasses

    client = connect(cluster)
    auth = GlobusAuthenticator(fred_wallet)
    payload = auth.payload()
    payload["subject"] = "/O=UnivNowhere/CN=Mallory"  # tamper

    class Tampered(GlobusAuthenticator):
        def payload(self):
            return payload

    with pytest.raises(ChirpError):
        client.authenticate([Tampered(fred_wallet)])


def test_admission_policy_blocks_principals(cluster, trust, fred_wallet):
    from repro.chirp import ChirpServer, ServerAuth
    from repro.gsi import WildcardPolicy

    machine = cluster.machine(SERVER_HOST)
    owner = machine.add_user("op")
    server = ChirpServer(
        machine,
        owner,
        network=cluster.network,
        port=9200,
        auth=ServerAuth(credential_store=trust),
        admission=WildcardPolicy(patterns=["globus:/O=NotreDame/*"]),
    )
    server.serve()
    from repro.chirp import ChirpClient

    client = ChirpClient.connect(cluster.network, CLIENT_HOST, SERVER_HOST, 9200)
    with pytest.raises(ChirpError) as info:
        client.authenticate([GlobusAuthenticator(fred_wallet)])
    assert "not admitted" in str(info.value)
    assert server.stats.auth_failures == 1


def test_method_not_offered_by_server(cluster, trust):
    from repro.chirp import ChirpClient, ChirpServer, ServerAuth

    machine = cluster.machine(SERVER_HOST)
    owner = machine.add_user("op2")
    server = ChirpServer(
        machine,
        owner,
        network=cluster.network,
        port=9201,
        auth=ServerAuth(methods=["globus"], credential_store=trust),
    )
    server.serve()
    client = ChirpClient.connect(cluster.network, CLIENT_HOST, SERVER_HOST, 9201)
    with pytest.raises(ChirpError):
        client.authenticate([HostnameAuthenticator()])


def test_hostname_identity_differs_per_host(cluster, server):
    inside = connect(cluster)
    outside = connect(cluster, host=OUTSIDE_HOST)
    assert inside.authenticate([HostnameAuthenticator()]) != outside.authenticate(
        [HostnameAuthenticator()]
    )
