"""Shared Chirp test scaffolding: a cluster with one server and full auth."""

import pytest

from repro.chirp import (
    ChirpClient,
    ChirpServer,
    GlobusAuthenticator,
    HostnameAuthenticator,
    KerberosAuthenticator,
    ServerAuth,
    UnixAuthenticator,
)
from repro.core import Acl, Rights
from repro.gsi import (
    CertificateAuthority,
    CredentialStore,
    KeyDistributionCenter,
    provision_user,
)
from repro.net import Cluster

FRED_DN = "/O=UnivNowhere/CN=Fred"
HEIDI_DN = "/O=NotreDame/CN=Heidi"
SERVER_HOST = "server1.nowhere.edu"
CLIENT_HOST = "laptop.cs.nowhere.edu"
OUTSIDE_HOST = "mallory.evil.example"
SERVICE_PRINCIPAL = "chirp/server1.nowhere.edu"


@pytest.fixture
def cluster():
    c = Cluster()
    c.add_machine(SERVER_HOST)
    c.add_machine(CLIENT_HOST)
    c.add_machine(OUTSIDE_HOST)
    return c


@pytest.fixture
def ca():
    return CertificateAuthority("UnivNowhere CA")


@pytest.fixture
def trust(ca):
    store = CredentialStore()
    store.trust(ca)
    return store


@pytest.fixture
def fred_wallet(ca, trust):
    return provision_user(ca, trust, FRED_DN)


@pytest.fixture
def heidi_wallet(ca, trust):
    return provision_user(ca, trust, HEIDI_DN)


@pytest.fixture
def kdc():
    center = KeyDistributionCenter("NOWHERE.EDU")
    center.add_principal("fred@nowhere.edu")
    return center


@pytest.fixture
def server(cluster, trust, kdc):
    machine = cluster.machine(SERVER_HOST)
    owner = machine.add_user("dthain")
    srv = ChirpServer(
        machine,
        owner,
        network=cluster.network,
        auth=ServerAuth(
            credential_store=trust,
            kdcs={"NOWHERE.EDU": kdc},
            service_principal=SERVICE_PRINCIPAL,
        ),
    )
    acl = Acl()
    acl.set_entry("hostname:*.nowhere.edu", Rights.parse("rlx"))
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("v(rwlax)"))
    acl.set_entry("globus:/O=NotreDame/*", Rights.parse("rl"))
    srv.set_root_acl(acl)
    srv.serve()
    return srv


def connect(cluster, host=CLIENT_HOST):
    return ChirpClient.connect(cluster.network, host, SERVER_HOST)


@pytest.fixture
def fred(cluster, server, fred_wallet):
    client = connect(cluster)
    client.authenticate([GlobusAuthenticator(fred_wallet)])
    return client


@pytest.fixture
def heidi(cluster, server, heidi_wallet):
    client = connect(cluster)
    client.authenticate([GlobusAuthenticator(heidi_wallet)])
    return client


__all__ = [
    "CLIENT_HOST",
    "FRED_DN",
    "HEIDI_DN",
    "OUTSIDE_HOST",
    "SERVER_HOST",
    "SERVICE_PRINCIPAL",
    "connect",
    "GlobusAuthenticator",
    "HostnameAuthenticator",
    "KerberosAuthenticator",
    "UnixAuthenticator",
]
