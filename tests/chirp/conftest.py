"""Shared Chirp test scaffolding: a cluster with one server and full auth.

Setting ``REPRO_FAULT_RATE`` (e.g. ``0.1``) subjects every test that uses
these fixtures to a seeded uniform fault plan on the Chirp port, and arms
the shared clients with a retry policy: the whole Chirp suite then doubles
as a resilience suite.  The seed is fixed, so a faulted run is just as
deterministic as a clean one.
"""

import pytest

from repro import config
from repro.chirp import (
    CHIRP_PORT,
    ChirpClient,
    ChirpServer,
    GlobusAuthenticator,
    HostnameAuthenticator,
    KerberosAuthenticator,
    RetryPolicy,
    ServerAuth,
    UnixAuthenticator,
)
from repro.core import Acl, Rights
from repro.gsi import (
    CertificateAuthority,
    CredentialStore,
    KeyDistributionCenter,
    provision_user,
)
from repro.net import Cluster, FaultPlan

#: Per-kind fault probability injected under every chirp test (CI job 2).
#: Snapshotted once per session from :mod:`repro.config` — fixtures must
#: agree with the skip markers built from the same value below.
FAULT_RATE = config.fault_rate()
FAULT_SEED = config.fault_seed()
#: Shard count for federation-aware tests (CI's federation job sets 8);
#: single-server tests ignore it, the federation suite sweeps 1 vs this.
SHARD_COUNT = config.shard_count()
#: Replicas per directory prefix (CI's test-replicated chaos job sets 3);
#: 1 is the old single-owner federation and the default everywhere.
REPLICA_COUNT = config.replica_count()
#: Generous attempt budget: at rate r each call fails with ~1-(1-r)^4.
FAULT_RETRY = RetryPolicy(max_attempts=10, seed=FAULT_SEED)
#: What shared fixtures hand their clients/drivers/sessions.
DEFAULT_RETRY = FAULT_RETRY if FAULT_RATE > 0 else None

#: For tests whose assertions are about exact transport behavior or
#: precise operation counts — both meaningless once faults are injected.
requires_perfect_network = pytest.mark.skipif(
    FAULT_RATE > 0,
    reason="asserts exact transport-level behavior; skipped under fault plan",
)

#: For tests whose assertions count exactly one routed op per logical op
#: — quorum writes at REPRO_REPLICAS>1 legitimately route k of them.
requires_single_replica = pytest.mark.skipif(
    REPLICA_COUNT > 1,
    reason="asserts single-owner routing counts; skipped at REPRO_REPLICAS>1",
)

#: For tests whose assertions depend on the exact wire-frame sequence
#: (fault-draw schedules, replay-cache hit counts) — frame coalescing
#: legitimately collapses many frames into one and shifts both.
requires_uncoalesced_wire = pytest.mark.skipif(
    config.coalesce_enabled(),
    reason="asserts exact wire-frame accounting; skipped under REPRO_COALESCE",
)

FRED_DN = "/O=UnivNowhere/CN=Fred"
HEIDI_DN = "/O=NotreDame/CN=Heidi"
SERVER_HOST = "server1.nowhere.edu"
CLIENT_HOST = "laptop.cs.nowhere.edu"
OUTSIDE_HOST = "mallory.evil.example"
SERVICE_PRINCIPAL = "chirp/server1.nowhere.edu"


@pytest.fixture
def cluster():
    c = Cluster()
    c.add_machine(SERVER_HOST)
    c.add_machine(CLIENT_HOST)
    c.add_machine(OUTSIDE_HOST)
    if FAULT_RATE > 0:
        c.install_faults(
            FaultPlan.uniform(seed=FAULT_SEED, rate=FAULT_RATE, ports=(CHIRP_PORT,))
        )
    return c


@pytest.fixture
def ca():
    return CertificateAuthority("UnivNowhere CA")


@pytest.fixture
def trust(ca):
    store = CredentialStore()
    store.trust(ca)
    return store


@pytest.fixture
def fred_wallet(ca, trust):
    return provision_user(ca, trust, FRED_DN)


@pytest.fixture
def heidi_wallet(ca, trust):
    return provision_user(ca, trust, HEIDI_DN)


@pytest.fixture
def kdc():
    center = KeyDistributionCenter("NOWHERE.EDU")
    center.add_principal("fred@nowhere.edu")
    return center


@pytest.fixture
def server(cluster, trust, kdc):
    machine = cluster.machine(SERVER_HOST)
    owner = machine.add_user("dthain")
    srv = ChirpServer(
        machine,
        owner,
        network=cluster.network,
        auth=ServerAuth(
            credential_store=trust,
            kdcs={"NOWHERE.EDU": kdc},
            service_principal=SERVICE_PRINCIPAL,
        ),
    )
    acl = Acl()
    acl.set_entry("hostname:*.nowhere.edu", Rights.parse("rlx"))
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("v(rwlax)"))
    acl.set_entry("globus:/O=NotreDame/*", Rights.parse("rl"))
    srv.set_root_acl(acl)
    srv.serve()
    return srv


def connect(cluster, host=CLIENT_HOST):
    retry = FAULT_RETRY if FAULT_RATE > 0 else None
    return ChirpClient.connect(cluster.network, host, SERVER_HOST, retry=retry)


@pytest.fixture
def fred(cluster, server, fred_wallet):
    client = connect(cluster)
    client.authenticate([GlobusAuthenticator(fred_wallet)])
    return client


@pytest.fixture
def heidi(cluster, server, heidi_wallet):
    client = connect(cluster)
    client.authenticate([GlobusAuthenticator(heidi_wallet)])
    return client


__all__ = [
    "CLIENT_HOST",
    "DEFAULT_RETRY",
    "FAULT_RATE",
    "FAULT_RETRY",
    "REPLICA_COUNT",
    "requires_perfect_network",
    "requires_single_replica",
    "requires_uncoalesced_wire",
    "FRED_DN",
    "HEIDI_DN",
    "OUTSIDE_HOST",
    "SERVER_HOST",
    "SERVICE_PRINCIPAL",
    "connect",
    "GlobusAuthenticator",
    "HostnameAuthenticator",
    "KerberosAuthenticator",
    "UnixAuthenticator",
]
