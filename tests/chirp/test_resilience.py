"""Chirp under fire: retries, idempotency, degradation, and the sweep.

The acceptance bar for the fault layer: with a seeded plan injecting 10%
drops/spikes/corruption plus a whole-server restart, every workload's
Chirp staging flow completes *byte-identical* to its fault-free run, no
mutating operation is applied twice, and the resilience counters account
for what happened.
"""

import pytest

from repro.chirp import (
    CHIRP_PORT,
    ChirpClient,
    ChirpError,
    ChirpServer,
    GlobusAuthenticator,
    HostnameAuthenticator,
    OverloadPolicy,
    RetryPolicy,
    ServerAuth,
)
from repro.chirp.client import CHUNK
from repro.core import Acl, CircuitBreaker, Rights
from repro.gsi import CertificateAuthority, CredentialStore, provision_user
from repro.kernel.errno import Errno
from repro.kernel.fdtable import OpenFlags
from repro.kernel.timing import NS_PER_MS, NS_PER_S
from repro.net import Cluster, FaultPlan
from repro.workloads import AMANDA, BLAST, CMS, HF, IBIS, MAKE

SERVER = "server1.nowhere.edu"
LAPTOP = "laptop.cs.nowhere.edu"
FRED_DN = "/O=UnivNowhere/CN=Fred"

#: Deterministic test policy: small backoffs so faulted runs stay fast.
RETRY = RetryPolicy(
    max_attempts=10,
    call_timeout_ns=5 * NS_PER_S,
    backoff_base_ns=5 * NS_PER_MS,
    seed=99,
)


def make_world(plan=None, overload=None, breaker=None):
    """A one-server cluster with GSI auth, optionally under a fault plan."""
    cluster = Cluster()
    cluster.add_machine(SERVER)
    cluster.add_machine(LAPTOP)
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    wallet = provision_user(ca, trust, FRED_DN)

    machine = cluster.machine(SERVER)
    owner = machine.add_user("dthain")
    server = ChirpServer(
        machine,
        owner,
        network=cluster.network,
        auth=ServerAuth(credential_store=trust),
        overload=overload,
        health=breaker,
    )
    acl = Acl()
    acl.set_entry("hostname:*.nowhere.edu", Rights.parse("rlx"))
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlv(rwlax)"))
    server.set_root_acl(acl)
    server.serve()

    def sim(proc, args):
        yield proc.compute(ms=1)
        fd = yield proc.sys.open("out.dat", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        addr = proc.alloc_bytes(b"results\n" * 64)
        yield proc.sys.write(fd, addr, 8 * 64)
        yield proc.sys.close(fd)
        return 0

    machine.register_program("sim", sim)
    if plan is not None:
        cluster.install_faults(plan)
    return cluster, server, wallet


def connect_fred(cluster, wallet, retry=RETRY):
    client = ChirpClient.connect(cluster.network, LAPTOP, SERVER, retry=retry)
    client.authenticate([GlobusAuthenticator(wallet)])
    return client


# ---------------------------------------------------------------------- #
# the acceptance sweep: every workload, 10% faults, one server restart
# ---------------------------------------------------------------------- #


def input_bytes(profile):
    """Deterministic multi-chunk payload, distinct per workload."""
    salt = len(profile.name)
    return bytes((i * 7 + salt) % 251 for i in range(CHUNK + 4321))


def stage_and_run(client, profile):
    """The Figure-3 staging flow a workload performs against Chirp."""
    work = f"/{profile.name.lower().replace(' ', '-')}"
    data = input_bytes(profile)
    client.mkdir(work)
    client.put(data, f"{work}/input.dat")
    client.put(b"#!repro:sim\n", f"{work}/sim.exe", mode=0o755)
    size = client.stat(f"{work}/input.dat").size
    client.rename(f"{work}/input.dat", f"{work}/staged.dat")
    status = client.exec(f"{work}/sim.exe", cwd=work)
    return {
        "size": size,
        "status": status,
        "listing": sorted(client.readdir(work)),
        "staged": client.get(f"{work}/staged.dat"),
        "out": client.get(f"{work}/out.dat"),
        "whoami": client.whoami(),
    }


@pytest.mark.parametrize(
    "profile", [AMANDA, BLAST, CMS, HF, IBIS, MAKE], ids=lambda p: p.name
)
def test_every_workload_survives_ten_percent_faults(profile):
    # the reference run, on perfect wires
    cluster, _, wallet = make_world()
    fred = connect_fred(cluster, wallet, retry=None)
    want = stage_and_run(fred, profile)
    assert want["status"] == 0 and want["size"] == len(input_bytes(profile))

    # the same flow under 10% of every fault kind plus a server restart
    plan = FaultPlan.uniform(
        seed=20260805, rate=0.10, restart_at_ops=(8,), ports=(CHIRP_PORT,)
    )
    cluster, server, wallet = make_world(plan)
    fred = connect_fred(cluster, wallet)
    got = stage_and_run(fred, profile)

    assert got == want  # byte-identical despite the weather
    assert plan.stats.total() > 0, "the plan never actually fired"
    assert fred.stats.retries > 0
    # no double-applies: a replayed mkdir/rename would have raised
    # EEXIST/ENOENT and broken the equality above; the replay counter
    # shows how often the idempotency cache had to answer for a retry
    assert server.stats.replays >= 0
    assert fred.stats.reconnects >= 1  # the restart alone guarantees one


def test_fault_free_clock_cost_is_unchanged_by_the_fault_hooks():
    """Installing a zero-rate plan must not slow the simulated fast path."""
    elapsed = []
    for plan in (None, FaultPlan()):
        cluster, _, wallet = make_world(plan)
        fred = connect_fred(cluster, wallet, retry=None)
        start = cluster.clock.now_ns
        stage_and_run(fred, AMANDA)
        elapsed.append(cluster.clock.now_ns - start)
    assert elapsed[0] == elapsed[1]


# ---------------------------------------------------------------------- #
# idempotency: a lost response never re-applies a mutating op
# ---------------------------------------------------------------------- #


def test_rename_with_lost_response_is_replayed_not_reapplied():
    plan = FaultPlan(ports=(CHIRP_PORT,))
    cluster, server, wallet = make_world(plan)
    fred = connect_fred(cluster, wallet)
    fred.mkdir("/w")
    fred.put(b"payload", "/w/a")
    plan.force("drop_after")  # the server renames; the response dies
    fred.rename("/w/a", "/w/b")  # a naive retry would see ENOENT here
    assert server.stats.replays == 1
    assert sorted(fred.readdir("/w")) == ["b"]
    assert fred.get("/w/b") == b"payload"


def test_mkdir_with_lost_response_is_replayed_not_reapplied():
    plan = FaultPlan(ports=(CHIRP_PORT,))
    cluster, server, wallet = make_world(plan)
    fred = connect_fred(cluster, wallet)
    plan.force("drop_after")
    fred.mkdir("/solo")  # a naive retry would see EEXIST here
    assert server.stats.replays == 1
    assert fred.stat("/solo").is_dir


def test_server_restart_mid_transfer_revives_the_descriptor():
    # ops: auth=1, mkdir=2, open=3, pwrite=4 <- crash lands mid-transfer
    plan = FaultPlan(restart_at_ops=(4,), ports=(CHIRP_PORT,))
    cluster, _, wallet = make_world(plan)
    fred = connect_fred(cluster, wallet)
    fred.mkdir("/big")
    data = input_bytes(BLAST)
    assert fred.put(data, "/big/blob") == len(data)
    assert fred.stats.transfer_restarts >= 1  # fd died with the server
    assert fred.stats.reauths >= 1  # new connection, same principal
    assert fred.get("/big/blob") == data  # and the bytes are whole


# ---------------------------------------------------------------------- #
# frame damage: poisoning is per-connection, never per-server
# ---------------------------------------------------------------------- #


def test_corrupted_request_poisons_one_connection_only():
    plan = FaultPlan(ports=(CHIRP_PORT,))
    cluster, server, wallet = make_world(plan)
    fred = connect_fred(cluster, wallet)
    bystander = connect_fred(cluster, wallet)
    plan.force("corrupt")
    assert fred.whoami() == f"globus:{FRED_DN}"  # retried on a fresh wire
    assert server.stats.protocol_errors == 1
    assert fred.stats.reconnects >= 1
    # the accept loop and every other connection are untouched
    assert bystander.whoami() == f"globus:{FRED_DN}"


def test_truncated_response_is_transient_and_retried():
    plan = FaultPlan(ports=(CHIRP_PORT,))
    cluster, _, wallet = make_world(plan)
    fred = connect_fred(cluster, wallet)
    plan.force("truncate")
    assert fred.whoami() == f"globus:{FRED_DN}"
    assert fred.stats.retries >= 1 and fred.stats.reconnects >= 1


def test_late_response_counts_as_timeout_and_is_retried():
    plan = FaultPlan(spike_ns=3 * NS_PER_S, ports=(CHIRP_PORT,))
    cluster, _, wallet = make_world(plan)
    fred = connect_fred(
        cluster, wallet, retry=RetryPolicy(call_timeout_ns=1 * NS_PER_S, seed=99)
    )
    plan.force("spike")
    assert fred.whoami() == f"globus:{FRED_DN}"
    assert fred.stats.timeouts == 1


# ---------------------------------------------------------------------- #
# graceful degradation: shedding and the circuit breaker
# ---------------------------------------------------------------------- #


def test_overload_shed_returns_eagain_and_backoff_drains_it():
    overload = OverloadPolicy(rate_per_s=200.0, burst=2)
    cluster, server, wallet = make_world(overload=overload)
    fred = connect_fred(cluster, wallet)  # auth spends a token
    fred.mkdir("/w")  # the burst is gone now
    for i in range(6):
        fred.put(b"x", f"/w/f{i}")
    assert server.stats.sheds > 0  # EAGAIN happened...
    assert fred.stats.retries > 0  # ...and backoff absorbed it
    assert sorted(fred.readdir("/w")) == [f"f{i}" for i in range(6)]


def test_overload_shed_without_retry_surfaces_eagain():
    overload = OverloadPolicy(rate_per_s=0.001, burst=1)
    cluster, server, wallet = make_world(overload=overload)
    fred = connect_fred(cluster, wallet, retry=None)  # auth drains the bucket
    with pytest.raises(ChirpError) as info:
        fred.stat("/")
    assert info.value.errno is Errno.EAGAIN
    assert server.stats.sheds == 1


def test_circuit_breaker_trips_per_identity_and_half_opens():
    cluster = Cluster()  # need the clock before the breaker exists
    breaker = CircuitBreaker(clock=cluster.clock, threshold=3, cooldown_ns=NS_PER_S)
    cluster.add_machine(SERVER)
    cluster.add_machine(LAPTOP)
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    wallet = provision_user(ca, trust, FRED_DN)
    machine = cluster.machine(SERVER)
    server = ChirpServer(
        machine,
        machine.add_user("dthain"),
        network=cluster.network,
        auth=ServerAuth(credential_store=trust),
        health=breaker,
    )
    acl = Acl()
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlv(rwlax)"))
    acl.set_entry("hostname:*.nowhere.edu", Rights.parse("rl"))
    server.set_root_acl(acl)
    server.serve()

    fred = connect_fred(cluster, wallet, retry=None)
    identity = f"globus:{FRED_DN}"
    for _ in range(3):  # three consecutive failures trip the circuit
        with pytest.raises(ChirpError) as info:
            fred.stat("/missing")
        assert info.value.errno is Errno.ENOENT
    with pytest.raises(ChirpError) as info:
        fred.stat("/")  # would succeed, but the circuit is open
    assert info.value.errno is Errno.EAGAIN
    assert breaker.is_open(identity)

    health = server.pipeline.stats()["health"]
    assert health["trips"] == 1 and health["rejected"] == 1
    assert health["open"] == [identity]

    # other identities are not degraded
    mallory = ChirpClient.connect(cluster.network, LAPTOP, SERVER)
    mallory.authenticate([HostnameAuthenticator()])
    assert mallory.stat("/").is_dir

    # after the cooldown the circuit half-opens and a success closes it
    cluster.clock.advance(2 * NS_PER_S, "idle")
    assert fred.stat("/").is_dir
    assert not breaker.is_open(identity)
    assert server.pipeline.stats()["health"]["successes"] > 0


# ---------------------------------------------------------------------- #
# authentication under faults
# ---------------------------------------------------------------------- #


def test_auth_dropped_mid_negotiation_falls_back_to_next_method():
    plan = FaultPlan(ports=(CHIRP_PORT,))
    cluster, _, wallet = make_world(plan)
    client = ChirpClient.connect(cluster.network, LAPTOP, SERVER, retry=RETRY)
    plan.force("drop_after")  # the globus offer's verdict is lost
    principal = client.authenticate(
        [GlobusAuthenticator(wallet), HostnameAuthenticator()]
    )
    # a transport fault is not a credential verdict: the client moved on
    # to the next method on a fresh connection, and both ends agree
    assert principal == f"hostname:{LAPTOP}"
    assert client.principal == principal
    assert client.whoami() == principal


def test_failed_renegotiation_clears_the_stale_principal():
    cluster, _, wallet = make_world()
    fred = connect_fred(cluster, wallet, retry=None)
    assert fred.principal == f"globus:{FRED_DN}"

    rogue_ca = CertificateAuthority("Rogue CA")  # the server trusts no such CA
    rogue_store = CredentialStore()
    rogue_store.trust(rogue_ca)
    rogue_wallet = provision_user(rogue_ca, rogue_store, "/O=Rogue/CN=Fred")
    with pytest.raises(ChirpError):
        fred.authenticate([GlobusAuthenticator(rogue_wallet)])
    assert fred.principal == ""  # never a leftover identity


def test_closed_client_raises_clean_epipe_everywhere():
    cluster, _, wallet = make_world()
    fred = connect_fred(cluster, wallet, retry=None)
    fred.close()
    with pytest.raises(ChirpError) as info:
        fred.stat("/")
    assert info.value.errno is Errno.EPIPE
    with pytest.raises(ChirpError) as info:
        fred.authenticate([GlobusAuthenticator(wallet)])
    assert info.value.errno is Errno.EPIPE


def test_crash_and_reserve_recovers_transparently():
    cluster, server, wallet = make_world()
    fred = connect_fred(cluster, wallet)
    fred.mkdir("/w")
    cluster.crash_server(SERVER, CHIRP_PORT)  # connections AND listener die
    server.serve()  # the operator restarts it
    assert fred.whoami() == f"globus:{FRED_DN}"  # reconnect + re-auth
    assert fred.stats.reconnects >= 1 and fred.stats.reauths >= 1
    assert fred.stat("/w").is_dir  # state survived the restart
