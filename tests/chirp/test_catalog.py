"""The catalog server: advertise, list, staleness."""

import pytest

from repro.chirp import CatalogRecord, CatalogServer, advertise, list_servers
from tests.chirp.conftest import CLIENT_HOST, SERVER_HOST

CATALOG_HOST = "catalog.nowhere.edu"


@pytest.fixture
def catalog(cluster):
    cluster.add_machine(CATALOG_HOST)
    server = CatalogServer(cluster.network, CATALOG_HOST, ttl_s=60)
    server.serve()
    return server


def test_advertise_and_list(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    records = list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST)
    assert len(records) == 1
    assert records[0].hostname == SERVER_HOST
    assert records[0].owner == "dthain"


def test_empty_catalog(cluster, catalog):
    assert list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST) == []


def test_reupdate_replaces_record(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    assert len(list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST)) == 1


def test_stale_records_expire(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    cluster.clock.advance(61 * 1_000_000_000)  # a minute passes, no heartbeat
    assert list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST) == []


def test_heartbeat_keeps_record_fresh(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    cluster.clock.advance(50 * 1_000_000_000)
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    cluster.clock.advance(50 * 1_000_000_000)
    assert len(list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST)) == 1


def test_records_sorted_by_name(cluster, catalog):
    for name in ("srv-b", "srv-a"):
        catalog.update(
            CatalogRecord(name=name, hostname=name, port=9094, owner="x")
        )
    names = [r.name for r in catalog.fresh_records()]
    assert names == ["srv-a", "srv-b"]


def test_record_wire_roundtrip():
    record = CatalogRecord(
        name="n", hostname="h", port=9094, owner="o", updated_ns=123
    )
    assert CatalogRecord.from_fields(record.to_fields()) == record


def test_bad_catalog_op_rejected(cluster, catalog):
    from repro.net.rpc import decode_message, encode_message

    conn = cluster.network.connect(CLIENT_HOST, CATALOG_HOST, catalog.port)
    reply = decode_message(conn.call(encode_message({"op": "explode"})))
    assert reply["ok"] is False


# ---------------------------------------------------------------------- #
# eviction and deregistration: staleness means *gone*, not filtered
# ---------------------------------------------------------------------- #


def test_expired_records_are_evicted_not_just_filtered(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    cluster.clock.advance(61 * 1_000_000_000)
    evicted = catalog.sweep()
    assert evicted == [f"{SERVER_HOST}:{server.port}"]
    assert catalog.evictions == 1
    assert catalog._records == {}  # truly gone, no ghost entry


def test_a_restarted_server_reregisters_with_no_ghost(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    cluster.clock.advance(61 * 1_000_000_000)
    catalog.sweep()
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    names = [r.name for r in list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST)]
    assert names == [f"{SERVER_HOST}:{server.port}"]  # exactly one record


def test_remove_deregisters_over_the_wire(cluster, server, catalog):
    from repro.chirp import remove_server

    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    name = f"{SERVER_HOST}:{server.port}"
    assert remove_server(cluster.network, CLIENT_HOST, name, CATALOG_HOST) is True
    assert list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST) == []
    # removing what is not there reports so instead of erroring
    assert remove_server(cluster.network, CLIENT_HOST, name, CATALOG_HOST) is False


# ---------------------------------------------------------------------- #
# federation membership versions: the shard-map cache token
# ---------------------------------------------------------------------- #


def _member(name, weight=1, federation="pool"):
    return CatalogRecord(
        name=name, hostname=name, port=9094, owner="k",
        federation=federation, weight=weight,
    )


def test_membership_version_bumps_on_join_change_remove_and_evict(cluster, catalog):
    assert catalog.federation_version("pool") == 0
    catalog.update(_member("s1"))
    assert catalog.federation_version("pool") == 1  # join
    catalog.update(_member("s1"))
    assert catalog.federation_version("pool") == 1  # heartbeat: no bump
    catalog.update(_member("s1", weight=3))
    assert catalog.federation_version("pool") == 2  # ring weight changed
    catalog.update(_member("s2"))
    assert catalog.federation_version("pool") == 3
    catalog.remove("s2")
    assert catalog.federation_version("pool") == 4  # explicit retirement
    cluster.clock.advance(61 * 1_000_000_000)
    assert catalog.federation_version("pool") == 5  # s1 evicted by the sweep
    assert catalog.federation_view("pool") == (5, [])


def test_federation_view_is_scoped_and_versioned(cluster, server, catalog):
    from repro.chirp import federation_members

    catalog.update(_member("s1"))
    catalog.update(_member("s2", weight=2))
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)  # standalone
    version, members = federation_members(
        cluster.network, CLIENT_HOST, "pool", CATALOG_HOST
    )
    assert version == 2
    assert [m.name for m in members] == ["s1", "s2"]
    assert [m.weight for m in members] == [1, 2]
    # a standalone server's heartbeats never touch federation versions
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    assert catalog.federation_version("pool") == 2
