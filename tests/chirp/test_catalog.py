"""The catalog server: advertise, list, staleness."""

import pytest

from repro.chirp import CatalogRecord, CatalogServer, advertise, list_servers
from tests.chirp.conftest import CLIENT_HOST, SERVER_HOST

CATALOG_HOST = "catalog.nowhere.edu"


@pytest.fixture
def catalog(cluster):
    cluster.add_machine(CATALOG_HOST)
    server = CatalogServer(cluster.network, CATALOG_HOST, ttl_s=60)
    server.serve()
    return server


def test_advertise_and_list(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    records = list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST)
    assert len(records) == 1
    assert records[0].hostname == SERVER_HOST
    assert records[0].owner == "dthain"


def test_empty_catalog(cluster, catalog):
    assert list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST) == []


def test_reupdate_replaces_record(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    assert len(list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST)) == 1


def test_stale_records_expire(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    cluster.clock.advance(61 * 1_000_000_000)  # a minute passes, no heartbeat
    assert list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST) == []


def test_heartbeat_keeps_record_fresh(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    cluster.clock.advance(50 * 1_000_000_000)
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    cluster.clock.advance(50 * 1_000_000_000)
    assert len(list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST)) == 1


def test_records_sorted_by_name(cluster, catalog):
    for name in ("srv-b", "srv-a"):
        catalog.update(
            CatalogRecord(name=name, hostname=name, port=9094, owner="x")
        )
    names = [r.name for r in catalog.fresh_records()]
    assert names == ["srv-a", "srv-b"]


def test_record_wire_roundtrip():
    record = CatalogRecord(
        name="n", hostname="h", port=9094, owner="o", updated_ns=123
    )
    assert CatalogRecord.from_fields(record.to_fields()) == record


def test_bad_catalog_op_rejected(cluster, catalog):
    from repro.net.rpc import decode_message, encode_message

    conn = cluster.network.connect(CLIENT_HOST, CATALOG_HOST, catalog.port)
    reply = decode_message(conn.call(encode_message({"op": "explode"})))
    assert reply["ok"] is False


# ---------------------------------------------------------------------- #
# eviction and deregistration: staleness means *gone*, not filtered
# ---------------------------------------------------------------------- #


def test_expired_records_are_evicted_not_just_filtered(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    cluster.clock.advance(61 * 1_000_000_000)
    evicted = catalog.sweep()
    assert evicted == [f"{SERVER_HOST}:{server.port}"]
    assert catalog.evictions == 1
    assert catalog._records == {}  # truly gone, no ghost entry


def test_a_restarted_server_reregisters_with_no_ghost(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    cluster.clock.advance(61 * 1_000_000_000)
    catalog.sweep()
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    names = [r.name for r in list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST)]
    assert names == [f"{SERVER_HOST}:{server.port}"]  # exactly one record


def test_remove_deregisters_over_the_wire(cluster, server, catalog):
    from repro.chirp import remove_server

    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    name = f"{SERVER_HOST}:{server.port}"
    assert remove_server(cluster.network, CLIENT_HOST, name, CATALOG_HOST) is True
    assert list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST) == []
    # removing what is not there reports so instead of erroring
    assert remove_server(cluster.network, CLIENT_HOST, name, CATALOG_HOST) is False


# ---------------------------------------------------------------------- #
# federation membership versions: the shard-map cache token
# ---------------------------------------------------------------------- #


def _member(name, weight=1, federation="pool"):
    return CatalogRecord(
        name=name, hostname=name, port=9094, owner="k",
        federation=federation, weight=weight,
    )


def test_membership_version_bumps_on_join_change_remove_and_evict(cluster, catalog):
    assert catalog.federation_version("pool") == 0
    catalog.update(_member("s1"))
    assert catalog.federation_version("pool") == 1  # join
    catalog.update(_member("s1"))
    assert catalog.federation_version("pool") == 1  # heartbeat: no bump
    catalog.update(_member("s1", weight=3))
    assert catalog.federation_version("pool") == 2  # ring weight changed
    catalog.update(_member("s2"))
    assert catalog.federation_version("pool") == 3
    catalog.remove("s2")
    assert catalog.federation_version("pool") == 4  # explicit retirement
    cluster.clock.advance(61 * 1_000_000_000)
    assert catalog.federation_version("pool") == 5  # s1 evicted by the sweep
    assert catalog.federation_view("pool") == (5, [])


def test_federation_view_is_scoped_and_versioned(cluster, server, catalog):
    from repro.chirp import federation_members

    catalog.update(_member("s1"))
    catalog.update(_member("s2", weight=2))
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)  # standalone
    version, members = federation_members(
        cluster.network, CLIENT_HOST, "pool", CATALOG_HOST
    )
    assert version == 2
    assert [m.name for m in members] == ["s1", "s2"]
    assert [m.weight for m in members] == [1, 2]
    # a standalone server's heartbeats never touch federation versions
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    assert catalog.federation_version("pool") == 2


# ---------------------------------------------------------------------- #
# failure detection: suspects sit between heartbeat and eviction
# ---------------------------------------------------------------------- #

NS = 1_000_000_000


@pytest.fixture
def watchful(cluster):
    """A catalog whose failure detector fires well before eviction."""
    cluster.add_machine("watchful.nowhere.edu")
    server = CatalogServer(
        cluster.network, "watchful.nowhere.edu", ttl_s=60, suspect_after_s=20
    )
    server.serve()
    return server


def test_missed_heartbeats_mark_a_shard_suspect_with_one_bump(cluster, watchful):
    watchful.update(_member("s1"))
    watchful.update(_member("s2"))
    assert watchful.federation_version("pool") == 2
    cluster.clock.advance(10 * NS)
    watchful.update(_member("s2"))  # s2 keeps heartbeating, s1 goes silent
    cluster.clock.advance(11 * NS)  # s1 is now 21s silent, s2 only 11s
    assert watchful.federation_version("pool") == 3  # the sweep's verdict
    flags = {r.name: r.suspect for r in watchful.fresh_records()}
    assert flags == {"s1": True, "s2": False}
    assert watchful.suspicions == 1
    # the verdict is bumped once, not once per sweep
    assert watchful.federation_version("pool") == 3
    # suspects are demoted, not evicted: still a member, still on the ring
    assert [r.name for r in watchful.federation_view("pool")[1]] == ["s1", "s2"]


def test_a_suspect_heartbeat_revives_with_exactly_one_bump(cluster, watchful):
    watchful.update(_member("s1"))
    cluster.clock.advance(21 * NS)
    assert watchful.federation_version("pool") == 2  # join + suspicion
    watchful.update(_member("s1"))  # the shard comes back
    assert watchful.federation_version("pool") == 3  # revival: one bump
    assert not any(r.suspect for r in watchful.fresh_records())
    watchful.update(_member("s1"))  # an ordinary heartbeat again
    assert watchful.federation_version("pool") == 3


def test_reregistration_after_silence_bumps_once_even_without_a_sweep(
    cluster, watchful
):
    """The eviction/re-registration coupling: a shard that re-registers
    during its own eviction window gets exactly one version bump whether
    or not the sweep noticed the silence first."""
    # (a) the sweep never ran: silence is detected at re-registration
    watchful.update(_member("s1"))
    assert watchful._fed_versions["pool"] == 1
    cluster.clock.advance(25 * NS)  # past suspect horizon, below the TTL
    watchful.update(_member("s1"))  # no sweep happened in between
    assert watchful._fed_versions["pool"] == 2  # went-silent: one bump
    # (b) the sweep ran first: suspicion then revival, one bump each
    cluster.clock.advance(25 * NS)
    watchful.sweep()
    assert watchful._fed_versions["pool"] == 3
    watchful.update(_member("s1"))
    assert watchful._fed_versions["pool"] == 4


def test_eviction_still_wins_past_the_ttl_and_clears_suspicion(cluster, watchful):
    watchful.update(_member("s1"))
    cluster.clock.advance(61 * NS)  # silent past the eviction TTL
    # eviction preempts suspicion: the record is gone, one bump, and the
    # expired shard never lingers in the suspect set
    assert watchful.federation_view("pool") == (2, [])
    assert watchful.evictions == 1 and watchful.suspicions == 0
    assert watchful._suspects == set()
    watchful.update(_member("s1"))  # re-registration is a plain join
    assert watchful.federation_version("pool") == 3
