"""The catalog server: advertise, list, staleness."""

import pytest

from repro.chirp import CatalogRecord, CatalogServer, advertise, list_servers
from tests.chirp.conftest import CLIENT_HOST, SERVER_HOST

CATALOG_HOST = "catalog.nowhere.edu"


@pytest.fixture
def catalog(cluster):
    cluster.add_machine(CATALOG_HOST)
    server = CatalogServer(cluster.network, CATALOG_HOST, ttl_s=60)
    server.serve()
    return server


def test_advertise_and_list(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    records = list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST)
    assert len(records) == 1
    assert records[0].hostname == SERVER_HOST
    assert records[0].owner == "dthain"


def test_empty_catalog(cluster, catalog):
    assert list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST) == []


def test_reupdate_replaces_record(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    assert len(list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST)) == 1


def test_stale_records_expire(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    cluster.clock.advance(61 * 1_000_000_000)  # a minute passes, no heartbeat
    assert list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST) == []


def test_heartbeat_keeps_record_fresh(cluster, server, catalog):
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    cluster.clock.advance(50 * 1_000_000_000)
    advertise(cluster.network, SERVER_HOST, server, CATALOG_HOST)
    cluster.clock.advance(50 * 1_000_000_000)
    assert len(list_servers(cluster.network, CLIENT_HOST, CATALOG_HOST)) == 1


def test_records_sorted_by_name(cluster, catalog):
    for name in ("srv-b", "srv-a"):
        catalog.update(
            CatalogRecord(name=name, hostname=name, port=9094, owner="x")
        )
    names = [r.name for r in catalog.fresh_records()]
    assert names == ["srv-a", "srv-b"]


def test_record_wire_roundtrip():
    record = CatalogRecord(
        name="n", hostname="h", port=9094, owner="o", updated_ns=123
    )
    assert CatalogRecord.from_fields(record.to_fields()) == record


def test_bad_catalog_op_rejected(cluster, catalog):
    from repro.net.rpc import decode_message, encode_message

    conn = cluster.network.connect(CLIENT_HOST, CATALOG_HOST, catalog.port)
    reply = decode_message(conn.call(encode_message({"op": "explode"})))
    assert reply["ok"] is False
