"""The fast lane end to end: memoized reads, coalesced frames, op budgets.

The acceptance bar: the fast lane is a *pure* optimization.  Every
workload profile's staging flow is byte-identical with the cache and
coalescing on vs off — on clean wires, under a seeded fault plan, and on
a replicated federation — and a mutation landing between two cached
reads is always visible to the second read, same-shard or cross-shard.
The per-identity quota refuses with EAGAIN, the transient errno the
retry layer already treats as back-off-and-retry.
"""

import pytest

from repro.chirp import (
    CHIRP_PORT,
    ChirpClient,
    ChirpError,
    ChirpServer,
    GlobusAuthenticator,
    ServerAuth,
)
from repro.core import Acl, IdentityQuota, Rights
from repro.gsi import CertificateAuthority, CredentialStore, provision_user
from repro.kernel.errno import Errno
from repro.kernel.fdtable import OpenFlags
from repro.net import Cluster, FaultPlan
from repro.workloads import AMANDA, BLAST, CMS, HF, IBIS, MAKE
from tests.chirp.test_federation import (
    connect_fred as fed_connect,
)
from tests.chirp.test_federation import (
    make_fed_world,
)
from tests.chirp.test_resilience import (
    RETRY,
    connect_fred,
    input_bytes,
    make_world,
    stage_and_run,
)

PROFILES = [AMANDA, BLAST, CMS, HF, IBIS, MAKE]


def fastlane_off(monkeypatch):
    for var in ("REPRO_CACHE", "REPRO_COALESCE", "REPRO_QUOTA"):
        monkeypatch.delenv(var, raising=False)


def fastlane_on(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_COALESCE", "1")


# ---------------------------------------------------------------------- #
# invalidation races: a mutation between two cached reads
# ---------------------------------------------------------------------- #


def test_mutation_between_two_cached_reads_is_visible(monkeypatch):
    fastlane_off(monkeypatch)
    monkeypatch.setenv("REPRO_CACHE", "1")
    cluster, server, wallet = make_world()
    fred = connect_fred(cluster, wallet, retry=None)
    fred.mkdir("/t")
    fred.put(b"v1", "/t/f")
    assert fred.stat("/t/f").size == 2
    assert fred.stat("/t/f").size == 2  # served from the cache
    assert server.read_cache.hits >= 1
    fred.truncate("/t/f", 1)  # the race: a mutation between cached reads
    assert fred.stat("/t/f").size == 1  # never the stale verdict
    assert server.read_cache.invalidations >= 1


def test_descriptor_write_between_cached_reads_is_visible(monkeypatch):
    fastlane_off(monkeypatch)
    monkeypatch.setenv("REPRO_CACHE", "1")
    cluster, server, wallet = make_world()
    fred = connect_fred(cluster, wallet, retry=None)
    fred.mkdir("/t")
    fred.put(b"1234", "/t/f")
    fd = fred.open("/t/f", OpenFlags.O_WRONLY)
    assert fred.stat("/t/f").size == 4
    assert fred.stat("/t/f").size == 4
    # the mutation arrives through a descriptor, not a path: the fd->path
    # hint must carry the invalidation
    fred.pwrite(fd, b"xxxxxxxx", 0)
    fred.close_fd(fd)
    assert fred.stat("/t/f").size == 8


def test_setacl_between_cached_acl_reads_is_visible(monkeypatch):
    fastlane_off(monkeypatch)
    monkeypatch.setenv("REPRO_CACHE", "1")
    cluster, server, wallet = make_world()
    fred = connect_fred(cluster, wallet, retry=None)
    fred.mkdir("/t")  # fred's own zone: rwlax includes admin
    assert fred.aclcheck("/t", "w") is True
    assert fred.aclcheck("/t", "w") is True  # memoized verdict
    fred.setacl("/t", "globus:/O=NotreDame/*", "rl")
    # the governing directory's ACL changed: cached verdicts under it died
    assert "globus:/O=NotreDame/*" in fred.getacl("/t")
    assert server.read_cache.invalidations >= 1


def test_restore_flushes_the_cache_with_the_world(monkeypatch):
    fastlane_off(monkeypatch)
    monkeypatch.setenv("REPRO_CACHE", "1")
    cluster, server, wallet = make_world()
    fred = connect_fred(cluster, wallet, retry=None)
    fred.mkdir("/t")
    fred.put(b"before", "/t/f")
    assert fred.stat("/t/f").size == 6
    snap = server.machine.snapshot()
    fred.put(b"after is longer", "/t/f")
    assert fred.stat("/t/f").size == 15
    server.machine.restore(snap)  # the world rolls back under the server
    # entries must never outlive the world they were read from
    assert fred.stat("/t/f").size == 6
    assert server.read_cache.flushes >= 1


def test_fork_does_not_share_cache_entries_with_the_parent(monkeypatch):
    fastlane_off(monkeypatch)
    monkeypatch.setenv("REPRO_CACHE", "1")
    cluster, server, wallet = make_world()
    fred = connect_fred(cluster, wallet, retry=None)
    fred.mkdir("/t")
    fred.put(b"parent", "/t/f")
    assert fred.stat("/t/f").size == 6
    entries_before = len(server.read_cache)
    child = server.machine.fork()
    # mutate the forked world below any server: the parent's cache must
    # neither see the change nor be poisoned by it
    task = child.host_task(child.users.credentials_for("dthain"))
    path = server.real_path("/t/f")
    child.write_file(task, path, b"child wrote something longer")
    assert len(server.read_cache) == entries_before
    assert fred.stat("/t/f").size == 6  # parent's world, parent's verdict
    assert child.kcall_x(task, "stat", path).st_size == 28


def test_cross_shard_repair_flushes_replica_caches(monkeypatch):
    """Anti-entropy repair writes below the pipeline; the repaired
    replica's memoized verdicts must die with the stale bytes."""
    fastlane_off(monkeypatch)
    monkeypatch.setenv("REPRO_CACHE", "1")
    cluster, federation, wallet = make_fed_world(4, replicas=3)
    client = fed_connect(cluster, federation, wallet)
    client.mkdir("/d0")
    client.put(b"v1", "/d0/f")
    victim = client.shard_of("/d0")
    raw, shard = client.client_for("/d0")
    assert shard == victim
    assert raw.stat("/d0/f").size == 2
    assert raw.stat("/d0/f").size == 2  # victim's cache is warm
    victim_server = federation.shards[victim].server
    assert victim_server.read_cache.hits >= 1

    federation.blackout_shard(victim, 0, 10**9)
    retry_client = fed_connect(cluster, federation, wallet, retry=RETRY)
    retry_client.put(b"v2 is much longer", "/d0/f")  # quorum write, victim dark
    retry_client.close()
    client.close()
    cluster.network.faults.blackouts = ()

    federation.rejoin_shard(victim)  # repair bypasses the victim's pipeline
    telemetry = federation.shards[victim].telemetry
    assert telemetry.counter_total("fastlane.cache.cross_shard_flushes") == 1

    fresh = fed_connect(cluster, federation, wallet)
    raw, shard = fresh.client_for("/d0")
    assert shard == victim
    # the stale memoized size (2) must not survive the repair
    assert raw.stat("/d0/f").size == 17
    assert raw.get("/d0/f") == b"v2 is much longer"


# ---------------------------------------------------------------------- #
# the batch envelope
# ---------------------------------------------------------------------- #


def test_batch_runs_frames_in_order_and_isolates_slot_failures():
    cluster, server, wallet = make_world()
    fred = connect_fred(cluster, wallet, retry=None)
    fred.mkdir("/t")
    fred.put(b"abc", "/t/f")
    batches, coalesced = server.stats.batches, server.stats.coalesced
    results = fred.batch(
        [
            {"op": "stat", "path": "/t/f"},
            {"op": "stat", "path": "/t/missing"},  # fails in its slot only
            {"op": "readdir", "path": "/t"},
        ]
    )
    assert results[0]["ok"] and results[0]["size"] == 3
    assert not results[1]["ok"]
    assert results[1]["errno"] == int(Errno.ENOENT)
    assert results[2]["ok"] and results[2]["names"] == ["f"]
    assert server.stats.batches == batches + 1
    assert server.stats.coalesced == coalesced + 3


def test_batch_refuses_uncoalescable_and_oversized_envelopes():
    from repro.chirp.protocol import BATCH_LIMIT

    cluster, server, wallet = make_world()
    fred = connect_fred(cluster, wallet, retry=None)
    results = fred.batch([{"op": "auth", "method": "unix"}])
    assert not results[0]["ok"]  # auth cannot ride a batch
    assert results[0]["errno"] == int(Errno.EINVAL)
    with pytest.raises(ChirpError) as excinfo:
        fred.batch([{"op": "whoami"}] * (BATCH_LIMIT + 1))
    assert excinfo.value.errno is Errno.EINVAL


def test_batch_requires_an_authenticated_connection():
    cluster, server, wallet = make_world()
    client = ChirpClient.connect(
        cluster.network, "laptop.cs.nowhere.edu", "server1.nowhere.edu"
    )
    with pytest.raises(ChirpError) as excinfo:
        client.batch([{"op": "whoami"}])
    assert excinfo.value.errno is Errno.EACCES


def test_batch_counts_every_inner_frame_as_an_op():
    cluster, server, wallet = make_world()
    fred = connect_fred(cluster, wallet, retry=None)
    before = server.stats.ops
    fred.batch([{"op": "whoami"}, {"op": "whoami"}, {"op": "whoami"}])
    assert server.stats.ops == before + 3  # accounting matches singles


# ---------------------------------------------------------------------- #
# coalesced transfers: byte-identical, faults included
# ---------------------------------------------------------------------- #


def test_coalesced_put_get_round_trips_bytes(monkeypatch):
    fastlane_off(monkeypatch)
    data = input_bytes(CMS)  # multi-chunk: CHUNK + 4321 bytes
    cluster, _, wallet = make_world()
    fred = connect_fred(cluster, wallet, retry=None)
    fred.mkdir("/t")
    fred.put(data, "/t/plain")
    plain = fred.get("/t/plain")

    fastlane_on(monkeypatch)
    cluster, server, wallet = make_world()
    fred = connect_fred(cluster, wallet, retry=None)
    fred.mkdir("/t")
    assert fred.put(data, "/t/fast") == len(data)
    assert fred.get("/t/fast") == plain == data
    assert server.stats.batches >= 2  # the transfer actually coalesced


def test_coalesced_transfer_survives_faults_and_a_restart(monkeypatch):
    fastlane_on(monkeypatch)
    data = input_bytes(BLAST)
    plan = FaultPlan.uniform(
        seed=20260808, rate=0.10, restart_at_ops=(8,), ports=(CHIRP_PORT,)
    )
    cluster, server, wallet = make_world(plan)
    fred = connect_fred(cluster, wallet)
    fred.mkdir("/t")
    assert fred.put(data, "/t/blob") == len(data)
    assert fred.get("/t/blob") == data
    assert plan.stats.total() > 0, "the plan never actually fired"


# ---------------------------------------------------------------------- #
# per-identity op budgets: the EAGAIN contract
# ---------------------------------------------------------------------- #


def quota_world(rate="50:4"):
    cluster = Cluster()
    cluster.add_machine("server1.nowhere.edu")
    cluster.add_machine("laptop.cs.nowhere.edu")
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    wallet = provision_user(ca, trust, "/O=UnivNowhere/CN=Fred")
    machine = cluster.machine("server1.nowhere.edu")
    owner = machine.add_user("dthain")
    rate_s, _, burst_s = rate.partition(":")
    server = ChirpServer(
        machine,
        owner,
        network=cluster.network,
        auth=ServerAuth(credential_store=trust),
        quota=IdentityQuota(float(rate_s), int(burst_s)),
    )
    acl = Acl()
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlv(rwlax)"))
    server.set_root_acl(acl)
    server.serve()
    return cluster, server, wallet


def connect(cluster, wallet, retry=None):
    client = ChirpClient.connect(
        cluster.network, "laptop.cs.nowhere.edu", "server1.nowhere.edu",
        retry=retry,
    )
    client.authenticate([GlobusAuthenticator(wallet)])
    return client


def test_quota_exhaustion_surfaces_as_eagain():
    cluster, server, wallet = quota_world()
    fred = connect(cluster, wallet)
    with pytest.raises(ChirpError) as excinfo:
        for _ in range(64):
            fred.stat("/")
    assert excinfo.value.errno is Errno.EAGAIN
    assert "quota exceeded" in str(excinfo.value)
    assert server.quota.stats.rejected >= 1


def test_retrying_client_rides_out_the_quota():
    # EAGAIN is a transient errno: the retry policy backs off, simulated
    # time passes, the bucket refills — the op eventually lands.  That
    # loop is the whole contract.
    cluster, server, wallet = quota_world()
    fred = connect(cluster, wallet, retry=RETRY)
    for _ in range(32):
        fred.stat("/")
    assert server.quota.stats.rejected >= 1  # the budget really did bite
    assert server.quota.stats.admitted >= 32


def test_quota_env_knob_arms_the_server(monkeypatch):
    monkeypatch.setenv("REPRO_QUOTA", "25:8")
    cluster, server, wallet = make_world()
    assert server.quota is not None
    assert (server.quota.rate_per_s, server.quota.burst) == (25.0, 8)


# ---------------------------------------------------------------------- #
# the acceptance sweep: six workloads, byte-identical either way
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
def test_every_workload_is_byte_identical_with_the_fast_lane_on(
    profile, monkeypatch
):
    fastlane_off(monkeypatch)
    cluster, _, wallet = make_world()
    want = stage_and_run(connect_fred(cluster, wallet, retry=None), profile)
    assert want["status"] == 0 and want["size"] == len(input_bytes(profile))

    fastlane_on(monkeypatch)
    cluster, server, wallet = make_world()
    got = stage_and_run(connect_fred(cluster, wallet, retry=None), profile)
    assert server.read_cache is not None  # the knob really armed it
    assert got == want  # the fast lane must not be observable in results


def test_workload_under_faults_with_fast_lane_matches_clean_run(monkeypatch):
    fastlane_off(monkeypatch)
    cluster, _, wallet = make_world()
    want = stage_and_run(connect_fred(cluster, wallet, retry=None), CMS)

    fastlane_on(monkeypatch)
    plan = FaultPlan.uniform(
        seed=20260808, rate=0.10, restart_at_ops=(8,), ports=(CHIRP_PORT,)
    )
    cluster, server, wallet = make_world(plan)
    got = stage_and_run(connect_fred(cluster, wallet), CMS)
    assert plan.stats.total() > 0
    assert got == want
