"""Wire protocol framing for Chirp."""

import pytest

from repro.chirp.protocol import (
    ALL_OPS,
    ChirpError,
    StatPayload,
    error_response,
    ok_response,
    parse_request,
    parse_response,
    request,
)
from repro.kernel.errno import Errno
from repro.net.rpc import ProtocolError


def test_request_roundtrip():
    frame = request("open", path="/f", flags=2, mode=0o644)
    message = parse_request(frame)
    assert message["op"] == "open"
    assert message["path"] == "/f"


def test_unknown_op_rejected_at_build_time():
    with pytest.raises(ProtocolError):
        request("fork_bomb")


def test_unknown_op_rejected_at_parse_time():
    from repro.net.rpc import encode_message

    with pytest.raises(ProtocolError):
        parse_request(encode_message({"op": "fork_bomb"}))


def test_missing_op_rejected():
    from repro.net.rpc import encode_message

    with pytest.raises(ProtocolError):
        parse_request(encode_message({"path": "/f"}))


def test_ok_response_roundtrip():
    reply = parse_response(ok_response(fd=5, data=b"\x00\x01"))
    assert reply["fd"] == 5
    assert reply["data"] == b"\x00\x01"


def test_error_response_raises_chirp_error():
    with pytest.raises(ChirpError) as info:
        parse_response(error_response(Errno.EACCES, "denied"))
    assert info.value.errno is Errno.EACCES
    assert "denied" in str(info.value)


def test_error_without_errno_defaults_to_eio():
    from repro.net.rpc import encode_message

    with pytest.raises(ChirpError) as info:
        parse_response(encode_message({"ok": False}))
    assert info.value.errno is Errno.EIO


def test_exec_and_aclcheck_are_protocol_ops():
    assert "exec" in ALL_OPS
    assert "aclcheck" in ALL_OPS
    assert "auth" in ALL_OPS


def test_stat_payload_roundtrip():
    payload = StatPayload(
        size=10, is_dir=False, is_file=True, is_symlink=False, nlink=2, mtime_ns=5
    )
    assert StatPayload.from_fields(payload.to_fields()) == payload


def test_stat_payload_from_kernel_stat(machine, alice, alice_task):
    machine.write_file(alice_task, "/home/alice/f", b"12345")
    st = machine.kcall_x(alice_task, "stat", "/home/alice/f")
    payload = StatPayload.from_stat(st)
    assert payload.size == 5
    assert payload.is_file and not payload.is_dir
